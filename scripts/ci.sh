#!/usr/bin/env bash
# Tier-1 verify, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# followed by a bench smoke (bench_batch on tiny instances must emit a
# BENCH_batch.json that parses as JSON; skipped if google-benchmark was not
# found), an engine-cache smoke, a hot-path dispatch-equivalence smoke
# (bench_hotpath builds without google-benchmark, so it always runs), and a
# fuzz smoke: 200 deterministic differential cases of the §5 driver against
# the exact solver. A fuzz divergence exits non-zero and
# leaves minimized repro files in build/fuzz-repros/ (uploaded as a CI
# artifact; check the repro into tests/corpus/ once the bug is fixed).
#
# Run from the repository root. Pass extra cmake arguments through, e.g.
#   scripts/ci.sh -DMMDIAG_FORCE_BUNDLED_GTEST=ON
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
cd build
ctest --output-on-failure -j

if [ -x bench/bench_batch ]; then
  ./bench/bench_batch --smoke --out BENCH_batch.json
  if command -v python3 >/dev/null; then
    # Beyond parsing, the smoke must show the bitsliced cohort path alive
    # and equivalent: every topology needs a sliced_vs_scalar row with a
    # 64-lane cohort width whose results matched the scalar path bit for
    # bit (the binary exits non-zero on divergence; the fields are
    # re-checked here so a reporting bug cannot mask one).
    python3 - <<'PY'
import json
with open("BENCH_batch.json") as f:
    report = json.load(f)
rows = report["results"]
assert rows, "BENCH_batch.json has no results"
sliced = [r for r in rows if r.get("mode") == "sliced_vs_scalar"]
assert sliced, "no sliced_vs_scalar rows: bitsliced cohort path never ran"
for r in sliced:
    assert r["cohort_width"] == 64, f"unexpected cohort width: {r}"
    assert r["identical_to_sequential"], \
        f"bitsliced cohort diverged from the scalar path: {r}"
    assert r["sliced_vs_scalar"] > 0, f"degenerate throughput ratio: {r}"
print(f"bench smoke: {len(sliced)} sliced_vs_scalar rows, "
      "bitsliced cohorts bit-identical to the scalar path")
PY
  else
    echo "bench smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "bench smoke: bench_batch not built (google-benchmark missing), skipped"
fi

if [ -x bench/bench_engine ]; then
  # The engine smoke must show the calibration cache actually caching: on
  # the repeated-spec stream the hit counter has to be nonzero (and
  # eviction must fire on the thrash stream), or the service layer has
  # silently degraded to calibrate-per-request.
  ./bench/bench_engine --smoke --out BENCH_engine.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_engine.json") as f:
    report = json.load(f)
rows = report["results"]
assert rows, "BENCH_engine.json has no results"
repeated = [r for r in rows if r["stream"] == "repeated-spec"]
assert repeated, "no repeated-spec rows"
for r in repeated:
    assert r["cache_hits"] > 0, f"repeated-spec stream scored no cache hits: {r}"
    assert r["identical_to_direct"], f"engine diverged from direct diagnosis: {r}"
assert any(r["cache_evictions"] > 0 for r in rows if r["stream"] == "thrash"), \
    "thrash stream never evicted"
print("engine smoke: cache hit/evict counters live, results identical to direct")
PY
  else
    echo "engine smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "engine smoke: bench_engine not built (google-benchmark missing), skipped"
fi

if [ -x bench/bench_hotpath ]; then
  # The hot-path smoke must show dispatch equivalence holding: the
  # statically-dispatched path and the preserved baseline implementation
  # have to report bit-identical faults AND look-up counts on every row
  # (the binary itself exits non-zero on divergence; the JSON fields are
  # re-checked here so a reporting bug cannot mask one).
  ./bench/bench_hotpath --smoke --out BENCH_hotpath.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_hotpath.json") as f:
    report = json.load(f)
rows = report["results"]
assert rows, "BENCH_hotpath.json has no results"
for r in rows:
    assert r["identical_faults"], f"dispatch paths disagreed on faults: {r}"
    assert r["identical_lookups"], f"dispatch paths disagreed on look-up counts: {r}"
    assert r["identical_accounting"], f"dispatch paths disagreed on accounting: {r}"
print(f"hotpath smoke: {len(rows)} rows, dispatch paths bit-identical everywhere")
PY
  else
    echo "hotpath smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "hotpath smoke: bench_hotpath not built, skipped"
fi

if [ -x bench/bench_scale ]; then
  # The scale smoke must show the implicit-topology path solving a >= 2^16
  # node instance inside a modest memory budget, bit-identical to the CSR
  # view (the binary itself exits non-zero on divergence; the JSON fields
  # are re-checked here so a reporting bug cannot mask one).
  ./bench/bench_scale --smoke --out BENCH_scale.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_scale.json") as f:
    report = json.load(f)
rows = report["results"]
assert rows, "BENCH_scale.json has no results"
assert any(r["nodes"] >= 65536 for r in rows), \
    "no row reached 2^16 nodes: the scale path never scaled"
for r in rows:
    if r["csr_checked"]:
        assert r["identical_to_csr"], \
            f"implicit view diverged from the CSR view: {r}"
    assert r["implicit_bytes"] < r["csr_bytes"], \
        f"implicit view not smaller than CSR: {r}"
    assert r["peak_rss_kb"] < 262144, \
        f"scale smoke exceeded the 256 MB peak-RSS budget: {r}"
print(f"scale smoke: {len(rows)} rows, implicit view bit-identical to CSR "
      "inside the peak-RSS budget")
PY
  else
    echo "scale smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "scale smoke: bench_scale not built, skipped"
fi

if [ -x bench/bench_models ]; then
  # The model smoke must show every diagnosis model answering (MM*, PMC and
  # BGM global rows all succeed) and the BGM local fast path holding its
  # contract: per-request look-ups within the 2-ball bound and a throughput
  # far above the global solve (the binary itself exits non-zero on a bound
  # violation; the JSON fields are re-checked here so a reporting bug
  # cannot mask one).
  ./bench/bench_models --smoke --out BENCH_models.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_models.json") as f:
    report = json.load(f)
rows = report["results"]
assert rows, "BENCH_models.json has no results"
models = {r["model"] for r in rows if r["mode"] == "global"}
assert models == {"mm-star", "pmc", "bgm"}, f"missing global rows: {models}"
for r in rows:
    if r["mode"] == "global":
        assert r["succeeded"] == r["syndromes"], f"global solves failed: {r}"
local = [r for r in rows if r["mode"] == "local"]
assert local, "no BGM local-diagnosis row: the fast path never ran"
for r in local:
    assert r["within_lookup_bound"], f"local request broke the bound: {r}"
    assert r["max_request_lookups"] <= r["lookup_bound"], \
        f"max look-ups above the 2-ball bound: {r}"
    assert r["speedup_vs_global_solve"] > 10, \
        f"local fast path not meaningfully faster than a global solve: {r}"
print(f"model smoke: {len(rows)} rows, all models live, local fast path "
      "within its look-up bound")
PY
  else
    echo "model smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "model smoke: bench_models not built, skipped"
fi

if [ -x bench/bench_shard ]; then
  # The shard smoke must show the owner/halo engine sharding a >= 2^16 node
  # instance bit-identically to the monolith — same faults, probes AND
  # counted look-ups — inside a per-shard row-store budget below the
  # monolithic CSR (the binary itself exits non-zero on divergence; the
  # JSON fields are re-checked here so a reporting bug cannot mask one).
  ./bench/bench_shard --smoke --out BENCH_shard.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_shard.json") as f:
    report = json.load(f)
assert "hardware_threads" in report, "bench_shard lost its hardware_threads meta"
rows = report["results"]
assert rows, "BENCH_shard.json has no results"
identity = [r for r in rows if r["mode"] == "identity"]
assert identity, "no identity rows: the sharded engine never raced the monolith"
assert any(r["nodes"] >= 65536 and r["shards"] >= 2 for r in identity), \
    "no sharded row reached 2^16 nodes"
for r in identity:
    assert r["identical_to_monolithic"], \
        f"sharded engine diverged from the monolith: {r}"
    assert r["lookups_identical"], \
        f"sharded engine changed the counted look-ups: {r}"
    assert r["monolithic_lookups"] == r["sharded_lookups"], f"look-ups differ: {r}"
    assert r["store_below_monolithic_csr"], \
        f"a shard's row store outgrew the monolithic CSR: {r}"
    assert r["peak_rss_kb"] < 262144, \
        f"shard smoke exceeded the 256 MB peak-RSS budget: {r}"
print(f"shard smoke: {len(identity)} identity rows, sharded engine "
      "bit-identical to the monolith with unchanged look-up counts")
PY
  else
    echo "shard smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "shard smoke: bench_shard not built, skipped"
fi

if [ -x bench/bench_churn ]; then
  # The churn smoke must show the warm incremental path holding bit-identity
  # against cold full recalibration on hostile generated streams (expected
  # errors included), and the steady-state solve cache actually serving:
  # timed-repeat rows spend zero warm look-ups while cold re-solves every
  # round (the binary itself exits non-zero on divergence; the JSON fields
  # are re-checked here so a reporting bug cannot mask one).
  ./bench/bench_churn --smoke --out BENCH_churn.json
  if command -v python3 >/dev/null; then
    python3 - <<'PY'
import json
with open("BENCH_churn.json") as f:
    report = json.load(f)
assert report["all_identical"], "a warm churn answer diverged from cold"
rows = report["results"]
assert rows, "BENCH_churn.json has no results"
harness = [r for r in rows if r["mode"] == "harness"]
assert harness, "no harness rows: no churn stream was replayed"
assert any(r["oracle"] == "table" for r in harness), "no table-oracle row"
for r in harness:
    assert r["identical_warm_cold"], f"warm diverged from cold: {r}"
    assert r["divergences"] == 0, f"harness reported divergences: {r}"
    assert r["expected_errors"] > 0, f"hostile events never fired: {r}"
    assert r["topology_events"] > 0 and r["diagnose_events"] > 0, \
        f"degenerate stream: {r}"
    assert r["warm_recert_components"] < r["cold_recert_components"], \
        f"incremental recertification did no less work than cold: {r}"
repeat = [r for r in rows if r["mode"] == "timed-repeat"]
assert repeat, "no timed-repeat rows: the solve cache was never measured"
for r in repeat:
    assert r["identical_warm_cold"], f"cached answer diverged from cold: {r}"
    assert r["warm_lookups"] == 0, f"steady-state warm path spent look-ups: {r}"
    assert r["cold_lookups"] > 0, f"degenerate cold reference: {r}"
print(f"churn smoke: {len(harness)} harness rows bit-identical warm vs cold, "
      "steady-state cache serves with zero look-ups")
PY
  else
    echo "churn smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "churn smoke: bench_churn not built, skipped"
fi

# hardware_threads must be present in every bench report that carries
# speed numbers, so a reader can tell a 1-thread CI container's timings
# from a workstation's (the sharded speedup rows are meaningless without
# it).
if command -v python3 >/dev/null; then
  python3 - <<'PY'
import json
for name in ("BENCH_scale.json", "BENCH_models.json", "BENCH_shard.json",
              "BENCH_churn.json"):
    try:
        with open(name) as f:
            report = json.load(f)
    except FileNotFoundError:
        continue  # that bench was skipped above
    assert "hardware_threads" in report, f"{name} lost its hardware_threads meta"
    assert report["hardware_threads"] >= 1, f"{name} hardware_threads degenerate"
print("meta smoke: hardware_threads recorded in every emitted bench report")
PY
fi

# UBSan pass over the word-level kernels the bitsliced path leans on:
# extract/row_bits/transpose64 shift edge cases trap at runtime under
# -fsanitize=undefined instead of silently wrapping, and the directed-model
# suites ride along so PMC/BGM hash and bit plumbing get the same scrutiny.
# shard_test rides along too: the sharded engine's frontier bitmaps, halo
# slot maps and merge cursors are all word/index arithmetic. churn_test as
# well: the overlay's dead-edge masks, the masked oracle reads and the
# changed-row bitsets are the same kind of shift-heavy word plumbing. Only
# the suites that exercise those kernels are built, so the pass stays cheap.
cd ..
cmake -B build-ubsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=undefined -fno-sanitize-recover=all" \
  "$@"
cmake --build build-ubsan -j --target util_test syndrome_test \
  dispatch_equiv_test model_test directed_solver_test model_fuzz_test \
  shard_test churn_test
./build-ubsan/tests/util_test
./build-ubsan/tests/syndrome_test
./build-ubsan/tests/dispatch_equiv_test
./build-ubsan/tests/model_test
./build-ubsan/tests/directed_solver_test
./build-ubsan/tests/model_fuzz_test
./build-ubsan/tests/shard_test
./build-ubsan/tests/churn_test
echo "ubsan smoke: word-level kernel, directed-model, shard and churn" \
     "suites clean under -fsanitize=undefined"
cd build

if [ -x examples/mmdiag_cli ]; then
  # Fixed seed so the case stream is reproducible from the log alone;
  # budgeted so a pathological slowdown cannot hang CI — but an exhausted
  # budget means the smoke did NOT cover its cases, which must fail too.
  ./examples/mmdiag_cli fuzz --cases 200 --seed 1 --max-bugs 3 \
    --budget-seconds 120 --out-dir fuzz-repros | tee fuzz-smoke.log
  if grep -q "budget exhausted" fuzz-smoke.log; then
    echo "fuzz smoke: FAILED — budget exhausted before the case stream ran" \
         "(differential cases have slowed down drastically)"
    exit 1
  fi
  # Per-model streams: each differ voice (MM*, PMC, BGM) must survive a
  # dedicated smoke against its own exact solver, not just whatever mix the
  # default rotation happened to draw.
  for model in mm-star pmc bgm; do
    ./examples/mmdiag_cli fuzz --model "$model" --cases 60 --seed 2 \
      --max-bugs 3 --budget-seconds 120 --out-dir fuzz-repros \
      | tee "fuzz-smoke-$model.log"
    if grep -q "budget exhausted" "fuzz-smoke-$model.log"; then
      echo "fuzz smoke ($model): FAILED — budget exhausted before the" \
           "case stream ran"
      exit 1
    fi
  done
  echo "fuzz smoke: clean (default rotation + one stream per model)"
else
  echo "fuzz smoke: mmdiag_cli not built (examples disabled), skipped"
fi
