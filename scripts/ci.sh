#!/usr/bin/env bash
# Tier-1 verify, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
#
# Run from the repository root. Pass extra cmake arguments through, e.g.
#   scripts/ci.sh -DMMDIAG_FORCE_BUNDLED_GTEST=ON
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
cd build
ctest --output-on-failure -j
