#!/usr/bin/env bash
# Tier-1 verify, exactly as ROADMAP.md specifies:
#   cmake -B build -S . && cmake --build build -j && cd build && ctest --output-on-failure -j
# followed by a bench smoke: bench_batch on tiny instances must emit a
# BENCH_batch.json that parses as JSON (skipped if google-benchmark was not
# found and the bench targets were therefore never built).
#
# Run from the repository root. Pass extra cmake arguments through, e.g.
#   scripts/ci.sh -DMMDIAG_FORCE_BUNDLED_GTEST=ON
set -euo pipefail

cd "$(dirname "$0")/.."

cmake -B build -S . "$@"
cmake --build build -j
cd build
ctest --output-on-failure -j

if [ -x bench/bench_batch ]; then
  ./bench/bench_batch --smoke --out BENCH_batch.json
  if command -v python3 >/dev/null; then
    python3 -m json.tool BENCH_batch.json > /dev/null
    echo "bench smoke: BENCH_batch.json is valid JSON"
  else
    echo "bench smoke: python3 unavailable, JSON validation skipped"
  fi
else
  echo "bench smoke: bench_batch not built (google-benchmark missing), skipped"
fi
