# Resolve a GoogleTest to link the suites against, in order of preference:
#
#   1. the system install (find_package),
#   2. FetchContent from github (needs network; probed with a timeout so an
#      offline configure falls through instead of aborting),
#   3. the vendored single-header fallback in third_party/minigtest.
#
# Tier 3 keeps fully offline builds working: it is a small gtest-compatible
# reimplementation covering the macro surface the mmdiag suites use (TEST,
# TEST_F, TEST_P/INSTANTIATE_TEST_SUITE_P, EXPECT_*/ASSERT_*, SCOPED_TRACE,
# GTEST_SKIP). Set -DMMDIAG_FORCE_BUNDLED_GTEST=ON to exercise it directly.
#
# Defines the function mmdiag_link_gtest(<target>) and sets
# MMDIAG_GTEST_PROVIDER to "system", "fetched" or "bundled".

set(MMDIAG_GTEST_PROVIDER "")

if(NOT MMDIAG_FORCE_BUNDLED_GTEST)
  find_package(GTest QUIET)
  if(GTest_FOUND)
    set(MMDIAG_GTEST_PROVIDER "system")
  endif()
endif()

if(NOT MMDIAG_GTEST_PROVIDER AND NOT MMDIAG_FORCE_BUNDLED_GTEST)
  set(_gtest_url
    "https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz")
  set(_gtest_tarball "${CMAKE_BINARY_DIR}/_deps/googletest-v1.14.0.tar.gz")
  # The hash is checked manually rather than via EXPECTED_HASH: a mismatch
  # there is a fatal configure error even with STATUS, which would block the
  # fall-through to the bundled tier and wedge reconfigures on a cached
  # corrupt-but-HTTP-200 download (e.g. a captive-portal HTML page).
  set(_gtest_sha256
    "8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7")
  if(NOT EXISTS "${_gtest_tarball}")
    file(DOWNLOAD "${_gtest_url}" "${_gtest_tarball}"
      TIMEOUT 20 STATUS _gtest_dl_status)
    list(GET _gtest_dl_status 0 _gtest_dl_code)
    if(NOT _gtest_dl_code EQUAL 0)
      file(REMOVE "${_gtest_tarball}")
    endif()
  endif()
  if(EXISTS "${_gtest_tarball}")
    file(SHA256 "${_gtest_tarball}" _gtest_actual_sha256)
    if(NOT _gtest_actual_sha256 STREQUAL _gtest_sha256)
      message(STATUS
        "mmdiag: googletest download failed integrity check — discarding")
      file(REMOVE "${_gtest_tarball}")
    endif()
  endif()
  if(EXISTS "${_gtest_tarball}")
    include(FetchContent)
    set(FETCHCONTENT_QUIET ON)
    FetchContent_Declare(googletest
      URL "${_gtest_tarball}"
      DOWNLOAD_EXTRACT_TIMESTAMP TRUE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_MakeAvailable(googletest)
    if(TARGET gtest_main)
      set(MMDIAG_GTEST_PROVIDER "fetched")
    endif()
  endif()
endif()

if(NOT MMDIAG_GTEST_PROVIDER)
  add_library(mmdiag_minigtest STATIC
    "${CMAKE_SOURCE_DIR}/third_party/minigtest/gtest_main.cpp")
  target_include_directories(mmdiag_minigtest PUBLIC
    "${CMAKE_SOURCE_DIR}/third_party/minigtest")
  target_compile_features(mmdiag_minigtest PUBLIC cxx_std_20)
  set(MMDIAG_GTEST_PROVIDER "bundled")
endif()

set(MMDIAG_GTEST_PROVIDER "${MMDIAG_GTEST_PROVIDER}" PARENT_SCOPE)

function(mmdiag_link_gtest target)
  if(MMDIAG_GTEST_PROVIDER STREQUAL "bundled")
    target_link_libraries(${target} PRIVATE mmdiag_minigtest)
  elseif(TARGET GTest::gtest_main)
    target_link_libraries(${target} PRIVATE GTest::gtest_main GTest::gtest)
  else()
    target_link_libraries(${target} PRIVATE gtest_main gtest)
  endif()
endfunction()

message(STATUS "mmdiag: GoogleTest provider = ${MMDIAG_GTEST_PROVIDER}")
