// Shared machinery for the experiment benches (EXPERIMENTS.md E1-E12).
//
// Each bench binary is a google-benchmark executable whose benchmarks also
// append rows to a global experiment table; main() runs the benchmarks and
// then prints the table the corresponding paper claim calls for.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "core/diagnoser.hpp"
#include "engine/engine.hpp"
#include "graph/graph.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"
#include "util/table.hpp"

namespace mmdiag::bench {

/// The benches' shared calibration owner: every calibrated setup in a
/// bench binary flows through this one DiagnosisEngine, sized so no bench
/// sweep evicts (bench_engine measures eviction with engines of its own).
inline DiagnosisEngine& engine() {
  static DiagnosisEngine e([] {
    EngineOptions options;
    options.cache_capacity = 64;
    options.threads = 1;
    return options;
  }());
  return e;
}

/// Cached topology+graph instances (graph construction dominates setup).
/// Deliberately *not* a Calibration: several benches probe instances whose
/// default bound cannot certify (that failure mode is itself measured), so
/// this layer stays partition-free; the calibrated paths below go through
/// engine().
struct Instance {
  std::unique_ptr<Topology> topo;
  Graph graph;
};

inline const Instance& instance(const std::string& spec) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<Instance>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(spec);
  if (it == cache.end()) {
    auto inst = std::make_unique<Instance>();
    inst->topo = make_topology_from_spec(spec);
    inst->graph = inst->topo->build_graph();
    it = cache.emplace(spec, std::move(inst)).first;
  }
  return *it->second;
}

/// Cached Diagnoser per (spec, rule), calibrated through engine() —
/// calibration is setup cost, not diagnosis cost, exactly as in the
/// paper's accounting. The Diagnoser co-owns its calibration, so the
/// engine's LRU can never invalidate it.
inline Diagnoser& diagnoser(const std::string& spec,
                            ParentRule rule = ParentRule::kSpread) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<Diagnoser>> cache;
  const std::lock_guard<std::mutex> lock(mu);
  const std::string key = spec + "/" + to_string(rule);
  auto it = cache.find(key);
  if (it == cache.end()) {
    DiagnoserOptions options;
    options.rule = rule;
    it = cache.emplace(key, engine().make_diagnoser(spec, options)).first;
  }
  return *it->second;
}

/// Deterministic fault set of the given size for a spec.
inline FaultSet make_faults(const std::string& spec, std::size_t count,
                            std::uint64_t seed = 0x5EED) {
  const auto& inst = instance(spec);
  Rng rng(seed ^ std::hash<std::string>{}(spec));
  return FaultSet(inst.graph.num_nodes(),
                  inject_uniform(inst.graph.num_nodes(), count, rng));
}

/// Global experiment table: benchmarks add rows; main() prints at exit.
class ExperimentTable {
 public:
  static ExperimentTable& get() {
    static ExperimentTable t;
    return t;
  }

  void init(std::string title, std::vector<std::string> headers) {
    const std::lock_guard<std::mutex> lock(mu_);
    title_ = std::move(title);
    table_ = std::make_unique<Table>(std::move(headers));
  }

  void add_row(std::vector<std::string> cells) {
    const std::lock_guard<std::mutex> lock(mu_);
    // Deduplicate: google-benchmark may re-run a benchmark to stabilise
    // timing; keep the most recent row per first cell + second cell key.
    const std::string key = cells[0] + "|" + (cells.size() > 1 ? cells[1] : "");
    if (auto it = row_index_.find(key); it != row_index_.end()) {
      rows_[it->second] = std::move(cells);
      return;
    }
    row_index_[key] = rows_.size();
    rows_.push_back(std::move(cells));
  }

  void print(std::ostream& os) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (!table_) return;
    for (auto& row : rows_) table_->add_row(row);
    os << "\n=== " << title_ << " ===\n";
    table_->print(os);
    os << "\nCSV:\n";
    table_->print_csv(os);
  }

 private:
  std::mutex mu_;
  std::string title_;
  std::unique_ptr<Table> table_;
  std::vector<std::vector<std::string>> rows_;
  std::map<std::string, std::size_t> row_index_;
};

/// Standard bench main: run benchmarks, then print the experiment table.
#define MMDIAG_BENCH_MAIN()                                   \
  int main(int argc, char** argv) {                           \
    ::benchmark::Initialize(&argc, argv);                     \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) \
      return 1;                                               \
    ::benchmark::RunSpecifiedBenchmarks();                    \
    ::mmdiag::bench::ExperimentTable::get().print(std::cout); \
    return 0;                                                 \
  }

}  // namespace mmdiag::bench
