// E9 (§6 further research): distributed execution cost of the diagnosis.
// The paper reports (without numbers) that a distributed Set_Builder
// outperforms a distributed Chiang-Tan in hypercubes. Under our synchronous
// cost model (see src/core/distributed.hpp) the shape is: Set_Builder moves
// fewer messages and does far less per-node work; Chiang-Tan finishes in a
// constant number of (pipelined) rounds while Set_Builder needs
// diameter-order rounds.
#include "core/distributed.hpp"

#include "distributed/protocol.hpp"

#include "bench_util.hpp"
#include "topology/hypercube.hpp"

namespace mmdiag::bench {
namespace {

constexpr unsigned kDims[] = {9, 11, 13};

void BM_DistOurs(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const std::string spec = "hypercube " + std::to_string(n);
  const auto& inst = instance(spec);
  const FaultSet faults = make_faults(spec, n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 43);
  DistributedCost cost;
  for (auto _ : state) {
    cost = distributed_set_builder_cost(*inst.topo, inst.graph, oracle);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["rounds"] = static_cast<double>(cost.rounds);
  state.counters["messages"] = static_cast<double>(cost.messages);
  ExperimentTable::get().add_row(
      {"Q" + std::to_string(n), "set_builder (ours)",
       Table::num(inst.graph.num_nodes()), Table::num(cost.rounds),
       Table::num(cost.messages), Table::num(cost.local_work),
       cost.success ? "yes" : "NO"});
}

// The five-stage protocol executed on the real message-passing simulator
// (src/distributed) — not the analytic cost model.
void BM_DistProtocol(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const std::string spec = "hypercube " + std::to_string(n);
  const auto& inst = instance(spec);
  const FaultSet faults = make_faults(spec, n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 43);
  DistributedRunStats stats;
  for (auto _ : state) {
    stats = run_distributed_diagnosis(*inst.topo, inst.graph, oracle);
    benchmark::DoNotOptimize(stats);
  }
  state.counters["rounds"] = static_cast<double>(stats.rounds);
  state.counters["messages"] = static_cast<double>(stats.messages);
  ExperimentTable::get().add_row(
      {"Q" + std::to_string(n), "set_builder (simulated)",
       Table::num(inst.graph.num_nodes()), Table::num(stats.rounds),
       Table::num(stats.messages), Table::num(stats.lookups),
       stats.success ? "yes" : "NO"});
}

void BM_DistChiangTan(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const std::string spec = "hypercube " + std::to_string(n);
  const auto& inst = instance(spec);
  const Hypercube topo(n);
  const FaultSet faults = make_faults(spec, n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 43);
  DistributedCost cost;
  for (auto _ : state) {
    cost = distributed_chiang_tan_cost(topo, inst.graph, oracle);
    benchmark::DoNotOptimize(cost);
  }
  state.counters["rounds"] = static_cast<double>(cost.rounds);
  state.counters["messages"] = static_cast<double>(cost.messages);
  ExperimentTable::get().add_row(
      {"Q" + std::to_string(n), "chiang_tan",
       Table::num(inst.graph.num_nodes()), Table::num(cost.rounds),
       Table::num(cost.messages), Table::num(cost.local_work),
       cost.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E9 / §6 — distributed diagnosis on hypercubes, |F| = n (analytic model "
      "+ real simulator)",
      {"instance", "algorithm", "N", "rounds", "messages", "local_work",
       "success"});
  for (const unsigned n : kDims) {
    benchmark::RegisterBenchmark(
        ("dist_ours/Q" + std::to_string(n)).c_str(), BM_DistOurs)
        ->Arg(n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("dist_protocol/Q" + std::to_string(n)).c_str(), BM_DistProtocol)
        ->Arg(n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(
        ("dist_chiang_tan/Q" + std::to_string(n)).c_str(), BM_DistChiangTan)
        ->Arg(n)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
