// E2 (Theorem 2): hypercube diagnosis in O(n·2^n), compared against the
// Chiang-Tan extended-star baseline (same asymptotics) and Yang's
// cycle-decomposition algorithm (the O(n²·2^n) predecessor).
//
// Expected shape (paper): ours ~ Chiang-Tan, both at least as fast as Yang;
// time/(n·2^n) roughly flat for ours across n.
#include "baselines/chiang_tan.hpp"
#include "baselines/yang_cycle.hpp"
#include "bench_util.hpp"
#include "topology/hypercube.hpp"

namespace mmdiag::bench {
namespace {

constexpr unsigned kDims[] = {7, 8, 10, 12, 14, 16};

std::string spec_for(unsigned n) { return "hypercube " + std::to_string(n); }

void report(benchmark::State& state, const std::string& algorithm, unsigned n,
            const DiagnosisResult& result, double seconds_per_op) {
  const double nodes = static_cast<double>(std::uint64_t{1} << n);
  state.counters["N"] = nodes;
  state.counters["delta"] = n;
  state.counters["lookups"] = static_cast<double>(result.lookups);
  state.counters["t_norm_ns"] = seconds_per_op * 1e9 / (n * nodes);
  ExperimentTable::get().add_row(
      {("Q" + std::to_string(n)), algorithm, Table::num(std::uint64_t(nodes)),
       Table::num(seconds_per_op * 1e3, 3),
       Table::num(seconds_per_op * 1e9 / (n * nodes), 3),
       Table::num(result.lookups), result.success ? "yes" : "NO"});
}

void BM_Ours(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto& inst = instance(spec_for(n));
  Diagnoser& diag = diagnoser(spec_for(n));
  const FaultSet faults = make_faults(spec_for(n), n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, n);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  report(state, "set_builder (ours)", n, result, spo);
}

void BM_ChiangTan(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto& inst = instance(spec_for(n));
  const Hypercube topo(n);
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
  const FaultSet faults = make_faults(spec_for(n), n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, n);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = ct.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  report(state, "chiang_tan", n, result, spo);
}

void BM_Yang(benchmark::State& state) {
  const unsigned n = static_cast<unsigned>(state.range(0));
  const auto& inst = instance(spec_for(n));
  const Hypercube topo(n);
  YangCycleDiagnoser yang(topo, inst.graph);
  const FaultSet faults = make_faults(spec_for(n), n);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, n);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = yang.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  report(state, "yang_cycles", n, result, spo);
}

void register_all() {
  ExperimentTable::get().init(
      "E2 / Theorem 2 — hypercube diagnosis, |F| = n, random faulty testers",
      {"instance", "algorithm", "N", "time_ms", "ns_per_nN", "lookups",
       "success"});
  for (const unsigned n : kDims) {
    benchmark::RegisterBenchmark(("ours/Q" + std::to_string(n)).c_str(),
                                 BM_Ours)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("chiang_tan/Q" + std::to_string(n)).c_str(),
                                 BM_ChiangTan)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("yang/Q" + std::to_string(n)).c_str(),
                                 BM_Yang)
        ->Arg(n)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
