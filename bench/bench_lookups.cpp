// E8 (§6): syndrome look-up economy. The paper bounds our consultations by
// (Δ-1)(Δ/2 + |U_r| - 1) for the final run and contrasts with consuming the
// whole syndrome table (Σ_u d(d-1)/2), which is what per-node local schemes
// like Chiang-Tan approach. This bench measures, per family:
//   - our measured look-ups (probes + final run),
//   - the paper's final-run bound,
//   - the full table size and the fraction of it we touched,
//   - Chiang-Tan's measured look-ups (hypercube instances).
// No timing — a single diagnosis per instance (Iterations(1)).
#include "baselines/chiang_tan.hpp"
#include "bench_util.hpp"
#include <cmath>

#include "topology/hypercube.hpp"

namespace mmdiag::bench {
namespace {

constexpr const char* kSpecs[] = {
    "hypercube 10", "hypercube 14",  "crossed_cube 12", "folded_hypercube 12",
    "shuffle_cube 14", "kary_ncube 3 13", "star 8",     "pancake 8",
    "arrangement 10 4",
};

std::uint64_t full_table_size(const Graph& g) {
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    const std::uint64_t d = g.degree(static_cast<Node>(u));
    total += d * (d - 1) / 2;
  }
  return total;
}

void BM_Lookups(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 41);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }

  const std::uint64_t max_deg = inst.graph.max_degree();
  const std::uint64_t paper_bound =
      (max_deg - 1) * (max_deg / 2 + result.final_members - 1) + max_deg;
  const std::uint64_t table = full_table_size(inst.graph);

  // Chiang-Tan on the same syndrome where an extended-star provider exists.
  std::string ct_lookups = "-";
  if (inst.topo->info().family == "hypercube") {
    const Hypercube topo(
        static_cast<unsigned>(std::log2(inst.graph.num_nodes())));
    const auto ct = ChiangTanDiagnoser::for_hypercube(topo, inst.graph);
    const LazyOracle ct_oracle(inst.graph, faults, FaultyBehavior::kRandom, 41);
    const auto ct_result = ct.diagnose(ct_oracle);
    ct_lookups = Table::num(ct_result.lookups);
  }

  state.counters["lookups"] = static_cast<double>(result.lookups);
  state.counters["table"] = static_cast<double>(table);
  ExperimentTable::get().add_row(
      {inst.topo->info().name, Table::num(inst.graph.num_nodes()),
       Table::num(result.lookups), Table::num(paper_bound), Table::num(table),
       Table::num(100.0 * static_cast<double>(result.lookups) /
                      static_cast<double>(table),
                  1) +
           "%",
       ct_lookups, result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E8 / §6 — syndrome look-ups: ours vs paper bound vs full table vs "
      "Chiang-Tan",
      {"instance", "N", "ours_lookups", "paper_final_bound", "full_table",
       "touched", "chiang_tan", "success"});
  for (const char* spec : kSpecs) {
    std::string name = spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_Lookups, std::string(spec))
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
