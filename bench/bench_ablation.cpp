// E12: ablations of the design choices called out in DESIGN.md §4.
//
//  (a) Parent rule — the paper's least-first vs our spread rule: certified
//      contributor counts on a fault-free Q_4 component, whether each rule
//      can support Q_n at all, and diagnosis time where both apply.
//  (b) Probe early-exit — building probe components to their fixpoint
//      (paper-faithful) vs stopping on certification: look-ups saved.
//  (c) Component granularity — diagnosing Q_12 with every certifiable
//      component size m: probes get cheaper as components shrink, until
//      certification fails.
#include "bench_util.hpp"
#include "core/certified_partition.hpp"
#include "core/set_builder.hpp"

namespace mmdiag::bench {
namespace {

// Manual driver over an explicit plan (bypasses the certified search).
DiagnosisResult manual_diagnose(const Graph& graph, const PartitionPlan& plan,
                                unsigned delta, const SyndromeOracle& oracle,
                                ParentRule rule) {
  oracle.reset_lookups();
  DiagnosisResult out;
  SetBuilder builder(graph, rule);
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta} + 1);
  bool found = false;
  std::size_t winner = 0;
  for (std::size_t c = 0; c < max_probes && !found; ++c) {
    ++out.probes;
    const auto probe = builder.run_restricted(
        oracle, plan.seed_of(c), delta, plan, static_cast<std::uint32_t>(c));
    if (probe.all_healthy) {
      found = true;
      winner = c;
    }
  }
  if (!found) {
    out.failure_reason = "no certificate";
    return out;
  }
  const auto full = builder.run(oracle, plan.seed_of(winner), delta);
  out.final_members = full.members.size();
  StampSet seen(graph.num_nodes());
  for (const Node u : full.members) {
    for (const Node v : graph.neighbors(u)) {
      if (!builder.in_last_set(v) && seen.insert(v)) out.faults.push_back(v);
    }
  }
  std::sort(out.faults.begin(), out.faults.end());
  out.lookups = oracle.lookups();
  out.success = out.faults.size() <= delta;
  return out;
}

// (a) Parent-rule ablation: both phases forced to the same rule so the
// trade-off (certification power vs look-up economy) is isolated.
void BM_ParentRule(benchmark::State& state, ParentRule rule) {
  const std::string spec = "hypercube 12";
  const auto& inst = instance(spec);
  DiagnoserOptions rule_options;
  rule_options.rule = rule;
  rule_options.final_rule = rule;
  Diagnoser diag(*inst.topo, inst.graph, rule_options);
  const FaultSet faults = make_faults(spec, 12);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 3);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  // Can this rule support Q_8 at all? (least-first cannot: DESIGN.md §4.2)
  const auto& q8 = instance("hypercube 8");
  bool supports_q8 = true;
  try {
    (void)find_certified_partition(*q8.topo, q8.graph, 8, rule, true);
  } catch (const DiagnosisUnsupportedError&) {
    supports_q8 = false;
  }
  ExperimentTable::get().add_row(
      {"parent-rule", to_string(rule),
       "comp=" + Table::num(diag.partition().plan->component_size()),
       Table::num(spo * 1e3, 3), Table::num(result.lookups),
       supports_q8 ? "supports Q8" : "CANNOT certify Q8",
       result.success ? "yes" : "NO"});
}

// (b) Probe early-exit ablation. One fault sits on each of the first 12
// probed seeds: a probe from a faulty seed stalls immediately (its healthy
// U_1 children all test s_v(w, seed) = 1), so 12 probes fail before the
// 13th certifies — the worst case the driver's δ+1 bound allows.
void BM_ProbeStop(benchmark::State& state, bool stop_on_certify) {
  const std::string spec = "hypercube 12";
  const auto& inst = instance(spec);
  DiagnoserOptions options;
  options.stop_probe_on_certify = stop_on_certify;
  Diagnoser diag(*inst.topo, inst.graph, options);
  const PartitionPlan& plan = *diag.partition().plan;
  std::vector<Node> faults_vec;
  for (std::uint32_t c = 0; c < 12; ++c) faults_vec.push_back(plan.seed_of(c));
  const FaultSet faults(inst.graph.num_nodes(), faults_vec);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 7);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  ExperimentTable::get().add_row(
      {"probe-exit", stop_on_certify ? "stop-on-certify" : "fixpoint (paper)",
       "probes=" + Table::num(result.probes), Table::num(spo * 1e3, 3),
       Table::num(result.lookups), "-", result.success ? "yes" : "NO"});
}

// (c) Component-granularity ablation on Q_12.
void BM_Granularity(benchmark::State& state, unsigned suffix_bits) {
  const std::string spec = "hypercube 12";
  const auto& inst = instance(spec);
  const PrefixBitsPlan plan(12, suffix_bits);
  const unsigned delta = 12;
  // Reject sizes that cannot certify (matching the certified search).
  if (plan.num_components() < delta + 1 ||
      !component_certifies(inst.graph, plan, 0, delta, ParentRule::kSpread)) {
    state.SkipWithError("plan does not certify delta=12");
    return;
  }
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 9);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = manual_diagnose(inst.graph, plan, delta, oracle,
                             ParentRule::kSpread);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  ExperimentTable::get().add_row(
      {"granularity", "m=" + Table::num(suffix_bits),
       "comp=" + Table::num(plan.component_size()), Table::num(spo * 1e3, 3),
       Table::num(result.lookups), "probes=" + Table::num(result.probes),
       result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E12 — ablations on Q_12 (|F| = 12): parent rule, probe early-exit, "
      "component granularity",
      {"ablation", "variant", "config", "time_ms", "lookups", "note",
       "success"});
  benchmark::RegisterBenchmark("parent_rule/least_first", BM_ParentRule,
                               ParentRule::kLeastFirst)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("parent_rule/spread", BM_ParentRule,
                               ParentRule::kSpread)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("probe_exit/fixpoint", BM_ProbeStop, false)
      ->Unit(benchmark::kMillisecond);
  benchmark::RegisterBenchmark("probe_exit/stop_on_certify", BM_ProbeStop,
                               true)
      ->Unit(benchmark::kMillisecond);
  for (const unsigned m : {4u, 5u, 6u, 7u, 8u}) {
    benchmark::RegisterBenchmark(
        ("granularity/m" + std::to_string(m)).c_str(), BM_Granularity, m)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
