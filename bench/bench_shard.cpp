// Sharded-engine benchmark: the owner/halo ShardedDiagnoser against the
// monolithic Diagnoser. Three row kinds share one schema (the `mode` field):
//
//   identity — hypercube 16..18, table mode: the sharded engine and the
//       monolith diagnose the same materialised syndromes and every row
//       asserts bit-identity — faults, failure strings, probes, rounds,
//       members AND counted look-ups; the lazy (computed-row) path is
//       cross-checked against the same results. A divergence fails the run.
//   speedup  — hypercube 18, lazy mode: S=4 against S=1 on the same
//       workload (also bit-identical), recording speedup_vs_one_shard.
//       The container CI runs on has one hardware thread, so the meta
//       field hardware_threads is what makes the ratio interpretable.
//   scale    — hypercube 21..22 (2M–4M nodes), lazy mode: rows the
//       monolithic syndrome table was never built for. The row records the
//       largest single shard's row-store bytes against the CSR bytes the
//       monolith would have had to materialise (rss_below_monolithic_csr).
//
// Rows run ascending by size because peak RSS is process-cumulative.
//
// Not a google-benchmark binary, for the same reason as bench_hotpath and
// bench_scale: CI asserts the identity fields on images without the
// benchmark library.
//
//   bench_shard [--smoke] [--out FILE]
//
// --smoke shrinks to the hypercube 16 identity rows for CI (seconds);
// schema is identical.
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_json.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "distributed/sharded_diagnoser.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // kilobytes
#endif
#else
  return 0;
#endif
}

bool bit_identical(const DiagnosisResult& a, const DiagnosisResult& b) {
  return a.success == b.success && a.faults == b.faults &&
         a.failure_reason == b.failure_reason && a.lookups == b.lookups &&
         a.probes == b.probes &&
         a.certified_component == b.certified_component &&
         a.final_members == b.final_members &&
         a.final_rounds == b.final_rounds;
}

constexpr FaultyBehavior kBehaviors[] = {
    FaultyBehavior::kRandom, FaultyBehavior::kAllZero, FaultyBehavior::kAllOne,
    FaultyBehavior::kAntiDiagnostic};

FaultSet make_faults(std::size_t n, unsigned delta, std::size_t i) {
  Rng rng(0x5A4D + i * 2654435761ULL);
  return FaultSet(
      n, inject_uniform(
             n, (i * 7) % (static_cast<std::size_t>(delta) + 1), rng));
}

void print_row(const std::string& spec, const std::string& mode,
               unsigned shards, double seconds, std::uint64_t lookups,
               const std::string& verdict) {
  std::cout << std::left << std::setw(15) << spec << std::setw(10) << mode
            << std::right << std::setw(7) << shards << std::setw(11)
            << std::fixed << std::setprecision(2) << seconds << std::setw(14)
            << lookups << std::setw(12) << peak_rss_kb() << std::setw(11)
            << verdict << "\n";
}

int run(bool smoke, const std::string& out_path) {
  struct IdentityRow {
    std::string spec;
    unsigned shards;
  };
  const std::vector<IdentityRow> identity_rows =
      smoke ? std::vector<IdentityRow>{{"hypercube 16", 2}, {"hypercube 16", 4}}
            : std::vector<IdentityRow>{{"hypercube 16", 2},
                                       {"hypercube 16", 4},
                                       {"hypercube 17", 4},
                                       {"hypercube 18", 4}};
  const std::size_t syndromes = 2;

  JsonBenchReport report("bench_shard");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("syndromes_per_row", JsonValue::num(syndromes));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  std::cout << std::left << std::setw(15) << "topology" << std::setw(10)
            << "mode" << std::right << std::setw(7) << "shards"
            << std::setw(11) << "seconds" << std::setw(14) << "lookups"
            << std::setw(12) << "rss KB" << std::setw(11) << "verdict"
            << "\n";

  bool all_identical = true;

  // ---- identity rows: table-mode shards vs the monolith -------------------
  for (const IdentityRow& row : identity_rows) {
    const std::shared_ptr<const Topology> topo =
        make_topology_from_spec(row.spec);
    const auto info = topo->info();
    const unsigned delta = topo->default_fault_bound();
    const Graph graph = topo->build_graph();

    // One certified partition, adopted by both engines, so the comparison
    // covers the run and not the calibration. validate_all=false as in
    // bench_scale (hypercube halves are isomorphic). The monolith runs its
    // final pass under kSpread too — the sharded engine rejects
    // kLeastFirst, the one rule whose scan is order-serial.
    const CertifiedPartition partition = find_certified_partition(
        *topo, graph, delta, ParentRule::kSpread, /*validate_all=*/false);
    DiagnoserOptions mono_options;
    mono_options.final_rule = ParentRule::kSpread;
    Diagnoser mono(graph, partition, mono_options);
    ShardedOptions sharded_options;
    sharded_options.shards = row.shards;
    ShardedDiagnoser sharded(topo, partition, sharded_options);

    bool identical = true;
    std::uint64_t mono_lookups = 0;
    std::uint64_t sharded_lookups = 0;
    double mono_seconds = 0;
    double sharded_seconds = 0;
    for (std::size_t i = 0; i < syndromes; ++i) {
      const FaultSet faults = make_faults(info.num_nodes, delta, i);
      const Syndrome syndrome =
          generate_syndrome(graph, faults, kBehaviors[i % 4], i);
      const TableOracle oracle(graph, syndrome);
      const Timer mono_timer;
      const DiagnosisResult mono_r = mono.diagnose(oracle);
      mono_seconds += mono_timer.seconds();
      const Timer sharded_timer;
      const DiagnosisResult sharded_r = sharded.diagnose(syndrome);
      sharded_seconds += sharded_timer.seconds();
      // The lazy (computed-row) path must land on the same bits the table
      // served — it recomputes the rows from the hidden fault set instead
      // of copying them out of the syndrome.
      const DiagnosisResult lazy_r =
          sharded.diagnose(faults, kBehaviors[i % 4], i);
      mono_lookups += mono_r.lookups;
      sharded_lookups += sharded_r.lookups;
      if (!bit_identical(mono_r, sharded_r) ||
          !bit_identical(mono_r, lazy_r)) {
        identical = false;
        std::cerr << "FAIL: " << row.spec << " S=" << row.shards
                  << " syndrome " << i
                  << " diverged from the monolithic engine\n";
      }
    }
    all_identical = all_identical && identical;

    const ShardedRunStats stats = sharded.last_stats();
    const std::uint64_t csr_bytes = graph.memory_bytes();
    const std::uint64_t rss_kb = peak_rss_kb();
    report.add_result({
        {"mode", JsonValue::str("identity")},
        {"topology", JsonValue::str(row.spec)},
        {"family", JsonValue::str(info.family)},
        {"nodes", JsonValue::num(info.num_nodes)},
        {"degree", JsonValue::num(info.degree)},
        {"delta", JsonValue::num(delta)},
        {"shards", JsonValue::num(row.shards)},
        {"syndromes", JsonValue::num(syndromes)},
        {"identical_to_monolithic", JsonValue::boolean(identical)},
        {"lookups_identical",
         JsonValue::boolean(identical && mono_lookups == sharded_lookups)},
        {"monolithic_lookups", JsonValue::num(mono_lookups)},
        {"sharded_lookups", JsonValue::num(sharded_lookups)},
        {"monolithic_seconds", JsonValue::num(mono_seconds)},
        {"sharded_seconds", JsonValue::num(sharded_seconds)},
        {"halo_blocks_exchanged", JsonValue::num(stats.halo_blocks_exchanged)},
        {"closed_form_halo", JsonValue::boolean(stats.closed_form_halo)},
        {"max_shard_store_bytes", JsonValue::num(stats.max_store_bytes)},
        {"total_store_bytes", JsonValue::num(stats.total_store_bytes)},
        {"monolithic_csr_bytes", JsonValue::num(csr_bytes)},
        {"store_below_monolithic_csr",
         JsonValue::boolean(stats.max_store_bytes < csr_bytes)},
        {"peak_rss_kb", JsonValue::num(rss_kb)},
    });
    print_row(row.spec, "identity", row.shards, sharded_seconds,
              sharded_lookups, identical ? "identical" : "DIVERGED");
  }

  // ---- speedup row: lazy S=4 against S=1 on the same workload -------------
  if (!smoke) {
    const std::string spec = "hypercube 18";
    const std::shared_ptr<const Topology> topo = make_topology_from_spec(spec);
    const auto info = topo->info();
    const unsigned delta = topo->default_fault_bound();
    const ImplicitGraph view(*topo);
    const CertifiedPartition partition = find_certified_partition(
        *topo, view, delta, ParentRule::kSpread, /*validate_all=*/false);

    double seconds_by_shards[2] = {0, 0};
    std::uint64_t lookups_by_shards[2] = {0, 0};
    bool identical = true;
    std::vector<DiagnosisResult> one_shard_results(syndromes);
    for (int pass = 0; pass < 2; ++pass) {
      ShardedOptions sharded_options;
      sharded_options.shards = pass == 0 ? 1 : 4;
      ShardedDiagnoser engine(topo, partition, sharded_options);
      const Timer timer;
      for (std::size_t i = 0; i < syndromes; ++i) {
        const FaultSet faults = make_faults(info.num_nodes, delta, i);
        const DiagnosisResult r =
            engine.diagnose(faults, kBehaviors[i % 4], i);
        lookups_by_shards[pass] += r.lookups;
        if (pass == 0) {
          one_shard_results[i] = r;
        } else if (!bit_identical(one_shard_results[i], r)) {
          identical = false;
          std::cerr << "FAIL: " << spec << " syndrome " << i
                    << " diverged between 1 and 4 shards\n";
        }
      }
      seconds_by_shards[pass] = timer.seconds();
    }
    all_identical = all_identical && identical;

    report.add_result({
        {"mode", JsonValue::str("speedup")},
        {"topology", JsonValue::str(spec)},
        {"family", JsonValue::str(info.family)},
        {"nodes", JsonValue::num(info.num_nodes)},
        {"degree", JsonValue::num(info.degree)},
        {"delta", JsonValue::num(delta)},
        {"shards", JsonValue::num(4)},
        {"syndromes", JsonValue::num(syndromes)},
        {"identical_to_one_shard", JsonValue::boolean(identical)},
        {"lookups_identical",
         JsonValue::boolean(identical &&
                            lookups_by_shards[0] == lookups_by_shards[1])},
        {"one_shard_seconds", JsonValue::num(seconds_by_shards[0])},
        {"sharded_seconds", JsonValue::num(seconds_by_shards[1])},
        {"speedup_vs_one_shard",
         JsonValue::num(seconds_by_shards[1] > 0
                            ? seconds_by_shards[0] / seconds_by_shards[1]
                            : 0.0)},
        {"hardware_threads",
         JsonValue::num(std::thread::hardware_concurrency())},
        {"peak_rss_kb", JsonValue::num(peak_rss_kb())},
    });
    print_row(spec, "speedup", 4, seconds_by_shards[1], lookups_by_shards[1],
              identical ? "identical" : "DIVERGED");
  }

  // ---- scale rows: lazy multi-million-node solves -------------------------
  if (!smoke) {
    for (const std::string spec : {"hypercube 21", "hypercube 22"}) {
      const std::shared_ptr<const Topology> topo =
          make_topology_from_spec(spec);
      const auto info = topo->info();
      const unsigned delta = topo->default_fault_bound();
      const ImplicitGraph view(*topo);
      const Timer cal_timer;
      const CertifiedPartition partition = find_certified_partition(
          *topo, view, delta, ParentRule::kSpread, /*validate_all=*/false);
      const double calibration_seconds = cal_timer.seconds();

      ShardedOptions sharded_options;
      sharded_options.shards = 8;
      ShardedDiagnoser engine(topo, partition, sharded_options);

      const FaultSet faults = make_faults(info.num_nodes, delta, 1);
      const Timer solve_timer;
      const DiagnosisResult r =
          engine.diagnose(faults, FaultyBehavior::kRandom, 1);
      const double solve_seconds = solve_timer.seconds();
      if (!r.success) {
        all_identical = false;
        std::cerr << "FAIL: " << spec << " sharded solve failed: "
                  << r.failure_reason << "\n";
      }

      const ShardedRunStats stats = engine.last_stats();
      const std::uint64_t csr_estimate = view.csr_bytes_estimate();
      report.add_result({
          {"mode", JsonValue::str("scale")},
          {"topology", JsonValue::str(spec)},
          {"family", JsonValue::str(info.family)},
          {"nodes", JsonValue::num(info.num_nodes)},
          {"degree", JsonValue::num(info.degree)},
          {"delta", JsonValue::num(delta)},
          {"shards", JsonValue::num(8)},
          {"diagnose_success", JsonValue::boolean(r.success)},
          {"faults_injected", JsonValue::num(faults.nodes().size())},
          {"lookups", JsonValue::num(r.lookups)},
          {"calibration_seconds", JsonValue::num(calibration_seconds)},
          {"solve_seconds", JsonValue::num(solve_seconds)},
          {"halo_blocks_exchanged",
           JsonValue::num(stats.halo_blocks_exchanged)},
          {"closed_form_halo", JsonValue::boolean(stats.closed_form_halo)},
          {"max_shard_store_bytes", JsonValue::num(stats.max_store_bytes)},
          {"total_store_bytes", JsonValue::num(stats.total_store_bytes)},
          {"monolithic_csr_bytes_estimate", JsonValue::num(csr_estimate)},
          {"rss_below_monolithic_csr",
           JsonValue::boolean(stats.max_store_bytes < csr_estimate)},
          {"peak_rss_kb", JsonValue::num(peak_rss_kb())},
      });
      print_row(spec, "scale", 8, solve_seconds, r.lookups,
                r.success ? "solved" : "FAILED");
    }
  }

  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!all_identical) {
    std::cerr << "FAIL: the sharded engine diverged from the monolith\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_shard.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_shard [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return mmdiag::bench::run(smoke, out_path);
}
