// JSON bench reporting — the machine-readable BENCH_*.json artefacts that
// track the perf trajectory across PRs. Values are pre-encoded: JsonValue
// holds finished JSON text, so composition is string concatenation and the
// writer cannot emit structurally invalid output.
//
// Split out of bench_util.hpp so benches that do not use google-benchmark
// (bench_batch-style sweep drivers, bench_hotpath) can report without
// pulling in the benchmark library.
#pragma once

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace mmdiag::bench {

struct JsonValue {
  std::string raw;  // already-encoded JSON

  static JsonValue str(const std::string& s) {
    std::string out = "\"";
    for (const char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    out += '"';
    return {out};
  }
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  static JsonValue num(T v) {
    return {std::to_string(v)};
  }
  static JsonValue num(double v) {
    if (!std::isfinite(v)) return {"null"};
    std::ostringstream os;
    os.precision(12);
    os << v;
    return {os.str()};
  }
  static JsonValue boolean(bool v) { return {v ? "true" : "false"}; }
};

using JsonField = std::pair<std::string, JsonValue>;

inline JsonValue json_object(const std::vector<JsonField>& fields) {
  std::string out = "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out += ", ";
    out += JsonValue::str(fields[i].first).raw;
    out += ": ";
    out += fields[i].second.raw;
  }
  out += '}';
  return {out};
}

inline JsonValue json_array(const std::vector<JsonValue>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += items[i].raw;
  }
  out += ']';
  return {out};
}

/// Accumulates one result record per measured configuration and writes
///   { "bench": <name>, "schema_version": 1, <meta...>, "results": [...] }
/// pretty-printed one record per line, so diffs of BENCH_*.json stay
/// reviewable across perf PRs.
class JsonBenchReport {
 public:
  explicit JsonBenchReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void set_meta(const std::string& key, JsonValue value) {
    meta_.emplace_back(key, std::move(value));
  }

  void add_result(std::vector<JsonField> fields) {
    results_.push_back(json_object(fields));
  }

  [[nodiscard]] std::size_t num_results() const noexcept {
    return results_.size();
  }

  void write(std::ostream& os) const {
    os << "{\n  \"bench\": " << JsonValue::str(bench_name_).raw << ",\n"
       << "  \"schema_version\": 1,\n";
    for (const auto& [key, value] : meta_) {
      os << "  " << JsonValue::str(key).raw << ": " << value.raw << ",\n";
    }
    os << "  \"results\": [";
    for (std::size_t i = 0; i < results_.size(); ++i) {
      os << (i ? ",\n    " : "\n    ") << results_[i].raw;
    }
    os << "\n  ]\n}\n";
  }

  /// Returns false (and reports on stderr) if the file cannot be written.
  bool write_file(const std::string& path) const {
    std::ofstream os(path);
    if (!os) {
      std::cerr << "cannot write " << path << "\n";
      return false;
    }
    write(os);
    return os.good();
  }

 private:
  std::string bench_name_;
  std::vector<JsonField> meta_;
  std::vector<JsonValue> results_;
};

}  // namespace mmdiag::bench
