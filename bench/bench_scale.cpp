// Scale benchmark: diagnosis far past where a materialised CSR graph is
// comfortable, driven entirely through ImplicitGraph's closed-form
// adjacency and the lazy oracle (no syndrome table either — tests are
// computed on consultation). The point of the row set is the memory
// column: hypercube 20 (2^20 nodes, ~21M directed edges) diagnoses in a
// peak RSS dominated by the solver's O(N)-bit scratch, not by edges.
//
// Where the CSR fits in memory (n <= 18 here), the same workload also runs
// through the materialised graph and every row asserts bit-identity —
// faults, failure strings, probes AND look-up counts — between the two
// views; a divergence fails the run. Larger rows carry csr_checked=false
// and report the estimated CSR bytes they never allocated.
//
// Not a google-benchmark binary, for the same reason as bench_hotpath: CI
// asserts the equivalence fields on images without the benchmark library.
//
//   bench_scale [--smoke] [--out FILE]
//
// --smoke shrinks to hypercube 16 for CI (seconds); schema is identical.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "bench_json.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<std::uint64_t>(usage.ru_maxrss) / 1024;  // bytes
#else
  return static_cast<std::uint64_t>(usage.ru_maxrss);  // kilobytes
#endif
#else
  return 0;
#endif
}

bool bit_identical(const DiagnosisResult& a, const DiagnosisResult& b) {
  return a.success == b.success && a.faults == b.faults &&
         a.failure_reason == b.failure_reason && a.lookups == b.lookups &&
         a.probes == b.probes &&
         a.certified_component == b.certified_component &&
         a.final_members == b.final_members &&
         a.final_rounds == b.final_rounds;
}

struct ScaleRow {
  std::string spec;
  bool csr_check = false;  // also run the materialised graph and compare
};

int run(bool smoke, const std::string& out_path) {
  // Ascending so the peak-RSS column of each row is not inflated by a
  // bigger instance that ran before it. The CSR cross-check is capped at
  // n = 18 (~40 MB of adjacency) to keep the run minutes, not hours.
  const std::vector<ScaleRow> rows =
      smoke ? std::vector<ScaleRow>{{"hypercube 16", true}}
            : std::vector<ScaleRow>{{"hypercube 16", true},
                                    {"hypercube 17", true},
                                    {"hypercube 18", true},
                                    {"hypercube 19", false},
                                    {"hypercube 20", false}};
  const std::size_t syndromes = smoke ? 2 : 4;

  JsonBenchReport report("bench_scale");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("syndromes_per_row", JsonValue::num(syndromes));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  std::cout << std::left << std::setw(15) << "topology" << std::right
            << std::setw(10) << "nodes" << std::setw(7) << "delta"
            << std::setw(10) << "syn/s" << std::setw(14) << "lookups/syn"
            << std::setw(12) << "impl bytes" << std::setw(14) << "csr bytes"
            << std::setw(10) << "rss KB" << std::setw(9) << "csr-ok"
            << "\n";

  bool all_identical = true;
  for (const ScaleRow& row : rows) {
    const auto topo = make_topology_from_spec(row.spec);
    const auto info = topo->info();
    const unsigned delta = topo->default_fault_bound();
    const ImplicitGraph view(*topo);

    // Calibration through the implicit view: the certification walk runs
    // without a single edge being materialised. validate_all=false on BOTH
    // sides (hypercube halves are isomorphic), so the look-up accounting
    // below is comparable between the views.
    const Timer cal_timer;
    const CertifiedPartition partition = find_certified_partition(
        *topo, view, delta, ParentRule::kSpread, /*validate_all=*/false);
    const double calibration_seconds = cal_timer.seconds();

    Diagnoser diagnoser(view, partition, DiagnoserOptions{});

    // Deterministic workload: fault counts cycle 0..delta, mixed faulty
    // behaviours, one lazy oracle per syndrome on each side.
    constexpr FaultyBehavior kBehaviors[] = {
        FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
        FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
    std::vector<FaultSet> faults;
    faults.reserve(syndromes);
    for (std::size_t i = 0; i < syndromes; ++i) {
      Rng rng(0x407947 + i * 2654435761ULL);
      faults.emplace_back(
          view.num_nodes(),
          inject_uniform(view.num_nodes(),
                         (i * 7) % (static_cast<std::size_t>(delta) + 1),
                         rng));
    }

    std::vector<DiagnosisResult> implicit_results(syndromes);
    const Timer solve_timer;
    for (std::size_t i = 0; i < syndromes; ++i) {
      const ImplicitLazyOracle oracle(view, faults[i], kBehaviors[i % 4], i);
      implicit_results[i] = diagnoser.diagnose(oracle);
    }
    const double implicit_seconds = solve_timer.seconds();

    std::uint64_t total_lookups = 0;
    std::size_t succeeded = 0;
    for (const DiagnosisResult& r : implicit_results) {
      total_lookups += r.lookups;
      succeeded += r.success ? 1 : 0;
    }

    bool identical = true;
    std::uint64_t csr_bytes = view.csr_bytes_estimate();
    if (row.csr_check) {
      const Graph graph = topo->build_graph();
      csr_bytes = graph.memory_bytes();
      const CertifiedPartition csr_partition = find_certified_partition(
          *topo, graph, delta, ParentRule::kSpread, /*validate_all=*/false);
      Diagnoser csr_diagnoser(graph, csr_partition, DiagnoserOptions{});
      for (std::size_t i = 0; i < syndromes; ++i) {
        const LazyOracle oracle(graph, faults[i], kBehaviors[i % 4], i);
        if (!bit_identical(csr_diagnoser.diagnose(oracle),
                           implicit_results[i])) {
          identical = false;
          std::cerr << "FAIL: " << row.spec << " syndrome " << i
                    << " diverged between the implicit and CSR views\n";
        }
      }
      if (csr_partition.calibration_lookups != partition.calibration_lookups) {
        identical = false;
        std::cerr << "FAIL: " << row.spec
                  << " calibration look-ups diverged between the views\n";
      }
      all_identical = all_identical && identical;
    }

    const double syn_per_sec =
        implicit_seconds > 0
            ? static_cast<double>(syndromes) / implicit_seconds
            : 0;
    const double lookups_per_syndrome =
        static_cast<double>(total_lookups) / static_cast<double>(syndromes);
    const std::uint64_t rss_kb = peak_rss_kb();

    report.add_result({
        {"topology", JsonValue::str(row.spec)},
        {"family", JsonValue::str(info.family)},
        {"nodes", JsonValue::num(info.num_nodes)},
        {"degree", JsonValue::num(info.degree)},
        {"delta", JsonValue::num(delta)},
        {"syndromes", JsonValue::num(syndromes)},
        {"succeeded", JsonValue::num(succeeded)},
        {"calibration_seconds", JsonValue::num(calibration_seconds)},
        {"implicit_seconds", JsonValue::num(implicit_seconds)},
        {"implicit_syn_per_sec", JsonValue::num(syn_per_sec)},
        {"lookups_per_syndrome", JsonValue::num(lookups_per_syndrome)},
        {"implicit_bytes", JsonValue::num(view.memory_bytes())},
        {"csr_bytes", JsonValue::num(csr_bytes)},
        {"csr_bytes_is_estimate", JsonValue::boolean(!row.csr_check)},
        {"peak_rss_kb", JsonValue::num(rss_kb)},
        {"csr_checked", JsonValue::boolean(row.csr_check)},
        {"identical_to_csr", JsonValue::boolean(row.csr_check && identical)},
    });

    std::cout << std::left << std::setw(15) << row.spec << std::right
              << std::setw(10) << info.num_nodes << std::setw(7) << delta
              << std::setw(10) << std::fixed << std::setprecision(2)
              << syn_per_sec << std::setw(14)
              << static_cast<std::uint64_t>(lookups_per_syndrome)
              << std::setw(12) << view.memory_bytes() << std::setw(14)
              << csr_bytes << std::setw(10) << rss_kb << std::setw(9)
              << (row.csr_check ? (identical ? "yes" : "NO") : "-") << "\n";
  }

  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!all_identical) {
    std::cerr << "FAIL: the implicit view diverged from the CSR view\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_scale [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return mmdiag::bench::run(smoke, out_path);
}
