// Per-model throughput: the same instance diagnosed under MM*, PMC and
// BGM global solves, plus the BGM local-diagnosis fast path, one JSON row
// each. The point of the row set is the last column pair: a local request
// answers from the node's 2-ball (per-request look-ups bounded by
// 2·d(u) + Σ_{v ∈ N(u)} (d(v) − 1) — asserted per request, a violation
// fails the run) and lands orders of magnitude above the global solves in
// requests/sec, which is why the engine serves it ahead of full solves.
//
// Not a google-benchmark binary, for the same reason as bench_hotpath and
// bench_scale: CI asserts the bound fields on images without the benchmark
// library.
//
//   bench_models [--smoke] [--out FILE]
//
// --smoke shrinks to hypercube 8 for CI (seconds); schema is identical.
#include <cstdint>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "core/directed_diagnoser.hpp"
#include "mm/behavior.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"
#include "util/enum_names.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

constexpr FaultyBehavior kBehaviors[] = {
    FaultyBehavior::kRandom, FaultyBehavior::kAllZero, FaultyBehavior::kAllOne,
    FaultyBehavior::kAntiDiagnostic};

/// The 2-ball arc count of u — the documented per-request ceiling of
/// bgm_local_diagnose.
std::uint64_t local_lookup_bound(const Graph& g, Node u) {
  std::uint64_t bound = 2ULL * g.degree(u);
  for (const Node v : g.neighbors(u)) bound += g.degree(v) - 1;
  return bound;
}

struct RowStats {
  double seconds = 0;
  double ops_per_sec = 0;
  double lookups_per_op = 0;
  std::size_t succeeded = 0;
};

void print_row(const std::string& spec, const std::string& model,
               const std::string& mode, std::size_t ops, const RowStats& s) {
  std::cout << std::left << std::setw(15) << spec << std::setw(9) << model
            << std::setw(8) << mode << std::right << std::setw(9) << ops
            << std::setw(12) << std::fixed << std::setprecision(1)
            << s.ops_per_sec << std::setw(14)
            << static_cast<std::uint64_t>(s.lookups_per_op) << std::setw(11)
            << s.succeeded << "\n";
}

int run(bool smoke, const std::string& out_path) {
  const std::vector<std::string> specs =
      smoke ? std::vector<std::string>{"hypercube 8"}
            : std::vector<std::string>{"hypercube 8", "hypercube 10",
                                       "hypercube 12"};
  const std::size_t syndromes = smoke ? 4 : 16;

  JsonBenchReport report("bench_models");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("syndromes_per_row", JsonValue::num(syndromes));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  std::cout << std::left << std::setw(15) << "topology" << std::setw(9)
            << "model" << std::setw(8) << "mode" << std::right << std::setw(9)
            << "ops" << std::setw(12) << "ops/s" << std::setw(14)
            << "lookups/op" << std::setw(11) << "succeeded"
            << "\n";

  bool bound_ok = true;
  for (const std::string& spec : specs) {
    const auto topo = make_topology_from_spec(spec);
    const auto info = topo->info();
    const unsigned delta = topo->default_fault_bound();
    const Graph graph = topo->build_graph();

    // One deterministic workload shared by every model row: fault counts
    // cycle 0..delta, faulty behaviours rotate per syndrome.
    std::vector<FaultSet> faults;
    faults.reserve(syndromes);
    for (std::size_t i = 0; i < syndromes; ++i) {
      Rng rng(0xB0DE15 + i * 2654435761ULL);
      faults.emplace_back(
          graph.num_nodes(),
          inject_uniform(graph.num_nodes(),
                         (i * 7) % (static_cast<std::size_t>(delta) + 1),
                         rng));
    }

    auto add_global_row = [&](DiagnosisModel model, const RowStats& s) {
      report.add_result({
          {"topology", JsonValue::str(spec)},
          {"family", JsonValue::str(info.family)},
          {"nodes", JsonValue::num(info.num_nodes)},
          {"degree", JsonValue::num(info.degree)},
          {"delta", JsonValue::num(delta)},
          {"model", JsonValue::str(diagnosis_model_to_string(model))},
          {"mode", JsonValue::str("global")},
          {"syndromes", JsonValue::num(syndromes)},
          {"succeeded", JsonValue::num(s.succeeded)},
          {"seconds", JsonValue::num(s.seconds)},
          {"syn_per_sec", JsonValue::num(s.ops_per_sec)},
          {"lookups_per_syndrome", JsonValue::num(s.lookups_per_op)},
      });
      print_row(spec, diagnosis_model_to_string(model), "global", syndromes,
                s);
    };

    // MM* global: the comparator-matrix driver over its certified partition.
    {
      const CertifiedPartition partition = find_certified_partition(
          *topo, graph, delta, ParentRule::kSpread, /*validate_all=*/false);
      Diagnoser diagnoser(graph, partition, DiagnoserOptions{});
      RowStats s;
      std::uint64_t lookups = 0;
      const Timer timer;
      for (std::size_t i = 0; i < syndromes; ++i) {
        const LazyOracle oracle(graph, faults[i], kBehaviors[i % 4], i);
        const DiagnosisResult r = diagnoser.diagnose(oracle);
        lookups += r.lookups;
        s.succeeded += r.success ? 1 : 0;
      }
      s.seconds = timer.seconds();
      s.ops_per_sec = s.seconds > 0
                          ? static_cast<double>(syndromes) / s.seconds
                          : 0;
      s.lookups_per_op = static_cast<double>(lookups) /
                         static_cast<double>(syndromes);
      add_global_row(DiagnosisModel::kMMStar, s);
    }

    // PMC and BGM global: the directed deduction-first driver.
    double bgm_global_syn_per_sec = 0;
    for (const DiagnosisModel model :
         {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
      DirectedDiagnoser diagnoser(graph, delta);
      RowStats s;
      std::uint64_t lookups = 0;
      const Timer timer;
      for (std::size_t i = 0; i < syndromes; ++i) {
        const DirectedLazyOracle oracle(graph, faults[i], model,
                                        kBehaviors[i % 4], i);
        const DiagnosisResult r = diagnoser.diagnose(oracle);
        lookups += r.lookups;
        s.succeeded += r.success ? 1 : 0;
      }
      s.seconds = timer.seconds();
      s.ops_per_sec = s.seconds > 0
                          ? static_cast<double>(syndromes) / s.seconds
                          : 0;
      s.lookups_per_op = static_cast<double>(lookups) /
                         static_cast<double>(syndromes);
      if (model == DiagnosisModel::kBGM) bgm_global_syn_per_sec = s.ops_per_sec;
      add_global_row(model, s);
    }

    // BGM local diagnosis: one request per node per syndrome, every request
    // checked against the 2-ball look-up ceiling.
    {
      const std::size_t requests = syndromes * info.num_nodes;
      RowStats s;
      std::uint64_t lookups = 0;
      std::uint64_t max_request_lookups = 0;
      std::size_t definite = 0;
      bool within = true;
      const Timer timer;
      for (std::size_t i = 0; i < syndromes; ++i) {
        const DirectedLazyOracle oracle(graph, faults[i],
                                        DiagnosisModel::kBGM,
                                        kBehaviors[i % 4], i);
        for (Node u = 0; u < graph.num_nodes(); ++u) {
          const LocalDiagnosisResult r = bgm_local_diagnose(graph, oracle, u);
          lookups += r.lookups;
          if (r.lookups > max_request_lookups) max_request_lookups = r.lookups;
          if (r.lookups > local_lookup_bound(graph, u)) within = false;
          definite += r.status != LocalDiagnosisStatus::kUnknown ? 1 : 0;
        }
      }
      s.seconds = timer.seconds();
      s.ops_per_sec = s.seconds > 0
                          ? static_cast<double>(requests) / s.seconds
                          : 0;
      s.lookups_per_op = static_cast<double>(lookups) /
                         static_cast<double>(requests);
      s.succeeded = definite;
      if (!within) {
        std::cerr << "FAIL: " << spec
                  << " local request exceeded its 2-ball look-up bound\n";
        bound_ok = false;
      }
      // Every node has the same degree here, so one bound covers all rows.
      const std::uint64_t bound = local_lookup_bound(graph, 0);
      report.add_result({
          {"topology", JsonValue::str(spec)},
          {"family", JsonValue::str(info.family)},
          {"nodes", JsonValue::num(info.num_nodes)},
          {"degree", JsonValue::num(info.degree)},
          {"delta", JsonValue::num(delta)},
          {"model", JsonValue::str(
               diagnosis_model_to_string(DiagnosisModel::kBGM))},
          {"mode", JsonValue::str("local")},
          {"requests", JsonValue::num(requests)},
          {"definite", JsonValue::num(definite)},
          {"seconds", JsonValue::num(s.seconds)},
          {"requests_per_sec", JsonValue::num(s.ops_per_sec)},
          {"lookups_per_request", JsonValue::num(s.lookups_per_op)},
          {"max_request_lookups", JsonValue::num(max_request_lookups)},
          {"lookup_bound", JsonValue::num(bound)},
          {"within_lookup_bound", JsonValue::boolean(within)},
          {"speedup_vs_global_solve",
           JsonValue::num(bgm_global_syn_per_sec > 0
                              ? s.ops_per_sec / bgm_global_syn_per_sec
                              : 0.0)},
      });
      print_row(spec, "bgm", "local", requests, s);
    }
  }

  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!bound_ok) {
    std::cerr << "FAIL: a local request exceeded its look-up bound\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_models.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_models [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return mmdiag::bench::run(smoke, out_path);
}
