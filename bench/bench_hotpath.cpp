// Hot-path benchmark: per-syndrome solve throughput of the §5 driver,
// old-vs-new in the same binary over identical workloads, three modes per
// row:
//
//   baseline — Diagnoser::diagnose_baseline, the pre-optimisation
//       implementation preserved verbatim (per-pair virtual look-ups,
//       stamp-array membership, sorted vector frontiers, per-round parent
//       searches, per-run heap scratch). The virtual-dispatch baseline
//       every speedup is quoted against.
//   erased — the restructured hot path entered through the type-erased
//       SyndromeOracle& interface (still virtual per look-up, but bitmap
//       frontiers, bitset membership, mirror positions, reserves).
//   static — the same restructured path statically dispatched on the
//       concrete oracle type; TableOracle additionally serves whole
//       syndrome rows as single word reads.
//
// All three must report bit-identical faults AND bit-identical look-up
// counts on every row (§6's complexity is counted look-ups — the word
// reads change the physical access pattern, never the accounting); a row
// with identical_faults/identical_lookups false fails the run.
//
// Not a google-benchmark binary (and deliberately not linked against it):
// the measured unit is a whole syndrome batch per dispatch mode, and CI
// asserts the equivalence fields even on images without the benchmark
// library.
//
//   bench_hotpath [--smoke] [--out FILE] [--reps R]
//
// --smoke shrinks to tiny instances for CI (seconds); schema is identical.
#include <algorithm>
#include <iomanip>
#include <iostream>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

struct SweepConfig {
  std::string spec;
  std::size_t syndromes;
};

/// Deterministic mixed workload shared by every (rule, oracle) row of one
/// spec: fault counts cycle 0..delta and the faulty-tester behaviour
/// alternates, so both dispatch modes solve the same instant-certification,
/// deep-probing and boundary-heavy cases in the same order.
struct Workload {
  std::vector<FaultSet> faults;
  std::vector<Syndrome> syndromes;   // materialised for TableOracle rows
  std::vector<FaultyBehavior> behaviors;
};

Workload make_workload(const Graph& graph, std::size_t count, unsigned delta) {
  constexpr FaultyBehavior kBehaviors[] = {
      FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
      FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
  Workload w;
  w.faults.reserve(count);
  w.syndromes.reserve(count);
  w.behaviors.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0x407947 + i * 2654435761ULL);
    const std::size_t num_faults = i % (static_cast<std::size_t>(delta) + 1);
    w.faults.emplace_back(graph.num_nodes(),
                          inject_uniform(graph.num_nodes(), num_faults, rng));
    w.behaviors.push_back(kBehaviors[i % 4]);
    w.syndromes.push_back(
        generate_syndrome(graph, w.faults.back(), w.behaviors.back(), i));
  }
  return w;
}

struct RowMeasurement {
  double baseline_seconds = 0;
  double erased_seconds = 0;
  double static_seconds = 0;
  std::uint64_t total_lookups = 0;  // summed over the static pass
  std::size_t succeeded = 0;
  bool identical_faults = true;
  bool identical_lookups = true;
  bool identical_accounting = true;
};

/// Times the three dispatch modes over the same oracle sequence. `reps`
/// repeats each timed loop and keeps the fastest pass (the solver is
/// deterministic, so repetition only rejects scheduler noise).
template <class O>
RowMeasurement measure(Diagnoser& diagnoser, const std::vector<const O*>& oracles,
                       unsigned reps) {
  RowMeasurement m;
  std::vector<DiagnosisResult> base(oracles.size());
  std::vector<DiagnosisResult> erased(oracles.size());
  std::vector<DiagnosisResult> stat(oracles.size());
  (void)diagnoser.diagnose(*oracles[0]);  // touch caches / build scratch
  (void)diagnoser.diagnose_baseline(*oracles[0]);
  m.baseline_seconds = std::numeric_limits<double>::infinity();
  m.erased_seconds = std::numeric_limits<double>::infinity();
  m.static_seconds = std::numeric_limits<double>::infinity();
  for (unsigned rep = 0; rep < reps; ++rep) {
    Timer tb;
    for (std::size_t i = 0; i < oracles.size(); ++i) {
      base[i] = diagnoser.diagnose_baseline(*oracles[i]);
    }
    m.baseline_seconds = std::min(m.baseline_seconds, tb.seconds());
    Timer te;
    for (std::size_t i = 0; i < oracles.size(); ++i) {
      erased[i] =
          diagnoser.diagnose(static_cast<const SyndromeOracle&>(*oracles[i]));
    }
    m.erased_seconds = std::min(m.erased_seconds, te.seconds());
    Timer ts;
    for (std::size_t i = 0; i < oracles.size(); ++i) {
      stat[i] = diagnoser.diagnose(*oracles[i]);
    }
    m.static_seconds = std::min(m.static_seconds, ts.seconds());
  }
  for (std::size_t i = 0; i < oracles.size(); ++i) {
    const DiagnosisResult& b = base[i];
    const DiagnosisResult& e = erased[i];
    const DiagnosisResult& s = stat[i];
    m.total_lookups += s.lookups;
    m.succeeded += s.success ? 1 : 0;
    if (b.success != s.success || b.faults != s.faults ||
        b.failure_reason != s.failure_reason || e.success != s.success ||
        e.faults != s.faults || e.failure_reason != s.failure_reason) {
      m.identical_faults = false;
    }
    if (b.lookups != s.lookups || e.lookups != s.lookups) {
      m.identical_lookups = false;
    }
    if (b.probes != s.probes || e.probes != s.probes ||
        b.certified_component != s.certified_component ||
        e.certified_component != s.certified_component ||
        b.final_members != s.final_members ||
        e.final_members != s.final_members ||
        b.final_rounds != s.final_rounds || e.final_rounds != s.final_rounds) {
      m.identical_accounting = false;
    }
  }
  return m;
}

int run(bool smoke, const std::string& out_path, unsigned reps) {
  const std::vector<SweepConfig> configs =
      smoke ? std::vector<SweepConfig>{{"hypercube 7", 8}, {"star 5", 8}}
            : std::vector<SweepConfig>{{"hypercube 12", 240},
                                       {"hypercube 10", 400},
                                       {"star 7", 120},
                                       {"kary_ncube 4 4", 400},
                                       {"crossed_cube 9", 400}};

  JsonBenchReport report("bench_hotpath");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("reps", JsonValue::num(std::uint64_t{reps}));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  std::cout << std::left << std::setw(18) << "topology" << std::setw(13)
            << "rule" << std::setw(12) << "oracle" << std::right
            << std::setw(10) << "base/s" << std::setw(10) << "erased/s"
            << std::setw(10) << "static/s" << std::setw(9) << "speedup"
            << std::setw(11) << "identical" << "\n";

  bool all_identical = true;
  for (const SweepConfig& config : configs) {
    const auto topo = make_topology_from_spec(config.spec);
    const Graph graph = topo->build_graph();
    const unsigned delta = topo->default_fault_bound();
    const Workload workload = make_workload(graph, config.syndromes, delta);

    for (const ParentRule rule : kAllParentRules) {
      DiagnoserOptions options;
      options.rule = rule;
      CertifiedPartition partition;
      try {
        partition = find_certified_partition(*topo, graph, delta, rule);
      } catch (const DiagnosisUnsupportedError&) {
        std::cerr << "skip " << config.spec << " / " << to_string(rule)
                  << ": rule cannot certify this instance\n";
        continue;
      }
      Diagnoser diagnoser(graph, partition, options);

      for (const std::string kind : {"table", "lazy", "fault-free"}) {
        RowMeasurement m;
        if (kind == "table") {
          std::vector<TableOracle> oracles;
          oracles.reserve(workload.syndromes.size());
          for (const Syndrome& s : workload.syndromes) {
            oracles.emplace_back(graph, s);
          }
          std::vector<const TableOracle*> ptrs;
          ptrs.reserve(oracles.size());
          for (const TableOracle& o : oracles) ptrs.push_back(&o);
          m = measure(diagnoser, ptrs, reps);
        } else if (kind == "lazy") {
          std::vector<LazyOracle> oracles;
          oracles.reserve(workload.faults.size());
          for (std::size_t i = 0; i < workload.faults.size(); ++i) {
            oracles.emplace_back(graph, workload.faults[i],
                                 workload.behaviors[i], i);
          }
          std::vector<const LazyOracle*> ptrs;
          ptrs.reserve(oracles.size());
          for (const LazyOracle& o : oracles) ptrs.push_back(&o);
          m = measure(diagnoser, ptrs, reps);
        } else {
          // One all-healthy oracle serves every item: diagnose() resets the
          // counter per call and the loops are sequential.
          const FaultFreeOracle oracle(graph);
          std::vector<const FaultFreeOracle*> ptrs(config.syndromes, &oracle);
          m = measure(diagnoser, ptrs, reps);
        }

        const auto rate = [&](double seconds) {
          return seconds > 0 ? static_cast<double>(config.syndromes) / seconds
                             : 0;
        };
        const double base_rate = rate(m.baseline_seconds);
        const double erased_rate = rate(m.erased_seconds);
        const double stat_rate = rate(m.static_seconds);
        // The headline number: the devirtualised, word-granular path vs the
        // virtual-dispatch baseline implementation, same binary.
        const double speedup = base_rate > 0 ? stat_rate / base_rate : 0;
        const bool identical =
            m.identical_faults && m.identical_lookups && m.identical_accounting;
        all_identical = all_identical && identical;

        report.add_result({
            {"topology", JsonValue::str(config.spec)},
            {"family", JsonValue::str(topo->info().family)},
            {"nodes", JsonValue::num(graph.num_nodes())},
            {"delta", JsonValue::num(delta)},
            {"rule", JsonValue::str(to_string(rule))},
            {"oracle", JsonValue::str(kind)},
            {"syndromes", JsonValue::num(config.syndromes)},
            {"baseline_seconds", JsonValue::num(m.baseline_seconds)},
            {"erased_seconds", JsonValue::num(m.erased_seconds)},
            {"static_seconds", JsonValue::num(m.static_seconds)},
            {"baseline_syn_per_sec", JsonValue::num(base_rate)},
            {"erased_syn_per_sec", JsonValue::num(erased_rate)},
            {"static_syn_per_sec", JsonValue::num(stat_rate)},
            {"speedup_static_vs_virtual", JsonValue::num(speedup)},
            {"total_lookups", JsonValue::num(m.total_lookups)},
            {"succeeded", JsonValue::num(m.succeeded)},
            {"identical_faults", JsonValue::boolean(m.identical_faults)},
            {"identical_lookups", JsonValue::boolean(m.identical_lookups)},
            {"identical_accounting",
             JsonValue::boolean(m.identical_accounting)},
        });

        std::ostringstream spd;
        spd << std::fixed << std::setprecision(2) << speedup << "x";
        std::cout << std::left << std::setw(18) << config.spec << std::setw(13)
                  << to_string(rule) << std::setw(12) << kind << std::right
                  << std::setw(10) << static_cast<std::uint64_t>(base_rate)
                  << std::setw(10) << static_cast<std::uint64_t>(erased_rate)
                  << std::setw(10) << static_cast<std::uint64_t>(stat_rate)
                  << std::setw(9) << spd.str() << std::setw(11)
                  << (identical ? "yes" : "NO") << "\n";
      }
    }
  }

  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!all_identical) {
    std::cerr << "FAIL: the static-dispatch path diverged from the "
                 "virtual-dispatch path (faults, look-ups or accounting)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_hotpath.json";
  unsigned reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      reps = 1;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      const auto parsed = mmdiag::parse_unsigned(argv[++i], 1000);
      if (!parsed) {
        std::cerr << "bench_hotpath: --reps expects a decimal count, got '"
                  << argv[i] << "'\n";
        return 2;
      }
      reps = static_cast<unsigned>(*parsed);
    } else {
      std::cerr << "usage: bench_hotpath [--smoke] [--out FILE] [--reps R]\n";
      return 2;
    }
  }
  if (reps == 0) reps = 1;
  return mmdiag::bench::run(smoke, out_path, reps);
}
