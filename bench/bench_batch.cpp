// Batch-diagnosis throughput: many syndromes over one shared topology,
// swept across thread counts and three network families. Establishes the
// BENCH_batch.json baseline every later scaling PR is judged against.
//
// Not a google-benchmark binary: the measured unit is a whole batch (the
// production shape — BatchDiagnoser amortises one certified partition over
// the lot), so the sweep drives BatchDiagnoser directly and reports
// syndromes/second per (topology, threads) plus the speedup against the
// same batch at one thread. Every threaded run is checked bit-identical to
// the sequential Diagnoser before its row is recorded.
//
//   bench_batch [--smoke] [--out FILE] [--max-threads T]
//
// --smoke shrinks to tiny instances and {1,2} threads for CI (single
// iteration, a few seconds); the JSON schema is identical to a full run.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/batch_diagnoser.hpp"
#include "engine/calibration.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

struct SweepConfig {
  std::string spec;
  std::size_t syndromes;
};

constexpr FaultyBehavior kBehaviors[] = {
    FaultyBehavior::kRandom, FaultyBehavior::kAllZero, FaultyBehavior::kAllOne,
    FaultyBehavior::kAntiDiagnostic};

struct Batch {
  std::vector<FaultSet> faults;
  std::vector<LazyOracle> oracles;
  std::vector<const SyndromeOracle*> ptrs;
};

/// Deterministic mixed workload: fault counts cycle over 0..delta and the
/// faulty-tester behaviour alternates, so the batch exercises every driver
/// phase (instant certification, deep probing, failure-free boundaries).
Batch make_batch(const std::string& spec, std::size_t count, unsigned delta) {
  const auto& inst = instance(spec);
  Batch batch;
  batch.faults.reserve(count);
  batch.oracles.reserve(count);
  batch.ptrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng(0xBA7C4 + i * 1315423911ULL);
    const std::size_t num_faults = i % (static_cast<std::size_t>(delta) + 1);
    batch.faults.emplace_back(
        inst.graph.num_nodes(),
        inject_uniform(inst.graph.num_nodes(), num_faults, rng));
  }
  for (std::size_t i = 0; i < count; ++i) {
    batch.oracles.emplace_back(inst.graph, batch.faults[i],
                               kBehaviors[i % 4], /*seed=*/i);
  }
  for (const LazyOracle& o : batch.oracles) batch.ptrs.push_back(&o);
  return batch;
}

struct TableBatch {
  std::vector<Syndrome> syndromes;
  std::vector<TableOracle> oracles;
  std::vector<const SyndromeOracle*> ptrs;
};

/// The same deterministic workload materialised as syndrome tables — the
/// shape the bitsliced cohort path consumes (a LazyOracle has no rows to
/// transpose).
TableBatch make_table_batch(const std::string& spec, std::size_t count,
                            unsigned delta) {
  const auto& inst = instance(spec);
  const Batch shape = make_batch(spec, count, delta);
  TableBatch batch;
  batch.syndromes.reserve(count);
  batch.oracles.reserve(count);
  batch.ptrs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    batch.syndromes.push_back(generate_syndrome(inst.graph, shape.faults[i],
                                                kBehaviors[i % 4], /*seed=*/i));
  }
  for (const Syndrome& s : batch.syndromes) {
    batch.oracles.emplace_back(inst.graph, s);
  }
  for (const TableOracle& o : batch.oracles) batch.ptrs.push_back(&o);
  return batch;
}

bool identical(const std::vector<DiagnosisResult>& a,
               const std::vector<DiagnosisResult>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].success != b[i].success || a[i].faults != b[i].faults ||
        a[i].lookups != b[i].lookups) {
      return false;
    }
  }
  return true;
}

int run(bool smoke, const std::string& out_path, unsigned max_threads) {
  const std::vector<SweepConfig> configs =
      smoke ? std::vector<SweepConfig>{{"hypercube 7", 8},
                                       {"star 5", 8},
                                       {"kary_ncube 4 4", 8}}
            : std::vector<SweepConfig>{{"hypercube 10", 1000},
                                       {"hypercube 12", 400},
                                       {"star 6", 600},
                                       {"star 7", 200},
                                       {"kary_ncube 4 4", 800},
                                       {"kary_ncube 5 4", 600}};
  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  JsonBenchReport report("bench_batch");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  ExperimentTable::get().init(
      "Batch diagnosis throughput (BatchDiagnoser vs sequential Diagnoser)",
      {"topology", "threads", "syndromes", "syn_per_sec", "speedup_vs_1t",
       "lookups", "identical"});

  bool all_identical = true;
  for (const SweepConfig& config : configs) {
    const auto& inst = instance(config.spec);
    Diagnoser& seq = diagnoser(config.spec);
    const Batch batch = make_batch(config.spec, config.syndromes, seq.delta());

    // Sequential ground truth (also the conventional-deployment baseline:
    // one Diagnoser, one thread, no pool overhead).
    std::vector<DiagnosisResult> truth(batch.ptrs.size());
    Timer seq_timer;
    for (std::size_t i = 0; i < batch.ptrs.size(); ++i) {
      truth[i] = seq.diagnose(*batch.ptrs[i]);
    }
    const double seq_seconds = seq_timer.seconds();

    double one_thread_rate = 0;
    for (const unsigned threads : thread_counts) {
      // Engine-routed: the batch engine adopts the same cached calibration
      // the sequential baseline runs on.
      const auto batch_engine =
          engine().make_batch_diagnoser(config.spec, threads);
      const BatchResult result = batch_engine->diagnose_all(batch.ptrs);

      const bool same = identical(truth, result.results);
      all_identical = all_identical && same;
      const double rate =
          result.seconds > 0
              ? static_cast<double>(result.results.size()) / result.seconds
              : 0;
      if (threads == 1) one_thread_rate = rate;
      const double speedup = one_thread_rate > 0 ? rate / one_thread_rate : 0;

      report.add_result({
          {"topology", JsonValue::str(config.spec)},
          {"family", JsonValue::str(inst.topo->info().family)},
          {"nodes", JsonValue::num(inst.graph.num_nodes())},
          {"delta", JsonValue::num(batch_engine->delta())},
          {"syndromes", JsonValue::num(result.results.size())},
          {"threads", JsonValue::num(threads)},
          {"seconds", JsonValue::num(result.seconds)},
          {"syndromes_per_sec", JsonValue::num(rate)},
          {"sequential_seconds", JsonValue::num(seq_seconds)},
          {"total_lookups", JsonValue::num(result.total_lookups)},
          {"succeeded", JsonValue::num(result.succeeded)},
          {"speedup_vs_1t", JsonValue::num(speedup)},
          {"identical_to_sequential", JsonValue::boolean(same)},
      });
      ExperimentTable::get().add_row(
          {config.spec, Table::num(std::uint64_t{threads}),
           Table::num(std::uint64_t{result.results.size()}),
           Table::num(rate, 1), Table::num(speedup, 2),
           Table::num(result.total_lookups), same ? "yes" : "NO"});
    }

    // Bitsliced cohort solve vs the scalar static path: the identical
    // workload materialised as TableOracles, one thread each so the ratio
    // isolates the kernel (no pool effects). The syndrome count is floored
    // at 128 so full 64-wide cohorts actually form even under --smoke.
    {
      const std::size_t count = std::max<std::size_t>(config.syndromes, 128);
      const TableBatch tbatch =
          make_table_batch(config.spec, count, seq.delta());
      const auto cal = engine().calibration(config.spec);
      BatchOptions opts;
      opts.threads = 1;
      opts.bitsliced = false;
      BatchDiagnoser scalar_batch(graph_handle(cal), cal->partition, opts);
      opts.bitsliced = true;
      BatchDiagnoser sliced_batch(graph_handle(cal), cal->partition, opts);

      const BatchResult scalar_res = scalar_batch.diagnose_all(tbatch.ptrs);
      const BatchResult sliced_res = sliced_batch.diagnose_all(tbatch.ptrs);
      const bool same = identical(scalar_res.results, sliced_res.results);
      all_identical = all_identical && same;
      const double scalar_rate =
          scalar_res.seconds > 0 ? static_cast<double>(count) /
                                       scalar_res.seconds
                                 : 0;
      const double sliced_rate =
          sliced_res.seconds > 0 ? static_cast<double>(count) /
                                       sliced_res.seconds
                                 : 0;
      const double ratio = scalar_rate > 0 ? sliced_rate / scalar_rate : 0;

      report.add_result({
          {"topology", JsonValue::str(config.spec)},
          {"family", JsonValue::str(inst.topo->info().family)},
          {"nodes", JsonValue::num(inst.graph.num_nodes())},
          {"delta", JsonValue::num(seq.delta())},
          {"mode", JsonValue::str("sliced_vs_scalar")},
          {"syndromes", JsonValue::num(count)},
          {"threads", JsonValue::num(1)},
          {"cohort_width", JsonValue::num(BitSlicedOracle::kMaxLanes)},
          {"scalar_seconds", JsonValue::num(scalar_res.seconds)},
          {"sliced_seconds", JsonValue::num(sliced_res.seconds)},
          {"scalar_syndromes_per_sec", JsonValue::num(scalar_rate)},
          {"syndromes_per_sec", JsonValue::num(sliced_rate)},
          {"sliced_vs_scalar", JsonValue::num(ratio)},
          {"total_lookups", JsonValue::num(sliced_res.total_lookups)},
          {"identical_to_sequential", JsonValue::boolean(same)},
      });
      ExperimentTable::get().add_row(
          {config.spec + " [sliced]", Table::num(std::uint64_t{1}),
           Table::num(std::uint64_t{count}), Table::num(sliced_rate, 1),
           Table::num(ratio, 2), Table::num(sliced_res.total_lookups),
           same ? "yes" : "NO"});
    }
  }

  ExperimentTable::get().print(std::cout);
  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!all_identical) {
    std::cerr << "FAIL: a threaded batch diverged from the sequential "
                 "Diagnoser\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_batch.json";
  unsigned max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      max_threads = std::min(max_threads, 2u);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--max-threads" && i + 1 < argc) {
      max_threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: bench_batch [--smoke] [--out FILE] "
                   "[--max-threads T]\n";
      return 2;
    }
  }
  if (max_threads == 0) max_threads = 1;
  return mmdiag::bench::run(smoke, out_path, max_threads);
}
