// E5/E6 (Theorems 5 & 6): (n,k)-stars in O(n!·n/(n-k)!), star graphs as
// S_{n,n-1}, pancake graphs in O(n!·n). On star graphs we additionally run
// the Chiang-Tan baseline (the family their paper illustrates) — expected
// shape: comparable times, ours with far fewer syndrome look-ups.
#include "baselines/chiang_tan.hpp"
#include "bench_util.hpp"
#include "topology/star_graph.hpp"

namespace mmdiag::bench {
namespace {

struct Config {
  const char* spec;
  double work;  // the theorem's bound up to constants: N * degree-ish
};

double theorem_work(const std::string& spec) {
  const auto& inst = instance(spec);
  return static_cast<double>(inst.graph.num_nodes()) *
         inst.topo->info().degree;
}

void add_row(const std::string& name, const std::string& algorithm,
             std::uint64_t nodes, unsigned delta, double spo, double norm,
             const DiagnosisResult& result) {
  ExperimentTable::get().add_row(
      {name, algorithm, Table::num(nodes), Table::num(delta),
       Table::num(spo * 1e3, 3), Table::num(norm, 3),
       Table::num(result.lookups), result.success ? "yes" : "NO"});
}

void BM_Ours(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 29);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  state.counters["N"] = static_cast<double>(inst.graph.num_nodes());
  state.counters["t_norm_ns"] = spo * 1e9 / theorem_work(spec);
  add_row(inst.topo->info().name, "set_builder (ours)",
          inst.graph.num_nodes(), delta, spo, spo * 1e9 / theorem_work(spec),
          result);
}

void BM_ChiangTanStar(benchmark::State& state, unsigned n) {
  const std::string spec = "star " + std::to_string(n);
  const auto& inst = instance(spec);
  const StarGraph topo(n);
  const auto ct = ChiangTanDiagnoser::for_star_graph(topo, inst.graph);
  const FaultSet faults = make_faults(spec, n - 1);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 29);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = ct.diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  add_row(inst.topo->info().name, "chiang_tan", inst.graph.num_nodes(), n - 1,
          spo, spo * 1e9 / theorem_work(spec), result);
}

void register_all() {
  ExperimentTable::get().init(
      "E5+E6 / Theorems 5-6 — (n,k)-stars, stars, pancakes, |F| = delta",
      {"instance", "algorithm", "N", "delta", "time_ms", "ns_per_dN",
       "lookups", "success"});
  for (const char* spec :
       {"nk_star 6 3", "nk_star 7 4", "nk_star 8 5", "nk_star 9 4",
        "star 6", "star 7", "star 8", "pancake 6", "pancake 7", "pancake 8"}) {
    std::string name = spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_Ours, std::string(spec))
        ->Unit(benchmark::kMillisecond);
  }
  for (const unsigned n : {6u, 7u, 8u}) {
    benchmark::RegisterBenchmark(
        ("chiang_tan/star_" + std::to_string(n)).c_str(), BM_ChiangTanStar, n)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
