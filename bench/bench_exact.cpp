// E13 (ours): price of exactness without structure. The DPLL exact solver
// needs no partition, no connectivity assumption and no diagnosability
// theory — it just searches — but its cost grows super-linearly while the
// paper's driver stays O(Δ·N). This bench quantifies the gap and shows why
// the structural theory earns its keep even though propagation makes the
// solver far faster than naive enumeration.
#include "baselines/exact_solver.hpp"
#include "bench_util.hpp"

namespace mmdiag::bench {
namespace {

void BM_Exact(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  const unsigned delta = inst.topo->info().diagnosability;
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 51);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    ExactSolver solver(inst.graph, oracle, delta);
    result = solver.diagnose();
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  ExperimentTable::get().add_row(
      {inst.topo->info().name, "exact_dpll",
       Table::num(inst.graph.num_nodes()), Table::num(delta),
       Table::num(spo * 1e3, 3), Table::num(result.lookups),
       result.success ? "yes" : "NO"});
}

void BM_Driver(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const FaultSet faults = make_faults(spec, diag->delta());
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 51);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  ExperimentTable::get().add_row(
      {inst.topo->info().name, "set_builder (ours)",
       Table::num(inst.graph.num_nodes()), Table::num(diag->delta()),
       Table::num(spo * 1e3, 3), Table::num(result.lookups),
       result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E13 — structure-free exact search (DPLL) vs the structural driver",
      {"instance", "algorithm", "N", "delta", "time_ms", "lookups",
       "success"});
  for (const char* spec :
       {"hypercube 7", "hypercube 9", "hypercube 11", "star 6", "star 7"}) {
    std::string name = spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(("exact/" + name).c_str(), BM_Exact,
                                 std::string(spec))
        ->Unit(benchmark::kMillisecond);
    benchmark::RegisterBenchmark(("driver/" + name).c_str(), BM_Driver,
                                 std::string(spec))
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
