// E7 (Theorem 7): arrangement graphs A_{n,k} — diagnosis of up to n-1
// faults (the theorem's bound; the split yields only n components) in
// O(n!·k(n-k)/(n-k)!).
#include "bench_util.hpp"

namespace mmdiag::bench {
namespace {

void BM_Arrangement(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 31);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  const double work = static_cast<double>(inst.graph.num_nodes()) *
                      inst.topo->info().degree;
  state.counters["N"] = static_cast<double>(inst.graph.num_nodes());
  state.counters["t_norm_ns"] = spo * 1e9 / work;
  ExperimentTable::get().add_row(
      {inst.topo->info().name, Table::num(inst.graph.num_nodes()),
       Table::num(inst.topo->info().degree), Table::num(delta),
       Table::num(spo * 1e3, 3), Table::num(spo * 1e9 / work, 3),
       Table::num(result.lookups), result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E7 / Theorem 7 — arrangement graphs, |F| = n-1 (theorem bound)",
      {"instance", "N", "degree", "delta", "time_ms", "ns_per_dN", "lookups",
       "success"});
  for (const char* spec : {"arrangement 6 3", "arrangement 7 3",
                           "arrangement 7 4", "arrangement 8 3",
                           "arrangement 9 4", "arrangement 10 4"}) {
    std::string name = spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_Arrangement,
                                 std::string(spec))
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
