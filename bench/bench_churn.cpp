// Churn benchmark: warm incremental recertification + solve cache against
// cold full recalibration. Two row kinds share one schema (`mode`):
//
//   harness — generated hostile churn streams (removals, repairs, expected
//       errors, component kill) replayed through run_churn_stream, which
//       diffs the warm path against diagnose_cold() after every event. A
//       row records the bit-identity verdict plus the recertification work
//       ratio: components the incremental path actually recertified vs the
//       components cold recalibration re-derives across the same stream.
//   timed   — a fixed churned topology under syndrome churn: one fault
//       toggles in and out per round, and each round times
//       diagnose_delta(changed rows) against diagnose_cold() on the same
//       oracle, asserting identical() per round before the times count.
//
// Any bit-identity divergence fails the run; the full run additionally
// requires the headline warm-over-cold ratio to reach 10x (the committed
// BENCH_churn.json is the record of that claim).
//
// Not a google-benchmark binary, for the same reason as bench_hotpath and
// bench_shard: CI asserts the identity fields on images without the
// benchmark library.
//
//   bench_churn [--smoke] [--out FILE]
//
// --smoke shrinks to the small families for CI (seconds); schema is
// identical.
#include <algorithm>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.hpp"
#include "churn/churn_engine.hpp"
#include "churn/churn_stream.hpp"
#include "churn/harness.hpp"
#include "engine/engine.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

struct Family {
  std::string spec;
  unsigned delta;        // certifiable fault bound (0 = topology default)
  std::size_t events;    // harness stream length
  std::size_t rounds;    // timed fault-toggle rounds
};

struct RowStats {
  bool identical = true;
  double warm_over_cold = 0;
};

Table& table() {
  static Table t({"mode", "spec", "oracle", "events", "errs", "degraded",
                  "reuse", "warm_work", "cold_work", "warm_ms", "cold_ms",
                  "warm/cold", "identical"});
  return t;
}

/// Replay a generated hostile stream; the harness itself is the
/// differential checker, so `ok()` IS the per-event bit-identity verdict.
RowStats run_harness_row(DiagnosisEngine& engine, const Family& family,
                         std::uint64_t seed, bool use_table,
                         JsonBenchReport& report) {
  ChurnStreamConfig config;
  config.spec = family.spec;
  config.delta = family.delta;
  config.seed = seed;
  config.events = family.events;
  const ChurnStream stream = generate_churn_stream(engine, config);

  ChurnHarnessOptions options;
  options.use_table_oracle = use_table;
  Timer timer;
  const ChurnHarnessReport r = run_churn_stream(engine, stream, options);
  const double seconds = timer.seconds();

  const double work_ratio =
      r.warm_recert_components
          ? static_cast<double>(r.cold_recert_components) /
                static_cast<double>(r.warm_recert_components)
          : 0;
  report.add_result({
      {"mode", JsonValue::str("harness")},
      {"spec", JsonValue::str(family.spec)},
      {"delta", JsonValue::num(std::uint64_t{family.delta})},
      {"oracle", JsonValue::str(use_table ? "table" : "lazy")},
      {"seed", JsonValue::num(seed)},
      {"events", JsonValue::num(r.events)},
      {"topology_events", JsonValue::num(r.topology_events)},
      {"diagnose_events", JsonValue::num(r.diagnose_events)},
      {"delta_events", JsonValue::num(r.delta_events)},
      {"expected_errors", JsonValue::num(r.expected_errors)},
      {"degraded_components_seen", JsonValue::num(r.degraded_components_seen)},
      {"empty_components_seen", JsonValue::num(r.empty_components_seen)},
      {"cache_reuses", JsonValue::num(r.cache_reuses)},
      {"warm_recert_components", JsonValue::num(r.warm_recert_components)},
      {"cold_recert_components", JsonValue::num(r.cold_recert_components)},
      {"recert_work_ratio", JsonValue::num(work_ratio)},
      {"seconds", JsonValue::num(seconds)},
      {"divergences", JsonValue::num(r.divergences.size())},
      {"identical_warm_cold", JsonValue::boolean(r.ok())},
  });
  table().add_row({"harness", family.spec, use_table ? "table" : "lazy",
                   Table::num(r.events), Table::num(r.expected_errors),
                   Table::num(r.degraded_components_seen),
                   Table::num(r.cache_reuses),
                   Table::num(r.warm_recert_components),
                   Table::num(r.cold_recert_components), "-", "-",
                   Table::num(work_ratio, 1), r.ok() ? "yes" : "NO"});
  for (const std::string& d : r.divergences) {
    std::cerr << "DIVERGENCE [" << family.spec << " seed " << seed
              << "]: " << d << "\n";
  }
  return {r.ok(), work_ratio};
}

/// Syndrome churn on a lightly churned topology, timed warm vs cold on the
/// very same oracle each round. Two traffic shapes:
///   flip   — a fault toggles every round, so the warm path re-probes the
///            touched components and re-runs the global phase (worst case);
///   repeat — the syndrome never changes (steady-state monitoring), so the
///            warm path serves every round from the solve cache while cold
///            recertifies and re-solves everything from scratch.
enum class TimedTraffic { kFlip, kRepeat };

RowStats run_timed_row(DiagnosisEngine& engine, const Family& family,
                       TimedTraffic traffic, JsonBenchReport& report) {
  ChurnEngineOptions options;
  options.delta = family.delta;
  ChurnEngine churn(engine, family.spec, options);
  const Calibration& cal = churn.calibration();
  const std::size_t n = churn.overlay().num_nodes();

  // Light topology churn up front so the warm path works on a genuinely
  // churned state, not the pristine base: remove two high nodes, repair one.
  churn.apply({ChurnOp::kRemoveNode, static_cast<Node>(n - 1), 0});
  churn.apply({ChurnOp::kRemoveNode, static_cast<Node>(n - 2), 0});
  churn.apply({ChurnOp::kRepairNode, static_cast<Node>(n - 2), 0});

  const std::uint64_t behavior_seed = mix64(0xC4u, family.spec.size());
  auto make_oracle = [&](const FaultSet& faults)
      -> std::unique_ptr<SyndromeOracle> {
    if (cal.is_implicit()) {
      return std::make_unique<ImplicitLazyOracle>(
          *cal.implicit_view, faults, FaultyBehavior::kRandom, behavior_seed);
    }
    return std::make_unique<LazyOracle>(cal.graph, faults,
                                        FaultyBehavior::kRandom,
                                        behavior_seed);
  };
  auto neighbors_of = [&](Node u) {
    std::vector<Node> out;
    if (cal.is_implicit()) {
      const auto nbrs = cal.implicit_view->neighbors(u);
      out.assign(nbrs.begin(), nbrs.end());
    } else {
      for (const Node w : cal.graph.neighbors(u)) out.push_back(w);
    }
    return out;
  };

  // Base faults at low (live) ids; one toggle node flips per round. The
  // changed-row set of a toggle is the node plus its base neighbourhood —
  // exactly what the harness derives from the fault-list symdiff.
  const unsigned delta = churn.delta();
  std::vector<Node> base_faults;
  for (Node u = 1; base_faults.size() + 1 < delta; u += 3) {
    base_faults.push_back(u);
  }
  const Node toggle = 0;
  std::vector<Node> changed = neighbors_of(toggle);
  changed.push_back(toggle);

  // Prime the solve cache with the base fault set.
  {
    const FaultSet faults(n, base_faults);
    const auto oracle = make_oracle(faults);
    (void)churn.diagnose(*oracle);
  }

  const bool flip = traffic == TimedTraffic::kFlip;
  const std::vector<Node> no_rows_changed;
  bool all_identical = true;
  double warm_seconds = 0, cold_seconds = 0;
  std::uint64_t warm_lookups = 0, cold_lookups = 0;
  for (std::size_t round = 0; round < family.rounds; ++round) {
    std::vector<Node> fault_list = base_faults;
    if (flip && round % 2 == 0) fault_list.push_back(toggle);
    const FaultSet faults(n, fault_list);
    const auto oracle = make_oracle(faults);

    Timer warm_timer;
    const ChurnDiagnosis warm =
        churn.diagnose_delta(*oracle, flip ? changed : no_rows_changed);
    warm_seconds += warm_timer.seconds();

    Timer cold_timer;
    const ChurnDiagnosis cold = churn.diagnose_cold(*oracle);
    cold_seconds += cold_timer.seconds();

    all_identical = all_identical && identical(warm, cold);
    warm_lookups += warm.spent_lookups;
    cold_lookups += cold.spent_lookups;
  }

  const double speedup = warm_seconds > 0 ? cold_seconds / warm_seconds : 0;
  report.add_result({
      {"mode", JsonValue::str(flip ? "timed-flip" : "timed-repeat")},
      {"spec", JsonValue::str(family.spec)},
      {"delta", JsonValue::num(std::uint64_t{delta})},
      {"oracle", JsonValue::str(cal.is_implicit() ? "implicit-lazy" : "lazy")},
      {"nodes", JsonValue::num(n)},
      {"components", JsonValue::num(std::uint64_t{churn.num_components()})},
      {"rounds", JsonValue::num(family.rounds)},
      {"warm_seconds", JsonValue::num(warm_seconds)},
      {"cold_seconds", JsonValue::num(cold_seconds)},
      {"warm_lookups", JsonValue::num(warm_lookups)},
      {"cold_lookups", JsonValue::num(cold_lookups)},
      {"warm_over_cold", JsonValue::num(speedup)},
      {"identical_warm_cold", JsonValue::boolean(all_identical)},
  });
  table().add_row(
      {flip ? "timed-flip" : "timed-repeat", family.spec,
       cal.is_implicit() ? "implicit" : "lazy",
       Table::num(family.rounds), "-", "-", "-", Table::num(warm_lookups),
       Table::num(cold_lookups), Table::num(warm_seconds * 1e3, 2),
       Table::num(cold_seconds * 1e3, 2), Table::num(speedup, 1),
       all_identical ? "yes" : "NO"});
  if (!all_identical) {
    std::cerr << "DIVERGENCE [" << family.spec
              << " timed]: warm diagnose_delta != diagnose_cold\n";
  }
  return {all_identical, speedup};
}

int run(bool smoke, const std::string& out_path) {
  const std::vector<Family> families =
      smoke ? std::vector<Family>{{"hypercube 5", 3, 24, 8},
                                  {"star 4", 3, 24, 8},
                                  {"kary_ncube 2 6", 3, 24, 8}}
            : std::vector<Family>{{"hypercube 5", 3, 96, 16},
                                  {"star 4", 3, 96, 16},
                                  {"kary_ncube 2 6", 3, 96, 16},
                                  {"hypercube 8", 4, 64, 24},
                                  {"hypercube 10", 4, 48, 24}};
  const std::vector<std::uint64_t> seeds =
      smoke ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 2};

  EngineOptions engine_options;
  engine_options.cache_capacity = 32;
  engine_options.threads = 1;
  DiagnosisEngine engine(engine_options);

  JsonBenchReport report("bench_churn");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  bool all_identical = true;
  double best_speedup = 0, best_work_ratio = 0;
  for (const Family& family : families) {
    for (const std::uint64_t seed : seeds) {
      const RowStats row = run_harness_row(engine, family, seed,
                                           /*use_table=*/false, report);
      all_identical = all_identical && row.identical;
      best_work_ratio = std::max(best_work_ratio, row.warm_over_cold);
    }
  }
  // One table-oracle harness row per run: same stream distribution, rows
  // materialised per diagnose event (CSR calibrations only).
  {
    const RowStats row = run_harness_row(engine, families.front(),
                                         seeds.front(),
                                         /*use_table=*/true, report);
    all_identical = all_identical && row.identical;
  }
  for (const Family& family : families) {
    const RowStats flip = run_timed_row(engine, family, TimedTraffic::kFlip,
                                        report);
    const RowStats repeat = run_timed_row(engine, family,
                                          TimedTraffic::kRepeat, report);
    all_identical = all_identical && flip.identical && repeat.identical;
    best_speedup = std::max(best_speedup, repeat.warm_over_cold);
  }

  report.set_meta("warm_over_cold_headline", JsonValue::num(best_speedup));
  report.set_meta("recert_work_ratio_headline",
                  JsonValue::num(best_work_ratio));
  report.set_meta("all_identical", JsonValue::boolean(all_identical));

  std::cout << "\n=== Churn: warm incremental vs cold recalibration ===\n";
  table().print(std::cout);
  std::cout << "\nCSV:\n";
  table().print_csv(std::cout);
  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  std::cout << "headline: warm " << best_speedup
            << "x over cold (timed), recert work ratio " << best_work_ratio
            << "x\n";

  if (!all_identical) {
    std::cerr << "FAIL: a warm churn answer diverged from cold "
                 "recalibration\n";
    return 1;
  }
  if (!smoke && best_speedup < 10.0) {
    std::cerr << "FAIL: warm-over-cold headline " << best_speedup
              << "x is below the 10x bar\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_churn.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_churn [--smoke] [--out FILE]\n";
      return 2;
    }
  }
  return mmdiag::bench::run(smoke, out_path);
}
