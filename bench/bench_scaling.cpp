// E1 (Theorem 1 / §4.2): the driver runs in O(Δ·N) on EVERY supported
// family. The table reports time/(Δ·N) — the hidden constant — which should
// sit in a narrow band across families and sizes, demonstrating that the
// bound, not the topology, governs the cost.
#include "bench_util.hpp"

namespace mmdiag::bench {
namespace {

constexpr const char* kSpecs[] = {
    "hypercube 10",      "hypercube 14",        "crossed_cube 9",
    "crossed_cube 12",   "twisted_cube 9",      "twisted_cube 13",
    "folded_hypercube 8", "folded_hypercube 12", "enhanced_hypercube 9 3",
    "augmented_cube 11", "shuffle_cube 10",     "shuffle_cube 14",
    "twisted_n_cube 9",  "twisted_n_cube 12",   "kary_ncube 2 15",
    "kary_ncube 3 13",   "augmented_kary_ncube 2 15",
    "star 7",            "star 8",              "nk_star 8 5",
    "pancake 7",         "pancake 8",           "arrangement 8 3",
    "arrangement 10 4",
};

void BM_Scaling(benchmark::State& state, const std::string& spec) {
  const auto& inst = instance(spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 37);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  const double dn = static_cast<double>(inst.graph.num_nodes()) *
                    inst.graph.max_degree();
  state.counters["ns_per_DN"] = spo * 1e9 / dn;
  ExperimentTable::get().add_row(
      {inst.topo->info().name, inst.topo->info().family,
       Table::num(inst.graph.num_nodes()), Table::num(inst.graph.max_degree()),
       Table::num(delta), Table::num(spo * 1e3, 3),
       Table::num(spo * 1e9 / dn, 3), result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E1 / Theorem 1 — O(Delta*N) scaling across all supported families "
      "(ns_per_DN should sit in a narrow band)",
      {"instance", "family", "N", "Delta", "delta", "time_ms", "ns_per_DN",
       "success"});
  for (const char* spec : kSpecs) {
    std::string name = spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_Scaling, std::string(spec))
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
