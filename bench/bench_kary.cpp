// E4 (Theorem 4): k-ary n-cubes diagnose |F| <= 2n faults in O(n·k^n);
// augmented k-ary n-cubes (as their spanning supergraphs) handle |F| <= 4n-2
// with the same driver. The normalised constant time/(n·k^n) should stay
// flat along each family.
#include "bench_util.hpp"

namespace mmdiag::bench {
namespace {

struct Config {
  const char* spec;
  unsigned n;
};

constexpr Config kConfigs[] = {
    {"kary_ncube 2 7", 2},   {"kary_ncube 2 15", 2},
    {"kary_ncube 3 9", 3},   {"kary_ncube 3 13", 3},
    {"kary_ncube 4 7", 4},   {"augmented_kary_ncube 2 9", 2},
    {"augmented_kary_ncube 2 15", 2}, {"augmented_kary_ncube 3 11", 3},
};

void BM_KAry(benchmark::State& state, const Config& config) {
  const auto& inst = instance(config.spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(config.spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(config.spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 23);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  const double nodes = static_cast<double>(inst.graph.num_nodes());
  state.counters["N"] = nodes;
  state.counters["delta"] = delta;
  state.counters["t_norm_ns"] = spo * 1e9 / (config.n * nodes);
  ExperimentTable::get().add_row(
      {inst.topo->info().name, Table::num(std::uint64_t(nodes)),
       Table::num(delta), Table::num(spo * 1e3, 3),
       Table::num(spo * 1e9 / (config.n * nodes), 3),
       Table::num(result.lookups), result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E4 / Theorem 4 — k-ary n-cubes and augmented k-ary n-cubes, |F| = "
      "delta",
      {"instance", "N", "delta", "time_ms", "ns_per_nN", "lookups",
       "success"});
  for (const auto& config : kConfigs) {
    std::string name = config.spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_KAry, config)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
