// E3 (Theorem 3): the seven hypercube variants — crossed, twisted, folded,
// enhanced, augmented, shuffle and twisted-N cubes — all diagnose in
// O(n·2^n) with the same generic driver. The table reports absolute time
// and the normalised constant time/(n·2^n), which should stay flat per
// family and comparable across families.
#include "bench_util.hpp"

namespace mmdiag::bench {
namespace {

struct Config {
  const char* spec;
  unsigned n;  // dimension entering the O(n·2^n) bound
};

// Two sizes per family (the smallest certified instance and a larger one).
constexpr Config kConfigs[] = {
    {"crossed_cube 9", 9},        {"crossed_cube 12", 12},
    {"twisted_cube 9", 9},        {"twisted_cube 13", 13},
    {"folded_hypercube 8", 8},    {"folded_hypercube 12", 12},
    {"enhanced_hypercube 9 3", 9}, {"enhanced_hypercube 12 6", 12},
    {"augmented_cube 11", 11},    {"augmented_cube 13", 13},
    {"shuffle_cube 10", 10},      {"shuffle_cube 14", 14},
    {"twisted_n_cube 9", 9},      {"twisted_n_cube 12", 12},
};

void BM_Variant(benchmark::State& state, const Config& config) {
  const auto& inst = instance(config.spec);
  Diagnoser* diag = nullptr;
  try {
    diag = &diagnoser(config.spec);
  } catch (const DiagnosisUnsupportedError& e) {
    state.SkipWithError(e.what());
    return;
  }
  const unsigned delta = diag->delta();
  const FaultSet faults = make_faults(config.spec, delta);
  const LazyOracle oracle(inst.graph, faults, FaultyBehavior::kRandom, 17);
  DiagnosisResult result;
  Timer timer;
  for (auto _ : state) {
    result = diag->diagnose(oracle);
    benchmark::DoNotOptimize(result);
  }
  const double spo =
      state.iterations() ? timer.seconds() / static_cast<double>(state.iterations()) : 0;
  const double nodes = static_cast<double>(inst.graph.num_nodes());
  state.counters["N"] = nodes;
  state.counters["delta"] = delta;
  state.counters["t_norm_ns"] = spo * 1e9 / (config.n * nodes);
  ExperimentTable::get().add_row(
      {inst.topo->info().name, Table::num(std::uint64_t(nodes)),
       Table::num(delta), Table::num(result.probes),
       Table::num(spo * 1e3, 3), Table::num(spo * 1e9 / (config.n * nodes), 3),
       Table::num(result.lookups), result.success ? "yes" : "NO"});
}

void register_all() {
  ExperimentTable::get().init(
      "E3 / Theorem 3 — cube variants, |F| = delta, random faulty testers",
      {"instance", "N", "delta", "probes", "time_ms", "ns_per_nN", "lookups",
       "success"});
  for (const auto& config : kConfigs) {
    std::string name = config.spec;
    for (auto& c : name) {
      if (c == ' ') c = '_';
    }
    benchmark::RegisterBenchmark(name.c_str(), BM_Variant, config)
        ->Unit(benchmark::kMillisecond);
  }
}

const int registered = (register_all(), 0);

}  // namespace
}  // namespace mmdiag::bench

MMDIAG_BENCH_MAIN()
