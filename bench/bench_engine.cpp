// DiagnosisEngine request-stream throughput: mixed-spec streams swept
// across thread counts and cache capacities, recording the calibration
// cache's amortisation (cold vs warm per-request setup cost) and its
// hit/miss/evict counters. Establishes the BENCH_engine.json baseline.
//
// Three stream shapes bracket the cache's operating envelope:
//   repeated-spec — one topology over and over: the first request pays the
//                   calibration, every later one must be near-free (the
//                   acceptance criterion: warm setup >= 10x cheaper);
//   mixed-spec    — round-robin over S specs with capacity >= S: one cold
//                   request per spec, warm steady state;
//   thrash        — round-robin over S specs with capacity S-1, LRU's
//                   adversarial case: every request misses and evicts.
//
// Every engine-served stream is checked bit-identical to a direct
// (engine-free) sequential Diagnoser before its row is recorded.
//
//   bench_engine [--smoke] [--out FILE] [--max-threads T]
//
// --smoke shrinks to tiny instances and {1,2} threads for CI; the JSON
// schema is identical to a full run.
#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "engine/engine.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "util/timer.hpp"

namespace mmdiag::bench {
namespace {

struct StreamConfig {
  std::string name;
  std::vector<std::string> specs;  // request i uses specs[i % specs.size()]
  std::size_t requests;
  std::size_t cache_capacity;
};

struct Stream {
  std::vector<std::string> spec_of;  // per request
  std::vector<FaultSet> faults;
  std::vector<LazyOracle> oracles;
  std::vector<EngineRequest> requests;
  std::vector<DiagnosisResult> truth;  // direct sequential Diagnoser
};

/// Deterministic mixed workload over the stream's spec rotation: fault
/// counts cycle 0..delta per spec and the faulty-tester behaviour
/// alternates, mirroring bench_batch's per-topology workload.
Stream make_stream(const StreamConfig& config) {
  constexpr FaultyBehavior kBehaviors[] = {
      FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
      FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
  Stream stream;
  stream.spec_of.reserve(config.requests);
  stream.faults.reserve(config.requests);
  stream.oracles.reserve(config.requests);
  stream.requests.reserve(config.requests);
  for (std::size_t i = 0; i < config.requests; ++i) {
    const std::string& spec = config.specs[i % config.specs.size()];
    const auto& inst = instance(spec);
    const unsigned delta = diagnoser(spec).delta();
    Rng rng(0xE14E + i * 2654435761ULL);
    const std::size_t num_faults =
        (i / config.specs.size()) % (static_cast<std::size_t>(delta) + 1);
    stream.spec_of.push_back(spec);
    stream.faults.emplace_back(
        inst.graph.num_nodes(),
        inject_uniform(inst.graph.num_nodes(), num_faults, rng));
    stream.oracles.emplace_back(inst.graph, stream.faults.back(),
                                kBehaviors[i % 4], /*seed=*/i);
  }
  for (std::size_t i = 0; i < config.requests; ++i) {
    stream.requests.push_back(
        EngineRequest{stream.spec_of[i], &stream.oracles[i]});
  }
  // Direct ground truth: a per-spec Diagnoser constructed without the
  // engine, run sequentially. Engine-served results must match it bitwise.
  std::map<std::string, std::unique_ptr<Diagnoser>> direct;
  for (std::size_t i = 0; i < config.requests; ++i) {
    auto& diag = direct[stream.spec_of[i]];
    if (!diag) {
      const auto& inst = instance(stream.spec_of[i]);
      diag = std::make_unique<Diagnoser>(*inst.topo, inst.graph);
    }
    stream.truth.push_back(diag->diagnose(stream.oracles[i]));
  }
  return stream;
}

bool identical(const std::vector<DiagnosisResult>& truth,
               const std::vector<DiagnosisResult>& served) {
  if (truth.size() != served.size()) return false;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i].success != served[i].success ||
        truth[i].faults != served[i].faults ||
        truth[i].lookups != served[i].lookups ||
        truth[i].probes != served[i].probes ||
        truth[i].certified_component != served[i].certified_component ||
        truth[i].final_members != served[i].final_members ||
        truth[i].final_rounds != served[i].final_rounds ||
        truth[i].failure_reason != served[i].failure_reason) {
      return false;
    }
  }
  return true;
}

int run(bool smoke, const std::string& out_path, unsigned max_threads) {
  const std::vector<std::string> specs =
      smoke ? std::vector<std::string>{"hypercube 7", "star 5",
                                       "kary_ncube 4 4"}
            : std::vector<std::string>{"hypercube 10", "hypercube 12",
                                       "star 6",       "star 7",
                                       "kary_ncube 4 4", "kary_ncube 5 4"};
  const std::size_t repeats = smoke ? 24 : 240;
  const std::vector<StreamConfig> configs = {
      {"repeated-spec", {specs.front()}, repeats, 1},
      {"mixed-spec", specs, repeats, specs.size() + 2},
      {"thrash", specs, repeats / 2,
       std::max<std::size_t>(1, specs.size() - 1)},
  };
  std::vector<unsigned> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  JsonBenchReport report("bench_engine");
  report.set_meta("smoke", JsonValue::boolean(smoke));
  report.set_meta("hardware_threads",
                  JsonValue::num(std::thread::hardware_concurrency()));

  ExperimentTable::get().init(
      "Engine calibration cache (cold vs warm setup per request)",
      {"stream", "threads", "capacity", "requests", "hit", "miss", "evict",
       "cold_ms", "warm_us", "amortize", "identical"});

  bool all_identical = true;
  for (const StreamConfig& config : configs) {
    const Stream stream = make_stream(config);
    for (const unsigned threads : thread_counts) {
      EngineOptions options;
      options.cache_capacity = config.cache_capacity;
      options.threads = threads;
      DiagnosisEngine engine(options);

      Timer timer;
      const std::vector<DiagnosisResult> served = engine.serve(stream.requests);
      const double seconds = timer.seconds();

      const bool same = identical(stream.truth, served);
      all_identical = all_identical && same;

      std::size_t cold = 0, warm = 0, succeeded = 0;
      double cold_setup = 0, warm_setup = 0, solve = 0;
      for (const DiagnosisResult& r : served) {
        (r.calibration_reused ? warm_setup : cold_setup) += r.setup_seconds;
        ++(r.calibration_reused ? warm : cold);
        solve += r.diagnose_seconds;
        succeeded += r.success ? 1 : 0;
      }
      const double cold_avg = cold ? cold_setup / static_cast<double>(cold) : 0;
      const double warm_avg = warm ? warm_setup / static_cast<double>(warm) : 0;
      const double amortization = warm_avg > 0 ? cold_avg / warm_avg : 0;
      const double rate =
          seconds > 0 ? static_cast<double>(served.size()) / seconds : 0;
      const EngineCounters counters = engine.counters();

      report.add_result({
          {"stream", JsonValue::str(config.name)},
          {"specs", JsonValue::num(config.specs.size())},
          {"requests", JsonValue::num(served.size())},
          {"threads", JsonValue::num(threads)},
          {"cache_capacity", JsonValue::num(config.cache_capacity)},
          {"cache_hits", JsonValue::num(counters.hits)},
          {"cache_misses", JsonValue::num(counters.misses)},
          {"cache_evictions", JsonValue::num(counters.evictions)},
          {"cold_requests", JsonValue::num(cold)},
          {"warm_requests", JsonValue::num(warm)},
          {"cold_setup_avg_seconds", JsonValue::num(cold_avg)},
          {"warm_setup_avg_seconds", JsonValue::num(warm_avg)},
          {"setup_amortization", JsonValue::num(amortization)},
          {"solve_seconds", JsonValue::num(solve)},
          {"seconds", JsonValue::num(seconds)},
          {"requests_per_sec", JsonValue::num(rate)},
          {"succeeded", JsonValue::num(succeeded)},
          {"identical_to_direct", JsonValue::boolean(same)},
      });
      ExperimentTable::get().add_row(
          {config.name, Table::num(std::uint64_t{threads}),
           Table::num(std::uint64_t{config.cache_capacity}),
           Table::num(std::uint64_t{served.size()}),
           Table::num(counters.hits), Table::num(counters.misses),
           Table::num(counters.evictions), Table::num(cold_avg * 1e3, 3),
           Table::num(warm_avg * 1e6, 2), Table::num(amortization, 1),
           same ? "yes" : "NO"});
    }
  }

  ExperimentTable::get().print(std::cout);
  if (!report.write_file(out_path)) return 1;
  std::cout << "\nwrote " << out_path << " (" << report.num_results()
            << " records)\n";
  if (!all_identical) {
    std::cerr << "FAIL: an engine-served stream diverged from the direct "
                 "sequential Diagnoser\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace mmdiag::bench

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_engine.json";
  unsigned max_threads = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
      max_threads = std::min(max_threads, 2u);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--max-threads" && i + 1 < argc) {
      max_threads = static_cast<unsigned>(std::stoul(argv[++i]));
    } else {
      std::cerr << "usage: bench_engine [--smoke] [--out FILE] "
                   "[--max-threads T]\n";
      return 2;
    }
  }
  if (max_threads == 0) max_threads = 1;
  return mmdiag::bench::run(smoke, out_path, max_threads);
}
