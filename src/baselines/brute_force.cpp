#include "baselines/brute_force.hpp"

#include <stdexcept>

#include "mm/fault_set.hpp"

namespace mmdiag {
namespace {

bool consistent(const Graph& g, const SyndromeOracle& oracle,
                const std::vector<bool>& faulty) {
  const std::size_t n = g.num_nodes();
  for (std::size_t u = 0; u < n; ++u) {
    if (faulty[u]) continue;
    const auto adj = g.neighbors(static_cast<Node>(u));
    for (unsigned i = 0; i + 1 < adj.size(); ++i) {
      const bool fi = faulty[adj[i]];
      for (unsigned j = i + 1; j < adj.size(); ++j) {
        if (oracle.test(static_cast<Node>(u), i, j) != (fi || faulty[adj[j]])) {
          return false;
        }
      }
    }
  }
  return true;
}

void enumerate(const Graph& g, const SyndromeOracle& oracle, unsigned delta,
               std::size_t max_results, Node first, std::vector<Node>& current,
               std::vector<bool>& faulty,
               std::vector<std::vector<Node>>& results) {
  if (consistent(g, oracle, faulty)) {
    results.push_back(current);
    if (results.size() > max_results) {
      throw std::runtime_error("brute force: too many consistent candidates");
    }
  }
  if (current.size() == delta) return;
  for (Node v = first; v < g.num_nodes(); ++v) {
    current.push_back(v);
    faulty[v] = true;
    enumerate(g, oracle, delta, max_results, v + 1, current, faulty, results);
    faulty[v] = false;
    current.pop_back();
  }
}

}  // namespace

std::vector<std::vector<Node>> brute_force_consistent_sets(
    const Graph& g, const SyndromeOracle& oracle, unsigned delta,
    std::size_t max_results) {
  std::vector<std::vector<Node>> results;
  std::vector<Node> current;
  std::vector<bool> faulty(g.num_nodes(), false);
  enumerate(g, oracle, delta, max_results, 0, current, faulty, results);
  return results;
}

DiagnosisResult brute_force_diagnose(const Graph& g,
                                     const SyndromeOracle& oracle,
                                     unsigned delta) {
  oracle.reset_lookups();
  DiagnosisResult out;
  const auto sets = brute_force_consistent_sets(g, oracle, delta);
  out.lookups = oracle.lookups();
  if (sets.size() == 1) {
    out.success = true;
    out.faults = sets.front();
  } else if (sets.empty()) {
    out.failure_reason = "no fault set of size <= delta is consistent";
  } else {
    out.failure_reason = "syndrome is ambiguous: " +
                         std::to_string(sets.size()) +
                         " consistent candidates (graph not delta-diagnosable "
                         "for this delta, or |F| > delta)";
  }
  return out;
}

}  // namespace mmdiag
