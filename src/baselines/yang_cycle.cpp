#include "baselines/yang_cycle.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {
namespace {

bool read_test(const Graph& g, const SyndromeOracle& oracle, Node u, Node a,
               Node b) {
  const int ia = g.neighbor_position(u, a);
  const int ib = g.neighbor_position(u, b);
  if (ia < 0 || ib < 0) throw std::logic_error("cycle edge missing from graph");
  return oracle.test(u, static_cast<unsigned>(ia), static_cast<unsigned>(ib));
}

}  // namespace

YangCycleDiagnoser::YangCycleDiagnoser(const Hypercube& topo,
                                       const Graph& graph)
    : graph_(&graph), n_(topo.dimension()) {
  if (n_ < 7) {
    // Needs 2^{n-m} > n healthy-cycle candidates with 2^m > n, as in §5.1.
    throw std::invalid_argument("YangCycleDiagnoser: need n >= 7");
  }
  m_ = 1;
  while ((std::uint64_t{1} << m_) <= n_) ++m_;
  classified_.resize(graph.num_nodes());
  known_healthy_.resize(graph.num_nodes());
}

bool YangCycleDiagnoser::cycle_all_zero(const SyndromeOracle& oracle,
                                        std::size_t c) const {
  const Node len = Node{1} << m_;
  for (Node t = 0; t < len; ++t) {
    const Node x = cycle_node(c, t);
    const Node prev = cycle_node(c, (t + len - 1) & (len - 1));
    const Node next = cycle_node(c, (t + 1) & (len - 1));
    if (read_test(*graph_, oracle, x, prev, next)) return false;
  }
  return true;
}

DiagnosisResult YangCycleDiagnoser::diagnose(const SyndromeOracle& oracle) {
  oracle.reset_lookups();
  DiagnosisResult out;

  // Phase 1: find an all-zero cycle. At most n of the 2^{n-m} cycles can be
  // touched by faults, so scanning n+1 cycles suffices under |F| <= n.
  const std::size_t scan_limit =
      std::min<std::size_t>(num_cycles(), std::size_t{n_} + 1);
  std::size_t healthy_cycle = num_cycles();
  for (std::size_t c = 0; c < scan_limit; ++c) {
    ++out.probes;
    if (cycle_all_zero(oracle, c)) {
      healthy_cycle = c;
      break;
    }
  }
  if (healthy_cycle == num_cycles()) {
    out.lookups = oracle.lookups();
    out.failure_reason = "no all-zero cycle found; fault count likely exceeds n";
    return out;
  }
  out.certified_component = static_cast<std::uint32_t>(healthy_cycle);

  // Phase 2: classify outward from the healthy cycle. Each BFS entry carries
  // a known-healthy anchor neighbour so one test decides each new node.
  classified_.clear();
  known_healthy_.clear();
  std::vector<Node> queue;           // healthy frontier
  std::vector<Node> anchor_of;       // parallel to queue
  const Node len = Node{1} << m_;
  for (Node t = 0; t < len; ++t) {
    const Node x = cycle_node(healthy_cycle, t);
    classified_.insert(x);
    known_healthy_.insert(x);
    queue.push_back(x);
    anchor_of.push_back(cycle_node(healthy_cycle, (t + 1) & (len - 1)));
  }
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node u = queue[head];
    const Node z = anchor_of[head];
    for (const Node w : graph_->neighbors(u)) {
      if (w == z || classified_.contains(w)) continue;
      classified_.insert(w);
      if (!read_test(*graph_, oracle, u, w, z)) {
        known_healthy_.insert(w);
        queue.push_back(w);
        anchor_of.push_back(u);  // u is w's known-healthy anchor
      } else {
        out.faults.push_back(w);
      }
    }
  }

  out.final_members = queue.size();
  std::sort(out.faults.begin(), out.faults.end());
  out.lookups = oracle.lookups();
  if (out.faults.size() > n_) {
    out.failure_reason = "more than n nodes classified faulty";
    out.faults.clear();
    return out;
  }
  out.success = true;
  return out;
}

}  // namespace mmdiag
