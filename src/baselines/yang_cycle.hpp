// Yang's cycle-decomposition diagnosis for hypercubes [27] (Fig. 1).
//
// Decompose Q_n into 2^{n-m} node-disjoint Hamiltonian cycles of the
// sub-cubes Q_m(v) (cyclic Gray codes), m minimal with 2^m > n. Scan cycles
// until one reads 0 on every consecutive triple: a cycle longer than n with
// all-zero tests is entirely healthy (a healthy tester adjacent to a fault
// would read 1, and an all-faulty cycle would exceed |F| <= n). From the
// healthy cycle, classify outward: a healthy node u with known-healthy
// neighbour z decides any third neighbour w via the single test s_u(w, z).
// Faults are the nodes so classified faulty (equivalently N(healthy set),
// Theorem 1's argument). This is the algorithm the paper refines; we
// implement it as the comparison baseline of Theorem 2.
#pragma once

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/hypercube.hpp"
#include "util/bitvec.hpp"

namespace mmdiag {

/// Cyclic binary-reflected Gray code: element t of the 2^m cycle.
[[nodiscard]] inline Node gray_code(Node t) noexcept { return t ^ (t >> 1); }

class YangCycleDiagnoser {
 public:
  YangCycleDiagnoser(const Hypercube& topo, const Graph& graph);

  [[nodiscard]] DiagnosisResult diagnose(const SyndromeOracle& oracle);

  /// Sub-cube dimension m of the decomposition (exposed for tests/examples).
  [[nodiscard]] unsigned subcube_dim() const noexcept { return m_; }
  [[nodiscard]] std::size_t num_cycles() const noexcept {
    return std::size_t{1} << (n_ - m_);
  }

  /// The t-th node of cycle c (Gray-code order), for examples and tests.
  [[nodiscard]] Node cycle_node(std::size_t c, Node t) const noexcept {
    return static_cast<Node>((c << m_) | gray_code(t));
  }

 private:
  [[nodiscard]] bool cycle_all_zero(const SyndromeOracle& oracle,
                                    std::size_t c) const;

  const Graph* graph_;
  unsigned n_;
  unsigned m_;
  StampSet classified_;
  StampSet known_healthy_;
};

}  // namespace mmdiag
