#include "baselines/directed_exact.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

DirectedExactSolver::DirectedExactSolver(const Graph& graph,
                                         const DirectedOracle& oracle,
                                         unsigned delta,
                                         std::uint64_t max_steps)
    : graph_(&graph),
      oracle_(&oracle),
      model_(oracle.model()),
      delta_(delta),
      max_steps_(max_steps),
      state_(graph.num_nodes(), State::kUnknown) {
  if (!is_directed_model(model_)) {
    throw std::invalid_argument(
        "DirectedExactSolver: oracle carries the MM* model — use ExactSolver");
  }
  const std::size_t n = graph.num_nodes();
  arc_base_.resize(n);
  EdgeIndex total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    arc_base_[u] = total;
    total += graph.degree(static_cast<Node>(u));
  }
  outcomes_.resize(total);
  for (std::size_t u = 0; u < n; ++u) {
    const auto node = static_cast<Node>(u);
    const unsigned d = graph.degree(node);
    for (unsigned p = 0; p < d; ++p) {
      outcomes_[arc_base_[u] + p] = oracle.test(node, p) ? 1 : 0;
    }
  }
}

bool DirectedExactSolver::assign(Node v, State s) {
  if (state_[v] == s) return true;
  if (state_[v] != State::kUnknown) return false;  // contradiction
  state_[v] = s;
  trail_.push_back(v);
  queue_.push_back(v);
  if (s == State::kFaulty) {
    ++faulty_count_;
    if (faulty_count_ > delta_) return false;  // budget exceeded
  }
  return true;
}

bool DirectedExactSolver::propagate_assigned(Node x) {
  // Enforce arc consistency on every arc touching x, in both directions.
  const auto adj = graph_->neighbors(x);
  const bool x_faulty = state_[x] == State::kFaulty;
  for (unsigned p = 0; p < adj.size(); ++p) {
    if (++steps_ > max_steps_) {
      throw std::runtime_error("DirectedExactSolver: step limit exceeded");
    }
    const Node v = adj[p];
    // Outgoing x -> v: binding only when x is healthy.
    if (!x_faulty) {
      if (!assign(v, outcome(x, p) ? State::kFaulty : State::kHealthy)) {
        return false;
      }
    }
    // Incoming v -> x: the constraint "v healthy ⇒ state(x) = s" now has a
    // decided right-hand side; if it mismatches, v cannot be healthy.
    const bool s_in = outcome(v, graph_->mirror_position(x, p)) != 0;
    if (s_in != x_faulty && !assign(v, State::kFaulty)) return false;
  }
  return true;
}

bool DirectedExactSolver::propagate() {
  while (queue_head_ < queue_.size()) {
    const Node x = queue_[queue_head_++];
    if (!propagate_assigned(x)) return false;
  }
  queue_.clear();
  queue_head_ = 0;
  return true;
}

Node DirectedExactSolver::pick_branch_node() const {
  for (Node v = 0; v < state_.size(); ++v) {
    if (state_[v] == State::kUnknown) return v;
  }
  return kNoNode;
}

void DirectedExactSolver::snapshot(std::vector<std::vector<Node>>& out) {
  std::vector<Node> faults;
  for (Node v = 0; v < state_.size(); ++v) {
    if (state_[v] == State::kFaulty) faults.push_back(v);
  }
  out.push_back(std::move(faults));
}

void DirectedExactSolver::search(std::size_t max_solutions,
                                 std::vector<std::vector<Node>>& out) {
  if (out.size() >= max_solutions) return;

  // Budget exhausted: the rest of the graph must be healthy.
  if (faulty_count_ == delta_) {
    const std::size_t mark = trail_.size();
    bool ok = true;
    for (Node v = 0; v < state_.size() && ok; ++v) {
      if (state_[v] == State::kUnknown) ok = assign(v, State::kHealthy);
    }
    ok = ok && propagate();
    if (ok) snapshot(out);
    queue_.clear();
    queue_head_ = 0;
    while (trail_.size() > mark) {
      const Node v = trail_.back();
      trail_.pop_back();
      if (state_[v] == State::kFaulty) --faulty_count_;
      state_[v] = State::kUnknown;
    }
    return;
  }

  const Node branch = pick_branch_node();
  if (branch == kNoNode) {
    snapshot(out);  // total consistent assignment
    return;
  }

  for (const State choice : {State::kHealthy, State::kFaulty}) {
    const std::size_t mark = trail_.size();
    if (assign(branch, choice) && propagate()) {
      search(max_solutions, out);
    }
    queue_.clear();
    queue_head_ = 0;
    while (trail_.size() > mark) {
      const Node v = trail_.back();
      trail_.pop_back();
      if (state_[v] == State::kFaulty) --faulty_count_;
      state_[v] = State::kUnknown;
    }
    if (out.size() >= max_solutions) return;
  }
}

std::vector<std::vector<Node>> DirectedExactSolver::solve(
    std::size_t max_solutions) {
  std::fill(state_.begin(), state_.end(), State::kUnknown);
  trail_.clear();
  queue_.clear();
  queue_head_ = 0;
  faulty_count_ = 0;
  steps_ = 0;
  std::vector<std::vector<Node>> out;

  // BGM's unconditional rule: any 0-arc certifies the tested unit healthy,
  // before a single branch is taken.
  if (model_ == DiagnosisModel::kBGM) {
    bool ok = true;
    for (Node u = 0; u < state_.size() && ok; ++u) {
      const auto adj = graph_->neighbors(u);
      for (unsigned p = 0; p < adj.size() && ok; ++p) {
        if (outcome(u, p) == 0) ok = assign(adj[p], State::kHealthy);
      }
    }
    if (!ok || !propagate()) return out;  // no consistent assignment at all
  }

  search(max_solutions, out);
  return out;
}

DiagnosisResult DirectedExactSolver::diagnose() {
  DiagnosisResult result;
  const auto solutions = solve(2);
  // The whole syndrome was read in the constructor; per-solve look-ups are
  // zero by design, so report the 2|E| table reads.
  result.lookups = outcomes_.size();
  if (solutions.size() == 1) {
    result.success = true;
    result.faults = solutions.front();
  } else if (solutions.empty()) {
    result.failure_reason = "no fault set of size <= delta is consistent";
  } else {
    result.failure_reason =
        "ambiguous syndrome: at least two consistent candidates";
  }
  return result;
}

}  // namespace mmdiag
