// Extended stars (Fig. 2) — the local structure Chiang & Tan's algorithm
// diagnoses from.
//
// An extended star ES(x) of order b is a set of b branches, each a path
// (x, v1, v2, v3, v4), where the 4b branch nodes are distinct and none
// equals x. Chiang–Tan require one at *every* node; the paper's §6 stresses
// that actually constructing them is family-specific work their complexity
// analysis ignores. We provide the two constructions their paper sketches
// (hypercubes, star graphs) plus a generic greedy fallback.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "topology/hypercube.hpp"
#include "topology/star_graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

struct ExtendedStar {
  Node root = kNoNode;
  std::vector<std::array<Node, 4>> branches;  // branch b = (v1, v2, v3, v4)
};

/// Validates distinctness/adjacency of a candidate extended star.
[[nodiscard]] bool extended_star_valid(const Graph& g, const ExtendedStar& es);

/// Q_n (n >= 5): branch i follows dimensions i, i+1, i+2, i+3 (mod n).
/// Branch node sets are distinct consecutive dimension runs, hence disjoint.
[[nodiscard]] ExtendedStar extended_star_hypercube(const Hypercube& topo,
                                                   Node x);

/// S_n (n >= 5): branch i (2 <= i <= n) applies the position-1 swaps
/// t_i, t_{succ(i)}, t_{succ^2(i)}, t_{succ^3(i)} where succ cycles through
/// {2..n}. Distinctness is validated by construction (and by tests).
[[nodiscard]] ExtendedStar extended_star_star_graph(const StarGraph& topo,
                                                    Node x);

/// Generic greedy construction over any graph: grows branch paths in
/// BFS order, claiming nodes exclusively. Returns nullopt when fewer than
/// `branches` disjoint depth-4 paths could be found at x.
[[nodiscard]] std::optional<ExtendedStar> extended_star_greedy(
    const Graph& g, Node x, unsigned branches);

}  // namespace mmdiag
