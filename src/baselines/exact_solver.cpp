#include "baselines/exact_solver.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

ExactSolver::ExactSolver(const Graph& graph, const SyndromeOracle& oracle,
                         unsigned delta, std::uint64_t max_steps)
    : graph_(&graph),
      oracle_(&oracle),
      delta_(delta),
      max_steps_(max_steps),
      state_(graph.num_nodes(), State::kUnknown) {}

bool ExactSolver::assign(Node v, State s) {
  if (state_[v] == s) return true;
  if (state_[v] != State::kUnknown) return false;  // contradiction
  state_[v] = s;
  trail_.push_back(v);
  queue_.push_back(v);
  if (s == State::kFaulty) {
    ++faulty_count_;
    if (faulty_count_ > delta_) return false;  // budget exceeded
  }
  return true;
}

bool ExactSolver::propagate_tester(Node u) {
  // u is healthy: every one of its pair tests is now binding.
  const auto adj = graph_->neighbors(u);
  for (unsigned i = 0; i + 1 < adj.size(); ++i) {
    for (unsigned j = i + 1; j < adj.size(); ++j) {
      if (++steps_ > max_steps_) {
        throw std::runtime_error("ExactSolver: step limit exceeded");
      }
      const Node v = adj[i];
      const Node w = adj[j];
      if (!oracle_->test(u, i, j)) {
        // 0-test: both subjects healthy.
        if (!assign(v, State::kHealthy) || !assign(w, State::kHealthy)) {
          return false;
        }
      } else {
        // 1-test: at least one subject faulty.
        if (state_[v] == State::kHealthy && !assign(w, State::kFaulty)) {
          return false;
        }
        if (state_[w] == State::kHealthy && !assign(v, State::kFaulty)) {
          return false;
        }
        // Both unknown (or one already faulty): nothing to do yet; the
        // subject-side propagation revisits this pair when states change.
      }
    }
  }
  return true;
}

bool ExactSolver::propagate_subject(Node x) {
  // x gained a decided state: revisit the tests of every already-healthy
  // neighbour tester that involve x.
  const bool x_faulty = state_[x] == State::kFaulty;
  for (const Node u : graph_->neighbors(x)) {
    if (state_[u] != State::kHealthy) continue;
    const auto adj = graph_->neighbors(u);
    const int xi = graph_->neighbor_position(u, x);
    for (unsigned j = 0; j < adj.size(); ++j) {
      if (static_cast<int>(j) == xi) continue;
      if (++steps_ > max_steps_) {
        throw std::runtime_error("ExactSolver: step limit exceeded");
      }
      const Node w = adj[j];
      const bool one = oracle_->test(u, static_cast<unsigned>(xi), j);
      if (!one) {
        // 0-test: both subjects healthy — conflicts if x is faulty.
        if (x_faulty) return false;
        if (!assign(w, State::kHealthy)) return false;
      } else if (!x_faulty) {
        // 1-test with x healthy: the partner must be faulty.
        if (!assign(w, State::kFaulty)) return false;
      }
    }
  }
  return true;
}

bool ExactSolver::propagate() {
  while (queue_head_ < queue_.size()) {
    const Node x = queue_[queue_head_++];
    if (!propagate_subject(x)) return false;
    if (state_[x] == State::kHealthy && !propagate_tester(x)) return false;
  }
  queue_.clear();
  queue_head_ = 0;
  return true;
}

Node ExactSolver::pick_branch_node() const {
  for (Node v = 0; v < state_.size(); ++v) {
    if (state_[v] == State::kUnknown) return v;
  }
  return kNoNode;
}

void ExactSolver::snapshot(std::vector<std::vector<Node>>& out) {
  std::vector<Node> faults;
  for (Node v = 0; v < state_.size(); ++v) {
    if (state_[v] == State::kFaulty) faults.push_back(v);
  }
  out.push_back(std::move(faults));
}

void ExactSolver::search(std::size_t max_solutions,
                         std::vector<std::vector<Node>>& out) {
  if (out.size() >= max_solutions) return;

  // Budget exhausted: the rest of the graph must be healthy.
  if (faulty_count_ == delta_) {
    const std::size_t mark = trail_.size();
    bool ok = true;
    for (Node v = 0; v < state_.size() && ok; ++v) {
      if (state_[v] == State::kUnknown) ok = assign(v, State::kHealthy);
    }
    ok = ok && propagate();
    if (ok) snapshot(out);
    // Undo the forced cascade.
    queue_.clear();
    queue_head_ = 0;
    while (trail_.size() > mark) {
      const Node v = trail_.back();
      trail_.pop_back();
      if (state_[v] == State::kFaulty) --faulty_count_;
      state_[v] = State::kUnknown;
    }
    return;
  }

  const Node branch = pick_branch_node();
  if (branch == kNoNode) {
    snapshot(out);  // total consistent assignment
    return;
  }

  for (const State choice : {State::kHealthy, State::kFaulty}) {
    const std::size_t mark = trail_.size();
    if (assign(branch, choice) && propagate()) {
      search(max_solutions, out);
    }
    queue_.clear();
    queue_head_ = 0;
    while (trail_.size() > mark) {
      const Node v = trail_.back();
      trail_.pop_back();
      if (state_[v] == State::kFaulty) --faulty_count_;
      state_[v] = State::kUnknown;
    }
    if (out.size() >= max_solutions) return;
  }
}

std::vector<std::vector<Node>> ExactSolver::solve(std::size_t max_solutions) {
  std::fill(state_.begin(), state_.end(), State::kUnknown);
  trail_.clear();
  queue_.clear();
  queue_head_ = 0;
  faulty_count_ = 0;
  steps_ = 0;
  std::vector<std::vector<Node>> out;
  search(max_solutions, out);
  return out;
}

DiagnosisResult ExactSolver::diagnose() {
  oracle_->reset_lookups();
  DiagnosisResult result;
  const auto solutions = solve(2);
  result.lookups = oracle_->lookups();
  if (solutions.size() == 1) {
    result.success = true;
    result.faults = solutions.front();
  } else if (solutions.empty()) {
    result.failure_reason = "no fault set of size <= delta is consistent";
  } else {
    result.failure_reason =
        "ambiguous syndrome: at least two consistent candidates";
  }
  return result;
}

}  // namespace mmdiag
