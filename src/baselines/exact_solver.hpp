// Exact syndrome solver — DPLL search with unit propagation.
//
// Enumerates every fault set F' with |F'| <= delta consistent with a
// syndrome, like brute_force, but scales far beyond it: the MM-model
// constraints propagate strongly (a healthy tester's 0-test forces both
// subjects healthy; its 1-test with one healthy subject forces the other
// faulty; a healthy 0-test about a faulty subject is an immediate
// conflict), so the search tree collapses after a handful of decisions.
//
// Constraint semantics per tester u and neighbour pair {v,w}:
//   u healthy ∧ s_u(v,w)=0  ⇒  v healthy ∧ w healthy
//   u healthy ∧ s_u(v,w)=1  ⇒  v faulty ∨ w faulty
//   u faulty                ⇒  (no information)
//
// Used as the ground-truth oracle in tests and to validate published
// diagnosability values empirically (unique solution for every |F| <= δ
// syndrome) on instances brute force cannot touch.
#pragma once

#include <cstdint>
#include <vector>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "util/types.hpp"

namespace mmdiag {

class ExactSolver {
 public:
  /// The oracle is read on demand; each pair is consulted O(1) times per
  /// search node. `max_steps` bounds the total propagation work (throws
  /// std::runtime_error when exceeded — not expected on diagnosable
  /// syndromes).
  ExactSolver(const Graph& graph, const SyndromeOracle& oracle, unsigned delta,
              std::uint64_t max_steps = 50'000'000);

  /// All consistent fault sets of size <= delta (each sorted ascending),
  /// stopping early once `max_solutions` have been found.
  [[nodiscard]] std::vector<std::vector<Node>> solve(
      std::size_t max_solutions = 2);

  /// Full diagnosis: succeeds iff the solution is unique.
  [[nodiscard]] DiagnosisResult diagnose();

 private:
  enum class State : std::uint8_t { kUnknown, kHealthy, kFaulty };

  bool assign(Node v, State s);      // returns false on conflict
  bool propagate();                  // drain the queue; false on conflict
  bool propagate_tester(Node u);     // u just became healthy
  bool propagate_subject(Node x);    // x just got a decided state
  void search(std::size_t max_solutions,
              std::vector<std::vector<Node>>& out);
  void snapshot(std::vector<std::vector<Node>>& out);
  [[nodiscard]] Node pick_branch_node() const;

  const Graph* graph_;
  const SyndromeOracle* oracle_;
  unsigned delta_;
  std::uint64_t max_steps_;
  std::uint64_t steps_ = 0;

  std::vector<State> state_;
  std::vector<Node> trail_;      // assignment order, for backtracking
  std::vector<Node> queue_;      // propagation frontier (indices into trail_)
  std::size_t queue_head_ = 0;
  unsigned faulty_count_ = 0;
};

}  // namespace mmdiag
