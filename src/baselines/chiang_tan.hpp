// Chiang–Tan-style local diagnosis baseline [8].
//
// Chiang & Tan decide each node's health from tests inside an extended star
// rooted at the node (Fig. 2), giving an O(ΔN) whole-system algorithm that
// reads (roughly) the entire syndrome table. This is a faithful-behaviour
// reconstruction with a provably sound decision rule:
//
// For branch (x, v1, v2, v3, v4) read the three black-node tests
//   t1 = s_{v1}(x, v2),  t2 = s_{v2}(v1, v3),  t3 = s_{v3}(v2, v4).
// Under hypothesis h in {x healthy, x faulty}, let m_h(t1 t2 t3) be the
// minimum number of faults among {v1..v4} consistent with the observed
// pattern. Exhausting the 8 patterns (branch nodes are disjoint across
// branches, so minima add):
//     pattern: 000 001 010 011 100 101 110 111
//     m_H    :  0   1   1   1   2   1   1   1
//     m_F    :  3   2   1   2   0   1   1   1
// Hypothesis "healthy" is locally consistent iff Σ m_H <= b, and "faulty"
// iff 1 + Σ m_F <= b, where b = #branches >= δ >= |F|. Writing a,b',c,d for
// the counts of patterns with (m_H,m_F) = (0,3),(2,0),(1,1),(1,2), both
// hypotheses holding would force 1 + 2a + d <= b' <= a — impossible — so
// exactly the true hypothesis survives. x is declared faulty iff the
// healthy hypothesis fails.
//
// Under |F| <= #branches the rule is exact; if neither/both hypotheses fit
// (possible only when |F| exceeds the bound), the diagnosis reports failure.
#pragma once

#include <functional>
#include <memory>

#include "baselines/extended_star.hpp"
#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

/// Produces the extended star rooted at x (family-specific or greedy).
using ExtendedStarProvider = std::function<ExtendedStar(Node x)>;

class ChiangTanDiagnoser {
 public:
  /// `branches` is the ES order b (>= the fault bound to be supported).
  ChiangTanDiagnoser(const Graph& graph, ExtendedStarProvider provider,
                     unsigned branches);

  /// Convenience constructors for the families Chiang & Tan illustrate.
  static ChiangTanDiagnoser for_hypercube(const Hypercube& topo,
                                          const Graph& graph);
  static ChiangTanDiagnoser for_star_graph(const StarGraph& topo,
                                           const Graph& graph);

  /// Diagnose every node locally; collects the declared-faulty set.
  [[nodiscard]] DiagnosisResult diagnose(const SyndromeOracle& oracle) const;

  /// Verdict for a single node (exposed for tests/examples).
  /// Returns 1 = faulty, 0 = healthy, -1 = locally ambiguous.
  [[nodiscard]] int diagnose_node(const SyndromeOracle& oracle, Node x) const;

  [[nodiscard]] unsigned branches() const noexcept { return branches_; }

 private:
  const Graph* graph_;
  ExtendedStarProvider provider_;
  unsigned branches_;
};

}  // namespace mmdiag
