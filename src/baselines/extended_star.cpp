#include "baselines/extended_star.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/traversal.hpp"
#include "util/bitvec.hpp"

namespace mmdiag {

bool extended_star_valid(const Graph& g, const ExtendedStar& es) {
  std::vector<Node> seen{es.root};
  for (const auto& b : es.branches) {
    if (!g.has_edge(es.root, b[0])) return false;
    for (int i = 0; i + 1 < 4; ++i) {
      if (!g.has_edge(b[i], b[i + 1])) return false;
    }
    seen.insert(seen.end(), b.begin(), b.end());
  }
  std::sort(seen.begin(), seen.end());
  return std::adjacent_find(seen.begin(), seen.end()) == seen.end();
}

ExtendedStar extended_star_hypercube(const Hypercube& topo, Node x) {
  const unsigned n = topo.dimension();
  if (n < 5) {
    // With n = 4 every branch's 4-dimension run covers all dimensions, so
    // the fourth nodes coincide.
    throw std::invalid_argument("extended_star_hypercube: need n >= 5");
  }
  ExtendedStar es;
  es.root = x;
  es.branches.resize(n);
  for (unsigned i = 0; i < n; ++i) {
    Node v = x;
    for (unsigned step = 0; step < 4; ++step) {
      v ^= Node{1} << ((i + step) % n);
      es.branches[i][step] = v;
    }
  }
  return es;
}

ExtendedStar extended_star_star_graph(const StarGraph& topo, Node x) {
  const auto info = topo.info();
  const unsigned n = static_cast<unsigned>(topo.codec().n());
  if (n < 5) throw std::invalid_argument("extended_star_star_graph: need n >= 5");
  ExtendedStar es;
  es.root = x;
  es.branches.resize(info.degree);
  std::uint8_t a[64];
  // Branch for generator index g0 in {1..n-1} (swap position 0 with g0),
  // then successively swap with g0+1, g0+2, g0+3 cycling inside {1..n-1}.
  for (unsigned g0 = 1; g0 < n; ++g0) {
    topo.codec().unrank(x, a);
    for (unsigned step = 0; step < 4; ++step) {
      const unsigned pos = 1 + (g0 - 1 + step) % (n - 1);
      std::swap(a[0], a[pos]);
      es.branches[g0 - 1][step] = static_cast<Node>(topo.codec().rank(a));
    }
  }
  return es;
}

namespace {

// Extend `path` (path[0..depth-1] fixed) to length 4 by depth-first search
// over nodes not in `used`, excluding the root. Neighbours farther from the
// root are tried first so branches flee the contested region around x.
bool extend_branch(const Graph& g, Node root, const StampSet& used,
                   const std::vector<std::uint32_t>& dist,
                   std::array<Node, 4>& path, unsigned depth,
                   std::vector<Node>& on_path) {
  if (depth == 4) return true;
  std::vector<Node> candidates;
  for (const Node w : g.neighbors(path[depth - 1])) {
    if (w == root || used.contains(w)) continue;
    if (std::find(on_path.begin(), on_path.end(), w) != on_path.end()) continue;
    candidates.push_back(w);
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [&](Node a, Node b) { return dist[a] > dist[b]; });
  for (const Node w : candidates) {
    path[depth] = w;
    on_path.push_back(w);
    if (extend_branch(g, root, used, dist, path, depth + 1, on_path)) {
      return true;
    }
    on_path.pop_back();
  }
  return false;
}

}  // namespace

std::optional<ExtendedStar> extended_star_greedy(const Graph& g, Node x,
                                                 unsigned branches) {
  const auto dist = bfs_distances(g, x);
  std::vector<Node> roots(g.neighbors(x).begin(), g.neighbors(x).end());
  // Greedy across branches with in-branch DFS backtracking; on failure,
  // rotate the root-neighbour order and retry (cheap cross-branch repair).
  for (std::size_t attempt = 0; attempt < roots.size(); ++attempt) {
    StampSet used(g.num_nodes());
    used.insert(x);
    ExtendedStar es;
    es.root = x;
    for (std::size_t i = 0; i < roots.size() && es.branches.size() < branches;
         ++i) {
      const Node v1 = roots[(i + attempt) % roots.size()];
      if (used.contains(v1)) continue;
      std::array<Node, 4> path{};
      path[0] = v1;
      std::vector<Node> on_path{v1};
      if (extend_branch(g, x, used, dist, path, 1, on_path)) {
        for (const Node v : path) used.insert(v);
        es.branches.push_back(path);
      }
    }
    if (es.branches.size() >= branches) return es;
  }
  return std::nullopt;
}

}  // namespace mmdiag
