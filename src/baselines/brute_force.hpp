// Exhaustive diagnosis by enumeration — the ground-truth oracle for tests.
//
// Enumerates every candidate fault set F' with |F'| <= delta and keeps those
// consistent with the syndrome. On a δ-diagnosable graph with |F| <= δ
// exactly one candidate survives; observing that uniqueness empirically is
// itself a check of the published diagnosability values. Exponential in
// delta — tiny graphs only.
#pragma once

#include <cstdint>
#include <vector>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// All consistent candidate sets of size <= delta, each sorted ascending.
/// Stops (throws std::runtime_error) if more than `max_results` accumulate.
[[nodiscard]] std::vector<std::vector<Node>> brute_force_consistent_sets(
    const Graph& g, const SyndromeOracle& oracle, unsigned delta,
    std::size_t max_results = 64);

/// Full diagnosis: succeeds iff exactly one consistent candidate exists.
[[nodiscard]] DiagnosisResult brute_force_diagnose(const Graph& g,
                                                   const SyndromeOracle& oracle,
                                                   unsigned delta);

}  // namespace mmdiag
