#include "baselines/chiang_tan.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {
namespace {

// Minimum branch faults by observed pattern index t1*4 + t2*2 + t3.
constexpr unsigned kMinFaultsHealthy[8] = {0, 1, 1, 1, 2, 1, 1, 1};
constexpr unsigned kMinFaultsFaulty[8] = {3, 2, 1, 2, 0, 1, 1, 1};

// s_u(a, b) looked up by node ids (positions resolved here).
bool read_test(const Graph& g, const SyndromeOracle& oracle, Node u, Node a,
               Node b) {
  const int ia = g.neighbor_position(u, a);
  const int ib = g.neighbor_position(u, b);
  if (ia < 0 || ib < 0) throw std::logic_error("extended star not in graph");
  return oracle.test(u, static_cast<unsigned>(ia), static_cast<unsigned>(ib));
}

}  // namespace

ChiangTanDiagnoser::ChiangTanDiagnoser(const Graph& graph,
                                       ExtendedStarProvider provider,
                                       unsigned branches)
    : graph_(&graph), provider_(std::move(provider)), branches_(branches) {
  if (branches_ == 0) throw std::invalid_argument("ChiangTan: need branches > 0");
}

ChiangTanDiagnoser ChiangTanDiagnoser::for_hypercube(const Hypercube& topo,
                                                     const Graph& graph) {
  return ChiangTanDiagnoser(
      graph, [&topo](Node x) { return extended_star_hypercube(topo, x); },
      topo.info().degree);
}

ChiangTanDiagnoser ChiangTanDiagnoser::for_star_graph(const StarGraph& topo,
                                                      const Graph& graph) {
  return ChiangTanDiagnoser(
      graph, [&topo](Node x) { return extended_star_star_graph(topo, x); },
      topo.info().degree);
}

int ChiangTanDiagnoser::diagnose_node(const SyndromeOracle& oracle,
                                      Node x) const {
  const ExtendedStar es = provider_(x);
  if (es.branches.size() < branches_) {
    throw std::logic_error("extended star has too few branches");
  }
  unsigned need_if_healthy = 0;
  unsigned need_if_faulty = 1;  // x itself
  for (const auto& b : es.branches) {
    const unsigned t1 = read_test(*graph_, oracle, b[0], x, b[1]) ? 1u : 0u;
    const unsigned t2 = read_test(*graph_, oracle, b[1], b[0], b[2]) ? 1u : 0u;
    const unsigned t3 = read_test(*graph_, oracle, b[2], b[1], b[3]) ? 1u : 0u;
    const unsigned pattern = t1 * 4 + t2 * 2 + t3;
    need_if_healthy += kMinFaultsHealthy[pattern];
    need_if_faulty += kMinFaultsFaulty[pattern];
  }
  const bool healthy_ok = need_if_healthy <= branches_;
  const bool faulty_ok = need_if_faulty <= branches_;
  if (healthy_ok == faulty_ok) return -1;  // only possible when |F| > branches
  return faulty_ok ? 1 : 0;
}

DiagnosisResult ChiangTanDiagnoser::diagnose(
    const SyndromeOracle& oracle) const {
  oracle.reset_lookups();
  DiagnosisResult out;
  for (std::size_t v = 0; v < graph_->num_nodes(); ++v) {
    const int verdict = diagnose_node(oracle, static_cast<Node>(v));
    if (verdict < 0) {
      out.lookups = oracle.lookups();
      out.failure_reason = "node " + std::to_string(v) +
                           " locally ambiguous (fault count exceeds the "
                           "extended-star order)";
      out.faults.clear();
      return out;
    }
    if (verdict == 1) out.faults.push_back(static_cast<Node>(v));
  }
  out.lookups = oracle.lookups();
  out.success = true;
  return out;
}

}  // namespace mmdiag
