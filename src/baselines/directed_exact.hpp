// Exact solver for the directed (PMC / BGM) models — the per-model ground
// truth the fuzz differ races the DirectedDiagnoser against.
//
// DPLL over node states with arc-consistency propagation. Every arc u -> v
// with outcome s contributes the 2-variable constraint
//
//   u healthy  ⇒  state(v) = s        (a healthy tester is reliable)
//
// and under BGM additionally the unconditional
//
//   s = 0  ⇒  v healthy               (faulty-tests-faulty is forced to 1,
//                                      and a healthy tester reports truly,
//                                      so ANY 0 certifies the tested unit)
//
// Both directions of each constraint are enforced whenever either endpoint
// is assigned, so at a conflict-free leaf every constraint holds. Fault
// sets are bounded by delta during the search.
#pragma once

#include <cstdint>
#include <vector>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/directed_oracle.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

class DirectedExactSolver {
 public:
  /// The whole syndrome is read once up front (2|E| counted look-ups): an
  /// exact solver's answer depends on every arc, so lazy consultation would
  /// only complicate the accounting. `max_steps` bounds propagation work
  /// (throws std::runtime_error when exceeded). The model comes from the
  /// oracle; throws std::invalid_argument if it is not a directed model.
  DirectedExactSolver(const Graph& graph, const DirectedOracle& oracle,
                      unsigned delta, std::uint64_t max_steps = 50'000'000);

  /// All consistent fault sets of size <= delta (each sorted ascending),
  /// stopping early once `max_solutions` have been found.
  [[nodiscard]] std::vector<std::vector<Node>> solve(
      std::size_t max_solutions = 2);

  /// Full diagnosis: succeeds iff the solution is unique.
  [[nodiscard]] DiagnosisResult diagnose();

 private:
  enum class State : std::uint8_t { kUnknown, kHealthy, kFaulty };

  [[nodiscard]] bool outcome(Node u, unsigned p) const noexcept {
    return outcomes_[arc_base_[u] + p];
  }

  bool assign(Node v, State s);  // returns false on conflict
  bool propagate();              // drain the queue; false on conflict
  bool propagate_assigned(Node x);
  void search(std::size_t max_solutions, std::vector<std::vector<Node>>& out);
  void snapshot(std::vector<std::vector<Node>>& out);
  [[nodiscard]] Node pick_branch_node() const;

  const Graph* graph_;
  const DirectedOracle* oracle_;
  DiagnosisModel model_;
  unsigned delta_;
  std::uint64_t max_steps_;
  std::uint64_t steps_ = 0;

  std::vector<EdgeIndex> arc_base_;  // CSR arc index base per node
  std::vector<char> outcomes_;       // the syndrome, read once in the ctor

  std::vector<State> state_;
  std::vector<Node> trail_;  // assignment order, for backtracking
  std::vector<Node> queue_;  // propagation frontier
  std::size_t queue_head_ = 0;
  unsigned faulty_count_ = 0;
};

}  // namespace mmdiag
