// TopologyOverlay — node/edge remove+repair deltas over an immutable view.
//
// Real deployments degrade continuously: nodes are pulled for repair, links
// fail, both come back. Rebuilding the CSR (or re-deriving the implicit
// adjacency) on every change would renumber adjacency positions — and
// syndrome bits are addressed by (node, position), so every stored syndrome
// and every calibrated partition would be invalidated. The overlay therefore
// never rebuilds anything: the base Graph/ImplicitGraph stays frozen (all
// positions stable) and churn is a mask on top of it — a removed-node bitset
// plus a per-node 64-bit dead-edge mask (bit p set = the edge to the p-th
// base neighbour is unusable, because that neighbour is removed or the edge
// itself was). OverlayOracle turns the mask into syndrome semantics: any
// test involving a dead element reads as 1 (fail), so removed nodes are
// never admitted by Set_Builder and the solver hot paths need no changes.
//
// Every mutation validates (std::invalid_argument) and is applied with the
// strong guarantee: a rejected delta leaves the overlay untouched.
// Double-remove, repair of a live node, repair of a never-removed edge, and
// out-of-range ids are all rejected rather than silently absorbed — churn
// streams replayed against a diverged shadow state must fail loudly.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "graph/implicit_graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class ChurnOp : std::uint8_t {
  kRemoveNode,
  kRepairNode,
  kRemoveEdge,
  kRepairEdge,
};

[[nodiscard]] std::string to_string(ChurnOp op);

/// One topology mutation. `v` is meaningful for the edge ops only.
struct ChurnDelta {
  ChurnOp op = ChurnOp::kRemoveNode;
  Node u = 0;
  Node v = 0;
};

class TopologyOverlay {
 public:
  /// The overlay packs each node's dead-edge state into one word, so the
  /// base view must have degree <= 64 (the same bound the word-row solver
  /// paths and the implicit view already live under).
  explicit TopologyOverlay(const Graph& base);
  explicit TopologyOverlay(const ImplicitGraph& base);

  /// Dispatch to the matching mutation below.
  void apply(const ChurnDelta& delta);

  /// Remove a live node: every incident edge goes dead as seen from its
  /// neighbours. Throws std::invalid_argument on out-of-range ids and on
  /// removing an already-removed node.
  void remove_node(Node u);

  /// Repair a removed node: incident edges come back unless the other
  /// endpoint is removed or the edge itself was explicitly removed. Throws
  /// std::invalid_argument on out-of-range ids and on repairing a node that
  /// is not removed (repair-of-live-node).
  void repair_node(Node u);

  /// Explicitly remove a base edge (u, v). Independent of node liveness —
  /// a node repair never resurrects an explicitly removed edge. Throws
  /// std::invalid_argument on out-of-range ids, non-adjacent pairs, and
  /// already-removed edges.
  void remove_edge(Node u, Node v);

  /// Repair an explicitly removed edge; it becomes usable again once both
  /// endpoints are live. Throws std::invalid_argument on out-of-range ids,
  /// non-adjacent pairs, and edges that were never explicitly removed.
  void repair_edge(Node u, Node v);

  [[nodiscard]] bool node_removed(Node u) const noexcept {
    return (removed_[u >> 6] >> (u & 63)) & 1;
  }

  /// Bit p = the edge from u to its p-th base neighbour is unusable (that
  /// neighbour is removed, or the edge was explicitly removed). Node u's
  /// own liveness is NOT encoded here — check node_removed(u) first.
  [[nodiscard]] std::uint64_t dead_mask(Node u) const noexcept {
    return dead_mask_[u];
  }

  [[nodiscard]] bool edge_removed(Node u, Node v) const noexcept {
    return removed_edges_.count(ordered(u, v)) != 0;
  }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] std::uint64_t live_count() const noexcept {
    return num_nodes_ - removed_count_;
  }
  [[nodiscard]] std::uint64_t removed_count() const noexcept {
    return removed_count_;
  }
  [[nodiscard]] std::size_t removed_edge_count() const noexcept {
    return removed_edges_.size();
  }
  /// True once any delta has ever been applied (repairs do not reset it):
  /// consumers use it to tell "pristine base" from "churned but healed".
  [[nodiscard]] bool ever_churned() const noexcept { return ever_churned_; }

 private:
  static std::pair<Node, Node> ordered(Node u, Node v) noexcept {
    return u < v ? std::pair<Node, Node>{u, v} : std::pair<Node, Node>{v, u};
  }

  void check_node(Node u, const char* what) const;
  /// Position of v in u's base adjacency, throwing when not adjacent.
  [[nodiscard]] unsigned edge_position(Node u, Node v, const char* what) const;
  [[nodiscard]] unsigned mirror_of(Node u, unsigned p) const;
  [[nodiscard]] unsigned degree_of(Node u) const;
  [[nodiscard]] Node neighbor_of(Node u, unsigned p) const;

  const Graph* csr_ = nullptr;  // exactly one of csr_ / implicit_ is set
  const ImplicitGraph* implicit_ = nullptr;
  std::size_t num_nodes_ = 0;
  std::uint64_t removed_count_ = 0;
  bool ever_churned_ = false;
  std::vector<std::uint64_t> removed_;    // node-indexed bitset
  std::vector<std::uint64_t> dead_mask_;  // one word per node
  std::set<std::pair<Node, Node>> removed_edges_;  // (min, max) endpoints
};

}  // namespace mmdiag
