// OverlayOracle — churn-as-syndrome masking.
//
// Set_Builder admits a node only on a 0-test result, so making every test
// that involves a removed node or dead edge read as 1 ("mismatch") keeps
// dead elements out of every run without touching the solver: they are
// simply never admitted, exactly as an all-faulty cluster would be. The
// wrapper deliberately exposes no row_bits, forcing the per-pair consult
// path, so masked tests are counted one by one — identically on the warm
// incremental path and the cold reference path, which is what makes counted
// look-ups comparable bit-for-bit between the two.
#pragma once

#include <cstdint>

#include "churn/topology_overlay.hpp"
#include "mm/oracle.hpp"

namespace mmdiag {

class OverlayOracle final : public SyndromeOracle {
 public:
  OverlayOracle(const TopologyOverlay& overlay, const SyndromeOracle& inner)
      : overlay_(overlay), inner_(inner) {}

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i,
                               unsigned j) const override {
    if (overlay_.node_removed(u)) return true;
    const std::uint64_t dead = overlay_.dead_mask(u);
    if ((dead >> i) & 1) return true;
    if ((dead >> j) & 1) return true;
    return inner_.test(u, i, j);
  }

 private:
  const TopologyOverlay& overlay_;
  const SyndromeOracle& inner_;
};

}  // namespace mmdiag
