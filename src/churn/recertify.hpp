// Incremental recertification of a calibrated partition under churn.
//
// The base calibration pins a partition plan; churn never re-walks the plan
// list (positions, seeds and component ids all address the *base* adjacency,
// which the overlay keeps frozen). What churn changes is whether each
// component still certifies: a component certifies on the churned topology
// when a fault-free restricted run from its first live node covers every
// live member with more than δ contributors — the same certificate the cold
// calibration computes, evaluated through the overlay mask.
//
// The incremental part rests on a structural fact of Set_Builder's
// restricted runs: membership eligibility is checked *before* the oracle is
// consulted, so a restricted run over component c reads only tests rooted at
// c's members about c's members. A delta at node u therefore cannot change
// the certification of any component but comp(u); an edge delta inside one
// component touches that component only, and a cross-component edge delta
// touches none (cross-component edges are never consulted by restricted
// runs). recertify_component() on the touched set is thus bit-identical —
// status, seed, contributor counts AND counted look-ups — to recertifying
// every component cold, which churn_test and the fuzz voice assert.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "churn/topology_overlay.hpp"
#include "core/set_builder.hpp"
#include "topology/partition.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class ComponentCertStatus : std::uint8_t {
  kCertified,  // fault-free restricted run covers all live members, > δ contributors
  kDegraded,   // live members exist but the certificate no longer holds
  kEmpty,      // every member removed — quiescent, nothing to diagnose
};

[[nodiscard]] std::string to_string(ComponentCertStatus status);

/// Per-component certification state on the churned topology. Equality is
/// the bit-identity the incremental-vs-cold differ checks, counted look-ups
/// included.
struct ComponentChurnState {
  ComponentCertStatus status = ComponentCertStatus::kEmpty;
  Node seed = kNoNode;            // first live member; kNoNode when empty
  std::uint64_t live_nodes = 0;   // members not removed by the overlay
  std::uint64_t contributors = 0; // internal nodes of the fault-free run
  std::uint64_t covered = 0;      // members reached by the fault-free run
  std::uint64_t lookups = 0;      // fault-free tests the certificate spent

  bool operator==(const ComponentChurnState&) const = default;
};

class ChurnRecertifier {
 public:
  ChurnRecertifier(const Graph& graph,
                   std::shared_ptr<const PartitionPlan> plan, unsigned delta,
                   ParentRule rule);
  ChurnRecertifier(const ImplicitGraph& graph,
                   std::shared_ptr<const PartitionPlan> plan, unsigned delta,
                   ParentRule rule);

  [[nodiscard]] std::uint32_t num_components() const noexcept {
    return num_components_;
  }

  /// Members of `comp` in ascending node order (plans like FixLastSymbolPlan
  /// have non-contiguous components, so an explicit index is kept).
  [[nodiscard]] std::span<const Node> component_members(
      std::uint32_t comp) const {
    return {comp_nodes_.data() + comp_offsets_[comp],
            comp_offsets_[comp + 1] - comp_offsets_[comp]};
  }

  /// Certify one component against the overlay (fault-free masked run).
  [[nodiscard]] ComponentChurnState recertify_component(
      const TopologyOverlay& overlay, std::uint32_t comp);

  /// Cold reference: recertify every component. The incremental path must
  /// agree with this bit for bit after any delta sequence.
  [[nodiscard]] std::vector<ComponentChurnState> recertify_all(
      const TopologyOverlay& overlay);

  /// Components whose certification `delta` can change — {comp(u)} for node
  /// ops, {comp(u)} for an intra-component edge, empty for a
  /// cross-component edge (see the header comment for why this is exact).
  [[nodiscard]] std::vector<std::uint32_t> touched_components(
      const ChurnDelta& delta) const;

 private:
  void build_member_index(std::size_t num_nodes);

  SetBuilder builder_;
  std::shared_ptr<const PartitionPlan> plan_;
  unsigned delta_ = 0;
  std::uint32_t num_components_ = 0;
  std::vector<std::size_t> comp_offsets_;  // CSR over comp_nodes_
  std::vector<Node> comp_nodes_;
};

}  // namespace mmdiag
