#include "churn/churn_stream.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "churn/recertify.hpp"
#include "util/rng.hpp"

namespace mmdiag {

namespace {

void append_nodes(std::string& out, const std::vector<Node>& nodes) {
  for (const Node f : nodes) {
    out += ' ';
    out += std::to_string(f);
  }
}

[[noreturn]] void parse_fail(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("churn stream line " + std::to_string(line_no) +
                              ": " + what);
}

[[nodiscard]] std::uint64_t parse_u64(const std::string& token,
                                      std::size_t line_no) {
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(token, &pos);
    if (pos != token.size()) parse_fail(line_no, "bad integer '" + token + "'");
    return value;
  } catch (const std::invalid_argument&) {
    parse_fail(line_no, "bad integer '" + token + "'");
  } catch (const std::out_of_range&) {
    parse_fail(line_no, "integer out of range '" + token + "'");
  }
}

[[nodiscard]] Node parse_node(const std::string& token, std::size_t line_no) {
  const std::uint64_t value = parse_u64(token, line_no);
  if (value > 0xFFFFFFFFull) parse_fail(line_no, "node id too large");
  return static_cast<Node>(value);
}

}  // namespace

std::string format_churn_stream(const ChurnStream& stream) {
  std::string out = "mmdiag-churn v1\n";
  out += "spec " + stream.spec + "\n";
  out += "delta " + std::to_string(stream.delta) + "\n";
  out += "seed " + std::to_string(stream.seed) + "\n";
  for (const ChurnEvent& event : stream.events) {
    switch (event.kind) {
      case ChurnEvent::Kind::kTopology: {
        if (event.expect_error) out += '!';
        out += to_string(event.delta.op);
        out += ' ';
        out += std::to_string(event.delta.u);
        if (event.delta.op == ChurnOp::kRemoveEdge ||
            event.delta.op == ChurnOp::kRepairEdge) {
          out += ' ';
          out += std::to_string(event.delta.v);
        }
        out += '\n';
        break;
      }
      case ChurnEvent::Kind::kDiagnose:
        out += "diagnose";
        append_nodes(out, event.faults);
        out += '\n';
        break;
      case ChurnEvent::Kind::kDiagnoseDelta:
        out += "diagnose-delta";
        append_nodes(out, event.faults);
        out += '\n';
        break;
    }
  }
  out += "end\n";
  return out;
}

ChurnStream parse_churn_stream(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  ChurnStream stream;
  bool saw_magic = false;
  bool saw_end = false;
  while (std::getline(in, line)) {
    ++line_no;
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line[0] == '#') continue;
    if (!saw_magic) {
      if (line != "mmdiag-churn v1") {
        parse_fail(line_no, "expected header 'mmdiag-churn v1'");
      }
      saw_magic = true;
      continue;
    }
    if (saw_end) parse_fail(line_no, "content after 'end'");
    if (line.rfind("spec ", 0) == 0) {
      stream.spec = line.substr(5);
      continue;
    }
    std::istringstream tokens(line);
    std::string keyword;
    tokens >> keyword;
    std::vector<std::string> args;
    for (std::string t; tokens >> t;) args.push_back(t);
    if (keyword == "end") {
      if (!args.empty()) parse_fail(line_no, "'end' takes no arguments");
      saw_end = true;
      continue;
    }
    if (keyword == "delta" || keyword == "seed") {
      if (args.size() != 1) parse_fail(line_no, "'" + keyword + "' takes one integer");
      const std::uint64_t value = parse_u64(args[0], line_no);
      if (keyword == "delta") {
        stream.delta = static_cast<unsigned>(value);
      } else {
        stream.seed = value;
      }
      continue;
    }
    ChurnEvent event;
    if (keyword == "diagnose" || keyword == "diagnose-delta") {
      event.kind = keyword == "diagnose" ? ChurnEvent::Kind::kDiagnose
                                         : ChurnEvent::Kind::kDiagnoseDelta;
      for (const std::string& a : args) {
        event.faults.push_back(parse_node(a, line_no));
      }
      stream.events.push_back(std::move(event));
      continue;
    }
    std::string op_name = keyword;
    if (!op_name.empty() && op_name[0] == '!') {
      event.expect_error = true;
      op_name = op_name.substr(1);
    }
    event.kind = ChurnEvent::Kind::kTopology;
    unsigned arity = 1;
    if (op_name == "remove-node") {
      event.delta.op = ChurnOp::kRemoveNode;
    } else if (op_name == "repair-node") {
      event.delta.op = ChurnOp::kRepairNode;
    } else if (op_name == "remove-edge") {
      event.delta.op = ChurnOp::kRemoveEdge;
      arity = 2;
    } else if (op_name == "repair-edge") {
      event.delta.op = ChurnOp::kRepairEdge;
      arity = 2;
    } else {
      parse_fail(line_no, "unknown event '" + keyword + "'");
    }
    if (args.size() != arity) {
      parse_fail(line_no, "'" + op_name + "' takes " + std::to_string(arity) +
                              " node id(s)");
    }
    event.delta.u = parse_node(args[0], line_no);
    if (arity == 2) event.delta.v = parse_node(args[1], line_no);
    stream.events.push_back(std::move(event));
  }
  if (!saw_magic) parse_fail(line_no, "empty stream");
  if (!saw_end) parse_fail(line_no, "missing 'end'");
  if (stream.spec.empty()) parse_fail(line_no, "missing 'spec'");
  return stream;
}

ChurnStream generate_churn_stream(DiagnosisEngine& engine,
                                  const ChurnStreamConfig& config) {
  const std::shared_ptr<const Calibration> cal =
      engine.calibration(config.spec, config.delta, ParentRule::kSpread);
  const bool implicit = cal->is_implicit();
  const std::size_t n = implicit ? cal->implicit_view->num_nodes()
                                 : cal->graph.num_nodes();
  const unsigned bound = cal->delta();
  auto deg = [&](Node u) -> unsigned {
    return implicit ? static_cast<unsigned>(cal->implicit_view->degree(u))
                    : static_cast<unsigned>(cal->graph.degree(u));
  };
  auto nbr = [&](Node u, unsigned p) -> Node {
    return implicit ? cal->implicit_view->neighbor(u, p)
                    : cal->graph.neighbor(u, p);
  };

  // Shadow state: every emitted (non-error) event is applied here so later
  // events stay legal against the evolving topology.
  TopologyOverlay shadow = implicit ? TopologyOverlay(*cal->implicit_view)
                                    : TopologyOverlay(cal->graph);
  const ChurnRecertifier members(
      // Only the member index is used; rule is irrelevant here.
      implicit ? ChurnRecertifier(*cal->implicit_view, cal->partition.plan,
                                  bound, cal->rule())
               : ChurnRecertifier(cal->graph, cal->partition.plan, bound,
                                  cal->rule()));
  std::vector<std::pair<Node, Node>> removed_edges;
  std::vector<Node> removed_nodes;

  ChurnStream stream;
  stream.spec = config.spec;
  stream.delta = config.delta;
  stream.seed = config.seed;

  Rng rng(mix64(config.seed, 0x636875726eull /* "churn" */));

  auto pick_live = [&]() -> Node {
    if (shadow.live_count() == 0) return kNoNode;
    for (unsigned attempt = 0; attempt < 64; ++attempt) {
      const Node u = static_cast<Node>(rng.below(n));
      if (!shadow.node_removed(u)) return u;
    }
    for (Node u = 0; u < n; ++u) {
      if (!shadow.node_removed(u)) return u;
    }
    return kNoNode;
  };

  auto emit_topology = [&](const ChurnDelta& delta, bool expect_error) {
    ChurnEvent event;
    event.kind = ChurnEvent::Kind::kTopology;
    event.delta = delta;
    event.expect_error = expect_error;
    stream.events.push_back(event);
    if (!expect_error) shadow.apply(delta);
  };

  auto emit_remove_node = [&](Node u) {
    emit_topology({ChurnOp::kRemoveNode, u, 0}, false);
    removed_nodes.push_back(u);
  };
  auto emit_repair_node = [&](Node u) {
    emit_topology({ChurnOp::kRepairNode, u, 0}, false);
    removed_nodes.erase(
        std::find(removed_nodes.begin(), removed_nodes.end(), u));
  };

  std::vector<Node> last_faults;
  auto sample_faults = [&](std::size_t k) {
    std::vector<Node> faults;
    for (unsigned attempt = 0; attempt < 16 + 8 * k && faults.size() < k;
         ++attempt) {
      const Node u = pick_live();
      if (u == kNoNode) break;
      if (std::find(faults.begin(), faults.end(), u) == faults.end()) {
        faults.push_back(u);
      }
    }
    std::sort(faults.begin(), faults.end());
    return faults;
  };
  auto emit_diagnose = [&](std::vector<Node> faults) {
    ChurnEvent event;
    event.kind = ChurnEvent::Kind::kDiagnose;
    event.faults = std::move(faults);
    last_faults = event.faults;
    stream.events.push_back(std::move(event));
  };

  bool did_double_remove = false;
  bool did_bad_repairs = false;
  bool did_component_kill = false;

  while (stream.events.size() < config.events) {
    const std::size_t at = stream.events.size();
    // Hostile setpieces at deterministic points in the stream.
    if (config.hostile && !did_double_remove && at >= config.events / 5) {
      did_double_remove = true;
      const Node u = pick_live();
      if (u != kNoNode) {
        emit_remove_node(u);
        emit_topology({ChurnOp::kRemoveNode, u, 0}, true);  // double-remove
        continue;
      }
    }
    if (config.hostile && !did_bad_repairs && at >= (2 * config.events) / 5) {
      did_bad_repairs = true;
      const Node u = pick_live();
      if (u != kNoNode) {
        // Repair of a live node, then an out-of-range id, then repair of a
        // never-removed edge — all must be rejected without state change.
        emit_topology({ChurnOp::kRepairNode, u, 0}, true);
        emit_topology({ChurnOp::kRemoveNode, static_cast<Node>(n), 0}, true);
        if (deg(u) > 0) {
          const Node v = nbr(u, rng.below(deg(u)));
          if (!shadow.edge_removed(u, v)) {
            emit_topology({ChurnOp::kRepairEdge, u, v}, true);
          }
        }
        continue;
      }
    }
    if (config.hostile && !did_component_kill &&
        at >= (3 * config.events) / 5) {
      did_component_kill = true;
      // Remove an entire component, diagnose in the degraded state (the
      // emptied component must answer quiescent, the rest normally), then
      // repair it all.
      const std::uint32_t comp = members.num_components() - 1;
      std::vector<Node> killed;
      for (const Node m : members.component_members(comp)) {
        if (!shadow.node_removed(m)) {
          emit_remove_node(m);
          killed.push_back(m);
        }
      }
      emit_diagnose(sample_faults(rng.below(bound + 1)));
      for (const Node m : killed) emit_repair_node(m);
      continue;
    }

    const std::uint64_t roll = rng.below(100);
    if (roll < 25) {
      // Keep a healthy majority live so diagnosis stays interesting.
      if (shadow.live_count() * 4 >= n * 3) {
        const Node u = pick_live();
        if (u != kNoNode) emit_remove_node(u);
        continue;
      }
      if (!removed_nodes.empty()) {
        emit_repair_node(removed_nodes[rng.below(removed_nodes.size())]);
      }
    } else if (roll < 40) {
      if (!removed_nodes.empty()) {
        emit_repair_node(removed_nodes[rng.below(removed_nodes.size())]);
      }
    } else if (roll < 50) {
      const Node u = pick_live();
      if (u != kNoNode && deg(u) > 0) {
        const Node v = nbr(u, rng.below(deg(u)));
        if (!shadow.edge_removed(u, v)) {
          emit_topology({ChurnOp::kRemoveEdge, u, v}, false);
          removed_edges.emplace_back(u, v);
        }
      }
    } else if (roll < 55) {
      if (!removed_edges.empty()) {
        const std::size_t i = rng.below(removed_edges.size());
        emit_topology(
            {ChurnOp::kRepairEdge, removed_edges[i].first,
             removed_edges[i].second},
            false);
        removed_edges.erase(removed_edges.begin() +
                            static_cast<std::ptrdiff_t>(i));
      }
    } else if (roll < 80) {
      // Mostly within the bound; occasionally one beyond it.
      const std::size_t k = rng.below(bound + 1) + (rng.below(8) == 0 ? 1 : 0);
      emit_diagnose(sample_faults(k));
    } else {
      // Syndrome delta: usually flip one node relative to the previous
      // fault list; every third or so repeats it verbatim — an
      // unchanged-row request, the pure cache-hit path.
      std::vector<Node> faults = last_faults;
      if (rng.below(3) != 0) {
        const Node u = pick_live();
        if (u != kNoNode) {
          const auto it = std::find(faults.begin(), faults.end(), u);
          if (it != faults.end()) {
            faults.erase(it);
          } else if (faults.size() <= bound) {
            faults.push_back(u);
            std::sort(faults.begin(), faults.end());
          }
        }
      }
      ChurnEvent event;
      event.kind = ChurnEvent::Kind::kDiagnoseDelta;
      event.faults = std::move(faults);
      last_faults = event.faults;
      stream.events.push_back(std::move(event));
    }
  }
  return stream;
}

}  // namespace mmdiag
