// ChurnEngine — online diagnosis on a churned topology.
//
// Layered on DiagnosisEngine: the engine owns the immutable base
// calibration (shared, cache-evictable); the ChurnEngine owns the mutable
// part — a TopologyOverlay of applied deltas, the per-component
// certification state kept incrementally up to date, and a solve cache that
// lets syndrome-delta requests re-solve only the components whose rows
// changed.
//
// Degradation is per-component, following the component-diagnosability
// results (PAPERS.md): after removals, some components keep their
// certificate and keep serving exact answers while others are reported
// degraded with the evidence (contributor count, cover, unreached nodes)
// instead of failing the whole topology.
//
// The solve itself generalises the §5 driver to a churned, possibly
// disconnected live graph: probe certified components in ascending order;
// every healthy probe whose component is not yet classified drives one
// unrestricted run from that component's seed (so each live "island" with a
// certified component gets its own run); faults are the live boundaries
// N(U_r) of those runs (Theorem 1 per island); components are then
// classified from the union of run members and faults. Everything —
// probe order, run seeds, boundary scans, counted look-ups — is
// deterministic, so the warm incremental path is bit-identical to
// diagnose_cold(), the cold reference that recertifies and re-solves
// everything from scratch.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "churn/recertify.hpp"
#include "churn/topology_overlay.hpp"
#include "core/set_builder.hpp"
#include "engine/engine.hpp"

namespace mmdiag {

enum class ComponentOutcome : std::uint8_t {
  kHealthy,              // classified; no faults inside
  kResolved,             // classified; faults pinned exactly
  kEmpty,                // all members removed — quiescent
  kDegradedUncertified,  // certificate lost to churn; not fully classified
  kDegradedUnreached,    // still certified, but live nodes unreachable from
                         // every healthy run (cut off by faults/churn)
};

[[nodiscard]] std::string to_string(ComponentOutcome outcome);

/// Per-component answer. `faults` lists faults pinned inside the component
/// (possibly partial knowledge for degraded outcomes); `detail` carries the
/// diagnosability evidence for degraded components. Equality is the
/// warm-vs-cold bit-identity contract.
struct ComponentDiagnosis {
  ComponentOutcome outcome = ComponentOutcome::kEmpty;
  std::vector<Node> faults;
  std::string detail;
  bool probed = false;         // probe executed during this solve
  bool probe_healthy = false;  // probe certified all-healthy
  std::uint64_t probe_lookups = 0;

  bool operator==(const ComponentDiagnosis&) const = default;
};

/// One unrestricted run the solve performed (one per live island that had a
/// healthy certified probe).
struct SolveRecord {
  std::uint32_t leader = 0;  // component whose seed drove the run
  std::uint64_t lookups = 0;
  std::uint64_t members = 0;
  unsigned rounds = 0;

  bool operator==(const SolveRecord&) const = default;
};

struct ChurnDiagnosis {
  /// True iff every component is kHealthy / kResolved / kEmpty.
  bool success = false;
  std::vector<Node> faults;  // union over components, ascending
  std::string failure_reason;
  std::vector<ComponentDiagnosis> components;
  std::vector<SolveRecord> runs;

  // --- accounting below: per-call costs, excluded from warm-vs-cold
  // identity (a cache hit spending fewer look-ups is the whole point).
  std::uint64_t spent_lookups = 0;    // masked look-ups this call performed
  std::size_t components_reprobed = 0;
  std::size_t components_reused = 0;  // probes served from the solve cache
  bool reused_cache = false;
};

/// Warm-vs-cold identity: everything above the accounting divider.
[[nodiscard]] bool identical(const ChurnDiagnosis& a, const ChurnDiagnosis& b);

struct ChurnEngineOptions {
  unsigned delta = 0;  // 0 = topology default fault bound
  ParentRule rule = ParentRule::kSpread;        // probe/certification rule
  ParentRule final_rule = ParentRule::kLeastFirst;  // unrestricted runs
};

class ChurnEngine {
 public:
  /// Pulls (or builds) the base calibration through the engine's cache.
  /// Throws what DiagnosisEngine::calibration throws.
  ChurnEngine(DiagnosisEngine& engine, const std::string& spec,
              ChurnEngineOptions options = {});

  ChurnEngine(const ChurnEngine&) = delete;
  ChurnEngine& operator=(const ChurnEngine&) = delete;

  /// Apply one topology delta: validates (std::invalid_argument, strong
  /// guarantee — a rejected delta changes nothing), updates the overlay,
  /// recertifies exactly the touched components, and drops the solve cache
  /// (unrestricted runs read masks topology-wide).
  void apply(const ChurnDelta& delta);

  /// Full solve against the current certification state; binds the solve
  /// cache to this oracle's current rows.
  [[nodiscard]] ChurnDiagnosis diagnose(const SyndromeOracle& oracle);

  /// Syndrome-delta solve: `changed_nodes` are the nodes whose *own rows*
  /// may differ from the rows the cache was built on (for a fault flip at f
  /// that is f and its neighbours). Re-probes only components owning a
  /// changed row and re-runs the global phase only if a changed row belongs
  /// to a run; everything else is served from the cache, bit-identical to a
  /// fresh diagnose() on the same oracle.
  [[nodiscard]] ChurnDiagnosis diagnose_delta(
      const SyndromeOracle& oracle, const std::vector<Node>& changed_nodes);

  /// Cold reference: recertify every component from scratch and solve with
  /// no cache. Never touches the incremental state — the harness calls this
  /// after every event to differentially check the warm path.
  [[nodiscard]] ChurnDiagnosis diagnose_cold(const SyndromeOracle& oracle);

  /// Cold recertification of every component (reference for certification()).
  [[nodiscard]] std::vector<ComponentChurnState> recertify_cold();

  /// Drop the solve cache explicitly (e.g. the oracle mutated in ways the
  /// caller cannot express as changed_nodes).
  void invalidate_solve_cache();

  /// Retire the base calibration from the underlying engine's cache
  /// (explicit eviction; see DiagnosisEngine::invalidate). This ChurnEngine
  /// keeps working — it shares ownership of the bundle.
  std::size_t retire_calibration();

  [[nodiscard]] std::vector<ComponentChurnState> certification() const;
  [[nodiscard]] const TopologyOverlay& overlay() const noexcept {
    return overlay_;
  }
  [[nodiscard]] const Calibration& calibration() const noexcept {
    return *cal_;
  }
  [[nodiscard]] std::uint32_t num_components() const noexcept {
    return recert_.num_components();
  }
  [[nodiscard]] unsigned delta() const noexcept { return cal_->delta(); }
  /// Components recertified by apply() since construction (the incremental
  /// work actually done; the cold equivalent would be
  /// num_components() per apply()).
  [[nodiscard]] std::uint64_t components_recertified() const;

 private:
  struct SolveOutput {
    bool success = false;
    std::vector<Node> faults;
    std::string failure_reason;
    std::vector<ComponentDiagnosis> components;
    std::vector<SolveRecord> runs;
    std::uint64_t spent_lookups = 0;
    std::vector<std::uint64_t> run_members;  // union bitset over all runs
  };

  [[nodiscard]] SolveOutput full_solve(
      const SyndromeOracle& oracle,
      const std::vector<ComponentChurnState>& cert);
  [[nodiscard]] static ChurnDiagnosis to_diagnosis(const SolveOutput& out);

  DiagnosisEngine* engine_;
  std::shared_ptr<const Calibration> cal_;
  const PartitionPlan* plan_;
  unsigned delta_;
  TopologyOverlay overlay_;
  ChurnRecertifier recert_;
  SetBuilder probe_builder_;
  SetBuilder final_builder_;

  mutable std::mutex mu_;
  std::vector<ComponentChurnState> cert_;
  std::uint64_t components_recertified_ = 0;

  bool cache_valid_ = false;
  SolveOutput cache_;
};

}  // namespace mmdiag
