#include "churn/harness.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "churn/churn_engine.hpp"
#include "mm/fault_set.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "util/rng.hpp"

namespace mmdiag {

namespace {

[[nodiscard]] std::string summarize(const ChurnDiagnosis& d) {
  std::string s = "{success=" + std::to_string(d.success) +
                  " faults=" + std::to_string(d.faults.size()) +
                  " runs=" + std::to_string(d.runs.size());
  if (!d.failure_reason.empty()) s += " reason='" + d.failure_reason + "'";
  std::size_t degraded = 0;
  for (const ComponentDiagnosis& cd : d.components) {
    if (cd.outcome == ComponentOutcome::kDegradedUncertified ||
        cd.outcome == ComponentOutcome::kDegradedUnreached) {
      ++degraded;
    }
  }
  s += " degraded=" + std::to_string(degraded) + "}";
  return s;
}

[[nodiscard]] std::string first_component_diff(const ChurnDiagnosis& warm,
                                               const ChurnDiagnosis& cold) {
  const std::size_t n =
      std::min(warm.components.size(), cold.components.size());
  for (std::size_t c = 0; c < n; ++c) {
    if (!(warm.components[c] == cold.components[c])) {
      return " first-diff component " + std::to_string(c) + ": warm " +
             to_string(warm.components[c].outcome) + "/" +
             std::to_string(warm.components[c].probe_lookups) +
             " vs cold " + to_string(cold.components[c].outcome) + "/" +
             std::to_string(cold.components[c].probe_lookups);
    }
  }
  return "";
}

}  // namespace

ChurnHarnessReport run_churn_stream(DiagnosisEngine& engine,
                                    const ChurnStream& stream,
                                    const ChurnHarnessOptions& options) {
  ChurnHarnessReport report;
  ChurnEngineOptions churn_options;
  churn_options.delta = stream.delta;
  ChurnEngine churn(engine, stream.spec, churn_options);
  const Calibration& cal = churn.calibration();
  if (options.use_table_oracle && cal.is_implicit()) {
    throw std::invalid_argument(
        "churn harness: table oracles need a CSR calibration");
  }
  const std::size_t n = churn.overlay().num_nodes();
  // One fixed behavior seed for the whole stream: syndrome rows then depend
  // only on fault membership, so diagnose-delta's changed-row set is exactly
  // (F_prev Δ F_new) plus its neighbourhood.
  const std::uint64_t behavior_seed = mix64(stream.seed, 0xD1A6ull);

  auto changed_rows = [&](std::vector<Node> before, std::vector<Node> after) {
    std::sort(before.begin(), before.end());
    std::sort(after.begin(), after.end());
    std::vector<Node> delta_nodes;
    std::set_symmetric_difference(before.begin(), before.end(), after.begin(),
                                  after.end(),
                                  std::back_inserter(delta_nodes));
    std::vector<Node> changed = delta_nodes;
    for (const Node u : delta_nodes) {
      if (cal.is_implicit()) {
        const auto neighbors = cal.implicit_view->neighbors(u);
        for (std::size_t p = 0; p < neighbors.size(); ++p) {
          changed.push_back(neighbors[p]);
        }
      } else {
        for (const Node w : cal.graph.neighbors(u)) changed.push_back(w);
      }
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());
    return changed;
  };

  auto diverge = [&](std::size_t index, const std::string& what) {
    report.divergences.push_back("event " + std::to_string(index) + ": " +
                                 what);
  };

  auto check_cert = [&](std::size_t index) {
    const std::vector<ComponentChurnState> warm = churn.certification();
    const std::vector<ComponentChurnState> cold = churn.recertify_cold();
    report.warm_recert_components = churn.components_recertified();
    report.cold_recert_components += cold.size();
    for (std::size_t c = 0; c < warm.size(); ++c) {
      if (!(warm[c] == cold[c])) {
        diverge(index,
                "incremental certification of component " + std::to_string(c) +
                    " diverges from cold (warm " + to_string(warm[c].status) +
                    " lookups " + std::to_string(warm[c].lookups) +
                    ", cold " + to_string(cold[c].status) + " lookups " +
                    std::to_string(cold[c].lookups) + ")");
        break;
      }
    }
  };

  std::vector<Node> current_faults;
  bool have_solve = false;

  for (std::size_t index = 0; index < stream.events.size(); ++index) {
    const ChurnEvent& event = stream.events[index];
    ++report.events;
    switch (event.kind) {
      case ChurnEvent::Kind::kTopology: {
        ++report.topology_events;
        if (event.expect_error) {
          ++report.expected_errors;
          const std::vector<ComponentChurnState> before =
              churn.certification();
          const std::uint64_t live_before = churn.overlay().live_count();
          bool threw = false;
          try {
            churn.apply(event.delta);
          } catch (const std::invalid_argument&) {
            threw = true;
          }
          if (!threw) {
            diverge(index, "expected-invalid " + to_string(event.delta.op) +
                               " was accepted");
          } else if (churn.overlay().live_count() != live_before ||
                     !(churn.certification() == before)) {
            diverge(index, "rejected " + to_string(event.delta.op) +
                               " mutated state");
          }
          break;
        }
        churn.apply(event.delta);
        check_cert(index);
        break;
      }
      case ChurnEvent::Kind::kDiagnose:
      case ChurnEvent::Kind::kDiagnoseDelta: {
        const bool is_delta = event.kind == ChurnEvent::Kind::kDiagnoseDelta;
        if (is_delta) {
          ++report.delta_events;
        } else {
          ++report.diagnose_events;
        }
        const FaultSet faults(n, event.faults);
        std::unique_ptr<Syndrome> table;
        std::unique_ptr<SyndromeOracle> oracle;
        if (options.use_table_oracle) {
          table = std::make_unique<Syndrome>(generate_syndrome(
              cal.graph, faults, options.behavior, behavior_seed));
          oracle = std::make_unique<TableOracle>(cal.graph, *table);
        } else if (cal.is_implicit()) {
          oracle = std::make_unique<ImplicitLazyOracle>(
              *cal.implicit_view, faults, options.behavior, behavior_seed);
        } else {
          oracle = std::make_unique<LazyOracle>(cal.graph, faults,
                                                options.behavior,
                                                behavior_seed);
        }
        ChurnDiagnosis warm;
        if (is_delta && have_solve) {
          warm = churn.diagnose_delta(
              *oracle, changed_rows(current_faults, event.faults));
        } else {
          warm = churn.diagnose(*oracle);
        }
        const ChurnDiagnosis cold = churn.diagnose_cold(*oracle);
        if (!identical(warm, cold)) {
          diverge(index,
                  std::string(is_delta ? "diagnose-delta" : "diagnose") +
                      " warm " + summarize(warm) + " != cold " +
                      summarize(cold) + first_component_diff(warm, cold));
        }
        if (warm.reused_cache) ++report.cache_reuses;
        for (const ComponentDiagnosis& cd : warm.components) {
          if (cd.outcome == ComponentOutcome::kDegradedUncertified ||
              cd.outcome == ComponentOutcome::kDegradedUnreached) {
            ++report.degraded_components_seen;
          } else if (cd.outcome == ComponentOutcome::kEmpty) {
            ++report.empty_components_seen;
          }
        }
        current_faults = event.faults;
        have_solve = true;
        break;
      }
    }
  }
  return report;
}

}  // namespace mmdiag
