#include "churn/recertify.hpp"

#include <numeric>

#include "churn/overlay_oracle.hpp"
#include "mm/oracle.hpp"

namespace mmdiag {

std::string to_string(ComponentCertStatus status) {
  switch (status) {
    case ComponentCertStatus::kCertified:
      return "certified";
    case ComponentCertStatus::kDegraded:
      return "degraded";
    case ComponentCertStatus::kEmpty:
      return "empty";
  }
  return "unknown";
}

ChurnRecertifier::ChurnRecertifier(const Graph& graph,
                                   std::shared_ptr<const PartitionPlan> plan,
                                   unsigned delta, ParentRule rule)
    : builder_(graph, rule), plan_(std::move(plan)), delta_(delta) {
  num_components_ = plan_->num_components();
  build_member_index(graph.num_nodes());
}

ChurnRecertifier::ChurnRecertifier(const ImplicitGraph& graph,
                                   std::shared_ptr<const PartitionPlan> plan,
                                   unsigned delta, ParentRule rule)
    : builder_(graph, rule), plan_(std::move(plan)), delta_(delta) {
  num_components_ = plan_->num_components();
  build_member_index(graph.num_nodes());
}

void ChurnRecertifier::build_member_index(std::size_t num_nodes) {
  // Counting sort by component over ascending node ids, so each component's
  // member list comes out sorted — the first entry that is live is the
  // deterministic recertification seed.
  std::vector<std::size_t> counts(num_components_ + 1, 0);
  for (Node u = 0; u < num_nodes; ++u) {
    ++counts[plan_->component_of(u) + 1];
  }
  std::partial_sum(counts.begin(), counts.end(), counts.begin());
  comp_offsets_ = counts;
  comp_nodes_.resize(num_nodes);
  for (Node u = 0; u < num_nodes; ++u) {
    comp_nodes_[counts[plan_->component_of(u)]++] = u;
  }
}

ComponentChurnState ChurnRecertifier::recertify_component(
    const TopologyOverlay& overlay, std::uint32_t comp) {
  ComponentChurnState state;
  const std::span<const Node> members = component_members(comp);
  for (const Node u : members) {
    if (overlay.node_removed(u)) continue;
    if (state.seed == kNoNode) state.seed = u;
    ++state.live_nodes;
  }
  if (state.live_nodes == 0) {
    state.status = ComponentCertStatus::kEmpty;
    return state;
  }
  const FaultFreeOracle fault_free;
  const OverlayOracle masked(overlay, fault_free);
  masked.reset_lookups();
  const SetBuilderResult run =
      builder_.run_restricted(masked, state.seed, delta_, *plan_, comp);
  state.contributors = run.contributors;
  state.covered = run.members.size();
  state.lookups = masked.lookups();
  state.status = (run.all_healthy && state.covered == state.live_nodes)
                     ? ComponentCertStatus::kCertified
                     : ComponentCertStatus::kDegraded;
  return state;
}

std::vector<ComponentChurnState> ChurnRecertifier::recertify_all(
    const TopologyOverlay& overlay) {
  std::vector<ComponentChurnState> states;
  states.reserve(num_components_);
  for (std::uint32_t c = 0; c < num_components_; ++c) {
    states.push_back(recertify_component(overlay, c));
  }
  return states;
}

std::vector<std::uint32_t> ChurnRecertifier::touched_components(
    const ChurnDelta& delta) const {
  switch (delta.op) {
    case ChurnOp::kRemoveNode:
    case ChurnOp::kRepairNode:
      return {plan_->component_of(delta.u)};
    case ChurnOp::kRemoveEdge:
    case ChurnOp::kRepairEdge: {
      const std::uint32_t cu = plan_->component_of(delta.u);
      const std::uint32_t cv = plan_->component_of(delta.v);
      // Restricted runs never consult cross-component edges, so an edge
      // between components cannot change any certificate.
      if (cu == cv) return {cu};
      return {};
    }
  }
  return {};
}

}  // namespace mmdiag
