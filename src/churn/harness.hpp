// Churn harness — replay a stream, differentially checking warm vs cold.
//
// After every topology event the incremental certification state must equal
// a cold recertification of every component; after every diagnose /
// diagnose-delta event the warm answer (incremental certification + solve
// cache) must be bit-identical — outcomes, faults, failure strings AND
// counted look-ups — to diagnose_cold(), which recertifies and re-solves
// everything from scratch. Expected-error events must throw
// std::invalid_argument and leave the state unchanged. Any violation
// becomes a divergence string; the report doubles as the accounting source
// for the warm-vs-cold work ratio (components recertified incrementally vs
// what cold recalibration would have recertified).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "churn/churn_stream.hpp"
#include "engine/engine.hpp"
#include "mm/behavior.hpp"

namespace mmdiag {

struct ChurnHarnessOptions {
  /// Materialise a syndrome table per diagnose event (CSR calibrations
  /// only; throws std::invalid_argument on implicit ones) instead of the
  /// default on-demand LazyOracle.
  bool use_table_oracle = false;
  FaultyBehavior behavior = FaultyBehavior::kRandom;
};

struct ChurnHarnessReport {
  std::size_t events = 0;
  std::size_t topology_events = 0;
  std::size_t diagnose_events = 0;
  std::size_t delta_events = 0;
  std::size_t expected_errors = 0;
  std::size_t degraded_components_seen = 0;  // across all diagnose events
  std::size_t empty_components_seen = 0;
  std::size_t cache_reuses = 0;  // diagnose-delta answers served from cache
  /// Incremental recertification work vs what cold recalibration would do:
  /// the warm-vs-cold headline ratio of BENCH_churn.json.
  std::uint64_t warm_recert_components = 0;
  std::uint64_t cold_recert_components = 0;
  std::vector<std::string> divergences;

  [[nodiscard]] bool ok() const noexcept { return divergences.empty(); }
};

/// Replay `stream` against a ChurnEngine built through `engine`. Never
/// throws on divergence — everything lands in the report (setup errors,
/// e.g. an unknown spec, still propagate).
[[nodiscard]] ChurnHarnessReport run_churn_stream(
    DiagnosisEngine& engine, const ChurnStream& stream,
    const ChurnHarnessOptions& options = {});

}  // namespace mmdiag
