#include "churn/topology_overlay.hpp"

#include <stdexcept>
#include <string>

namespace mmdiag {

namespace {

[[noreturn]] void throw_churn(const char* what, const std::string& detail) {
  throw std::invalid_argument(std::string("churn: ") + what + ": " + detail);
}

}  // namespace

std::string to_string(ChurnOp op) {
  switch (op) {
    case ChurnOp::kRemoveNode:
      return "remove-node";
    case ChurnOp::kRepairNode:
      return "repair-node";
    case ChurnOp::kRemoveEdge:
      return "remove-edge";
    case ChurnOp::kRepairEdge:
      return "repair-edge";
  }
  return "unknown";
}

TopologyOverlay::TopologyOverlay(const Graph& base)
    : csr_(&base), num_nodes_(base.num_nodes()) {
  if (num_nodes_ > 0 && base.max_degree() > 64) {
    throw std::invalid_argument(
        "churn: TopologyOverlay requires degree <= 64, got " +
        std::to_string(base.max_degree()));
  }
  removed_.assign((num_nodes_ + 63) / 64, 0);
  dead_mask_.assign(num_nodes_, 0);
}

TopologyOverlay::TopologyOverlay(const ImplicitGraph& base)
    : implicit_(&base), num_nodes_(base.num_nodes()) {
  // ImplicitGraph::kMaxDegree is already 64, so no degree check is needed.
  removed_.assign((num_nodes_ + 63) / 64, 0);
  dead_mask_.assign(num_nodes_, 0);
}

unsigned TopologyOverlay::degree_of(Node u) const {
  return csr_ ? static_cast<unsigned>(csr_->degree(u))
              : static_cast<unsigned>(implicit_->degree(u));
}

Node TopologyOverlay::neighbor_of(Node u, unsigned p) const {
  return csr_ ? csr_->neighbor(u, p) : implicit_->neighbor(u, p);
}

unsigned TopologyOverlay::mirror_of(Node u, unsigned p) const {
  const int m = csr_ ? csr_->mirror_position(u, p)
                     : implicit_->mirror_position(u, p);
  return static_cast<unsigned>(m);
}

void TopologyOverlay::check_node(Node u, const char* what) const {
  if (u >= num_nodes_) {
    throw_churn(what, "node id " + std::to_string(u) +
                          " out of range (num_nodes = " +
                          std::to_string(num_nodes_) + ")");
  }
}

unsigned TopologyOverlay::edge_position(Node u, Node v,
                                        const char* what) const {
  check_node(u, what);
  check_node(v, what);
  if (u == v) throw_churn(what, "self-edge (" + std::to_string(u) + ")");
  const int p = csr_ ? csr_->neighbor_position(u, v)
                     : implicit_->neighbor_position(u, v);
  if (p < 0) {
    throw_churn(what, "(" + std::to_string(u) + ", " + std::to_string(v) +
                          ") is not a base edge");
  }
  return static_cast<unsigned>(p);
}

void TopologyOverlay::apply(const ChurnDelta& delta) {
  switch (delta.op) {
    case ChurnOp::kRemoveNode:
      remove_node(delta.u);
      return;
    case ChurnOp::kRepairNode:
      repair_node(delta.u);
      return;
    case ChurnOp::kRemoveEdge:
      remove_edge(delta.u, delta.v);
      return;
    case ChurnOp::kRepairEdge:
      repair_edge(delta.u, delta.v);
      return;
  }
  throw std::invalid_argument("churn: unknown delta op");
}

void TopologyOverlay::remove_node(Node u) {
  check_node(u, "remove-node");
  if (node_removed(u)) {
    throw_churn("remove-node",
                "node " + std::to_string(u) + " is already removed");
  }
  removed_[u >> 6] |= std::uint64_t{1} << (u & 63);
  ++removed_count_;
  ever_churned_ = true;
  const unsigned deg = degree_of(u);
  for (unsigned p = 0; p < deg; ++p) {
    const Node w = neighbor_of(u, p);
    dead_mask_[w] |= std::uint64_t{1} << mirror_of(u, p);
  }
}

void TopologyOverlay::repair_node(Node u) {
  check_node(u, "repair-node");
  if (!node_removed(u)) {
    throw_churn("repair-node",
                "node " + std::to_string(u) + " is not removed");
  }
  removed_[u >> 6] &= ~(std::uint64_t{1} << (u & 63));
  --removed_count_;
  ever_churned_ = true;
  const unsigned deg = degree_of(u);
  for (unsigned p = 0; p < deg; ++p) {
    const Node w = neighbor_of(u, p);
    // The edge to w comes back only if nothing else keeps it dead: w itself
    // removed, or the edge explicitly removed.
    if (!node_removed(w) && !edge_removed(u, w)) {
      dead_mask_[w] &= ~(std::uint64_t{1} << mirror_of(u, p));
    }
    // u's own view of the edge: dead iff w is removed or the edge is.
    if (node_removed(w) || edge_removed(u, w)) {
      dead_mask_[u] |= std::uint64_t{1} << p;
    } else {
      dead_mask_[u] &= ~(std::uint64_t{1} << p);
    }
  }
}

void TopologyOverlay::remove_edge(Node u, Node v) {
  const unsigned pu = edge_position(u, v, "remove-edge");
  if (edge_removed(u, v)) {
    throw_churn("remove-edge", "edge (" + std::to_string(u) + ", " +
                                   std::to_string(v) + ") is already removed");
  }
  const unsigned pv = mirror_of(u, pu);
  removed_edges_.insert(ordered(u, v));
  dead_mask_[u] |= std::uint64_t{1} << pu;
  dead_mask_[v] |= std::uint64_t{1} << pv;
  ever_churned_ = true;
}

void TopologyOverlay::repair_edge(Node u, Node v) {
  const unsigned pu = edge_position(u, v, "repair-edge");
  if (!edge_removed(u, v)) {
    throw_churn("repair-edge",
                "edge (" + std::to_string(u) + ", " + std::to_string(v) +
                    ") was not explicitly removed");
  }
  const unsigned pv = mirror_of(u, pu);
  removed_edges_.erase(ordered(u, v));
  ever_churned_ = true;
  // The edge becomes usable from an endpoint only if the other endpoint is
  // live; a removed endpoint keeps its side of the mask set.
  if (!node_removed(v)) dead_mask_[u] &= ~(std::uint64_t{1} << pu);
  if (!node_removed(u)) dead_mask_[v] &= ~(std::uint64_t{1} << pv);
}

}  // namespace mmdiag
