// Churn streams — replayable fault-injection scripts for the churn engine.
//
// A stream is a deterministic interleaving of topology deltas (remove/repair
// of nodes and edges), full diagnose requests, and syndrome-delta requests,
// with hostile events mixed in: double-remove, repair-of-live-node,
// out-of-range ids (all marked `!` = "must be rejected, state unchanged")
// and the removal of an entire component (which must degrade to the
// quiescent empty-component answer, not fail the topology). The harness
// replays a stream twice per step — warm incremental vs cold full
// recalibration — and reports any divergence; the generator derives streams
// from a seed so the fuzzer, the CLI and the bench all exercise the same
// distribution.
//
// Text format (one event per line, `#` comments, `!` prefixes an event that
// must throw std::invalid_argument):
//
//   mmdiag-churn v1
//   spec hypercube 6
//   delta 0
//   seed 42
//   remove-node 12
//   !remove-node 12
//   remove-edge 3 7
//   diagnose 3 19
//   diagnose-delta 3 19 40
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "churn/topology_overlay.hpp"
#include "engine/engine.hpp"
#include "util/types.hpp"

namespace mmdiag {

struct ChurnEvent {
  enum class Kind : std::uint8_t {
    kTopology,       // one ChurnDelta
    kDiagnose,       // full solve of the fault list
    kDiagnoseDelta,  // syndrome-delta solve relative to the previous list
  };
  Kind kind = Kind::kTopology;
  ChurnDelta delta;          // kTopology only
  bool expect_error = false; // kTopology only: apply() must reject this
  std::vector<Node> faults;  // kDiagnose / kDiagnoseDelta only
};

struct ChurnStream {
  std::string spec;
  unsigned delta = 0;     // fault bound override (0 = topology default)
  std::uint64_t seed = 0; // faulty-behavior seed (fixed for the stream)
  std::vector<ChurnEvent> events;
};

/// Render to the text format above (parse round-trips exactly).
[[nodiscard]] std::string format_churn_stream(const ChurnStream& stream);

/// Parse the text format; throws std::invalid_argument with a line number
/// on malformed input.
[[nodiscard]] ChurnStream parse_churn_stream(const std::string& text);

struct ChurnStreamConfig {
  std::string spec;
  unsigned delta = 0;        // fault bound override (0 = topology default)
  std::uint64_t seed = 1;    // generator seed (also the stream's seed)
  std::size_t events = 32;   // approximate event count (hostile sequences
                             // may overshoot by a component's size)
  bool hostile = true;       // inject expected-error ops + component kill
};

/// Deterministically generate a valid stream: every topology event is legal
/// against a shadow overlay at the point it is emitted (except the `!`
/// events, which are deliberately illegal). Pulls the spec's calibration
/// through `engine` to know adjacency and component membership.
[[nodiscard]] ChurnStream generate_churn_stream(DiagnosisEngine& engine,
                                                const ChurnStreamConfig& config);

}  // namespace mmdiag
