#include "churn/churn_engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "churn/overlay_oracle.hpp"

namespace mmdiag {

namespace {

[[nodiscard]] bool get_bit(const std::vector<std::uint64_t>& bits,
                           Node v) noexcept {
  return (bits[v >> 6] >> (v & 63)) & 1;
}

void set_bit(std::vector<std::uint64_t>& bits, Node v) noexcept {
  bits[v >> 6] |= std::uint64_t{1} << (v & 63);
}

/// Theorem 1 on the live subgraph: nodes outside `members` that still have a
/// usable edge into it. Removed nodes and dead edges are excluded — a
/// removed node is not a fault, it is simply absent.
template <class GV>
std::vector<Node> live_boundary(const GV& g, const TopologyOverlay& overlay,
                                const std::vector<std::uint64_t>& members) {
  std::vector<Node> boundary;
  const std::size_t n = overlay.num_nodes();
  for (Node v = 0; v < n; ++v) {
    if (overlay.node_removed(v)) continue;
    if (get_bit(members, v)) continue;
    const std::uint64_t dead = overlay.dead_mask(v);
    const unsigned deg = static_cast<unsigned>(g.degree(v));
    for (unsigned p = 0; p < deg; ++p) {
      if ((dead >> p) & 1) continue;
      if (get_bit(members, g.neighbor(v, p))) {
        boundary.push_back(v);
        break;
      }
    }
  }
  return boundary;
}

}  // namespace

std::string to_string(ComponentOutcome outcome) {
  switch (outcome) {
    case ComponentOutcome::kHealthy:
      return "healthy";
    case ComponentOutcome::kResolved:
      return "resolved";
    case ComponentOutcome::kEmpty:
      return "empty";
    case ComponentOutcome::kDegradedUncertified:
      return "degraded-uncertified";
    case ComponentOutcome::kDegradedUnreached:
      return "degraded-unreached";
  }
  return "unknown";
}

bool identical(const ChurnDiagnosis& a, const ChurnDiagnosis& b) {
  return a.success == b.success && a.faults == b.faults &&
         a.failure_reason == b.failure_reason &&
         a.components == b.components && a.runs == b.runs;
}

ChurnEngine::ChurnEngine(DiagnosisEngine& engine, const std::string& spec,
                         ChurnEngineOptions options)
    : engine_(&engine),
      cal_(engine.calibration(spec, options.delta, options.rule,
                              /*validate_all=*/true)),
      plan_(cal_->partition.plan.get()),
      delta_(cal_->delta()),
      overlay_(cal_->is_implicit() ? TopologyOverlay(*cal_->implicit_view)
                                   : TopologyOverlay(cal_->graph)),
      recert_(cal_->is_implicit()
                  ? ChurnRecertifier(*cal_->implicit_view, cal_->partition.plan,
                                     delta_, cal_->rule())
                  : ChurnRecertifier(cal_->graph, cal_->partition.plan, delta_,
                                     cal_->rule())),
      probe_builder_(cal_->is_implicit()
                         ? SetBuilder(*cal_->implicit_view, cal_->rule())
                         : SetBuilder(cal_->graph, cal_->rule())),
      final_builder_(cal_->is_implicit()
                         ? SetBuilder(*cal_->implicit_view, options.final_rule)
                         : SetBuilder(cal_->graph, options.final_rule)) {
  // The pristine overlay replays the calibration runs verbatim, so every
  // component starts certified.
  cert_ = recert_.recertify_all(overlay_);
}

void ChurnEngine::apply(const ChurnDelta& delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  overlay_.apply(delta);  // throws without mutating on invalid deltas
  const std::vector<std::uint32_t> touched = recert_.touched_components(delta);
  for (const std::uint32_t c : touched) {
    cert_[c] = recert_.recertify_component(overlay_, c);
  }
  components_recertified_ += touched.size();
  // Unrestricted runs read overlay masks topology-wide, so any topology
  // delta invalidates the solve cache (certification reuse stays granular).
  cache_valid_ = false;
}

std::vector<ComponentChurnState> ChurnEngine::certification() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return cert_;
}

std::vector<ComponentChurnState> ChurnEngine::recertify_cold() {
  const std::lock_guard<std::mutex> lock(mu_);
  return recert_.recertify_all(overlay_);
}

void ChurnEngine::invalidate_solve_cache() {
  const std::lock_guard<std::mutex> lock(mu_);
  cache_valid_ = false;
}

std::size_t ChurnEngine::retire_calibration() {
  return engine_->invalidate(cal_->spec);
}

std::uint64_t ChurnEngine::components_recertified() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return components_recertified_;
}

ChurnDiagnosis ChurnEngine::to_diagnosis(const SolveOutput& out) {
  ChurnDiagnosis d;
  d.success = out.success;
  d.faults = out.faults;
  d.failure_reason = out.failure_reason;
  d.components = out.components;
  d.runs = out.runs;
  d.spent_lookups = out.spent_lookups;
  return d;
}

ChurnDiagnosis ChurnEngine::diagnose(const SyndromeOracle& oracle) {
  const std::lock_guard<std::mutex> lock(mu_);
  cache_ = full_solve(oracle, cert_);
  cache_valid_ = true;
  ChurnDiagnosis d = to_diagnosis(cache_);
  for (const ComponentDiagnosis& cd : cache_.components) {
    if (cd.probed) ++d.components_reprobed;
  }
  return d;
}

ChurnDiagnosis ChurnEngine::diagnose_cold(const SyndromeOracle& oracle) {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::vector<ComponentChurnState> cold_cert =
      recert_.recertify_all(overlay_);
  const SolveOutput out = full_solve(oracle, cold_cert);
  ChurnDiagnosis d = to_diagnosis(out);
  for (const ComponentDiagnosis& cd : out.components) {
    if (cd.probed) ++d.components_reprobed;
  }
  return d;
}

ChurnDiagnosis ChurnEngine::diagnose_delta(
    const SyndromeOracle& oracle, const std::vector<Node>& changed_nodes) {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const Node x : changed_nodes) {
    if (x >= overlay_.num_nodes()) {
      throw std::invalid_argument(
          "churn: diagnose_delta: changed node " + std::to_string(x) +
          " out of range (num_nodes = " +
          std::to_string(overlay_.num_nodes()) + ")");
    }
  }
  auto solve_fresh = [&](std::uint64_t wasted_lookups) {
    cache_ = full_solve(oracle, cert_);
    cache_valid_ = true;
    ChurnDiagnosis d = to_diagnosis(cache_);
    d.spent_lookups += wasted_lookups;
    for (const ComponentDiagnosis& cd : cache_.components) {
      if (cd.probed) ++d.components_reprobed;
    }
    return d;
  };
  if (!cache_valid_) return solve_fresh(0);

  // Soundness of reuse: a probe of component c consults only rows of c's
  // members; an unrestricted run consults only rows of its own members. A
  // changed row therefore forces (a) re-probing components that own a
  // changed node and (b) re-running the global phase only when a changed
  // node belongs to some run's member set. Rows of faults are never
  // consulted by either phase, so a fault's own row changing is free.
  std::vector<std::uint32_t> reprobe;
  for (const Node x : changed_nodes) {
    if (get_bit(cache_.run_members, x)) return solve_fresh(0);
    reprobe.push_back(plan_->component_of(x));
  }
  std::sort(reprobe.begin(), reprobe.end());
  reprobe.erase(std::unique(reprobe.begin(), reprobe.end()), reprobe.end());

  const OverlayOracle masked(overlay_, oracle);
  std::uint64_t spent = 0;
  std::size_t reprobed = 0;
  for (const std::uint32_t c : reprobe) {
    const ComponentDiagnosis& cached = cache_.components[c];
    if (!cached.probed) continue;  // skip decision depends only on runs/cert
    masked.reset_lookups();
    const SetBuilderResult probe = probe_builder_.run_restricted(
        masked, cert_[c].seed, delta_, *plan_, c);
    spent += masked.lookups();
    ++reprobed;
    if (probe.all_healthy != cached.probe_healthy ||
        masked.lookups() != cached.probe_lookups) {
      // The changed rows altered this component's probe: the cached solve
      // no longer replays. Fall back to a full fresh solve.
      return solve_fresh(spent);
    }
  }

  ChurnDiagnosis d = to_diagnosis(cache_);
  d.spent_lookups = spent;
  d.components_reprobed = reprobed;
  d.reused_cache = true;
  for (const ComponentDiagnosis& cd : cache_.components) {
    if (cd.probed) ++d.components_reused;
  }
  d.components_reused -= reprobed;
  return d;
}

ChurnEngine::SolveOutput ChurnEngine::full_solve(
    const SyndromeOracle& oracle,
    const std::vector<ComponentChurnState>& cert) {
  const std::size_t n = overlay_.num_nodes();
  const std::size_t words = (n + 63) / 64;
  const std::uint32_t num_comps = recert_.num_components();
  SolveOutput out;
  out.components.resize(num_comps);
  out.run_members.assign(words, 0);
  std::vector<std::uint64_t> fault_bits(words, 0);
  std::size_t fault_count = 0;
  const OverlayOracle masked(overlay_, oracle);
  bool overflow = false;

  for (std::uint32_t c = 0; c < num_comps && !overflow; ++c) {
    ComponentDiagnosis& cd = out.components[c];
    if (cert[c].status == ComponentCertStatus::kEmpty) {
      cd.outcome = ComponentOutcome::kEmpty;
      cd.detail = "all members removed; component is quiescent";
      continue;
    }
    if (cert[c].status != ComponentCertStatus::kCertified) continue;
    bool unclassified = false;
    for (const Node m : recert_.component_members(c)) {
      if (overlay_.node_removed(m)) continue;
      if (!get_bit(out.run_members, m) && !get_bit(fault_bits, m)) {
        unclassified = true;
        break;
      }
    }
    // Earlier runs already classified every live node here: its answer is
    // determined, so spending a probe would be pure overhead.
    if (!unclassified) continue;

    masked.reset_lookups();
    const SetBuilderResult probe = probe_builder_.run_restricted(
        masked, cert[c].seed, delta_, *plan_, c);
    cd.probed = true;
    cd.probe_healthy = probe.all_healthy;
    cd.probe_lookups = masked.lookups();
    out.spent_lookups += cd.probe_lookups;
    if (!cd.probe_healthy) continue;

    // A healthy probe certifies the seed healthy (§5): drive one
    // unrestricted run over this live island and read faults off its
    // boundary (Theorem 1).
    masked.reset_lookups();
    const SetBuilderResult run =
        final_builder_.run(masked, cert[c].seed, delta_);
    const std::uint64_t run_lookups = masked.lookups();
    out.spent_lookups += run_lookups;
    out.runs.push_back(SolveRecord{c, run_lookups,
                                   static_cast<std::uint64_t>(
                                       run.members.size()),
                                   run.rounds});
    std::vector<std::uint64_t> local(words, 0);
    for (const Node m : run.members) set_bit(local, m);
    const std::vector<Node> boundary =
        cal_->is_implicit()
            ? live_boundary(*cal_->implicit_view, overlay_, local)
            : live_boundary(cal_->graph, overlay_, local);
    for (const Node v : boundary) {
      if (!get_bit(fault_bits, v)) {
        set_bit(fault_bits, v);
        ++fault_count;
      }
    }
    for (std::size_t w = 0; w < words; ++w) out.run_members[w] |= local[w];
    if (fault_count > delta_) overflow = true;
  }

  if (overflow) {
    out.success = false;
    out.failure_reason = "boundary larger than delta (" +
                         std::to_string(fault_count) + " > " +
                         std::to_string(delta_) +
                         "); the fault count exceeds the bound";
    for (ComponentDiagnosis& cd : out.components) {
      if (cd.outcome == ComponentOutcome::kEmpty) continue;
      cd.outcome = ComponentOutcome::kDegradedUnreached;
      cd.faults.clear();
      cd.detail = "fault bound exceeded; no per-component answer";
    }
    return out;
  }

  for (Node v = 0; v < n; ++v) {
    if (get_bit(fault_bits, v)) out.faults.push_back(v);
  }

  bool all_ok = true;
  for (std::uint32_t c = 0; c < num_comps; ++c) {
    ComponentDiagnosis& cd = out.components[c];
    if (cd.outcome == ComponentOutcome::kEmpty &&
        cert[c].status == ComponentCertStatus::kEmpty) {
      continue;
    }
    std::uint64_t classified = 0;
    for (const Node m : recert_.component_members(c)) {
      if (overlay_.node_removed(m)) continue;
      if (get_bit(fault_bits, m)) {
        cd.faults.push_back(m);
        ++classified;
      } else if (get_bit(out.run_members, m)) {
        ++classified;
      }
    }
    if (classified == cert[c].live_nodes) {
      cd.outcome = cd.faults.empty() ? ComponentOutcome::kHealthy
                                     : ComponentOutcome::kResolved;
      if (cert[c].status == ComponentCertStatus::kDegraded) {
        cd.detail =
            "certificate lost to churn, but every live node was classified "
            "by certified runs";
      }
      continue;
    }
    all_ok = false;
    const std::uint64_t unreached = cert[c].live_nodes - classified;
    if (cert[c].status == ComponentCertStatus::kDegraded) {
      cd.outcome = ComponentOutcome::kDegradedUncertified;
      cd.detail = "certificate lost: " + std::to_string(cert[c].contributors) +
                  " contributors, covered " + std::to_string(cert[c].covered) +
                  " of " + std::to_string(cert[c].live_nodes) +
                  " live nodes (needs > " + std::to_string(delta_) +
                  " contributors and full cover)";
    } else {
      cd.outcome = ComponentOutcome::kDegradedUnreached;
      cd.detail = std::to_string(unreached) + " of " +
                  std::to_string(cert[c].live_nodes) +
                  " live nodes unreachable from any certified run";
    }
  }

  if (out.runs.empty()) {
    bool all_empty = true;
    bool any_certified = false;
    for (std::uint32_t c = 0; c < num_comps; ++c) {
      if (cert[c].status != ComponentCertStatus::kEmpty) all_empty = false;
      if (cert[c].status == ComponentCertStatus::kCertified) {
        any_certified = true;
      }
    }
    if (all_empty) {
      // Every node removed: the quiescent answer — nothing to diagnose,
      // nothing failed.
      out.success = true;
    } else {
      out.success = false;
      out.failure_reason =
          any_certified
              ? "no certified component produced a healthy probe; the fault "
                "count likely exceeds the bound delta = " +
                    std::to_string(delta_)
              : "no component remains certified under churn; topology-wide "
                "diagnosis unavailable";
    }
  } else {
    out.success = all_ok;
  }
  return out;
}

}  // namespace mmdiag
