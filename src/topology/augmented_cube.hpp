// The augmented cube AQ_n (Choudum & Sunitha [10]).
//
// AQ_1 = K_2; AQ_n is two copies of AQ_{n-1} (split on the top bit) with
// 0w ~ 1w (hypercube edge) and 0w ~ 1w̄ (complement edge). Unfolding the
// recursion: u is adjacent to u ^ 2^i for every i (n hypercube edges) and to
// u ^ (2^{i+1} - 1) for i = 1..n-1 (n-1 complement edges — i = 0 would
// duplicate the dimension-0 hypercube edge).
// Regular of degree 2n-1, κ = 2n-1, diagnosability 2n-1 for n >= 5.
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class AugmentedCube final : public BitCubeTopology {
 public:
  explicit AugmentedCube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
