// Shared machinery for permutation-labelled families (stars, (n,k)-stars,
// pancakes, arrangement graphs). Nodes are k-arrangements of {1..n} indexed
// by PermCodec; the §5.2 partitions all fix the symbol in the last position.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/partition.hpp"
#include "topology/topology.hpp"
#include "util/perm.hpp"

namespace mmdiag {

class PermTopology : public Topology {
 public:
  PermTopology(unsigned n, unsigned k) : n_(n), k_(k), codec_(n, k) {}

  [[nodiscard]] std::string node_label(Node u) const override {
    std::uint8_t a[64];
    codec_.unrank(u, a);
    std::string s;
    for (unsigned i = 0; i < k_; ++i) {
      if (i) s += ' ';
      s += std::to_string(a[i]);
    }
    return s;
  }

  [[nodiscard]] std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const override {
    // Only the single-level split exists: fixing any earlier position does
    // not induce a connected subgraph in these families (position-1 moves
    // would leave the component). See DESIGN.md §4.3.
    if (k_ < 2) return {};
    return {std::make_shared<FixLastSymbolPlan>(n_, k_)};
  }

  /// Star and pancake graphs are registered by n alone; the k-parameterised
  /// families (NKStar, Arrangement) override.
  [[nodiscard]] std::vector<unsigned> params() const override { return {n_}; }

  [[nodiscard]] const PermCodec& codec() const noexcept { return codec_; }

 protected:
  unsigned n_;
  unsigned k_;
  PermCodec codec_;
};

}  // namespace mmdiag
