// Partition plans: disjoint connected components with designated seeds.
//
// The generic driver of §5 needs the node set split into at least δ+1
// disjoint connected subgraphs, each big enough that a fault-free component
// certifies under Set_Builder. A PartitionPlan encodes one such split
// arithmetically: component_of() is O(1)..O(k) and no per-node tables exist.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mixed_radix.hpp"
#include "util/perm.hpp"
#include "util/types.hpp"

namespace mmdiag {

class PartitionPlan {
 public:
  virtual ~PartitionPlan() = default;

  [[nodiscard]] virtual std::size_t num_components() const = 0;
  [[nodiscard]] virtual std::uint32_t component_of(Node v) const = 0;
  /// A member node of component c, used as the Set_Builder seed.
  [[nodiscard]] virtual Node seed_of(std::size_t c) const = 0;
  [[nodiscard]] virtual std::string description() const = 0;

  /// Nodes per component if uniform (0 if components vary in size).
  [[nodiscard]] virtual std::uint64_t component_size() const = 0;
};

/// Bit-string networks: fix the top (n - suffix_bits) address bits.
/// Component c = id >> suffix_bits; seed = c << suffix_bits.
class PrefixBitsPlan final : public PartitionPlan {
 public:
  PrefixBitsPlan(unsigned total_bits, unsigned suffix_bits);

  [[nodiscard]] std::size_t num_components() const override {
    return std::size_t{1} << (total_bits_ - suffix_bits_);
  }
  [[nodiscard]] std::uint32_t component_of(Node v) const override {
    return static_cast<std::uint32_t>(v >> suffix_bits_);
  }
  [[nodiscard]] Node seed_of(std::size_t c) const override {
    return static_cast<Node>(c << suffix_bits_);
  }
  [[nodiscard]] std::uint64_t component_size() const override {
    return std::uint64_t{1} << suffix_bits_;
  }
  [[nodiscard]] std::string description() const override;

  [[nodiscard]] unsigned suffix_bits() const noexcept { return suffix_bits_; }

 private:
  unsigned total_bits_;
  unsigned suffix_bits_;
};

/// k-ary tuple networks: fix the top (n - free_digits) coordinates.
class TuplePrefixPlan final : public PartitionPlan {
 public:
  TuplePrefixPlan(unsigned n, unsigned k, unsigned free_digits);

  [[nodiscard]] std::size_t num_components() const override {
    return static_cast<std::size_t>(components_);
  }
  [[nodiscard]] std::uint32_t component_of(Node v) const override {
    return static_cast<std::uint32_t>(v / block_);
  }
  [[nodiscard]] Node seed_of(std::size_t c) const override {
    return static_cast<Node>(c * block_);
  }
  [[nodiscard]] std::uint64_t component_size() const override { return block_; }
  [[nodiscard]] std::string description() const override;

  [[nodiscard]] unsigned free_digits() const noexcept { return free_digits_; }

 private:
  unsigned n_;
  unsigned k_;
  unsigned free_digits_;
  std::uint64_t block_;       // k^free_digits
  std::uint64_t components_;  // k^(n-free_digits)
};

/// Permutation-labelled networks: fix the symbol in the last position
/// (the paper's "kth component"), yielding n components.
class FixLastSymbolPlan final : public PartitionPlan {
 public:
  FixLastSymbolPlan(unsigned n, unsigned k);

  [[nodiscard]] std::size_t num_components() const override { return n_; }
  [[nodiscard]] std::uint32_t component_of(Node v) const override;
  [[nodiscard]] Node seed_of(std::size_t c) const override;
  [[nodiscard]] std::uint64_t component_size() const override;
  [[nodiscard]] std::string description() const override;

 private:
  unsigned n_;
  unsigned k_;
  PermCodec codec_;
};

}  // namespace mmdiag
