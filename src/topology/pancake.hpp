// The pancake graph P_n (Akers & Krishnamurthy [2]).
//
// Nodes: permutations of {1..n}; u ~ v iff v is u with a prefix of length
// l reversed (2 <= l <= n). Regular of degree n-1, κ = n-1,
// diagnosability n-1 for n >= 4.
#pragma once

#include "topology/perm_base.hpp"

namespace mmdiag {

class Pancake final : public PermTopology {
 public:
  explicit Pancake(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
