#include "topology/registry.hpp"

#include <limits>
#include <sstream>
#include <stdexcept>

#include "topology/arrangement.hpp"
#include "topology/augmented_cube.hpp"
#include "topology/augmented_kary_ncube.hpp"
#include "topology/crossed_cube.hpp"
#include "topology/enhanced_hypercube.hpp"
#include "topology/folded_hypercube.hpp"
#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/nk_star.hpp"
#include "topology/pancake.hpp"
#include "topology/shuffle_cube.hpp"
#include "topology/star_graph.hpp"
#include "topology/twisted_cube.hpp"
#include "topology/twisted_n_cube.hpp"
#include "util/parse.hpp"

namespace mmdiag {
namespace {

[[noreturn]] void bad_params(const std::string& family, std::size_t want,
                             std::size_t got) {
  throw std::invalid_argument("topology '" + family + "' expects " +
                              std::to_string(want) + " parameter(s), got " +
                              std::to_string(got));
}

void expect(const std::string& family, const std::vector<unsigned>& p,
            std::size_t count) {
  if (p.size() != count) bad_params(family, count, p.size());
}

}  // namespace

std::vector<std::string> topology_families() {
  return {"hypercube",     "crossed_cube",  "twisted_cube",
          "folded_hypercube", "enhanced_hypercube", "augmented_cube",
          "shuffle_cube",  "twisted_n_cube", "kary_ncube",
          "augmented_kary_ncube", "star",   "nk_star",
          "pancake",       "arrangement"};
}

namespace {

std::unique_ptr<Topology> make_topology_unchecked(
    const std::string& family, const std::vector<unsigned>& p) {
  if (family == "hypercube") {
    expect(family, p, 1);
    return std::make_unique<Hypercube>(p[0]);
  }
  if (family == "crossed_cube") {
    expect(family, p, 1);
    return std::make_unique<CrossedCube>(p[0]);
  }
  if (family == "twisted_cube") {
    expect(family, p, 1);
    return std::make_unique<TwistedCube>(p[0]);
  }
  if (family == "folded_hypercube") {
    expect(family, p, 1);
    return std::make_unique<FoldedHypercube>(p[0]);
  }
  if (family == "enhanced_hypercube") {
    expect(family, p, 2);
    return std::make_unique<EnhancedHypercube>(p[0], p[1]);
  }
  if (family == "augmented_cube") {
    expect(family, p, 1);
    return std::make_unique<AugmentedCube>(p[0]);
  }
  if (family == "shuffle_cube") {
    expect(family, p, 1);
    return std::make_unique<ShuffleCube>(p[0]);
  }
  if (family == "twisted_n_cube") {
    expect(family, p, 1);
    return std::make_unique<TwistedNCube>(p[0]);
  }
  if (family == "kary_ncube") {
    expect(family, p, 2);  // n, k
    return std::make_unique<KAryNCube>(p[0], p[1]);
  }
  if (family == "augmented_kary_ncube") {
    expect(family, p, 2);  // n, k
    return std::make_unique<AugmentedKAryNCube>(p[0], p[1]);
  }
  if (family == "star") {
    expect(family, p, 1);
    return std::make_unique<StarGraph>(p[0]);
  }
  if (family == "nk_star") {
    expect(family, p, 2);  // n, k
    return std::make_unique<NKStar>(p[0], p[1]);
  }
  if (family == "pancake") {
    expect(family, p, 1);
    return std::make_unique<Pancake>(p[0]);
  }
  if (family == "arrangement") {
    expect(family, p, 2);  // n, k
    return std::make_unique<Arrangement>(p[0], p[1]);
  }
  throw std::invalid_argument("unknown topology family '" + family + "'");
}

}  // namespace

std::unique_ptr<Topology> make_topology(const std::string& family,
                                        const std::vector<unsigned>& p) {
  std::unique_ptr<Topology> topology = make_topology_unchecked(family, p);
  // Node ids are 32-bit throughout the stack; families whose own caps admit
  // larger instances (e.g. arrangement 16 12 at ~8.7e11 nodes) must be
  // rejected here rather than silently wrapping ids mod 2^32.
  const std::uint64_t nodes = topology->info().num_nodes;
  if (nodes > static_cast<std::uint64_t>(kNoNode)) {
    throw std::invalid_argument(
        topology->spec() + ": " + std::to_string(nodes) +
        " nodes overflow the 32-bit node id space (max " +
        std::to_string(static_cast<std::uint64_t>(kNoNode)) + ")");
  }
  return topology;
}

std::unique_ptr<Topology> make_topology_from_spec(const std::string& spec) {
  std::istringstream in(spec);
  std::string family;
  in >> family;
  if (family.empty()) throw std::invalid_argument("empty topology spec");
  std::vector<unsigned> params;
  std::string token;
  while (in >> token) {
    // parse_unsigned keeps the accepted parameter grammar strict: plain
    // decimal only, so "-1" (which stream extraction into unsigned silently
    // wraps), "0x17", "1e3" and "12junk" are all errors, while a
    // zero-padded "07" parses and canonicalises to 7.
    const auto value =
        parse_unsigned(token, std::numeric_limits<unsigned>::max());
    if (!value) {
      throw std::invalid_argument("bad topology spec '" + spec +
                                  "': parameter '" + token +
                                  "' is not a plain decimal unsigned integer");
    }
    params.push_back(static_cast<unsigned>(*value));
  }
  return make_topology(family, params);
}

std::string canonical_topology_spec(const std::string& spec) {
  return make_topology_from_spec(spec)->spec();
}

}  // namespace mmdiag
