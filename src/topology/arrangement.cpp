#include "topology/arrangement.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

Arrangement::Arrangement(unsigned n, unsigned k) : PermTopology(n, k) {
  if (n < 2 || n > 16) throw std::invalid_argument("Arrangement: need 2 <= n <= 16");
  if (k < 1 || k >= n) throw std::invalid_argument("Arrangement: need 1 <= k <= n-1");
}

TopologyInfo Arrangement::info() const {
  TopologyInfo t;
  t.name = "A(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
  t.family = "arrangement";
  t.num_nodes = codec_.count();
  t.degree = k_ * (n_ - k_);
  t.connectivity = k_ * (n_ - k_);
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

unsigned Arrangement::default_fault_bound() const {
  // Theorem 7: at most n-1 faults (the split yields only n components).
  return std::min(info().diagnosability, n_ - 1);
}

void Arrangement::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t a[64];
  codec_.unrank(u, a);
  std::uint64_t used = 0;
  for (unsigned i = 0; i < k_; ++i) used |= std::uint64_t{1} << (a[i] - 1);
  for (unsigned i = 0; i < k_; ++i) {
    const std::uint8_t original = a[i];
    for (unsigned s = 1; s <= n_; ++s) {
      if ((used >> (s - 1)) & 1ULL) continue;
      a[i] = static_cast<std::uint8_t>(s);
      out.push_back(static_cast<Node>(codec_.rank(a)));
    }
    a[i] = original;
  }
}

}  // namespace mmdiag
