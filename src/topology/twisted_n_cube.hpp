// The twisted N-cube TQ'_n (Esfahanian–Ni–Sagan [13]).
//
// Q_n with one 4-cycle rewired: on C = {0...000, 0...001, 0...011, 0...010}
// the two dimension-0 edges are replaced by the two diagonals, i.e. for
// nodes whose address is zero above bit 1, the dimension-0 neighbour is
// u ^ 3 instead of u ^ 1. Fixing the top address bit splits TQ'_n into a
// copy of Q_{n-1} (top bit 1) and a copy of TQ'_{n-1} (top bit 0), exactly
// as §5.1 requires. Regular of degree n, κ = n, diagnosability n for n >= 4.
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class TwistedNCube final : public BitCubeTopology {
 public:
  explicit TwistedNCube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
