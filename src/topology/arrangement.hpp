// The arrangement graph A_{n,k} (Day & Tripathi [11]), 1 <= k <= n-1.
//
// Nodes: k-arrangements of {1..n}; u ~ v iff they differ in exactly one
// position (the differing symbol is replaced by one of the n-k unused
// symbols). Regular of degree k(n-k), κ = k(n-k), diagnosability k(n-k)
// when the Chang et al. [6] size condition holds.
//
// The paper's Theorem 7 only supports fault sets of size at most n-1 for
// arrangement graphs (the partition yields just n components), so
// default_fault_bound() is min(diagnosability, n-1).
#pragma once

#include "topology/perm_base.hpp"

namespace mmdiag {

class Arrangement final : public PermTopology {
 public:
  Arrangement(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
  [[nodiscard]] std::vector<unsigned> params() const override {
    return {n_, k_};
  }
  [[nodiscard]] unsigned default_fault_bound() const override;
};

}  // namespace mmdiag
