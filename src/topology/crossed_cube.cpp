#include "topology/crossed_cube.hpp"

#include <stdexcept>

namespace mmdiag {

CrossedCube::CrossedCube(unsigned n) : BitCubeTopology(n) {
  if (n < 1 || n > 30) throw std::invalid_argument("CrossedCube: need 1 <= n <= 30");
}

TopologyInfo CrossedCube::info() const {
  TopologyInfo t;
  t.name = "CQ" + std::to_string(n_);
  t.family = "crossed_cube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

Node CrossedCube::neighbor_in_dimension(Node u, unsigned l) const {
  Node v = u ^ (Node{1} << l);
  // For each complete pair strictly below dimension l (below l-1 when l is
  // odd, since condition (3) pins bit l-1), apply the pair-related map:
  // 00->00, 10->10, 01->11, 11->01, i.e. flip the pair's high bit when the
  // pair's low bit is set.
  const unsigned pairs_below = l / 2;
  for (unsigned i = 0; i < pairs_below; ++i) {
    if ((u >> (2 * i)) & 1u) v ^= Node{1} << (2 * i + 1);
  }
  return v;
}

void CrossedCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned l = 0; l < n_; ++l) out.push_back(neighbor_in_dimension(u, l));
}

}  // namespace mmdiag
