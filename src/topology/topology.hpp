// Topology: an interconnection-network family instance.
//
// A topology names its nodes densely in [0, N), computes adjacency
// arithmetically (so graphs need not be materialised to know structure), and
// publishes the graph-theoretic constants the paper's theorems consume:
// regular degree, connectivity κ, and diagnosability δ under the comparison
// (MM) model, with the validity conditions of §5.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "topology/partition.hpp"
#include "util/types.hpp"

namespace mmdiag {

struct TopologyInfo {
  std::string name;            // instance name, e.g. "Q7", "CQ8", "S(7,3)"
  std::string family;          // family key, e.g. "hypercube"
  std::uint64_t num_nodes = 0;
  unsigned degree = 0;         // regular degree (all §5 families are regular)
  unsigned connectivity = 0;   // published κ
  unsigned diagnosability = 0; // published δ under the MM model; 0 = unknown
};

class Topology {
 public:
  virtual ~Topology() = default;

  [[nodiscard]] virtual TopologyInfo info() const = 0;

  /// Appends the neighbours of u to out (out is cleared first).
  virtual void neighbors(Node u, std::vector<Node>& out) const = 0;

  /// Human-readable node name (bit-string, tuple, or arrangement).
  [[nodiscard]] virtual std::string node_label(Node u) const = 0;

  /// Partition plans the paper's §5 driver may use, ordered finest first
  /// (most components). The certified-partition search walks this list.
  [[nodiscard]] virtual std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const = 0;

  /// The registry parameters of this instance, in the order
  /// make_topology(family, params) expects them.
  [[nodiscard]] virtual std::vector<unsigned> params() const = 0;

  /// Canonical registry spec, "family p1 [p2]". Round-trip guarantee:
  /// make_topology_from_spec(t.spec()) reconstructs an instance with the
  /// same family and params, and parsing any whitespace/zero-padded variant
  /// of a spec canonicalises to the same string — which is what makes the
  /// engine's calibration cache key stable across entry points.
  [[nodiscard]] std::string spec() const;

  /// The fault bound the paper's theorem for this family supports.
  /// Usually equals diagnosability; arrangement graphs (Theorem 7) only
  /// support n-1.
  [[nodiscard]] virtual unsigned default_fault_bound() const {
    return info().diagnosability;
  }

  /// Materialise the adjacency as a CSR graph (validates symmetry).
  [[nodiscard]] Graph build_graph() const;

  /// Convenience: neighbours as a fresh vector.
  [[nodiscard]] std::vector<Node> neighbors(Node u) const {
    std::vector<Node> out;
    neighbors(u, out);
    return out;
  }

  // --- Implicit (closed-form) adjacency --------------------------------------
  // The same queries a CSR Graph answers from its arrays, answered from the
  // family's adjacency arithmetic instead. The *sorted-ascending* order is
  // part of the contract: it is exactly the order build_graph() stores, so a
  // solver driven through ImplicitGraph consults identical (node, position)
  // pairs — and therefore identical syndrome bits — as one driven through
  // the materialised CSR. Generic fallbacks enumerate-and-sort through the
  // virtual neighbors() (thread-local scratch, no per-call allocation in
  // steady state); families with closed forms override them (Hypercube in
  // O(1)/O(Δ) popcount arithmetic, KAryNCube in O(Δ) digit arithmetic).

  /// Number of neighbours of u (= degree; all §5 families are regular).
  [[nodiscard]] virtual unsigned degree(Node u) const;

  /// Fills out[0..degree) with the neighbours of u in ascending id order —
  /// the CSR adjacency order. Returns the count. out must have room for
  /// degree(u) entries.
  virtual unsigned sorted_neighbors(Node u, Node* out) const;

  /// The p-th neighbour of u in ascending order. Precondition: p < degree(u).
  [[nodiscard]] virtual Node neighbor(Node u, unsigned p) const;

  /// Position of v in u's ascending adjacency, or -1 if u !~ v.
  [[nodiscard]] virtual int neighbor_position(Node u, Node v) const;

  /// Position of u in the adjacency of its p-th neighbour — the closed-form
  /// counterpart of Graph::mirror_position. Precondition: p < degree(u).
  [[nodiscard]] virtual unsigned mirror_position(Node u, unsigned p) const;
};

/// Diagnosability via Chang–Lai–Tan–Hsu [6]: a t-regular, t-connected graph
/// with at least 2t+3 nodes has MM-model diagnosability t. Returns 0 when
/// the hypothesis fails.
[[nodiscard]] unsigned diagnosability_by_chang(std::uint64_t num_nodes,
                                               unsigned degree,
                                               unsigned connectivity);

}  // namespace mmdiag
