#include "topology/twisted_cube.hpp"

#include <bit>
#include <stdexcept>

namespace mmdiag {

TwistedCube::TwistedCube(unsigned n) : BitCubeTopology(n) {
  if (n < 1 || n > 29 || n % 2 == 0) {
    throw std::invalid_argument("TwistedCube: need odd n in [1,29]");
  }
}

TopologyInfo TwistedCube::info() const {
  TopologyInfo t;
  t.name = "TQ" + std::to_string(n_);
  t.family = "twisted_cube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void TwistedCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  // Peel two dimensions per level, top-down; the final level is TQ_1.
  for (unsigned level = n_; level >= 3; level -= 2) {
    const Node hi = Node{1} << (level - 1);
    const Node lo = Node{1} << (level - 2);
    const Node w = u & (lo - 1);
    const bool parity = (std::popcount(static_cast<std::uint32_t>(w)) & 1) != 0;
    if (parity) {
      out.push_back(u ^ lo);
      out.push_back(u ^ hi ^ lo);
    } else {
      out.push_back(u ^ hi);
      out.push_back(u ^ hi ^ lo);
    }
  }
  out.push_back(u ^ 1u);  // TQ_1 edge
}

}  // namespace mmdiag
