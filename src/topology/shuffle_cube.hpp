// The shuffle-cube SQ_n (Li–Tan–Hsu–Sung [17]), n ≡ 2 (mod 4).
//
// SQ_2 = Q_2. For n >= 6, SQ_n consists of 16 copies of SQ_{n-4} indexed by
// the top four address bits p = u_{n-1..n-4}; a node u with suffix class
// c = u_1 u_0 (its lowest two bits) gains four cross edges
//     u ~ ((p XOR q) · w)   for q in V_c,
// where V_c is a class-specific set of four nonzero 4-bit masks. Degree
// therefore grows by 4 per recursion level: deg(SQ_n) = n. κ = n.
//
// DEVIATION (documented in DESIGN.md §4.4): the original mask table of [17]
// is not available offline. The table below is chosen to satisfy every
// property the paper's algorithm uses — n-regularity, κ = n, and the 16-way
// recursive partition — and κ(SQ_6) = 6 is verified exactly by max-flow in
// topology_props_test. Any table with these properties yields identical
// diagnosis behaviour.
#pragma once

#include <array>

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class ShuffleCube final : public BitCubeTopology {
 public:
  explicit ShuffleCube(unsigned n);  // n ≡ 2 (mod 4), 2 <= n <= 30

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;

  /// The cross-edge mask sets, indexed by suffix class (u_1 u_0).
  [[nodiscard]] static const std::array<std::array<unsigned, 4>, 4>& mask_table();
};

}  // namespace mmdiag
