// The crossed cube CQ_n (Efe [12]).
//
// Nodes: {0,1}^n. Two 2-bit strings x1x0, y1y0 are *pair-related* iff
// (x1x0, y1y0) ∈ {(00,00), (10,10), (01,11), (11,01)} — equivalently
// x0 == y0 and x1 ^ y1 == x0. u ~ v iff for some dimension l:
//   (1) bits above l agree, (2) u_l != v_l, (3) if l is odd u_{l-1} = v_{l-1},
//   (4) every full bit-pair below l is pair-related.
// The pair relation is deterministic given u, so u has exactly one neighbour
// per dimension: flip bit l and, for each full pair (2i+1, 2i) below l with
// u_{2i} = 1, flip bit 2i+1.
// Regular of degree n, κ = n (Kulasinghe [16]), diagnosability n for n >= 4
// (Fan [14] / Chang et al. [6]).
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class CrossedCube final : public BitCubeTopology {
 public:
  explicit CrossedCube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;

  /// The dimension-l neighbour of u (exposed for tests).
  [[nodiscard]] Node neighbor_in_dimension(Node u, unsigned l) const;
};

}  // namespace mmdiag
