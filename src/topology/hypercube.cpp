#include "topology/hypercube.hpp"

#include <stdexcept>

namespace mmdiag {

Hypercube::Hypercube(unsigned n) : BitCubeTopology(n) {
  if (n < 1 || n > 30) throw std::invalid_argument("Hypercube: need 1 <= n <= 30");
}

TopologyInfo Hypercube::info() const {
  TopologyInfo t;
  t.name = "Q" + std::to_string(n_);
  t.family = "hypercube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void Hypercube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
}

}  // namespace mmdiag
