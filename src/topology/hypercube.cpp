#include "topology/hypercube.hpp"

#include <bit>
#include <stdexcept>

namespace mmdiag {

namespace {

// Bit index of the r-th lowest set bit of x (r is 1-indexed).
unsigned nth_set_bit(Node x, unsigned r) {
  for (unsigned i = 1; i < r; ++i) x &= x - 1;
  return static_cast<unsigned>(std::countr_zero(x));
}

}  // namespace

Hypercube::Hypercube(unsigned n) : BitCubeTopology(n) {
  if (n < 1 || n > 30) throw std::invalid_argument("Hypercube: need 1 <= n <= 30");
}

TopologyInfo Hypercube::info() const {
  TopologyInfo t;
  t.name = "Q" + std::to_string(n_);
  t.family = "hypercube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void Hypercube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
}

unsigned Hypercube::sorted_neighbors_of(unsigned n, Node u, Node* out) {
  unsigned p = 0;
  // Set bits, descending index: neighbours below u, ascending.
  for (Node bits = u; bits != 0;) {
    const unsigned hi = 31u - static_cast<unsigned>(std::countl_zero(bits));
    out[p++] = u ^ (Node{1} << hi);
    bits ^= Node{1} << hi;
  }
  // Unset bits, ascending index: neighbours above u, ascending.
  const Node mask = (n >= 32) ? ~Node{0} : ((Node{1} << n) - 1);
  for (Node bits = ~u & mask; bits != 0; bits &= bits - 1) {
    const unsigned lo = static_cast<unsigned>(std::countr_zero(bits));
    out[p++] = u ^ (Node{1} << lo);
  }
  return p;
}

Node Hypercube::neighbor_of(unsigned n, Node u, unsigned p) {
  const unsigned s = static_cast<unsigned>(std::popcount(u));
  if (p < s) {
    // p-th in descending set-bit order = (s - p)-th lowest set bit.
    return u ^ (Node{1} << nth_set_bit(u, s - p));
  }
  const Node mask = (n >= 32) ? ~Node{0} : ((Node{1} << n) - 1);
  // (p - s + 1)-th lowest unset bit.
  return u ^ (Node{1} << nth_set_bit(~u & mask, p - s + 1));
}

int Hypercube::position_of(unsigned n, Node u, Node v) {
  const Node d = u ^ v;
  if (std::popcount(d) != 1) return -1;
  const unsigned i = static_cast<unsigned>(std::countr_zero(d));
  if (i >= n) return -1;
  if ((u >> i) & 1u) {
    // Set bit i: preceded in the ascending order by the set bits above it.
    return static_cast<int>(std::popcount(u >> (i + 1)));
  }
  // Unset bit i: preceded by all set bits plus the unset bits below it.
  const unsigned s = static_cast<unsigned>(std::popcount(u));
  const unsigned below = i - static_cast<unsigned>(
                                 std::popcount(u & ((Node{1} << i) - 1)));
  return static_cast<int>(s + below);
}

unsigned Hypercube::degree(Node /*u*/) const { return n_; }

unsigned Hypercube::sorted_neighbors(Node u, Node* out) const {
  return sorted_neighbors_of(n_, u, out);
}

Node Hypercube::neighbor(Node u, unsigned p) const {
  return neighbor_of(n_, u, p);
}

int Hypercube::neighbor_position(Node u, Node v) const {
  return position_of(n_, u, v);
}

unsigned Hypercube::mirror_position(Node u, unsigned p) const {
  const Node v = neighbor_of(n_, u, p);
  return static_cast<unsigned>(position_of(n_, v, u));
}

}  // namespace mmdiag
