#include "topology/nk_star.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

NKStar::NKStar(unsigned n, unsigned k) : PermTopology(n, k) {
  if (n < 2 || n > 16) throw std::invalid_argument("NKStar: need 2 <= n <= 16");
  if (k < 1 || k >= n) throw std::invalid_argument("NKStar: need 1 <= k <= n-1");
}

TopologyInfo NKStar::info() const {
  TopologyInfo t;
  t.name = "S(" + std::to_string(n_) + "," + std::to_string(k_) + ")";
  t.family = "nk_star";
  t.num_nodes = codec_.count();
  t.degree = n_ - 1;
  t.connectivity = n_ - 1;
  t.diagnosability =
      (n_ == 3 && k_ == 2)
          ? 0
          : diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void NKStar::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t a[64];
  codec_.unrank(u, a);
  // i-edges: swap position 1 with position i.
  for (unsigned i = 1; i < k_; ++i) {
    std::swap(a[0], a[i]);
    out.push_back(static_cast<Node>(codec_.rank(a)));
    std::swap(a[0], a[i]);
  }
  // 1-edges: substitute any unused symbol into position 1.
  std::uint64_t used = 0;
  for (unsigned i = 0; i < k_; ++i) used |= std::uint64_t{1} << (a[i] - 1);
  const std::uint8_t original = a[0];
  for (unsigned s = 1; s <= n_; ++s) {
    if ((used >> (s - 1)) & 1ULL) continue;
    a[0] = static_cast<std::uint8_t>(s);
    out.push_back(static_cast<Node>(codec_.rank(a)));
  }
  a[0] = original;
}

}  // namespace mmdiag
