#include "topology/augmented_cube.hpp"

#include <stdexcept>

namespace mmdiag {

AugmentedCube::AugmentedCube(unsigned n) : BitCubeTopology(n) {
  if (n < 1 || n > 30) throw std::invalid_argument("AugmentedCube: need 1 <= n <= 30");
}

TopologyInfo AugmentedCube::info() const {
  TopologyInfo t;
  t.name = "AQ" + std::to_string(n_);
  t.family = "augmented_cube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = 2 * n_ - 1;
  // κ(AQ_n) = 2n-1 except the known anomaly κ(AQ_3) = 4 (Choudum & Sunitha).
  t.connectivity = (n_ == 3) ? 4 : 2 * n_ - 1;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void AugmentedCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
  for (unsigned i = 1; i < n_; ++i) {
    out.push_back(u ^ static_cast<Node>((std::uint64_t{1} << (i + 1)) - 1));
  }
}

}  // namespace mmdiag
