// Shared machinery for bit-string-addressed cube families.
//
// All cube variants in §5.1 name nodes by length-n binary strings; bit i of
// the node id is address component u_i, with u_{n-1} the paper's "first"
// component. They all partition by fixing a prefix of address bits, so the
// plan list is shared: every suffix width, finest split first. The certified
// partition search (src/core) picks the first width that (a) yields at least
// δ+1 components and (b) demonstrably certifies on a fault-free component.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/partition.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

class BitCubeTopology : public Topology {
 public:
  explicit BitCubeTopology(unsigned n) : n_(n) {}

  [[nodiscard]] unsigned dimension() const noexcept { return n_; }

  [[nodiscard]] std::string node_label(Node u) const override {
    std::string s(n_, '0');
    for (unsigned i = 0; i < n_; ++i) {
      if ((u >> i) & 1u) s[n_ - 1 - i] = '1';  // print u_{n-1} ... u_0
    }
    return s;
  }

  [[nodiscard]] std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const override {
    std::vector<std::shared_ptr<const PartitionPlan>> plans;
    for (unsigned suffix = 2; suffix < n_; ++suffix) {
      plans.push_back(std::make_shared<PrefixBitsPlan>(n_, suffix));
    }
    return plans;
  }

  /// All single-parameter cube families; EnhancedHypercube overrides.
  [[nodiscard]] std::vector<unsigned> params() const override { return {n_}; }

 protected:
  unsigned n_;
};

}  // namespace mmdiag
