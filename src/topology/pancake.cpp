#include "topology/pancake.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

Pancake::Pancake(unsigned n) : PermTopology(n, n) {
  if (n < 2 || n > 12) throw std::invalid_argument("Pancake: need 2 <= n <= 12");
}

TopologyInfo Pancake::info() const {
  TopologyInfo t;
  t.name = "P" + std::to_string(n_);
  t.family = "pancake";
  t.num_nodes = codec_.count();
  t.degree = n_ - 1;
  t.connectivity = n_ - 1;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void Pancake::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t a[64];
  codec_.unrank(u, a);
  // Successive prefix reversals: after reversing prefix l, extending to
  // l+1 only needs one more flip of the already-reversed prefix; but for
  // clarity (and since n <= 12) reverse from the original each time.
  std::uint8_t b[64];
  for (unsigned l = 2; l <= n_; ++l) {
    for (unsigned i = 0; i < l; ++i) b[i] = a[l - 1 - i];
    for (unsigned i = l; i < n_; ++i) b[i] = a[i];
    out.push_back(static_cast<Node>(codec_.rank(b)));
  }
}

}  // namespace mmdiag
