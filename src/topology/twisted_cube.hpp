// The twisted cube TQ_n (Hilbers–Koopman–van de Snepscheut [15]), odd n.
//
// Recursive characterisation: TQ_1 = K_2. For odd n >= 3 write
// u = (u_{n-1}, u_{n-2}, w) with w the low n-2 bits and f(w) the parity of w.
// TQ_n consists of four copies of TQ_{n-2} indexed by the top two bits, plus
// cross edges per node:
//   f(w) = 0:  u ~ (~u_{n-1},  u_{n-2}, w)  and  u ~ (~u_{n-1}, ~u_{n-2}, w)
//   f(w) = 1:  u ~ ( u_{n-1}, ~u_{n-2}, w)  and  u ~ (~u_{n-1}, ~u_{n-2}, w)
// Regular of degree n; κ = n (Chang–Wang–Hsu [7]); diagnosability n for
// n >= 5. The reconstruction is validated computationally (regularity and
// exact vertex connectivity on TQ_3/TQ_5/TQ_7) in topology_props_test.
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class TwistedCube final : public BitCubeTopology {
 public:
  explicit TwistedCube(unsigned n);  // n odd, 1 <= n <= 29

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
