// The k-ary n-cube Q^k_n (k >= 3).
//
// Nodes: Z_k^n; u ~ v iff they differ by ±1 (mod k) in exactly one
// coordinate. Regular of degree 2n, κ = 2n (Bose et al. [5]);
// diagnosability 2n by Chang et al. [6] except for the small cases the
// paper excludes: (k,n) ∈ {(3,2),(3,3),(3,4),(4,2),(4,3),(5,2)}.
#pragma once

#include <memory>

#include "topology/topology.hpp"
#include "util/mixed_radix.hpp"

namespace mmdiag {

class KAryNCube : public Topology {
 public:
  KAryNCube(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
  [[nodiscard]] std::string node_label(Node u) const override;
  [[nodiscard]] std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const override;
  [[nodiscard]] std::vector<unsigned> params() const override {
    return {n_, k_};
  }

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }

 protected:
  [[nodiscard]] bool excluded_small_case() const;

  unsigned n_;
  unsigned k_;
  TupleCodec codec_;
};

}  // namespace mmdiag
