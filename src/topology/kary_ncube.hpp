// The k-ary n-cube Q^k_n (k >= 3).
//
// Nodes: Z_k^n; u ~ v iff they differ by ±1 (mod k) in exactly one
// coordinate. Regular of degree 2n, κ = 2n (Bose et al. [5]);
// diagnosability 2n by Chang et al. [6] except for the small cases the
// paper excludes: (k,n) ∈ {(3,2),(3,3),(3,4),(4,2),(4,3),(5,2)}.
#pragma once

#include <memory>

#include "topology/topology.hpp"
#include "util/mixed_radix.hpp"

namespace mmdiag {

class KAryNCube : public Topology {
 public:
  KAryNCube(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
  [[nodiscard]] std::string node_label(Node u) const override;
  [[nodiscard]] std::vector<std::shared_ptr<const PartitionPlan>>
  partition_plans() const override;
  [[nodiscard]] std::vector<unsigned> params() const override {
    return {n_, k_};
  }

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }

  // Closed-form implicit adjacency: each dimension contributes the ±1
  // (mod k) neighbours by digit arithmetic on the rank itself; sorting the
  // 2n candidates (or counting those below v) recovers the CSR order in
  // O(Δ) with no decode table.
  [[nodiscard]] unsigned degree(Node u) const override;
  unsigned sorted_neighbors(Node u, Node* out) const override;
  [[nodiscard]] Node neighbor(Node u, unsigned p) const override;
  [[nodiscard]] int neighbor_position(Node u, Node v) const override;
  [[nodiscard]] unsigned mirror_position(Node u, unsigned p) const override;

  // Static forms of the same arithmetic, usable without an instance.
  static unsigned sorted_neighbors_of(unsigned n, unsigned k, Node u,
                                      Node* out);
  [[nodiscard]] static Node neighbor_of(unsigned n, unsigned k, Node u,
                                        unsigned p);
  [[nodiscard]] static int position_of(unsigned n, unsigned k, Node u, Node v);

 protected:
  [[nodiscard]] bool excluded_small_case() const;

  unsigned n_;
  unsigned k_;
  TupleCodec codec_;
};

}  // namespace mmdiag
