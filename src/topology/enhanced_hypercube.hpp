// The enhanced hypercube Q_{n,k} (Tzeng & Wei [22]), 2 <= k <= n.
//
// Q_n plus, at every node, one extra edge complementing the low k address
// bits: u ~ u ^ (2^k - 1). k = n gives the folded hypercube.
// Regular of degree n+1, κ = n+1, diagnosability n+1 for n >= 4.
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class EnhancedHypercube final : public BitCubeTopology {
 public:
  EnhancedHypercube(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
  [[nodiscard]] std::vector<unsigned> params() const override {
    return {n_, k_};
  }

  [[nodiscard]] unsigned k() const noexcept { return k_; }

 private:
  unsigned k_;
};

}  // namespace mmdiag
