#include "topology/twisted_n_cube.hpp"

#include <stdexcept>

namespace mmdiag {

TwistedNCube::TwistedNCube(unsigned n) : BitCubeTopology(n) {
  if (n < 2 || n > 30) throw std::invalid_argument("TwistedNCube: need 2 <= n <= 30");
}

TopologyInfo TwistedNCube::info() const {
  TopologyInfo t;
  t.name = "TQ'" + std::to_string(n_);
  t.family = "twisted_n_cube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void TwistedNCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  // Dimension 0: twisted on the four nodes with zero address above bit 1.
  out.push_back((u >> 2) == 0 ? (u ^ 3u) : (u ^ 1u));
  for (unsigned i = 1; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
}

}  // namespace mmdiag
