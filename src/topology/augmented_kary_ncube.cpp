#include "topology/augmented_kary_ncube.hpp"

#include <stdexcept>

namespace mmdiag {

AugmentedKAryNCube::AugmentedKAryNCube(unsigned n, unsigned k)
    : KAryNCube(n, k) {
  if (n < 2) throw std::invalid_argument("AugmentedKAryNCube: need n >= 2");
  // k >= 3 keeps all 4n-2 neighbours distinct (for k = 2 the +1 and -1
  // shifts coincide); the base-class constructor already enforces it.
}

TopologyInfo AugmentedKAryNCube::info() const {
  TopologyInfo t;
  t.name = "AQ_" + std::to_string(n_) + "," + std::to_string(k_);
  t.family = "augmented_kary_ncube";
  t.num_nodes = codec_.count;
  t.degree = 4 * n_ - 2;
  t.connectivity = 4 * n_ - 2;
  t.diagnosability =
      (n_ == 2 && k_ == 3)
          ? 0
          : diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void AugmentedKAryNCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t d[64];
  codec_.unrank(u, d);
  // k-ary n-cube edges.
  std::uint8_t e[64];
  auto emit = [&]() { out.push_back(static_cast<Node>(codec_.rank(e))); };
  for (unsigned i = 0; i < n_; ++i) {
    for (unsigned s = 0; s < n_; ++s) e[s] = d[s];
    e[i] = static_cast<std::uint8_t>((d[i] + 1) % k_);
    emit();
    e[i] = static_cast<std::uint8_t>((d[i] + k_ - 1) % k_);
    emit();
  }
  // Augmenting edges: +- (e_1 + ... + e_i) for i = 2..n, i.e. shift the
  // lowest i coordinates together.
  for (unsigned i = 2; i <= n_; ++i) {
    for (unsigned s = 0; s < n_; ++s) {
      e[s] = (s < i) ? static_cast<std::uint8_t>((d[s] + 1) % k_) : d[s];
    }
    emit();
    for (unsigned s = 0; s < n_; ++s) {
      e[s] = (s < i) ? static_cast<std::uint8_t>((d[s] + k_ - 1) % k_) : d[s];
    }
    emit();
  }
}

}  // namespace mmdiag
