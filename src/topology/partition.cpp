#include "topology/partition.hpp"

#include <stdexcept>

namespace mmdiag {

PrefixBitsPlan::PrefixBitsPlan(unsigned total_bits, unsigned suffix_bits)
    : total_bits_(total_bits), suffix_bits_(suffix_bits) {
  if (suffix_bits == 0 || suffix_bits > total_bits) {
    throw std::invalid_argument("PrefixBitsPlan: bad suffix_bits");
  }
}

std::string PrefixBitsPlan::description() const {
  return "fix top " + std::to_string(total_bits_ - suffix_bits_) +
         " bits (components of 2^" + std::to_string(suffix_bits_) + " nodes)";
}

TuplePrefixPlan::TuplePrefixPlan(unsigned n, unsigned k, unsigned free_digits)
    : n_(n), k_(k), free_digits_(free_digits) {
  if (free_digits == 0 || free_digits > n) {
    throw std::invalid_argument("TuplePrefixPlan: bad free_digits");
  }
  block_ = 1;
  for (unsigned i = 0; i < free_digits; ++i) block_ *= k;
  components_ = 1;
  for (unsigned i = 0; i < n - free_digits; ++i) components_ *= k;
}

std::string TuplePrefixPlan::description() const {
  return "fix top " + std::to_string(n_ - free_digits_) +
         " coordinates (components of " + std::to_string(k_) + "^" +
         std::to_string(free_digits_) + " nodes)";
}

FixLastSymbolPlan::FixLastSymbolPlan(unsigned n, unsigned k)
    : n_(n), k_(k), codec_(n, k) {
  if (k < 2) throw std::invalid_argument("FixLastSymbolPlan: need k >= 2");
}

std::uint32_t FixLastSymbolPlan::component_of(Node v) const {
  std::uint8_t a[64];
  codec_.unrank(v, a);
  return a[k_ - 1] - 1u;  // symbols are 1-based
}

Node FixLastSymbolPlan::seed_of(std::size_t c) const {
  // Arrangement whose last position holds symbol c+1 and whose earlier
  // positions take the smallest other symbols in ascending order.
  const auto fixed = static_cast<std::uint8_t>(c + 1);
  std::uint8_t a[64];
  std::uint8_t next = 1;
  for (unsigned i = 0; i + 1 < k_; ++i) {
    if (next == fixed) ++next;
    a[i] = next++;
  }
  a[k_ - 1] = fixed;
  return static_cast<Node>(codec_.rank(a));
}

std::uint64_t FixLastSymbolPlan::component_size() const {
  return codec_.count() / n_;
}

std::string FixLastSymbolPlan::description() const {
  return "fix symbol in position " + std::to_string(k_) + " (" +
         std::to_string(n_) + " components)";
}

}  // namespace mmdiag
