#include "topology/shuffle_cube.hpp"

#include <stdexcept>

namespace mmdiag {

const std::array<std::array<unsigned, 4>, 4>& ShuffleCube::mask_table() {
  // V_c per suffix class c = u1u0. Each set: four distinct nonzero 4-bit
  // masks, closed under nothing in particular — symmetry of the edge
  // relation holds because v = (p^q)·w keeps the suffix class, so q ∈ V_c
  // on both endpoints. Chosen so the union over classes covers all 15
  // nonzero masks; κ(SQ_6) = 6 verified in tests.
  static const std::array<std::array<unsigned, 4>, 4> table = {{
      {{0x1, 0x2, 0x3, 0xF}},  // V_00
      {{0x4, 0x5, 0x6, 0x7}},  // V_01
      {{0x8, 0x9, 0xA, 0xB}},  // V_10
      {{0xC, 0xD, 0xE, 0xF}},  // V_11
  }};
  return table;
}

ShuffleCube::ShuffleCube(unsigned n) : BitCubeTopology(n) {
  if (n < 2 || n > 30 || n % 4 != 2) {
    throw std::invalid_argument("ShuffleCube: need n = 4k+2 in [2,30]");
  }
}

TopologyInfo ShuffleCube::info() const {
  TopologyInfo t;
  t.name = "SQ" + std::to_string(n_);
  t.family = "shuffle_cube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_;
  t.connectivity = n_;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void ShuffleCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  const unsigned cls = u & 3u;  // suffix class from the lowest two bits
  // Cross edges at each recursion level, peeling 4 bits at a time.
  for (unsigned level = n_; level >= 6; level -= 4) {
    const unsigned shift = level - 4;  // top-4 block of this level
    for (const unsigned q : mask_table()[cls]) {
      out.push_back(u ^ (static_cast<Node>(q) << shift));
    }
  }
  // Base SQ_2 = Q_2 on the lowest two bits.
  out.push_back(u ^ 1u);
  out.push_back(u ^ 2u);
}

}  // namespace mmdiag
