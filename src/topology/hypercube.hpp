// The n-dimensional hypercube Q_n.
//
// Nodes: {0,1}^n; u ~ v iff the addresses differ in exactly one bit.
// Regular of degree n, κ = n, diagnosability n for n >= 4 (Wang [23] /
// Chang et al. [6]).
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class Hypercube final : public BitCubeTopology {
 public:
  explicit Hypercube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
