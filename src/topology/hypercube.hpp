// The n-dimensional hypercube Q_n.
//
// Nodes: {0,1}^n; u ~ v iff the addresses differ in exactly one bit.
// Regular of degree n, κ = n, diagnosability n for n >= 4 (Wang [23] /
// Chang et al. [6]).
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class Hypercube final : public BitCubeTopology {
 public:
  explicit Hypercube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;

  // Closed-form implicit adjacency. The ascending (CSR) neighbour order of u
  // is: set bits of u by descending bit index (each flip decreases u), then
  // unset bits by ascending bit index (each flip increases u).
  [[nodiscard]] unsigned degree(Node u) const override;
  unsigned sorted_neighbors(Node u, Node* out) const override;
  [[nodiscard]] Node neighbor(Node u, unsigned p) const override;
  [[nodiscard]] int neighbor_position(Node u, Node v) const override;
  [[nodiscard]] unsigned mirror_position(Node u, unsigned p) const override;

  // Static forms of the same arithmetic, usable without an instance.
  static unsigned sorted_neighbors_of(unsigned n, Node u, Node* out);
  [[nodiscard]] static Node neighbor_of(unsigned n, Node u, unsigned p);
  [[nodiscard]] static int position_of(unsigned n, Node u, Node v);
};

}  // namespace mmdiag
