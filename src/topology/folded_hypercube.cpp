#include "topology/folded_hypercube.hpp"

#include <stdexcept>

namespace mmdiag {

FoldedHypercube::FoldedHypercube(unsigned n) : BitCubeTopology(n) {
  if (n < 2 || n > 30) throw std::invalid_argument("FoldedHypercube: need 2 <= n <= 30");
}

TopologyInfo FoldedHypercube::info() const {
  TopologyInfo t;
  t.name = "FQ" + std::to_string(n_);
  t.family = "folded_hypercube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_ + 1;
  t.connectivity = n_ + 1;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void FoldedHypercube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
  out.push_back(u ^ static_cast<Node>((std::uint64_t{1} << n_) - 1));
}

}  // namespace mmdiag
