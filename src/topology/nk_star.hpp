// The (n,k)-star graph S_{n,k} (Chiang & Chen [9]), 1 <= k <= n-1.
//
// Nodes: k-arrangements of {1..n}. Edges: (i) swap position 1 with position
// i (2 <= i <= k); (ii) replace the symbol in position 1 by any symbol not
// present in the arrangement. Regular of degree n-1, κ = n-1,
// diagnosability n-1 except (n,k) = (3,2) (the paper's exclusion).
// S_{n,n-1} is isomorphic to the star graph S_n; S_{n,1} is K_n.
#pragma once

#include "topology/perm_base.hpp"

namespace mmdiag {

class NKStar final : public PermTopology {
 public:
  NKStar(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
  [[nodiscard]] std::vector<unsigned> params() const override {
    return {n_, k_};
  }
};

}  // namespace mmdiag
