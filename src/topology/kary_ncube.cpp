#include "topology/kary_ncube.hpp"

#include <stdexcept>

namespace mmdiag {

KAryNCube::KAryNCube(unsigned n, unsigned k) : n_(n), k_(k), codec_(n, k) {
  if (n < 1) throw std::invalid_argument("KAryNCube: need n >= 1");
  if (k < 3) throw std::invalid_argument("KAryNCube: need k >= 3");
  if (codec_.count > (std::uint64_t{1} << 31)) {
    throw std::invalid_argument("KAryNCube: instance too large");
  }
}

bool KAryNCube::excluded_small_case() const {
  // The paper's Theorem 4 exclusion list, as (k, n) pairs.
  static constexpr std::pair<unsigned, unsigned> kExcluded[] = {
      {3, 2}, {3, 3}, {3, 4}, {4, 2}, {4, 3}, {5, 2}};
  for (const auto& [k, n] : kExcluded) {
    if (k == k_ && n == n_) return true;
  }
  return false;
}

TopologyInfo KAryNCube::info() const {
  TopologyInfo t;
  t.name = "Q^" + std::to_string(k_) + "_" + std::to_string(n_);
  t.family = "kary_ncube";
  t.num_nodes = codec_.count;
  t.degree = 2 * n_;
  t.connectivity = 2 * n_;
  t.diagnosability =
      (n_ >= 2 && !excluded_small_case())
          ? diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity)
          : 0;
  return t;
}

void KAryNCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t d[64];
  codec_.unrank(u, d);
  std::uint64_t place = 1;
  const auto base = static_cast<std::int64_t>(u);
  for (unsigned i = 0; i < n_; ++i) {
    const auto digit = static_cast<std::int64_t>(d[i]);
    const std::int64_t up = (digit + 1) % k_;
    const std::int64_t down = (digit + k_ - 1) % k_;
    const auto p = static_cast<std::int64_t>(place);
    out.push_back(static_cast<Node>(base + (up - digit) * p));
    out.push_back(static_cast<Node>(base + (down - digit) * p));
    place *= k_;
  }
}

namespace {

// Writes the 2n ±1 (mod k) neighbours of u in dimension order (up, down per
// dimension), unsorted. Digits come straight off the rank by div/mod, so no
// codec state is needed.
unsigned raw_kary_neighbors(unsigned n, unsigned k, Node u, Node* out) {
  unsigned count = 0;
  std::uint64_t place = 1;
  std::uint64_t rest = u;
  const auto base = static_cast<std::int64_t>(u);
  for (unsigned i = 0; i < n; ++i) {
    const auto digit = static_cast<std::int64_t>(rest % k);
    rest /= k;
    const std::int64_t up = (digit + 1) % k;
    const std::int64_t down = (digit + k - 1) % k;
    const auto p = static_cast<std::int64_t>(place);
    out[count++] = static_cast<Node>(base + (up - digit) * p);
    out[count++] = static_cast<Node>(base + (down - digit) * p);
    place *= k;
  }
  return count;
}

}  // namespace

unsigned KAryNCube::sorted_neighbors_of(unsigned n, unsigned k, Node u,
                                        Node* out) {
  const unsigned count = raw_kary_neighbors(n, k, u, out);
  // Insertion sort: count = 2n <= 64, typically far smaller.
  for (unsigned i = 1; i < count; ++i) {
    const Node key = out[i];
    unsigned j = i;
    for (; j > 0 && out[j - 1] > key; --j) out[j] = out[j - 1];
    out[j] = key;
  }
  return count;
}

Node KAryNCube::neighbor_of(unsigned n, unsigned k, Node u, unsigned p) {
  Node adj[64];
  sorted_neighbors_of(n, k, u, adj);
  return adj[p];
}

int KAryNCube::position_of(unsigned n, unsigned k, Node u, Node v) {
  Node adj[64];
  const unsigned count = raw_kary_neighbors(n, k, u, adj);
  unsigned below = 0;
  bool found = false;
  for (unsigned i = 0; i < count; ++i) {
    below += adj[i] < v;
    found = found || adj[i] == v;
  }
  if (!found) return -1;
  return static_cast<int>(below);
}

unsigned KAryNCube::degree(Node /*u*/) const { return 2 * n_; }

unsigned KAryNCube::sorted_neighbors(Node u, Node* out) const {
  return sorted_neighbors_of(n_, k_, u, out);
}

Node KAryNCube::neighbor(Node u, unsigned p) const {
  return neighbor_of(n_, k_, u, p);
}

int KAryNCube::neighbor_position(Node u, Node v) const {
  return position_of(n_, k_, u, v);
}

unsigned KAryNCube::mirror_position(Node u, unsigned p) const {
  const Node v = neighbor_of(n_, k_, u, p);
  return static_cast<unsigned>(position_of(n_, k_, v, u));
}

std::string KAryNCube::node_label(Node u) const {
  std::uint8_t d[64];
  codec_.unrank(u, d);
  std::string s = "(";
  for (unsigned i = n_; i-- > 0;) {  // print highest coordinate first
    s += std::to_string(d[i]);
    if (i != 0) s += ",";
  }
  return s + ")";
}

std::vector<std::shared_ptr<const PartitionPlan>> KAryNCube::partition_plans()
    const {
  std::vector<std::shared_ptr<const PartitionPlan>> plans;
  for (unsigned free = 1; free < n_; ++free) {
    plans.push_back(std::make_shared<TuplePrefixPlan>(n_, k_, free));
  }
  return plans;
}

}  // namespace mmdiag
