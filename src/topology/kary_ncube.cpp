#include "topology/kary_ncube.hpp"

#include <stdexcept>

namespace mmdiag {

KAryNCube::KAryNCube(unsigned n, unsigned k) : n_(n), k_(k), codec_(n, k) {
  if (n < 1) throw std::invalid_argument("KAryNCube: need n >= 1");
  if (k < 3) throw std::invalid_argument("KAryNCube: need k >= 3");
  if (codec_.count > (std::uint64_t{1} << 31)) {
    throw std::invalid_argument("KAryNCube: instance too large");
  }
}

bool KAryNCube::excluded_small_case() const {
  // The paper's Theorem 4 exclusion list, as (k, n) pairs.
  static constexpr std::pair<unsigned, unsigned> kExcluded[] = {
      {3, 2}, {3, 3}, {3, 4}, {4, 2}, {4, 3}, {5, 2}};
  for (const auto& [k, n] : kExcluded) {
    if (k == k_ && n == n_) return true;
  }
  return false;
}

TopologyInfo KAryNCube::info() const {
  TopologyInfo t;
  t.name = "Q^" + std::to_string(k_) + "_" + std::to_string(n_);
  t.family = "kary_ncube";
  t.num_nodes = codec_.count;
  t.degree = 2 * n_;
  t.connectivity = 2 * n_;
  t.diagnosability =
      (n_ >= 2 && !excluded_small_case())
          ? diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity)
          : 0;
  return t;
}

void KAryNCube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t d[64];
  codec_.unrank(u, d);
  std::uint64_t place = 1;
  const auto base = static_cast<std::int64_t>(u);
  for (unsigned i = 0; i < n_; ++i) {
    const auto digit = static_cast<std::int64_t>(d[i]);
    const std::int64_t up = (digit + 1) % k_;
    const std::int64_t down = (digit + k_ - 1) % k_;
    const auto p = static_cast<std::int64_t>(place);
    out.push_back(static_cast<Node>(base + (up - digit) * p));
    out.push_back(static_cast<Node>(base + (down - digit) * p));
    place *= k_;
  }
}

std::string KAryNCube::node_label(Node u) const {
  std::uint8_t d[64];
  codec_.unrank(u, d);
  std::string s = "(";
  for (unsigned i = n_; i-- > 0;) {  // print highest coordinate first
    s += std::to_string(d[i]);
    if (i != 0) s += ",";
  }
  return s + ")";
}

std::vector<std::shared_ptr<const PartitionPlan>> KAryNCube::partition_plans()
    const {
  std::vector<std::shared_ptr<const PartitionPlan>> plans;
  for (unsigned free = 1; free < n_; ++free) {
    plans.push_back(std::make_shared<TuplePrefixPlan>(n_, k_, free));
  }
  return plans;
}

}  // namespace mmdiag
