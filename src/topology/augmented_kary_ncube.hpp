// The augmented k-ary n-cube AQ_{n,k} (Xiang & Stewart [25]).
//
// Z_k^n with the k-ary n-cube edges u ~ u ± e_i (1 <= i <= n) plus the
// "augmenting" edges u ~ u ± (e_1 + e_2 + ... + e_i) for 2 <= i <= n,
// mirroring how the augmented cube extends Q_n with prefix-complement
// edges. Regular of degree 4n-2, κ = 4n-2 (verified computationally on
// small instances), diagnosability 4n-2 except (n,k) = (2,3).
#pragma once

#include "topology/kary_ncube.hpp"

namespace mmdiag {

class AugmentedKAryNCube final : public KAryNCube {
 public:
  AugmentedKAryNCube(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;

  // The augmenting edges invalidate KAryNCube's ±e_i closed forms, so the
  // implicit-adjacency API must fall back to the generic enumerate-and-sort
  // path rather than inherit the base class's formulas.
  [[nodiscard]] unsigned degree(Node u) const override {
    return Topology::degree(u);
  }
  unsigned sorted_neighbors(Node u, Node* out) const override {
    return Topology::sorted_neighbors(u, out);
  }
  [[nodiscard]] Node neighbor(Node u, unsigned p) const override {
    return Topology::neighbor(u, p);
  }
  [[nodiscard]] int neighbor_position(Node u, Node v) const override {
    return Topology::neighbor_position(u, v);
  }
  [[nodiscard]] unsigned mirror_position(Node u, unsigned p) const override {
    return Topology::mirror_position(u, p);
  }
};

}  // namespace mmdiag
