// The augmented k-ary n-cube AQ_{n,k} (Xiang & Stewart [25]).
//
// Z_k^n with the k-ary n-cube edges u ~ u ± e_i (1 <= i <= n) plus the
// "augmenting" edges u ~ u ± (e_1 + e_2 + ... + e_i) for 2 <= i <= n,
// mirroring how the augmented cube extends Q_n with prefix-complement
// edges. Regular of degree 4n-2, κ = 4n-2 (verified computationally on
// small instances), diagnosability 4n-2 except (n,k) = (2,3).
#pragma once

#include "topology/kary_ncube.hpp"

namespace mmdiag {

class AugmentedKAryNCube final : public KAryNCube {
 public:
  AugmentedKAryNCube(unsigned n, unsigned k);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
