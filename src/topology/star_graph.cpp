#include "topology/star_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

StarGraph::StarGraph(unsigned n) : PermTopology(n, n) {
  if (n < 2 || n > 12) throw std::invalid_argument("StarGraph: need 2 <= n <= 12");
}

TopologyInfo StarGraph::info() const {
  TopologyInfo t;
  t.name = "S" + std::to_string(n_);
  t.family = "star";
  t.num_nodes = codec_.count();
  t.degree = n_ - 1;
  t.connectivity = n_ - 1;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void StarGraph::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  std::uint8_t a[64];
  codec_.unrank(u, a);
  for (unsigned i = 1; i < n_; ++i) {
    std::swap(a[0], a[i]);
    out.push_back(static_cast<Node>(codec_.rank(a)));
    std::swap(a[0], a[i]);
  }
}

}  // namespace mmdiag
