// The folded hypercube FQ_n (El-Amawy & Latifi [3]).
//
// Q_n plus a "complement" edge u ~ ū joining every antipodal pair.
// Regular of degree n+1, κ = n+1, diagnosability n+1 for n >= 4
// (Wang [23] / the paper's §5.1).
#pragma once

#include "topology/bit_cube_base.hpp"

namespace mmdiag {

class FoldedHypercube final : public BitCubeTopology {
 public:
  explicit FoldedHypercube(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
