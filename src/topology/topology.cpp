#include "topology/topology.hpp"

#include "graph/builder.hpp"

namespace mmdiag {

std::string Topology::spec() const {
  std::string out = info().family;
  for (const unsigned p : params()) {
    out += ' ';
    out += std::to_string(p);
  }
  return out;
}

Graph Topology::build_graph() const {
  return build_graph_from_generator(
      static_cast<std::size_t>(info().num_nodes),
      [this](Node u, std::vector<Node>& out) { neighbors(u, out); });
}

unsigned diagnosability_by_chang(std::uint64_t num_nodes, unsigned degree,
                                 unsigned connectivity) {
  if (degree == 0 || connectivity != degree) return 0;
  if (num_nodes < 2ULL * degree + 3ULL) return 0;
  return degree;
}

}  // namespace mmdiag
