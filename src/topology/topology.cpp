#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/builder.hpp"

namespace mmdiag {

namespace {

// Scratch for the generic implicit-adjacency fallbacks. thread_local so the
// fallbacks stay allocation-free in steady state and safe under the engine's
// thread pool.
std::vector<Node>& fallback_scratch() {
  thread_local std::vector<Node> scratch;
  return scratch;
}

}  // namespace

std::string Topology::spec() const {
  std::string out = info().family;
  for (const unsigned p : params()) {
    out += ' ';
    out += std::to_string(p);
  }
  return out;
}

Graph Topology::build_graph() const {
  return build_graph_from_generator(
      static_cast<std::size_t>(info().num_nodes),
      [this](Node u, std::vector<Node>& out) { neighbors(u, out); });
}

unsigned Topology::degree(Node /*u*/) const { return info().degree; }

unsigned Topology::sorted_neighbors(Node u, Node* out) const {
  std::vector<Node>& scratch = fallback_scratch();
  neighbors(u, scratch);
  std::sort(scratch.begin(), scratch.end());
  std::copy(scratch.begin(), scratch.end(), out);
  return static_cast<unsigned>(scratch.size());
}

Node Topology::neighbor(Node u, unsigned p) const {
  std::vector<Node>& scratch = fallback_scratch();
  neighbors(u, scratch);
  std::sort(scratch.begin(), scratch.end());
  return scratch[p];
}

int Topology::neighbor_position(Node u, Node v) const {
  std::vector<Node>& scratch = fallback_scratch();
  neighbors(u, scratch);
  std::sort(scratch.begin(), scratch.end());
  const auto it = std::lower_bound(scratch.begin(), scratch.end(), v);
  if (it == scratch.end() || *it != v) return -1;
  return static_cast<int>(it - scratch.begin());
}

unsigned Topology::mirror_position(Node u, unsigned p) const {
  const Node v = neighbor(u, p);
  const int pos = neighbor_position(v, u);
  if (pos < 0) {
    throw std::logic_error("Topology::mirror_position: adjacency asymmetry");
  }
  return static_cast<unsigned>(pos);
}

unsigned diagnosability_by_chang(std::uint64_t num_nodes, unsigned degree,
                                 unsigned connectivity) {
  if (degree == 0 || connectivity != degree) return 0;
  if (num_nodes < 2ULL * degree + 3ULL) return 0;
  return degree;
}

}  // namespace mmdiag
