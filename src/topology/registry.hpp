// Name-based topology factory: "hypercube 7", "nk_star 7 3", ...
// Used by example programs and parameterized tests/benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace mmdiag {

/// Family keys accepted by make_topology (stable public identifiers).
[[nodiscard]] std::vector<std::string> topology_families();

/// Construct a topology from a family key and numeric parameters.
/// Throws std::invalid_argument on unknown families or bad parameter counts.
[[nodiscard]] std::unique_ptr<Topology> make_topology(
    const std::string& family, const std::vector<unsigned>& params);

/// Parse "family n [k]" into a topology (e.g. "kary_ncube 3 4").
[[nodiscard]] std::unique_ptr<Topology> make_topology_from_spec(
    const std::string& spec);

}  // namespace mmdiag
