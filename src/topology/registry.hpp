// Name-based topology factory: "hypercube 7", "nk_star 7 3", ...
// Used by example programs and parameterized tests/benches.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "topology/topology.hpp"

namespace mmdiag {

/// Family keys accepted by make_topology (stable public identifiers).
[[nodiscard]] std::vector<std::string> topology_families();

/// Construct a topology from a family key and numeric parameters.
/// Throws std::invalid_argument on unknown families or bad parameter counts.
[[nodiscard]] std::unique_ptr<Topology> make_topology(
    const std::string& family, const std::vector<unsigned>& params);

/// Parse "family n [k]" into a topology (e.g. "kary_ncube 3 4"). Tokens may
/// be separated by any whitespace; parameters must be plain decimal
/// unsigned integers ("07" is accepted and normalises to 7, signs and hex
/// are rejected).
[[nodiscard]] std::unique_ptr<Topology> make_topology_from_spec(
    const std::string& spec);

/// Parse + re-serialise: the canonical form of any accepted spec
/// (equivalently make_topology_from_spec(spec)->spec()). Two specs denote
/// the same instance iff their canonical forms are equal — the engine's
/// calibration cache keys on this.
[[nodiscard]] std::string canonical_topology_spec(const std::string& spec);

}  // namespace mmdiag
