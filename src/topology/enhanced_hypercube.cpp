#include "topology/enhanced_hypercube.hpp"

#include <stdexcept>

namespace mmdiag {

EnhancedHypercube::EnhancedHypercube(unsigned n, unsigned k)
    : BitCubeTopology(n), k_(k) {
  if (n < 2 || n > 30) throw std::invalid_argument("EnhancedHypercube: need 2 <= n <= 30");
  if (k < 2 || k > n) {
    // k = 1 would duplicate the dimension-0 hypercube edge.
    throw std::invalid_argument("EnhancedHypercube: need 2 <= k <= n");
  }
}

TopologyInfo EnhancedHypercube::info() const {
  TopologyInfo t;
  t.name = "Q" + std::to_string(n_) + "," + std::to_string(k_);
  t.family = "enhanced_hypercube";
  t.num_nodes = std::uint64_t{1} << n_;
  t.degree = n_ + 1;
  t.connectivity = n_ + 1;
  t.diagnosability = diagnosability_by_chang(t.num_nodes, t.degree, t.connectivity);
  return t;
}

void EnhancedHypercube::neighbors(Node u, std::vector<Node>& out) const {
  out.clear();
  for (unsigned i = 0; i < n_; ++i) out.push_back(u ^ (Node{1} << i));
  out.push_back(u ^ static_cast<Node>((std::uint64_t{1} << k_) - 1));
}

}  // namespace mmdiag
