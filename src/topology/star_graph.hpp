// The star graph S_n (Akers–Harel–Krishnamurthy [1]).
//
// Nodes: permutations of {1..n}; u ~ v iff v is u with positions 1 and i
// swapped (2 <= i <= n). Regular of degree n-1, κ = n-1,
// diagnosability n-1 for n >= 4 (Zheng et al. [28]).
#pragma once

#include "topology/perm_base.hpp"

namespace mmdiag {

class StarGraph final : public PermTopology {
 public:
  explicit StarGraph(unsigned n);

  [[nodiscard]] TopologyInfo info() const override;
  void neighbors(Node u, std::vector<Node>& out) const override;
};

}  // namespace mmdiag
