#include "core/verifier.hpp"

#include <stdexcept>

namespace mmdiag {

bool syndrome_consistent(const Graph& g, const SyndromeOracle& oracle,
                         const FaultSet& claimed) {
  const std::size_t n = g.num_nodes();
  for (std::size_t u = 0; u < n; ++u) {
    const auto node = static_cast<Node>(u);
    if (claimed.is_faulty(node)) continue;  // faulty testers are unconstrained
    const auto adj = g.neighbors(node);
    for (unsigned i = 0; i + 1 < adj.size(); ++i) {
      const bool fi = claimed.is_faulty(adj[i]);
      for (unsigned j = i + 1; j < adj.size(); ++j) {
        const bool expected = fi || claimed.is_faulty(adj[j]);
        if (oracle.test(node, i, j) != expected) return false;
      }
    }
  }
  return true;
}

DiagnosisResult diagnose_and_verify(Diagnoser& diagnoser,
                                    const SyndromeOracle& oracle) {
  if (!oracle.has_graph()) {
    throw std::invalid_argument(
        "diagnose_and_verify: verification reads the oracle's CSR graph; "
        "implicit-view oracles are not supported here");
  }
  DiagnosisResult result = diagnoser.diagnose(oracle);
  if (!result.success) return result;
  const FaultSet claimed(oracle.graph().num_nodes(), result.faults);
  const std::uint64_t before = oracle.lookups();
  if (!syndrome_consistent(oracle.graph(), oracle, claimed)) {
    result.success = false;
    result.failure_reason =
        "diagnosis inconsistent with the syndrome (fault count must exceed "
        "delta, or the syndrome is corrupt)";
    result.faults.clear();
  }
  result.lookups = before;  // verification look-ups reported separately
  return result;
}

}  // namespace mmdiag
