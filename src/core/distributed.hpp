// Synchronous distributed-execution cost model (§6 "further research").
//
// The paper closes by proposing that the *system itself* should run the
// diagnosis, and reports (without numbers) that a distributed Set_Builder
// beats a distributed Chiang–Tan in hypercubes. We reproduce that comparison
// under an explicit synchronous message-passing model — the interconnection
// network is fault-free and every node knows only its own test results
// (exactly the model the paper argues is realistic):
//
// Distributed Set_Builder:
//   Phase A (parallel probes): every component runs its restricted build
//     concurrently. A frontier node offers membership to each neighbour and
//     receives an accept/decline reply (2 messages per scanned edge); one
//     round per tree level for offers and one for replies. Contributor
//     counts converge-cast up the tree (|U_c| messages, depth_c rounds).
//     Rounds are the maximum over components; messages are summed.
//   Phase B (election + final build): certified seeds flood their id
//     (eccentricity rounds, 2|E| messages bound); the winning seed rebuilds
//     unrestricted with the same offer/reply accounting, then fault reports
//     converge-cast to the seed.
//
// Distributed Chiang–Tan:
//   Every node x gathers, for each of its b branches, the three black-node
//   test bits at distances 1, 2 and 3 — relayed along the branch, costing
//   1 + 2 + 3 = 6 messages per branch — all nodes in parallel, 6 pipelined
//   rounds, then a purely local decision. Messages: 6·b·N.
//
// Both simulations *execute the real algorithms* on the real syndrome; the
// model only prices the communication.
#pragma once

#include <cstdint>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/hypercube.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

struct DistributedCost {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t local_work = 0;  // total syndrome-bit reads across nodes
  bool success = false;
};

/// Distributed Set_Builder diagnosis under the model above.
[[nodiscard]] DistributedCost distributed_set_builder_cost(
    const Topology& topology, const Graph& graph, const SyndromeOracle& oracle,
    const DiagnoserOptions& options = {});

/// Distributed Chiang–Tan on a hypercube (b = n branches).
[[nodiscard]] DistributedCost distributed_chiang_tan_cost(
    const Hypercube& topo, const Graph& graph, const SyndromeOracle& oracle);

}  // namespace mmdiag
