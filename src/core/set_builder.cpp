#include "core/set_builder.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace mmdiag {

SetBuilder::SetBuilder(const Graph& g, ParentRule rule)
    : graph_(&g), rule_(rule) {
  const std::size_t n = g.num_nodes();
  in_set_.resize(n);
  is_contributor_.resize(n);
  frontier_words_[0].assign((n + 63) / 64, 0u);
  frontier_words_[1].assign((n + 63) / 64, 0u);
  parent_pos_of_.assign(n, 0u);
  // Baseline scratch is sized lazily by run_baseline_impl: production
  // paths (engine lanes, batch lanes) never run the baseline, so they
  // should not carry its per-node arrays.
}

SetBuilder::SetBuilder(const ImplicitGraph& g, ParentRule rule)
    : implicit_(&g), rule_(rule) {
  const std::size_t n = g.num_nodes();
  in_set_.resize(n);
  is_contributor_.resize(n);
  frontier_words_[0].assign((n + 63) / 64, 0u);
  frontier_words_[1].assign((n + 63) / 64, 0u);
  parent_pos_of_.assign(n, 0u);
}

void SetBuilder::require_csr(const char* what) const {
  if (graph_ == nullptr) {
    throw std::logic_error(std::string("Set_Builder: ") + what +
                           " requires a CSR graph, not an implicit view");
  }
}

// Type-erased entry points: one instantiation of the same run_impl on the
// base class, where every look-up goes through the virtual test_impl. Kept
// (rather than downcasting) so the dispatch benches and the equivalence
// suite can measure/compare the virtual path in the same binary.
SetBuilderResult SetBuilder::run(const SyndromeOracle& oracle, Node u0,
                                 unsigned delta) {
  if (implicit_ != nullptr) {
    return run_impl<SyndromeOracle>(oracle, *implicit_, u0, delta, nullptr, 0);
  }
  return run_impl<SyndromeOracle>(oracle, *graph_, u0, delta, nullptr, 0);
}

SetBuilderResult SetBuilder::run_restricted(const SyndromeOracle& oracle,
                                            Node u0, unsigned delta,
                                            const PartitionPlan& plan,
                                            std::uint32_t comp) {
  if (implicit_ != nullptr) {
    return run_impl<SyndromeOracle>(oracle, *implicit_, u0, delta, &plan,
                                    comp);
  }
  return run_impl<SyndromeOracle>(oracle, *graph_, u0, delta, &plan, comp);
}

void SetBuilder::run_sliced(const BitSlicedOracle& oracle, Node u0,
                            unsigned delta, std::uint64_t active,
                            SlicedLaneResult* out) {
  run_sliced_impl(oracle, u0, delta, active, nullptr, 0, out);
}

void SetBuilder::run_sliced_restricted(const BitSlicedOracle& oracle, Node u0,
                                       unsigned delta, std::uint64_t active,
                                       const PartitionPlan& plan,
                                       std::uint32_t comp,
                                       SlicedLaneResult* out) {
  run_sliced_impl(oracle, u0, delta, active, &plan, comp, out);
}

// The cohort kernel. One instruction stream drives every lane in `active`
// through the same rounds run_impl executes, with per-node lane masks in
// place of the scalar per-run bitsets:
//   s_member_[v]       bit L = v ∈ lane L's U_r            (in_set_)
//   s_contrib_[v]      bit L = v internal in lane L's tree (is_contributor_)
//   s_frontier_[·][v]  bit L = v in lane L's frontier      (frontier_words_)
// The union frontier bitmap iterates nodes ascending and positions are
// scanned ascending within each node, so projecting any single lane out of
// the interleaved stream reproduces exactly the scalar execution order —
// which is why members, rounds, contributors AND charged look-ups are
// bit-identical per lane (asserted by tests/dispatch_equiv_test.cpp and
// raced by the fuzzer's cohort voice).
//
// Divergence peel. All lanes admitting a node through the same parent
// position share one transposed row. Round 1 cannot diverge (every parent
// is u0 and the recorded position is the mirror of the child's own fixed
// adjacency slot); from round 2 on, a lane whose tree parent of a node
// differs from the node's first-recorded position peels off to a scalar
// per-node walk over that lane's own packed row, then rejoins the cohort
// stream. Lanes are disjoint state, so interleaving the peel with the
// shared stream never changes any lane's own order of consults.
//
// For the deferred rules the round buffer carries lane masks per candidate
// edge. kSpread's pass A keeps the scalar `claimed` flag as one bit per
// lane; kHashSpread's comparator is a strict total order over (parent,
// child) with at most one event per pair and round, so the sorted combined
// stream filtered to one lane is that lane's scalar sorted stream.
void SetBuilder::run_sliced_impl(const BitSlicedOracle& oracle, Node u0,
                                 unsigned delta, std::uint64_t active,
                                 const PartitionPlan* plan, std::uint32_t comp,
                                 SlicedLaneResult* out) {
  require_csr("run_sliced");
  const Graph& g = *graph_;
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  if (g.max_degree() > 64) {
    throw std::invalid_argument(
        "Set_Builder: run_sliced needs word-wide rows (degree <= 64)");
  }
  if ((active & ~oracle.full_mask()) != 0) {
    throw std::invalid_argument(
        "Set_Builder: active mask names lanes the oracle does not have");
  }
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    out[std::countr_zero(m)] = SlicedLaneResult{};
  }
  if (active == 0) return;

  // Same prefix-plan devirtualisation as run_impl.
  const auto* prefix_plan =
      plan != nullptr ? dynamic_cast<const PrefixBitsPlan*>(plan) : nullptr;
  const unsigned prefix_shift =
      prefix_plan != nullptr ? prefix_plan->suffix_bits() : 0;
  auto eligible = [&](Node v) {
    if (plan == nullptr) return true;
    if (prefix_plan != nullptr) return (v >> prefix_shift) == comp;
    return plan->component_of(v) == comp;
  };

  const std::size_t n = g.num_nodes();
  if (s_member_.size() < n) {
    s_member_.assign(n, 0);
    s_contrib_.assign(n, 0);
    s_frontier_[0].assign(n, 0);
    s_frontier_[1].assign(n, 0);
    s_shared_pos_.assign(n, 0);
    s_divergent_.assign(n, 0);
    s_frontier_union_[0].assign((n + 63) / 64, 0);
    s_frontier_union_[1].assign((n + 63) / 64, 0);
    s_divergent_pos_.assign(n * 64, 0);
  }
  // Clear the previous sliced run through its touched-node list — O(|U_r|)
  // resets, like the scalar dirty bitsets. (Union-bitmap words may be
  // zeroed whole: only touched nodes ever set bits in them.)
  for (const Node v : s_touched_) {
    s_member_[v] = 0;
    s_contrib_[v] = 0;
    s_divergent_[v] = 0;
    s_frontier_[0][v] = 0;
    s_frontier_[1][v] = 0;
    s_frontier_union_[0][v >> 6] = 0;
    s_frontier_union_[1][v >> 6] = 0;
  }
  s_touched_.clear();

  unsigned fi = 0;  // frontier being filled
  std::uint64_t admitted_round = 0;

  // Per-lane contributor/member tallies live in vertical (carry-save) bit
  // planes, like the oracle's look-up counters: adding a lane mask is a
  // ripple add (~2 word ops regardless of popcount) instead of a per-set-bit
  // scalar loop. Folds happen only where a count is actually read — the
  // certify check and the final sweep.
  constexpr unsigned kPlanes = 6;
  std::array<std::uint64_t, kPlanes> contrib_planes{};
  std::array<std::uint64_t, kPlanes> member_planes{};
  auto vadd = [out](std::array<std::uint64_t, kPlanes>& planes,
                    std::size_t SlicedLaneResult::*slot,
                    std::uint64_t lanes) {
    std::uint64_t carry = lanes;
    for (auto& plane : planes) {
      const std::uint64_t t = plane & carry;
      plane ^= carry;
      carry = t;
      if (carry == 0) return;
    }
    for (; carry != 0; carry &= carry - 1) {
      out[std::countr_zero(carry)].*slot += std::uint64_t{1} << kPlanes;
    }
  };
  auto vfold = [out](std::array<std::uint64_t, kPlanes>& planes,
                     std::size_t SlicedLaneResult::*slot) {
    for (unsigned k = 0; k < kPlanes; ++k) {
      for (std::uint64_t m = planes[k]; m != 0; m &= m - 1) {
        out[std::countr_zero(m)].*slot += std::uint64_t{1} << k;
      }
      planes[k] = 0;
    }
  };

  auto credit = [&](Node u, std::uint64_t lanes) {
    const std::uint64_t newly = lanes & ~s_contrib_[u];
    if (newly == 0) return;
    s_contrib_[u] |= newly;
    vadd(contrib_planes, &SlicedLaneResult::contributors, newly);
  };

  auto admit = [&](Node v, std::uint64_t lanes, std::uint32_t parent_pos) {
    const std::uint64_t before = s_member_[v];
    if (before == 0) {
      s_touched_.push_back(v);
      s_shared_pos_[v] = parent_pos;
    } else if (s_shared_pos_[v] != parent_pos) {
      // These lanes' tree parent sits at a different slot of adj(v) than
      // the first admitter's: record the position on the side; v runs the
      // peel path for them when consumed as a frontier node.
      s_divergent_[v] |= lanes;
      for (std::uint64_t m = lanes; m != 0; m &= m - 1) {
        s_divergent_pos_[(static_cast<std::size_t>(v) << 6) |
                         static_cast<unsigned>(std::countr_zero(m))] =
            static_cast<std::uint8_t>(parent_pos);
      }
    }
    s_member_[v] = before | lanes;
    s_frontier_[fi][v] |= lanes;
    s_frontier_union_[fi][v >> 6] |= std::uint64_t{1} << (v & 63);
    admitted_round |= lanes;
    vadd(member_planes, &SlicedLaneResult::member_count, lanes);
  };

  // Seed: member of every active lane.
  s_touched_.push_back(u0);
  s_member_[u0] = active;
  vadd(member_planes, &SlicedLaneResult::member_count, active);

  const bool deferred = rule_ != ParentRule::kLeastFirst;

  // ---- Round 1: U_1 from u0's pair tests, all lanes at once. ---------------
  {
    const auto adj = g.neighbors(u0);
    const auto mirror = g.mirror_positions(u0);
    round1_pos_.clear();
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) round1_pos_.push_back(p);
    }
    for (std::size_t a = 0; a < round1_pos_.size(); ++a) {
      const unsigned pa = round1_pos_[a];
      const Node va = adj[pa];
      const std::uint64_t* row = nullptr;
      for (std::size_t b = a + 1; b < round1_pos_.size(); ++b) {
        const unsigned pb = round1_pos_[b];
        const Node vb = adj[pb];
        // Per lane: once both endpoints are members the test adds no
        // information (run_impl's skip, as a mask).
        const std::uint64_t consult =
            active & ~(s_member_[va] & s_member_[vb]);
        if (consult == 0) continue;
        if (row == nullptr) row = oracle.transposed_row(u0, pa);
        oracle.charge(consult);
        const std::uint64_t zero = consult & ~row[pb];
        if (zero == 0) continue;
        // Round-1 parents are always u0; no divergence is possible here.
        const std::uint64_t adm_a = zero & ~s_member_[va];
        if (adm_a != 0) admit(va, adm_a, mirror[pa]);
        const std::uint64_t adm_b = zero & ~s_member_[vb];
        if (adm_b != 0) admit(vb, adm_b, mirror[pb]);
      }
    }
    if (admitted_round != 0) {
      credit(u0, admitted_round);
      for (std::uint64_t m = admitted_round; m != 0; m &= m - 1) {
        out[std::countr_zero(m)].rounds = 1;
      }
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  std::uint64_t prev_admitted = admitted_round;
  std::uint64_t stopped = 0;
  while (true) {
    // Top-of-round certificate check, as in run_impl. all_healthy itself
    // is settled by the post-loop sweep; the mask only drives early stop.
    if (stop_on_certify_) {
      vfold(contrib_planes, &SlicedLaneResult::contributors);
      for (std::uint64_t m = prev_admitted & ~stopped; m != 0; m &= m - 1) {
        const unsigned L = static_cast<unsigned>(std::countr_zero(m));
        if (out[L].contributors > delta) stopped |= std::uint64_t{1} << L;
      }
    }
    const std::uint64_t looping = prev_admitted & ~stopped;
    if (looping == 0) break;

    std::uint64_t* const cur = s_frontier_[fi].data();
    std::uint64_t* const cur_union = s_frontier_union_[fi].data();
    const std::size_t cur_words = s_frontier_union_[fi].size();
    fi ^= 1;
    admitted_round = 0;
    if (deferred) s_zero_edges_.clear();

    for (std::size_t w = 0; w < cur_words; ++w) {
      std::uint64_t bits = cur_union[w];
      if (bits == 0) continue;
      cur_union[w] = 0;  // consumed
      do {
        const Node u = static_cast<Node>((w << 6) + std::countr_zero(bits));
        bits &= bits - 1;
        const std::uint64_t fmask = cur[u] & looping;
        cur[u] = 0;  // consumed (dropping stopped lanes' bits — the mask
                     // analogue of the scalar certify-break scrub)
        if (fmask == 0) continue;
        const auto adj = g.neighbors(u);
        const auto mirror = g.mirror_positions(u);
        std::uint64_t contributed = 0;

        // Cohort stream: every lane whose tree parent of u sits at the
        // shared (first-recorded) position runs off one lane-major row.
        // The consult masks are pre-scanned: positions name distinct
        // neighbours, so no admit at one position can change another's
        // mask, and knowing how many columns the node actually reads picks
        // the cheaper flip — a full transpose when several are consulted,
        // a per-column gather-extract when (typically, deep in a solve)
        // only one or two are.
        const std::uint64_t shared = fmask & ~s_divergent_[u];
        if (shared != 0) {
          const unsigned parent_pos = s_shared_pos_[u];
          std::uint64_t consult_of[64];
          unsigned pos_of[64];
          unsigned needed = 0;
          for (unsigned p = 0; p < adj.size(); ++p) {
            const Node v = adj[p];
            if (p == parent_pos || !eligible(v)) continue;
            const std::uint64_t consult = shared & ~s_member_[v];
            if (consult == 0) continue;
            consult_of[needed] = consult;
            pos_of[needed++] = p;
          }
          const std::uint64_t* row = nullptr;
          if (needed >= 3) {
            row = oracle.transposed_row(u, parent_pos);
          } else if (needed != 0) {
            // A prior run of this cohort (a probe, for the final pass) may
            // have transposed this exact (u, pivot) already; the cached
            // block is cheaper than even a 1-column gather.
            row = oracle.cached_row(u, parent_pos);
            if (row == nullptr) oracle.gather_rows(u, parent_pos);
          }
          for (unsigned k = 0; k < needed; ++k) {
            const unsigned p = pos_of[k];
            const std::uint64_t consult = consult_of[k];
            oracle.charge(consult);
            const std::uint64_t zero =
                consult & ~(row != nullptr ? row[p] : oracle.column(p));
            if (zero == 0) continue;
            const Node v = adj[p];
            if (!deferred) {
              admit(v, zero, mirror[p]);
              contributed |= zero;
            } else {
              s_zero_edges_.push_back(SlicedEdge{u, v, mirror[p], zero});
            }
          }
        }

        // Peel path: divergent lanes replay the scalar per-node walk over
        // their own packed row (their parent pivot differs), charging
        // single-lane masks.
        for (std::uint64_t dm = fmask & s_divergent_[u]; dm != 0;
             dm &= dm - 1) {
          const unsigned L = static_cast<unsigned>(std::countr_zero(dm));
          const std::uint64_t lane_bit = std::uint64_t{1} << L;
          const unsigned parent_pos =
              s_divergent_pos_[(static_cast<std::size_t>(u) << 6) | L];
          std::uint64_t row = 0;
          bool have_row = false;
          for (unsigned p = 0; p < adj.size(); ++p) {
            const Node v = adj[p];
            if (p == parent_pos || (s_member_[v] & lane_bit) != 0 ||
                !eligible(v)) {
              continue;
            }
            if (!have_row) {
              row = oracle.lane(L).row_bits(u, parent_pos);
              have_row = true;
            }
            oracle.charge(lane_bit);
            if ((row >> p) & 1) continue;
            if (!deferred) {
              admit(v, lane_bit, mirror[p]);
              contributed |= lane_bit;
            } else {
              s_zero_edges_.push_back(SlicedEdge{u, v, mirror[p], lane_bit});
            }
          }
        }

        if (!deferred && contributed != 0) credit(u, contributed);
      } while (bits != 0);
    }

    if (deferred) {
      if (rule_ == ParentRule::kSpread) {
        // Pass A, lane-masked: per parent group, each lane claims its
        // first still-admittable child (the scalar `claimed` flag, one
        // bit per lane). Events stay grouped by parent in ascending
        // order — the shared stream and any peel events of the same node
        // are pushed contiguously.
        std::size_t i = 0;
        while (i < s_zero_edges_.size()) {
          const Node u = s_zero_edges_[i].parent;
          std::uint64_t claimed = 0;
          std::size_t j = i;
          for (; j < s_zero_edges_.size() && s_zero_edges_[j].parent == u;
               ++j) {
            const SlicedEdge& e = s_zero_edges_[j];
            const std::uint64_t adm =
                e.lanes & ~claimed & ~s_member_[e.child];
            if (adm != 0) {
              admit(e.child, adm, e.child_parent_pos);
              credit(u, adm);
              claimed |= adm;
            }
          }
          i = j;
        }
      } else if (rule_ == ParentRule::kHashSpread) {
        std::sort(s_zero_edges_.begin(), s_zero_edges_.end(),
                  [](const SlicedEdge& a, const SlicedEdge& b) {
                    if (a.child != b.child) return a.child < b.child;
                    const auto ha = mix64(a.parent, a.child);
                    const auto hb = mix64(b.parent, b.child);
                    if (ha != hb) return ha < hb;
                    return a.parent < b.parent;
                  });
      }
      // Remaining candidates (all of them under kLeastSync / kHashSpread)
      // go to the first admitting parent in edge order, per lane.
      for (const SlicedEdge& e : s_zero_edges_) {
        const std::uint64_t adm = e.lanes & ~s_member_[e.child];
        if (adm != 0) {
          admit(e.child, adm, e.child_parent_pos);
          credit(e.parent, adm);
        }
      }
    }

    for (std::uint64_t m = admitted_round; m != 0; m &= m - 1) {
      ++out[std::countr_zero(m)].rounds;
    }
    prev_admitted = admitted_round;
  }

  // Scrub frontier state an early stop may have left admitted but never
  // consumed; membership/contributor masks stay readable until the next
  // sliced run (sliced_member_mask).
  for (const Node v : s_touched_) {
    s_frontier_[0][v] = 0;
    s_frontier_[1][v] = 0;
    s_frontier_union_[0][v >> 6] = 0;
    s_frontier_union_[1][v >> 6] = 0;
  }

  vfold(contrib_planes, &SlicedLaneResult::contributors);
  vfold(member_planes, &SlicedLaneResult::member_count);
  for (std::uint64_t m = active; m != 0; m &= m - 1) {
    const unsigned L = static_cast<unsigned>(std::countr_zero(m));
    if (out[L].contributors > delta) out[L].all_healthy = true;
  }
}

SetBuilderResult SetBuilder::run_baseline(const SyndromeOracle& oracle,
                                          Node u0, unsigned delta) {
  return run_baseline_impl(oracle, u0, delta, nullptr, 0);
}

SetBuilderResult SetBuilder::run_restricted_baseline(
    const SyndromeOracle& oracle, Node u0, unsigned delta,
    const PartitionPlan& plan, std::uint32_t comp) {
  return run_baseline_impl(oracle, u0, delta, &plan, comp);
}

// The seed implementation, preserved verbatim as the measured baseline for
// bench_hotpath's old-vs-new comparison and as a third voice in the
// differential tests: per-pair virtual look-ups, stamp-array membership, a
// sorted vector frontier re-sorted every round, parent positions re-searched
// via Graph::neighbor_position, and the round-1 position vector allocated
// per run. Do not "fix" its performance — its cost profile is the datum.
SetBuilderResult SetBuilder::run_baseline_impl(const SyndromeOracle& oracle,
                                               Node u0, unsigned delta,
                                               const PartitionPlan* plan,
                                               std::uint32_t comp) {
  require_csr("run_baseline");
  const Graph& g = *graph_;
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  auto eligible = [&](Node v) {
    return plan == nullptr || plan->component_of(v) == comp;
  };

  if (baseline_parent_of_.size() < g.num_nodes()) {
    baseline_in_set_.resize(g.num_nodes());
    baseline_contributor_.resize(g.num_nodes());
    baseline_parent_of_.assign(g.num_nodes(), kNoNode);
  }
  baseline_in_set_.clear();
  baseline_contributor_.clear();
  baseline_frontier_.clear();
  baseline_next_frontier_.clear();

  SetBuilderResult result;
  result.members.push_back(u0);
  result.parent.push_back(kNoNode);
  baseline_in_set_.insert(u0);
  baseline_parent_of_[u0] = kNoNode;

  auto add_member = [&](Node v, Node parent) {
    baseline_parent_of_[v] = parent;
    result.members.push_back(v);
    result.parent.push_back(parent);
    baseline_next_frontier_.push_back(v);
  };

  // ---- Round 1: U_1 from u0's pair tests. ----------------------------------
  {
    const auto adj = g.neighbors(u0);
    // Eligible neighbour positions.
    std::vector<unsigned> pos;
    pos.reserve(adj.size());
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) pos.push_back(p);
    }
    for (std::size_t a = 0; a < pos.size(); ++a) {
      for (std::size_t b = a + 1; b < pos.size(); ++b) {
        const Node va = adj[pos[a]];
        const Node vb = adj[pos[b]];
        // Once both endpoints are members the test adds no information.
        if (baseline_in_set_.contains(va) && baseline_in_set_.contains(vb)) {
          continue;
        }
        if (!oracle.test(u0, pos[a], pos[b])) {
          if (baseline_in_set_.insert(va)) add_member(va, u0);
          if (baseline_in_set_.insert(vb)) add_member(vb, u0);
        }
      }
    }
    if (!baseline_next_frontier_.empty()) {
      baseline_contributor_.insert(u0);
      result.contributors = 1;
      result.rounds = 1;
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  while (!baseline_next_frontier_.empty()) {
    if (result.contributors > delta) {
      result.all_healthy = true;
      if (stop_on_certify_) break;
    }
    std::swap(baseline_frontier_, baseline_next_frontier_);
    baseline_next_frontier_.clear();
    // Process frontier nodes in ascending id order: under kLeastFirst this
    // realises the paper's "least contributing node" parent choice.
    std::sort(baseline_frontier_.begin(), baseline_frontier_.end());

    if (rule_ == ParentRule::kLeastFirst) {
      for (const Node u : baseline_frontier_) {
        const int parent_pos = g.neighbor_position(u, baseline_parent_of_[u]);
        const auto adj = g.neighbors(u);
        bool contributed = false;
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos ||
              baseline_in_set_.contains(v) || !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            baseline_in_set_.insert(v);
            add_member(v, u);
            contributed = true;
          }
        }
        if (contributed && baseline_contributor_.insert(u)) {
          ++result.contributors;
        }
      }
    } else {  // kSpread / kLeastSync: joins deferred to the round end
      baseline_zero_edges_.clear();
      for (const Node u : baseline_frontier_) {
        const int parent_pos = g.neighbor_position(u, baseline_parent_of_[u]);
        const auto adj = g.neighbors(u);
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos ||
              baseline_in_set_.contains(v) || !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            baseline_zero_edges_.emplace_back(u, v);
          }
        }
      }
      if (rule_ == ParentRule::kSpread) {
        // Pass A: one child per distinct parent, scanning parents in
        // ascending order (zero_edges_ is grouped by u in that order).
        std::size_t i = 0;
        while (i < baseline_zero_edges_.size()) {
          const Node u = baseline_zero_edges_[i].first;
          bool claimed = false;
          std::size_t j = i;
          for (; j < baseline_zero_edges_.size() &&
                 baseline_zero_edges_[j].first == u;
               ++j) {
            const Node v = baseline_zero_edges_[j].second;
            if (!claimed && baseline_in_set_.insert(v)) {
              add_member(v, u);
              if (baseline_contributor_.insert(u)) ++result.contributors;
              claimed = true;
            }
          }
          i = j;
        }
      } else if (rule_ == ParentRule::kHashSpread) {
        // Order candidates so the first edge per child carries the parent
        // minimising mix64(parent, child).
        std::sort(baseline_zero_edges_.begin(), baseline_zero_edges_.end(),
                  [](const std::pair<Node, Node>& a,
                     const std::pair<Node, Node>& b) {
                    if (a.second != b.second) return a.second < b.second;
                    const auto ha = mix64(a.first, a.second);
                    const auto hb = mix64(b.first, b.second);
                    if (ha != hb) return ha < hb;
                    return a.first < b.first;
                  });
      }
      // Remaining candidates (all of them under kLeastSync / kHashSpread)
      // go to the first admitting parent in edge order.
      for (const auto& [u, v] : baseline_zero_edges_) {
        if (baseline_in_set_.insert(v)) {
          add_member(v, u);
          if (baseline_contributor_.insert(u)) ++result.contributors;
        }
      }
    }

    if (!baseline_next_frontier_.empty()) ++result.rounds;
  }

  if (result.contributors > delta) result.all_healthy = true;
  return result;
}

}  // namespace mmdiag
