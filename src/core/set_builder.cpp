#include "core/set_builder.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

std::string to_string(ParentRule rule) {
  switch (rule) {
    case ParentRule::kLeastFirst:
      return "least-first";
    case ParentRule::kSpread:
      return "spread";
    case ParentRule::kLeastSync:
      return "least-sync";
    case ParentRule::kHashSpread:
      return "hash-spread";
  }
  return "?";
}

std::string parent_rule_to_string(ParentRule rule) { return to_string(rule); }

ParentRule parent_rule_from_string(const std::string& name) {
  std::string canon = name;
  std::replace(canon.begin(), canon.end(), '_', '-');
  for (const ParentRule rule : kAllParentRules) {
    if (canon == to_string(rule)) return rule;
  }
  throw std::invalid_argument("unknown parent rule '" + name +
                              "' (expected least-first, spread, least-sync, "
                              "or hash-spread)");
}

SetBuilder::SetBuilder(const Graph& g, ParentRule rule)
    : graph_(&g), rule_(rule) {
  const std::size_t n = g.num_nodes();
  in_set_.resize(n);
  is_contributor_.resize(n);
  frontier_words_[0].assign((n + 63) / 64, 0u);
  frontier_words_[1].assign((n + 63) / 64, 0u);
  parent_pos_of_.assign(n, 0u);
  // Baseline scratch is sized lazily by run_baseline_impl: production
  // paths (engine lanes, batch lanes) never run the baseline, so they
  // should not carry its per-node arrays.
}

// Type-erased entry points: one instantiation of the same run_impl on the
// base class, where every look-up goes through the virtual test_impl. Kept
// (rather than downcasting) so the dispatch benches and the equivalence
// suite can measure/compare the virtual path in the same binary.
SetBuilderResult SetBuilder::run(const SyndromeOracle& oracle, Node u0,
                                 unsigned delta) {
  return run_impl<SyndromeOracle>(oracle, u0, delta, nullptr, 0);
}

SetBuilderResult SetBuilder::run_restricted(const SyndromeOracle& oracle,
                                            Node u0, unsigned delta,
                                            const PartitionPlan& plan,
                                            std::uint32_t comp) {
  return run_impl<SyndromeOracle>(oracle, u0, delta, &plan, comp);
}

SetBuilderResult SetBuilder::run_baseline(const SyndromeOracle& oracle,
                                          Node u0, unsigned delta) {
  return run_baseline_impl(oracle, u0, delta, nullptr, 0);
}

SetBuilderResult SetBuilder::run_restricted_baseline(
    const SyndromeOracle& oracle, Node u0, unsigned delta,
    const PartitionPlan& plan, std::uint32_t comp) {
  return run_baseline_impl(oracle, u0, delta, &plan, comp);
}

// The seed implementation, preserved verbatim as the measured baseline for
// bench_hotpath's old-vs-new comparison and as a third voice in the
// differential tests: per-pair virtual look-ups, stamp-array membership, a
// sorted vector frontier re-sorted every round, parent positions re-searched
// via Graph::neighbor_position, and the round-1 position vector allocated
// per run. Do not "fix" its performance — its cost profile is the datum.
SetBuilderResult SetBuilder::run_baseline_impl(const SyndromeOracle& oracle,
                                               Node u0, unsigned delta,
                                               const PartitionPlan* plan,
                                               std::uint32_t comp) {
  const Graph& g = *graph_;
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  auto eligible = [&](Node v) {
    return plan == nullptr || plan->component_of(v) == comp;
  };

  if (baseline_parent_of_.size() < g.num_nodes()) {
    baseline_in_set_.resize(g.num_nodes());
    baseline_contributor_.resize(g.num_nodes());
    baseline_parent_of_.assign(g.num_nodes(), kNoNode);
  }
  baseline_in_set_.clear();
  baseline_contributor_.clear();
  baseline_frontier_.clear();
  baseline_next_frontier_.clear();

  SetBuilderResult result;
  result.members.push_back(u0);
  result.parent.push_back(kNoNode);
  baseline_in_set_.insert(u0);
  baseline_parent_of_[u0] = kNoNode;

  auto add_member = [&](Node v, Node parent) {
    baseline_parent_of_[v] = parent;
    result.members.push_back(v);
    result.parent.push_back(parent);
    baseline_next_frontier_.push_back(v);
  };

  // ---- Round 1: U_1 from u0's pair tests. ----------------------------------
  {
    const auto adj = g.neighbors(u0);
    // Eligible neighbour positions.
    std::vector<unsigned> pos;
    pos.reserve(adj.size());
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) pos.push_back(p);
    }
    for (std::size_t a = 0; a < pos.size(); ++a) {
      for (std::size_t b = a + 1; b < pos.size(); ++b) {
        const Node va = adj[pos[a]];
        const Node vb = adj[pos[b]];
        // Once both endpoints are members the test adds no information.
        if (baseline_in_set_.contains(va) && baseline_in_set_.contains(vb)) {
          continue;
        }
        if (!oracle.test(u0, pos[a], pos[b])) {
          if (baseline_in_set_.insert(va)) add_member(va, u0);
          if (baseline_in_set_.insert(vb)) add_member(vb, u0);
        }
      }
    }
    if (!baseline_next_frontier_.empty()) {
      baseline_contributor_.insert(u0);
      result.contributors = 1;
      result.rounds = 1;
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  while (!baseline_next_frontier_.empty()) {
    if (result.contributors > delta) {
      result.all_healthy = true;
      if (stop_on_certify_) break;
    }
    std::swap(baseline_frontier_, baseline_next_frontier_);
    baseline_next_frontier_.clear();
    // Process frontier nodes in ascending id order: under kLeastFirst this
    // realises the paper's "least contributing node" parent choice.
    std::sort(baseline_frontier_.begin(), baseline_frontier_.end());

    if (rule_ == ParentRule::kLeastFirst) {
      for (const Node u : baseline_frontier_) {
        const int parent_pos = g.neighbor_position(u, baseline_parent_of_[u]);
        const auto adj = g.neighbors(u);
        bool contributed = false;
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos ||
              baseline_in_set_.contains(v) || !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            baseline_in_set_.insert(v);
            add_member(v, u);
            contributed = true;
          }
        }
        if (contributed && baseline_contributor_.insert(u)) {
          ++result.contributors;
        }
      }
    } else {  // kSpread / kLeastSync: joins deferred to the round end
      baseline_zero_edges_.clear();
      for (const Node u : baseline_frontier_) {
        const int parent_pos = g.neighbor_position(u, baseline_parent_of_[u]);
        const auto adj = g.neighbors(u);
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos ||
              baseline_in_set_.contains(v) || !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            baseline_zero_edges_.emplace_back(u, v);
          }
        }
      }
      if (rule_ == ParentRule::kSpread) {
        // Pass A: one child per distinct parent, scanning parents in
        // ascending order (zero_edges_ is grouped by u in that order).
        std::size_t i = 0;
        while (i < baseline_zero_edges_.size()) {
          const Node u = baseline_zero_edges_[i].first;
          bool claimed = false;
          std::size_t j = i;
          for (; j < baseline_zero_edges_.size() &&
                 baseline_zero_edges_[j].first == u;
               ++j) {
            const Node v = baseline_zero_edges_[j].second;
            if (!claimed && baseline_in_set_.insert(v)) {
              add_member(v, u);
              if (baseline_contributor_.insert(u)) ++result.contributors;
              claimed = true;
            }
          }
          i = j;
        }
      } else if (rule_ == ParentRule::kHashSpread) {
        // Order candidates so the first edge per child carries the parent
        // minimising mix64(parent, child).
        std::sort(baseline_zero_edges_.begin(), baseline_zero_edges_.end(),
                  [](const std::pair<Node, Node>& a,
                     const std::pair<Node, Node>& b) {
                    if (a.second != b.second) return a.second < b.second;
                    const auto ha = mix64(a.first, a.second);
                    const auto hb = mix64(b.first, b.second);
                    if (ha != hb) return ha < hb;
                    return a.first < b.first;
                  });
      }
      // Remaining candidates (all of them under kLeastSync / kHashSpread)
      // go to the first admitting parent in edge order.
      for (const auto& [u, v] : baseline_zero_edges_) {
        if (baseline_in_set_.insert(v)) {
          add_member(v, u);
          if (baseline_contributor_.insert(u)) ++result.contributors;
        }
      }
    }

    if (!baseline_next_frontier_.empty()) ++result.rounds;
  }

  if (result.contributors > delta) result.all_healthy = true;
  return result;
}

}  // namespace mmdiag
