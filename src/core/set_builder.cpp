#include "core/set_builder.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace mmdiag {

std::string to_string(ParentRule rule) {
  switch (rule) {
    case ParentRule::kLeastFirst:
      return "least-first";
    case ParentRule::kSpread:
      return "spread";
    case ParentRule::kLeastSync:
      return "least-sync";
    case ParentRule::kHashSpread:
      return "hash-spread";
  }
  return "?";
}

std::string parent_rule_to_string(ParentRule rule) { return to_string(rule); }

ParentRule parent_rule_from_string(const std::string& name) {
  std::string canon = name;
  std::replace(canon.begin(), canon.end(), '_', '-');
  for (const ParentRule rule : kAllParentRules) {
    if (canon == to_string(rule)) return rule;
  }
  throw std::invalid_argument("unknown parent rule '" + name +
                              "' (expected least-first, spread, least-sync, "
                              "or hash-spread)");
}

SetBuilder::SetBuilder(const Graph& g, ParentRule rule)
    : graph_(&g), rule_(rule) {
  in_set_.resize(g.num_nodes());
  is_contributor_.resize(g.num_nodes());
  parent_of_.assign(g.num_nodes(), kNoNode);
}

SetBuilderResult SetBuilder::run(const SyndromeOracle& oracle, Node u0,
                                 unsigned delta) {
  return run_impl(oracle, u0, delta, nullptr, 0);
}

SetBuilderResult SetBuilder::run_restricted(const SyndromeOracle& oracle,
                                            Node u0, unsigned delta,
                                            const PartitionPlan& plan,
                                            std::uint32_t comp) {
  return run_impl(oracle, u0, delta, &plan, comp);
}

SetBuilderResult SetBuilder::run_impl(const SyndromeOracle& oracle, Node u0,
                                      unsigned delta, const PartitionPlan* plan,
                                      std::uint32_t comp) {
  const Graph& g = *graph_;
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  auto eligible = [&](Node v) {
    return plan == nullptr || plan->component_of(v) == comp;
  };

  in_set_.clear();
  is_contributor_.clear();
  frontier_.clear();
  next_frontier_.clear();

  SetBuilderResult result;
  result.members.push_back(u0);
  result.parent.push_back(kNoNode);
  in_set_.insert(u0);
  parent_of_[u0] = kNoNode;

  auto add_member = [&](Node v, Node parent) {
    parent_of_[v] = parent;
    result.members.push_back(v);
    result.parent.push_back(parent);
    next_frontier_.push_back(v);
  };

  // ---- Round 1: U_1 from u0's pair tests. ----------------------------------
  {
    const auto adj = g.neighbors(u0);
    // Eligible neighbour positions.
    std::vector<unsigned> pos;
    pos.reserve(adj.size());
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) pos.push_back(p);
    }
    for (std::size_t a = 0; a < pos.size(); ++a) {
      for (std::size_t b = a + 1; b < pos.size(); ++b) {
        const Node va = adj[pos[a]];
        const Node vb = adj[pos[b]];
        // Once both endpoints are members the test adds no information.
        if (in_set_.contains(va) && in_set_.contains(vb)) continue;
        if (!oracle.test(u0, pos[a], pos[b])) {
          if (in_set_.insert(va)) add_member(va, u0);
          if (in_set_.insert(vb)) add_member(vb, u0);
        }
      }
    }
    if (!next_frontier_.empty()) {
      is_contributor_.insert(u0);
      result.contributors = 1;
      result.rounds = 1;
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  while (!next_frontier_.empty()) {
    if (result.contributors > delta) {
      result.all_healthy = true;
      if (stop_on_certify_) break;
    }
    std::swap(frontier_, next_frontier_);
    next_frontier_.clear();
    // Process frontier nodes in ascending id order: under kLeastFirst this
    // realises the paper's "least contributing node" parent choice.
    std::sort(frontier_.begin(), frontier_.end());

    if (rule_ == ParentRule::kLeastFirst) {
      for (const Node u : frontier_) {
        const int parent_pos = g.neighbor_position(u, parent_of_[u]);
        const auto adj = g.neighbors(u);
        bool contributed = false;
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos || in_set_.contains(v) ||
              !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            in_set_.insert(v);
            add_member(v, u);
            contributed = true;
          }
        }
        if (contributed && is_contributor_.insert(u)) ++result.contributors;
      }
    } else {  // kSpread / kLeastSync: joins deferred to the round end
      zero_edges_.clear();
      for (const Node u : frontier_) {
        const int parent_pos = g.neighbor_position(u, parent_of_[u]);
        const auto adj = g.neighbors(u);
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (static_cast<int>(p) == parent_pos || in_set_.contains(v) ||
              !eligible(v)) {
            continue;
          }
          if (!oracle.test(u, p, static_cast<unsigned>(parent_pos))) {
            zero_edges_.emplace_back(u, v);
          }
        }
      }
      if (rule_ == ParentRule::kSpread) {
        // Pass A: one child per distinct parent, scanning parents in
        // ascending order (zero_edges_ is grouped by u in that order).
        std::size_t i = 0;
        while (i < zero_edges_.size()) {
          const Node u = zero_edges_[i].first;
          bool claimed = false;
          std::size_t j = i;
          for (; j < zero_edges_.size() && zero_edges_[j].first == u; ++j) {
            const Node v = zero_edges_[j].second;
            if (!claimed && in_set_.insert(v)) {
              add_member(v, u);
              if (is_contributor_.insert(u)) ++result.contributors;
              claimed = true;
            }
          }
          i = j;
        }
      } else if (rule_ == ParentRule::kHashSpread) {
        // Order candidates so the first edge per child carries the parent
        // minimising mix64(parent, child) — the coordination-free spread a
        // distributed joiner can compute from its offers alone.
        std::sort(zero_edges_.begin(), zero_edges_.end(),
                  [](const std::pair<Node, Node>& a,
                     const std::pair<Node, Node>& b) {
                    if (a.second != b.second) return a.second < b.second;
                    const auto ha = mix64(a.first, a.second);
                    const auto hb = mix64(b.first, b.second);
                    if (ha != hb) return ha < hb;
                    return a.first < b.first;
                  });
      }
      // Remaining candidates (all of them under kLeastSync / kHashSpread)
      // go to the first admitting parent in edge order.
      for (const auto& [u, v] : zero_edges_) {
        if (in_set_.insert(v)) {
          add_member(v, u);
          if (is_contributor_.insert(u)) ++result.contributors;
        }
      }
    }

    if (!next_frontier_.empty()) ++result.rounds;
  }

  if (result.contributors > delta) result.all_healthy = true;
  return result;
}

}  // namespace mmdiag
