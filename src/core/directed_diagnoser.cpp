#include "core/directed_diagnoser.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/timer.hpp"

namespace mmdiag {

namespace {

const char kNoSolution[] = "no fault set of size <= delta is consistent";
const char kAmbiguous[] =
    "ambiguous syndrome: at least two consistent candidates";

}  // namespace

DirectedDiagnoser::DirectedDiagnoser(const Graph& graph, unsigned delta)
    : graph_(&graph), delta_(delta) {
  if (delta > graph.num_nodes()) {
    throw std::invalid_argument(
        "DirectedDiagnoser: delta exceeds the node count");
  }
  const std::size_t n = graph.num_nodes();
  arc_base_.resize(n);
  EdgeIndex total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    arc_base_[u] = total;
    total += graph.degree(static_cast<Node>(u));
  }
  outcomes_.resize(total);
  uf_parent_.resize(n);
  uf_size_.resize(n);
  state_.resize(n);
}

Node DirectedDiagnoser::find_root(Node v) noexcept {
  while (uf_parent_[v] != v) {
    uf_parent_[v] = uf_parent_[uf_parent_[v]];  // halve the path as we walk
    v = uf_parent_[v];
  }
  return v;
}

bool DirectedDiagnoser::assign(Node v, State s) {
  if (state_[v] == s) return true;
  if (state_[v] != State::kUnknown) return false;  // contradiction
  state_[v] = s;
  trail_.push_back(v);
  queue_.push_back(v);
  if (s == State::kFaulty) {
    ++faulty_count_;
    if (faulty_count_ > delta_) return false;  // budget exceeded
  }
  return true;
}

bool DirectedDiagnoser::propagate_assigned(Node x) {
  const auto adj = graph_->neighbors(x);
  const bool x_faulty = state_[x] == State::kFaulty;
  for (unsigned p = 0; p < adj.size(); ++p) {
    const Node v = adj[p];
    // A healthy tester's outcomes decide its neighbours outright.
    if (!x_faulty) {
      if (!assign(v, outcome(x, p) ? State::kFaulty : State::kHealthy)) {
        return false;
      }
    }
    // A decided unit convicts any tester whose report mismatches it.
    const bool s_in = outcome(v, graph_->mirror_position(x, p));
    if (s_in != x_faulty && !assign(v, State::kFaulty)) return false;
  }
  return true;
}

bool DirectedDiagnoser::propagate() {
  while (queue_head_ < queue_.size()) {
    const Node x = queue_[queue_head_++];
    if (!propagate_assigned(x)) return false;
  }
  queue_.clear();
  queue_head_ = 0;
  return true;
}

bool DirectedDiagnoser::budget_fixpoint() {
  bool changed = true;
  while (changed) {
    changed = false;
    const unsigned budget = delta_ - faulty_count_;
    for (const Node rep : class_reps_) {
      if (state_[rep] != State::kUnknown) continue;
      if (uf_size_[rep] > budget) {
        // Mutual-0 classes are homogeneous, and this one is too big to be
        // all faulty within the remaining budget — so it is all healthy.
        if (!assign(rep, State::kHealthy) || !propagate()) return false;
        changed = true;
        break;  // the budget moved; rescan with the fresh value
      }
    }
  }
  return true;
}

void DirectedDiagnoser::search_residue(std::size_t rep_index,
                                       std::size_t max_solutions,
                                       std::vector<std::vector<Node>>& out) {
  if (out.size() >= max_solutions) return;
  while (rep_index < class_reps_.size() &&
         state_[class_reps_[rep_index]] != State::kUnknown) {
    ++rep_index;
  }
  if (rep_index == class_reps_.size()) {
    // Every class decided — every node decided (propagation spreads any
    // assignment through the class's mutual-0 arcs). Snapshot the leaf.
    std::vector<Node> faults;
    for (Node v = 0; v < state_.size(); ++v) {
      if (state_[v] == State::kFaulty) faults.push_back(v);
    }
    out.push_back(std::move(faults));
    return;
  }

  const Node rep = class_reps_[rep_index];
  for (const State choice : {State::kHealthy, State::kFaulty}) {
    const std::size_t mark = trail_.size();
    if (assign(rep, choice) && propagate()) {
      search_residue(rep_index + 1, max_solutions, out);
    }
    queue_.clear();
    queue_head_ = 0;
    while (trail_.size() > mark) {
      const Node v = trail_.back();
      trail_.pop_back();
      if (state_[v] == State::kFaulty) --faulty_count_;
      state_[v] = State::kUnknown;
    }
    if (out.size() >= max_solutions) return;
  }
}

DiagnosisResult DirectedDiagnoser::diagnose(const DirectedOracle& oracle) {
  if (!is_directed_model(oracle.model())) {
    throw std::invalid_argument(
        "DirectedDiagnoser: oracle carries the MM* model — use Diagnoser");
  }
  // The oracle may carry its own Graph instance (the engine's calibration
  // holds a separate copy of the same topology); sizes at least must agree.
  if (oracle.graph().num_nodes() != graph_->num_nodes()) {
    throw std::invalid_argument(
        "DirectedDiagnoser: oracle reads a different-sized graph");
  }
  model_ = oracle.model();
  oracle.reset_lookups();
  const Timer timer;
  DiagnosisResult out;

  // Read the whole syndrome once (counted): a global diagnosis can hinge on
  // any arc, and the union-find pass consults every edge anyway.
  const std::size_t n = graph_->num_nodes();
  for (std::size_t u = 0; u < n; ++u) {
    const auto node = static_cast<Node>(u);
    const unsigned d = graph_->degree(node);
    for (unsigned p = 0; p < d; ++p) {
      outcomes_[arc_base_[u] + p] = oracle.test(node, p) ? 1 : 0;
    }
  }

  std::fill(state_.begin(), state_.end(), State::kUnknown);
  trail_.clear();
  queue_.clear();
  queue_head_ = 0;
  faulty_count_ = 0;

  // Mutual-0 classes.
  for (Node v = 0; v < n; ++v) {
    uf_parent_[v] = v;
    uf_size_[v] = 1;
  }
  for (Node u = 0; u < n; ++u) {
    const auto adj = graph_->neighbors(u);
    for (unsigned p = 0; p < adj.size(); ++p) {
      const Node v = adj[p];
      if (v < u) continue;  // one visit per edge
      if (outcome(u, p) || outcome(v, graph_->mirror_position(u, p))) continue;
      Node ra = find_root(u);
      Node rb = find_root(v);
      if (ra == rb) continue;
      if (uf_size_[ra] < uf_size_[rb]) std::swap(ra, rb);
      uf_parent_[rb] = ra;
      uf_size_[ra] += uf_size_[rb];
    }
  }
  class_reps_.clear();
  for (Node v = 0; v < n; ++v) {
    if (find_root(v) == v) class_reps_.push_back(v);
  }

  bool consistent = true;

  // BGM: every 0-outcome certifies the tested unit, unconditionally.
  if (model_ == DiagnosisModel::kBGM) {
    for (Node u = 0; u < n && consistent; ++u) {
      const auto adj = graph_->neighbors(u);
      for (unsigned p = 0; p < adj.size() && consistent; ++p) {
        if (!outcome(u, p)) consistent = assign(adj[p], State::kHealthy);
      }
    }
    consistent = consistent && propagate();
  }

  consistent = consistent && budget_fixpoint();

  if (!consistent) {
    // A conflict among deductions that hold in every <= delta candidate
    // means there is no such candidate at all.
    out.failure_reason = kNoSolution;
    out.lookups = oracle.lookups();
    out.diagnose_seconds = timer.seconds();
    return out;
  }

  const bool residue =
      std::any_of(class_reps_.begin(), class_reps_.end(),
                  [&](Node rep) { return state_[rep] == State::kUnknown; });
  if (!residue) {
    for (Node v = 0; v < n; ++v) {
      if (state_[v] == State::kFaulty) out.faults.push_back(v);
    }
    out.success = true;
  } else {
    std::vector<std::vector<Node>> solutions;
    search_residue(0, 2, solutions);
    if (solutions.size() == 1) {
      out.success = true;
      out.faults = std::move(solutions.front());
    } else if (solutions.empty()) {
      out.failure_reason = kNoSolution;
    } else {
      out.failure_reason = kAmbiguous;
    }
  }
  out.lookups = oracle.lookups();
  out.diagnose_seconds = timer.seconds();
  return out;
}

// ---------------------------------------------------------------------------
// BGM local diagnosis.
// ---------------------------------------------------------------------------

LocalDiagnosisResult bgm_local_diagnose(const Graph& graph,
                                        const DirectedOracle& oracle,
                                        Node u) {
  if (oracle.model() != DiagnosisModel::kBGM) {
    throw std::invalid_argument("bgm_local_diagnose: oracle model is " +
                                to_string(oracle.model()) +
                                " — the local rules need BGM's asymmetric "
                                "invalidation");
  }
  if (u >= graph.num_nodes()) {
    throw std::invalid_argument("bgm_local_diagnose: node out of range");
  }
  const std::uint64_t start = oracle.lookups();
  LocalDiagnosisResult out;
  const auto adj = graph.neighbors(u);

  // Rule 1: any 0 read about u certifies u healthy.
  for (unsigned p = 0; p < adj.size(); ++p) {
    if (!oracle.test(adj[p], graph.mirror_position(u, p))) {
      out.status = LocalDiagnosisStatus::kHealthy;
      out.lookups = oracle.lookups() - start;
      return out;
    }
  }
  // Past this point every neighbour reported u faulty; one certified-healthy
  // neighbour makes that report reliable.

  // Rule 2: u's own 0-outcome certifies that neighbour.
  for (unsigned p = 0; p < adj.size(); ++p) {
    if (!oracle.test(u, p)) {
      out.status = LocalDiagnosisStatus::kFaulty;
      out.lookups = oracle.lookups() - start;
      return out;
    }
  }

  // Rule 3: a 0 read about a neighbour, from anyone else, certifies it too.
  for (unsigned p = 0; p < adj.size(); ++p) {
    const Node v = adj[p];
    const auto vadj = graph.neighbors(v);
    for (unsigned q = 0; q < vadj.size(); ++q) {
      if (vadj[q] == u) continue;  // u -> v was read by rule 2
      if (!oracle.test(vadj[q], graph.mirror_position(v, q))) {
        out.status = LocalDiagnosisStatus::kFaulty;
        out.lookups = oracle.lookups() - start;
        return out;
      }
    }
  }

  out.lookups = oracle.lookups() - start;
  return out;  // every arc in the 2-ball reads 1 — locally undecidable
}

}  // namespace mmdiag
