// Certified partitions — runtime calibration of the §5 driver.
//
// The paper assumes the chosen components are large enough that a fault-free
// component certifies (its Set_Builder tree has more than δ internal nodes).
// That assumption is *false* for the paper's own component choice in small
// cases (DESIGN.md §4.1), so instead of trusting a closed-form size we
// calibrate: walk the topology's partition plans from finest to coarsest and
// simulate the restricted builder on a fault-free oracle. A plan is accepted
// when every component (a) is covered entirely — proving the induced
// subgraph is connected — and (b) produces more than δ contributors.
//
// Because the diagnosis-time run on a genuinely fault-free component replays
// the calibration run verbatim (all consulted tests are 0), calibration
// success guarantees the driver terminates within δ+1 probes whenever
// |F| <= δ — but only when the diagnosis-time probes use the *same* parent
// rule the calibration did. The partition therefore carries its calibration
// inputs (rule, delta, validate_all) and consumers enforce the match instead
// of trusting callers to keep them aligned.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>

#include "core/set_builder.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

/// Raised when no partition plan of a topology can support fault bound δ
/// (e.g. S_{n,2} and A_{n,2}, whose components are cliques — see DESIGN.md).
class DiagnosisUnsupportedError : public std::runtime_error {
 public:
  explicit DiagnosisUnsupportedError(const std::string& what)
      : std::runtime_error(what) {}
};

struct CertifiedPartition {
  std::shared_ptr<const PartitionPlan> plan;
  unsigned delta = 0;                    // fault bound the plan certifies
  ParentRule rule = ParentRule::kSpread; // rule the plan was calibrated under
  std::uint64_t calibration_lookups = 0; // fault-free-oracle probes spent
  bool fully_validated = false;          // every component checked?
};

/// Find the finest plan certifying fault bound `delta` under `rule`.
/// validate_all=false checks only component 0 (sufficient for families whose
/// components are pairwise isomorphic); true checks every component.
[[nodiscard]] CertifiedPartition find_certified_partition(
    const Topology& topology, const Graph& graph, unsigned delta,
    ParentRule rule = ParentRule::kSpread, bool validate_all = true);

/// Implicit-view calibration: identical walk, identical accepted plan and
/// calibration look-ups (the builder consults the same fault-free tests in
/// the same order), but no edge is ever materialised — O(N) bits of builder
/// scratch is the whole footprint.
[[nodiscard]] CertifiedPartition find_certified_partition(
    const Topology& topology, const ImplicitGraph& graph, unsigned delta,
    ParentRule rule = ParentRule::kSpread, bool validate_all = true);

/// True iff the single component `comp` of `plan` certifies when fault-free.
[[nodiscard]] bool component_certifies(const Graph& graph,
                                       const PartitionPlan& plan,
                                       std::uint32_t comp, unsigned delta,
                                       ParentRule rule);
[[nodiscard]] bool component_certifies(const ImplicitGraph& graph,
                                       const PartitionPlan& plan,
                                       std::uint32_t comp, unsigned delta,
                                       ParentRule rule);

}  // namespace mmdiag
