#include "core/certified_partition.hpp"

#include <sstream>

#include "mm/oracle.hpp"

namespace mmdiag {
namespace {

bool probe_component(SetBuilder& builder, const FaultFreeOracle& oracle,
                     const PartitionPlan& plan, std::uint32_t comp,
                     unsigned delta) {
  const auto result = builder.run_restricted(oracle, plan.seed_of(comp), delta,
                                             plan, comp);
  // Coverage proves the induced component is connected; the contributor
  // certificate proves a fault-free component will be recognised healthy.
  return result.all_healthy && result.members.size() == plan.component_size();
}

// One calibration walk for both GraphView models: the builder consults the
// same fault-free tests in the same order on either, so the accepted plan
// and calibration_lookups are identical by construction.
template <class GV>
CertifiedPartition find_certified_partition_on(const Topology& topology,
                                               const GV& graph, unsigned delta,
                                               ParentRule rule,
                                               bool validate_all) {
  const auto plans = topology.partition_plans();
  SetBuilder builder(graph, rule);
  const FaultFreeOracle oracle;
  std::ostringstream rejections;

  for (const auto& plan : plans) {
    if (plan->num_components() < static_cast<std::size_t>(delta) + 1) {
      rejections << "  " << plan->description() << ": only "
                 << plan->num_components() << " components (need "
                 << delta + 1 << ")\n";
      continue;
    }
    // A tree with more than delta internal nodes plus at least one leaf
    // needs at least delta+2 nodes; skip hopeless plans cheaply.
    if (plan->component_size() < static_cast<std::uint64_t>(delta) + 2) {
      rejections << "  " << plan->description() << ": components of "
                 << plan->component_size() << " nodes cannot exceed " << delta
                 << " contributors\n";
      continue;
    }
    const std::size_t to_check = validate_all ? plan->num_components() : 1;
    bool ok = true;
    for (std::size_t c = 0; c < to_check && ok; ++c) {
      ok = probe_component(builder, oracle, *plan, static_cast<std::uint32_t>(c),
                           delta);
    }
    if (ok) {
      CertifiedPartition cp;
      cp.plan = plan;
      cp.delta = delta;
      cp.rule = rule;
      cp.calibration_lookups = oracle.lookups();
      cp.fully_validated = validate_all;
      return cp;
    }
    rejections << "  " << plan->description()
               << ": fault-free component failed certification\n";
  }

  std::ostringstream msg;
  msg << topology.info().name << ": no partition plan certifies fault bound "
      << delta << " under rule " << to_string(rule) << "\n"
      << rejections.str();
  throw DiagnosisUnsupportedError(msg.str());
}

}  // namespace

bool component_certifies(const Graph& graph, const PartitionPlan& plan,
                         std::uint32_t comp, unsigned delta, ParentRule rule) {
  SetBuilder builder(graph, rule);
  const FaultFreeOracle oracle;
  return probe_component(builder, oracle, plan, comp, delta);
}

bool component_certifies(const ImplicitGraph& graph, const PartitionPlan& plan,
                         std::uint32_t comp, unsigned delta, ParentRule rule) {
  SetBuilder builder(graph, rule);
  const FaultFreeOracle oracle;
  return probe_component(builder, oracle, plan, comp, delta);
}

CertifiedPartition find_certified_partition(const Topology& topology,
                                            const Graph& graph, unsigned delta,
                                            ParentRule rule,
                                            bool validate_all) {
  return find_certified_partition_on(topology, graph, delta, rule,
                                     validate_all);
}

CertifiedPartition find_certified_partition(const Topology& topology,
                                            const ImplicitGraph& graph,
                                            unsigned delta, ParentRule rule,
                                            bool validate_all) {
  return find_certified_partition_on(topology, graph, delta, rule,
                                     validate_all);
}

}  // namespace mmdiag
