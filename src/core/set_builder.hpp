// Set_Builder — the core procedure of §4.1.
//
// Starting from a seed u0, grow U_1 ⊆ U_2 ⊆ ... where
//   U_1 = {u0} ∪ {v : s_{u0}(v,w) = 0 for some other neighbour w}, t(v)=u0,
//   U_i = U_{i-1} ∪ {v ∉ U_{i-1} : s_u(v, t(u)) = 0 for some frontier u},
// with t(v) the parent of v in the growth tree T. The *contributors* are the
// internal nodes of T; if any internal node is faulty then all are, so once
// more than δ distinct contributors exist the whole of U is certified
// healthy ("all_healthy").
//
// Parent rules:
//   kLeastFirst — the paper's rule: t(v) is the least frontier node (in the
//     fixed node ordering) whose test admits v; members join as soon as
//     admitted, so each edge is tested at most once.
//   kSpread — our enhancement (DESIGN.md §4.2): joins are deferred to the
//     end of the round and children are assigned so as to maximise the
//     number of distinct parents. Certificate soundness is rule-independent
//     (the faulty-internal-node propagation argument never uses leastness),
//     but kSpread certifies strictly smaller components, e.g. fault-free
//     Q_4 yields 8 internal nodes under kLeastFirst and 10 under kSpread.
//   kLeastSync — deferred joins with least-offerer parents: exactly the
//     tree a synchronous message-passing implementation grows (all offers
//     of a round race, the least sender wins). Used to calibrate partitions
//     for the distributed protocol in src/distributed.
//   kHashSpread — deferred joins, parent = the offerer minimising
//     mix64(parent, child): spreads children over distinct parents
//     statistically, needs no coordination, and is therefore implementable
//     distributed with zero extra messages. Certifies some instances
//     kLeastSync cannot (calibration decides per instance).
//
// Runs may be restricted to one component of a PartitionPlan — the
// Set_Builder(u0, H) of §5 — in which case only member nodes are touched.
//
// Dispatch and the hot path. run/run_restricted are overloaded: the
// SyndromeOracle& signatures are the type-erased entry points (every
// look-up is a virtual call), while the StaticOracle template instantiates
// the *same* run_impl on the concrete oracle type so look-ups inline.
// Structural optimisations keep the inner loop word-granular and
// allocation-free:
//
//   - Frontiers are node-indexed bitmaps consumed word-by-word; ascending
//     bit order IS the ascending node order the parent rules require, so
//     the per-round std::sort of the frontier is gone. The position of a
//     member's tree parent in its own adjacency list is recorded at
//     admission (from the graph's O(1) mirror table), so rounds >= 2 never
//     re-search for the parent.
//   - A WordRowOracle (TableOracle) serves a whole (node, pivot) syndrome
//     row as one packed 64-bit read; the consulted pairs are then register
//     bit tests, charged in bulk so the counter matches the per-pair path.
//   - Membership bitsets pack one bit per node (DirtyBitset), keeping the
//     hot loop's working set L1-resident; restricted probes resolve
//     prefix-plan eligibility with an inline shift instead of a virtual
//     call per neighbour.
//   - All scratch is member state with cheap clears; steady-state runs
//     allocate nothing beyond the returned members/parent arrays, which
//     are reserved from component-size / previous-run bounds.
//
// Both instantiations execute the same admission logic and charge the same
// look-ups, so members, trees, rounds, contributors AND look-up counts are
// bit-identical (tests/dispatch_equiv_test.cpp asserts this per
// family/rule/oracle; the differential fuzzer cross-checks both paths).
//
// run_baseline/run_restricted_baseline preserve the pre-optimisation
// implementation (per-pair virtual consults, stamp-array membership,
// sorted-vector frontiers, per-round parent-position searches, per-run
// heap scratch) verbatim: it is the measured baseline of bench_hotpath's
// old-vs-new rows and a third voice in the differential tests. Semantics
// and look-up accounting are bit-identical to the paths above.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/oracle.hpp"
#include "topology/partition.hpp"
#include "util/bitvec.hpp"
#include "util/enum_names.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mmdiag {

// ParentRule and its name helpers live in util/enum_names.hpp, the shared
// home of the library's enum <-> string tables.

struct SetBuilderResult {
  bool all_healthy = false;      // certificate: contributors exceeded δ
  unsigned rounds = 0;           // the paper's r (U_r = U_{r+1})
  std::size_t contributors = 0;  // |C_1 ∪ ... ∪ C_r| = internal nodes of T
  std::vector<Node> members;     // U_r in discovery order; members[0] = u0
  std::vector<Node> parent;      // parent[i] = t(members[i]); root -> kNoNode
};

/// Per-lane outcome of a bitsliced cohort run (SetBuilder::run_sliced) —
/// the scalar SetBuilderResult minus the materialised member/parent
/// vectors: cohort callers read membership through sliced_member_mask,
/// which costs nothing to produce for 64 lanes at once.
struct SlicedLaneResult {
  bool all_healthy = false;
  unsigned rounds = 0;
  std::size_t contributors = 0;
  std::size_t member_count = 0;  // |U_r|, counting the seed
};

class SetBuilder {
 public:
  explicit SetBuilder(const Graph& g, ParentRule rule = ParentRule::kSpread);

  /// Implicit-adjacency builder: the same driver over a view that computes
  /// neighbours on the fly. Scratch stays O(N) bits/words; no O(E) state.
  /// The baseline and sliced paths remain CSR-only (they read packed rows
  /// by graph layout) and throw std::logic_error on this builder.
  explicit SetBuilder(const ImplicitGraph& g,
                      ParentRule rule = ParentRule::kSpread);

  /// Unrestricted run (the final phase of the §5 driver) — type-erased.
  SetBuilderResult run(const SyndromeOracle& oracle, Node u0, unsigned delta);

  /// Run restricted to component `comp` of `plan` — Set_Builder(u0, H).
  SetBuilderResult run_restricted(const SyndromeOracle& oracle, Node u0,
                                  unsigned delta, const PartitionPlan& plan,
                                  std::uint32_t comp);

  /// Statically-dispatched variants: identical semantics and look-up
  /// accounting, concrete-oracle calls inline (and TableOracle runs the
  /// word-parallel admission path).
  template <StaticOracle O>
  SetBuilderResult run(const O& oracle, Node u0, unsigned delta) {
    if (implicit_ != nullptr) {
      return run_impl<O>(oracle, *implicit_, u0, delta, nullptr, 0);
    }
    return run_impl<O>(oracle, *graph_, u0, delta, nullptr, 0);
  }
  template <StaticOracle O>
  SetBuilderResult run_restricted(const O& oracle, Node u0, unsigned delta,
                                  const PartitionPlan& plan,
                                  std::uint32_t comp) {
    if (implicit_ != nullptr) {
      return run_impl<O>(oracle, *implicit_, u0, delta, &plan, comp);
    }
    return run_impl<O>(oracle, *graph_, u0, delta, &plan, comp);
  }

  /// The pre-optimisation implementation, kept verbatim as the measured
  /// old-vs-new baseline (bench_hotpath) and as a differential-testing
  /// reference. Same semantics, same look-up counts; reads results only
  /// through the virtual per-pair interface. Uses its own scratch, so a
  /// baseline run does not disturb in_last_set() state (it has its own
  /// query, in_last_baseline_set).
  SetBuilderResult run_baseline(const SyndromeOracle& oracle, Node u0,
                                unsigned delta);
  SetBuilderResult run_restricted_baseline(const SyndromeOracle& oracle,
                                           Node u0, unsigned delta,
                                           const PartitionPlan& plan,
                                           std::uint32_t comp);

  /// Bitsliced cohort run: executes run()'s admission logic for every lane
  /// of `oracle` named in `active` (bit L = lane L) in lockstep — one
  /// instruction stream drives up to 64 syndromes. `out` must have room
  /// for 64 entries; out[L] is written for every lane in `active`. Each
  /// lane's members, rounds, contributors and charged look-ups (through
  /// oracle.charge) are bit-identical to a scalar run over that lane
  /// alone. Requires max_degree() <= 64 (word-wide rows).
  void run_sliced(const BitSlicedOracle& oracle, Node u0, unsigned delta,
                  std::uint64_t active, SlicedLaneResult* out);

  /// run_sliced restricted to component `comp` of `plan`.
  void run_sliced_restricted(const BitSlicedOracle& oracle, Node u0,
                             unsigned delta, std::uint64_t active,
                             const PartitionPlan& plan, std::uint32_t comp,
                             SlicedLaneResult* out);

  /// Lane-membership mask of the most recent sliced run: bit L set iff v
  /// is in lane L's U_r. Valid until the next sliced run on this builder.
  [[nodiscard]] std::uint64_t sliced_member_mask(Node v) const noexcept {
    return s_member_.empty() ? 0 : s_member_[v];
  }

  /// Membership in the most recent run's U_r (valid until the next run).
  [[nodiscard]] bool in_last_set(Node v) const noexcept {
    return in_set_.contains(v);
  }

  /// Membership in the most recent run_baseline's U_r.
  [[nodiscard]] bool in_last_baseline_set(Node v) const noexcept {
    return baseline_in_set_.contains(v);
  }

  /// If true, stop growing as soon as the certificate fires (the paper
  /// builds to the fixpoint; this is a probe-phase optimisation measured by
  /// bench_ablation). Default false = paper-faithful.
  void set_stop_on_certify(bool stop) noexcept { stop_on_certify_ = stop; }

  [[nodiscard]] ParentRule rule() const noexcept { return rule_; }

 private:
  /// A 0-test admission candidate of one deferred-join round.
  /// child_parent_pos is the position of parent in child's adjacency list
  /// (from the mirror table), stored so admission needs no search.
  struct ZeroEdge {
    Node parent;
    Node child;
    std::uint32_t child_parent_pos;
  };

  /// A deferred-join candidate of one sliced round: ZeroEdge plus the mask
  /// of lanes whose 0-test offered it.
  struct SlicedEdge {
    Node parent;
    Node child;
    std::uint32_t child_parent_pos;
    std::uint64_t lanes;
  };

  template <class O, class GV>
  SetBuilderResult run_impl(const O& oracle, const GV& g, Node u0,
                            unsigned delta, const PartitionPlan* plan,
                            std::uint32_t comp);

  void run_sliced_impl(const BitSlicedOracle& oracle, Node u0, unsigned delta,
                       std::uint64_t active, const PartitionPlan* plan,
                       std::uint32_t comp, SlicedLaneResult* out);

  SetBuilderResult run_baseline_impl(const SyndromeOracle& oracle, Node u0,
                                     unsigned delta, const PartitionPlan* plan,
                                     std::uint32_t comp);

  void require_csr(const char* what) const;

  const Graph* graph_ = nullptr;          // exactly one of graph_ /
  const ImplicitGraph* implicit_ = nullptr;  // implicit_ is non-null
  ParentRule rule_;
  bool stop_on_certify_ = false;
  bool frontier_clean_ = true;  // bitmaps all-zero (see run_impl)

  // Scratch reused across runs. Membership lives in packed bitsets (one
  // bit per node, so the hot loop's working set stays L1-resident) whose
  // clears touch only dirtied words; the frontier bitmaps are consumed
  // (zeroed) as they are read; the vectors keep their capacity.
  DirtyBitset in_set_;
  DirtyBitset is_contributor_;
  std::vector<std::uint64_t> frontier_words_[2];  // node-indexed bitmaps
  std::vector<std::uint32_t> parent_pos_of_;  // t(v)'s position in adj(v)
  std::vector<unsigned> round1_pos_;  // eligible seed-adjacency positions
  std::vector<ZeroEdge> zero_edges_;  // deferred-join round buffer
  std::size_t last_unrestricted_size_ = 0;  // reserve hint for members

  // Sliced-run scratch: per-node *lane masks* replace the scalar path's
  // per-run bitsets (bit L of s_member_[v] = v ∈ lane L's U_r, and so on),
  // plus a union node-bitmap per frontier so iteration stays word-granular.
  // Sized lazily on the first sliced run; cleared through the touched-node
  // list so resets stay O(|U_r|) like the dirty bitsets. The divergent-pos
  // side table holds the rare (node, lane) parent positions that differ
  // from the node's first-recorded one, flat-indexed (v << 6) | lane; its
  // entries need no clearing because every read is gated by the per-node
  // divergence masks, which are reset (see run_sliced_impl).
  std::vector<std::uint64_t> s_member_;
  std::vector<std::uint64_t> s_contrib_;
  std::vector<std::uint64_t> s_frontier_[2];
  std::vector<std::uint64_t> s_frontier_union_[2];  // node-indexed bitmaps
  std::vector<std::uint32_t> s_shared_pos_;
  std::vector<std::uint64_t> s_divergent_;
  std::vector<Node> s_touched_;
  std::vector<SlicedEdge> s_zero_edges_;
  std::vector<std::uint8_t> s_divergent_pos_;

  // Baseline-only scratch (the seed implementation's data structures,
  // including its per-round heap behaviour — deliberately not shared with
  // the hot path so the baseline measures what the old code did).
  StampSet baseline_in_set_;
  StampSet baseline_contributor_;
  std::vector<Node> baseline_frontier_;
  std::vector<Node> baseline_next_frontier_;
  std::vector<Node> baseline_parent_of_;
  std::vector<std::pair<Node, Node>> baseline_zero_edges_;
};

// ---------------------------------------------------------------------------
// The hot path. Defined in the header so each concrete-oracle instantiation
// is visible to the optimiser at every call site.
// ---------------------------------------------------------------------------

template <class O, class GV>
SetBuilderResult SetBuilder::run_impl(const O& oracle, const GV& g, Node u0,
                                      unsigned delta,
                                      const PartitionPlan* plan,
                                      std::uint32_t comp) {
  static_assert(GraphView<GV>);
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  // Restricted probes check eligibility once per scanned neighbour; for the
  // arithmetic prefix plans (the bit-string families, including every
  // hypercube variant) one dynamic_cast per run turns that virtual call
  // into an inline shift.
  const auto* prefix_plan =
      plan != nullptr ? dynamic_cast<const PrefixBitsPlan*>(plan) : nullptr;
  const unsigned prefix_shift =
      prefix_plan != nullptr ? prefix_plan->suffix_bits() : 0;
  auto eligible = [&](Node v) {
    if (plan == nullptr) return true;
    if (prefix_plan != nullptr) return (v >> prefix_shift) == comp;
    return plan->component_of(v) == comp;
  };

  // Word-row reads need a whole syndrome row in one word; beyond that the
  // per-pair test() calls below serve — counting is identical either way.
  [[maybe_unused]] const bool word_rows = g.max_degree() <= 64;
  // Look-ups served from packed rows, flushed to the oracle's counter once
  // at the end — totals match the per-call path exactly.
  [[maybe_unused]] std::uint64_t row_served = 0;

  in_set_.clear();
  is_contributor_.clear();
  // The frontier bitmaps are clean by consumption on every normal exit
  // (words zero as they are read; the certify-break path scrubs below), so
  // a full fill is only owed when the previous run was abandoned mid-way —
  // an oracle that threw between admissions.
  if (!frontier_clean_) {
    std::fill(frontier_words_[0].begin(), frontier_words_[0].end(), 0u);
    std::fill(frontier_words_[1].begin(), frontier_words_[1].end(), 0u);
  }
  frontier_clean_ = false;

  SetBuilderResult result;
  const std::size_t member_hint =
      plan != nullptr
          ? static_cast<std::size_t>(plan->component_size())
          : std::max<std::size_t>(last_unrestricted_size_,
                                  std::size_t{g.degree(u0)} + 1);
  result.members.reserve(member_hint);
  result.parent.reserve(member_hint);
  result.members.push_back(u0);
  result.parent.push_back(kNoNode);
  in_set_.insert(u0);

  // Flips each round: `fi` indexes the frontier being filled.
  unsigned fi = 0;
  std::size_t next_count = 0;

  auto add_member = [&](Node v, Node parent, std::uint32_t parent_pos) {
    result.members.push_back(v);
    result.parent.push_back(parent);
    parent_pos_of_[v] = parent_pos;
    frontier_words_[fi][v >> 6] |= std::uint64_t{1} << (v & 63);
    ++next_count;
  };

  // ---- Round 1: U_1 from u0's pair tests. ----------------------------------
  {
    const auto adj = g.neighbors(u0);
    const auto mirror = g.mirror_positions(u0);
    // Eligible neighbour positions (member scratch — no per-run allocation).
    round1_pos_.clear();
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) round1_pos_.push_back(p);
    }
    for (std::size_t a = 0; a < round1_pos_.size(); ++a) {
      const unsigned pa = round1_pos_[a];
      [[maybe_unused]] std::uint64_t row = 0;
      [[maybe_unused]] bool have_row = false;
      for (std::size_t b = a + 1; b < round1_pos_.size(); ++b) {
        const unsigned pb = round1_pos_[b];
        const Node va = adj[pa];
        const Node vb = adj[pb];
        // Once both endpoints are members the test adds no information.
        if (in_set_.contains(va) && in_set_.contains(vb)) continue;
        bool one;
        if constexpr (WordRowOracle<O>) {
          if (word_rows) {
            if (!have_row) {
              row = oracle.row_bits(u0, pa);
              have_row = true;
            }
            ++row_served;
            one = (row >> pb) & 1;
          } else {
            one = oracle.test(u0, pa, pb);
          }
        } else {
          one = oracle.test(u0, pa, pb);
        }
        if (!one) {
          if (in_set_.insert(va)) add_member(va, u0, mirror[pa]);
          if (in_set_.insert(vb)) add_member(vb, u0, mirror[pb]);
        }
      }
    }
    if (next_count > 0) {
      is_contributor_.insert(u0);
      result.contributors = 1;
      result.rounds = 1;
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  while (next_count > 0) {
    if (result.contributors > delta) {
      result.all_healthy = true;
      if (stop_on_certify_) break;
    }
    // Consume the frontier just filled; admissions go to the other bitmap.
    // Word-by-word ascending bit iteration visits frontier nodes in
    // ascending id order — under kLeastFirst exactly the paper's "least
    // contributing node" parent choice, with no sort.
    std::uint64_t* const cur = frontier_words_[fi].data();
    const std::size_t cur_words = frontier_words_[fi].size();
    const std::size_t frontier_count = next_count;
    fi ^= 1;
    next_count = 0;

    const bool deferred = rule_ != ParentRule::kLeastFirst;
    if (deferred) {
      zero_edges_.clear();
      // Every frontier node offers at most degree-1 candidates; reserving
      // the bound up front means no mid-round regrowth even on the first
      // run (later runs reuse the high-water capacity anyway).
      zero_edges_.reserve(frontier_count *
                          static_cast<std::size_t>(g.max_degree()));
    }
    for (std::size_t w = 0; w < cur_words; ++w) {
      std::uint64_t bits = cur[w];
      if (bits == 0) continue;
      cur[w] = 0;  // consumed — the bitmap is clean for the round after next
      do {
        const Node u =
            static_cast<Node>((w << 6) + std::countr_zero(bits));
        bits &= bits - 1;
        const unsigned parent_pos = parent_pos_of_[u];
        const auto adj = g.neighbors(u);
        const auto mirror = g.mirror_positions(u);

        // Consult each eligible non-member neighbour against the parent
        // pivot. A WordRowOracle serves the whole pivot row as one read
        // when the rule defers joins — those rounds consult most positions
        // of every frontier node, so one extract amortises over many
        // pairs. Under kLeastFirst a frontier node averages ~one consult
        // (earlier parents already admitted the rest), so the inlined
        // per-pair read is the cheaper word-free path there.
        [[maybe_unused]] std::uint64_t row = 0;
        [[maybe_unused]] bool have_row = false;
        bool contributed = false;
        for (unsigned p = 0; p < adj.size(); ++p) {
          const Node v = adj[p];
          if (p == parent_pos || in_set_.contains(v) || !eligible(v)) {
            continue;
          }
          bool one;
          if constexpr (WordRowOracle<O>) {
            if (deferred && word_rows) {
              if (!have_row) {
                row = oracle.row_bits(u, parent_pos);
                have_row = true;
              }
              ++row_served;
              one = (row >> p) & 1;
            } else {
              one = oracle.test(u, p, parent_pos);
            }
          } else {
            one = oracle.test(u, p, parent_pos);
          }
          if (!one) {
            if (!deferred) {
              in_set_.insert(v);
              add_member(v, u, mirror[p]);
              contributed = true;
            } else {
              zero_edges_.push_back(ZeroEdge{u, v, mirror[p]});
            }
          }
        }
        if (!deferred && contributed && is_contributor_.insert(u)) {
          ++result.contributors;
        }
      } while (bits != 0);
    }

    if (deferred) {
      if (rule_ == ParentRule::kSpread) {
        // Pass A: one child per distinct parent, scanning parents in
        // ascending order (zero_edges_ is grouped by parent in that order).
        std::size_t i = 0;
        while (i < zero_edges_.size()) {
          const Node u = zero_edges_[i].parent;
          bool claimed = false;
          std::size_t j = i;
          for (; j < zero_edges_.size() && zero_edges_[j].parent == u; ++j) {
            const Node v = zero_edges_[j].child;
            if (!claimed && in_set_.insert(v)) {
              add_member(v, u, zero_edges_[j].child_parent_pos);
              if (is_contributor_.insert(u)) ++result.contributors;
              claimed = true;
            }
          }
          i = j;
        }
      } else if (rule_ == ParentRule::kHashSpread) {
        // Order candidates so the first edge per child carries the parent
        // minimising mix64(parent, child) — the coordination-free spread a
        // distributed joiner can compute from its offers alone.
        std::sort(zero_edges_.begin(), zero_edges_.end(),
                  [](const ZeroEdge& a, const ZeroEdge& b) {
                    if (a.child != b.child) return a.child < b.child;
                    const auto ha = mix64(a.parent, a.child);
                    const auto hb = mix64(b.parent, b.child);
                    if (ha != hb) return ha < hb;
                    return a.parent < b.parent;
                  });
      }
      // Remaining candidates (all of them under kLeastSync / kHashSpread)
      // go to the first admitting parent in edge order.
      for (const ZeroEdge& e : zero_edges_) {
        if (in_set_.insert(e.child)) {
          add_member(e.child, e.parent, e.child_parent_pos);
          if (is_contributor_.insert(e.parent)) ++result.contributors;
        }
      }
    }

    if (next_count > 0) ++result.rounds;
  }

  // A stop_on_certify break can leave admitted-but-unconsumed frontier bits
  // behind; scrub them so the next run starts from clean bitmaps.
  if (stop_on_certify_ && next_count > 0) {
    std::fill(frontier_words_[0].begin(), frontier_words_[0].end(), 0u);
    std::fill(frontier_words_[1].begin(), frontier_words_[1].end(), 0u);
  }

  if (result.contributors > delta) result.all_healthy = true;
  if constexpr (WordRowOracle<O>) oracle.add_lookups(row_served);
  if (plan == nullptr) last_unrestricted_size_ = result.members.size();
  frontier_clean_ = true;
  return result;
}

}  // namespace mmdiag
