// Set_Builder — the core procedure of §4.1.
//
// Starting from a seed u0, grow U_1 ⊆ U_2 ⊆ ... where
//   U_1 = {u0} ∪ {v : s_{u0}(v,w) = 0 for some other neighbour w}, t(v)=u0,
//   U_i = U_{i-1} ∪ {v ∉ U_{i-1} : s_u(v, t(u)) = 0 for some frontier u},
// with t(v) the parent of v in the growth tree T. The *contributors* are the
// internal nodes of T; if any internal node is faulty then all are, so once
// more than δ distinct contributors exist the whole of U is certified
// healthy ("all_healthy").
//
// Parent rules:
//   kLeastFirst — the paper's rule: t(v) is the least frontier node (in the
//     fixed node ordering) whose test admits v; members join as soon as
//     admitted, so each edge is tested at most once.
//   kSpread — our enhancement (DESIGN.md §4.2): joins are deferred to the
//     end of the round and children are assigned so as to maximise the
//     number of distinct parents. Certificate soundness is rule-independent
//     (the faulty-internal-node propagation argument never uses leastness),
//     but kSpread certifies strictly smaller components, e.g. fault-free
//     Q_4 yields 8 internal nodes under kLeastFirst and 10 under kSpread.
//   kLeastSync — deferred joins with least-offerer parents: exactly the
//     tree a synchronous message-passing implementation grows (all offers
//     of a round race, the least sender wins). Used to calibrate partitions
//     for the distributed protocol in src/distributed.
//   kHashSpread — deferred joins, parent = the offerer minimising
//     mix64(parent, child): spreads children over distinct parents
//     statistically, needs no coordination, and is therefore implementable
//     distributed with zero extra messages. Certifies some instances
//     kLeastSync cannot (calibration decides per instance).
//
// Runs may be restricted to one component of a PartitionPlan — the
// Set_Builder(u0, H) of §5 — in which case only member nodes are touched.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/partition.hpp"
#include "util/bitvec.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class ParentRule : std::uint8_t {
  kLeastFirst,
  kSpread,
  kLeastSync,
  kHashSpread,
};

inline constexpr ParentRule kAllParentRules[] = {
    ParentRule::kLeastFirst, ParentRule::kSpread, ParentRule::kLeastSync,
    ParentRule::kHashSpread};

[[nodiscard]] std::string to_string(ParentRule rule);

/// Named form of to_string(ParentRule) for call sites that also handle
/// other enums' names (CLI flags, repro files) and want to say which
/// mapping they mean.
[[nodiscard]] std::string parent_rule_to_string(ParentRule rule);

/// Inverse of parent_rule_to_string (also accepts underscore variants such
/// as "least_first"). Throws std::invalid_argument on unknown names —
/// shared by the CLI's --rule flag and repro IO, mirroring
/// behavior_from_string.
[[nodiscard]] ParentRule parent_rule_from_string(const std::string& name);

struct SetBuilderResult {
  bool all_healthy = false;      // certificate: contributors exceeded δ
  unsigned rounds = 0;           // the paper's r (U_r = U_{r+1})
  std::size_t contributors = 0;  // |C_1 ∪ ... ∪ C_r| = internal nodes of T
  std::vector<Node> members;     // U_r in discovery order; members[0] = u0
  std::vector<Node> parent;      // parent[i] = t(members[i]); root -> kNoNode
};

class SetBuilder {
 public:
  explicit SetBuilder(const Graph& g, ParentRule rule = ParentRule::kSpread);

  /// Unrestricted run (the final phase of the §5 driver).
  SetBuilderResult run(const SyndromeOracle& oracle, Node u0, unsigned delta);

  /// Run restricted to component `comp` of `plan` — Set_Builder(u0, H).
  SetBuilderResult run_restricted(const SyndromeOracle& oracle, Node u0,
                                  unsigned delta, const PartitionPlan& plan,
                                  std::uint32_t comp);

  /// Membership in the most recent run's U_r (valid until the next run).
  [[nodiscard]] bool in_last_set(Node v) const noexcept {
    return in_set_.contains(v);
  }

  /// If true, stop growing as soon as the certificate fires (the paper
  /// builds to the fixpoint; this is a probe-phase optimisation measured by
  /// bench_ablation). Default false = paper-faithful.
  void set_stop_on_certify(bool stop) noexcept { stop_on_certify_ = stop; }

  [[nodiscard]] ParentRule rule() const noexcept { return rule_; }

 private:
  SetBuilderResult run_impl(const SyndromeOracle& oracle, Node u0,
                            unsigned delta, const PartitionPlan* plan,
                            std::uint32_t comp);

  const Graph* graph_;
  ParentRule rule_;
  bool stop_on_certify_ = false;

  // Scratch reused across runs (epoch-stamped, so clears are O(1)).
  StampSet in_set_;
  StampSet is_contributor_;
  std::vector<Node> frontier_;       // members added in the previous round
  std::vector<Node> next_frontier_;
  std::vector<Node> parent_of_;      // parent by node id (only members valid)
  std::vector<std::pair<Node, Node>> zero_edges_;  // kSpread round buffer
};

}  // namespace mmdiag
