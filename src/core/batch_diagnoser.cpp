#include "core/batch_diagnoser.hpp"

#include <stdexcept>

#include "core/certified_partition.hpp"
#include "util/timer.hpp"

namespace mmdiag {

BatchDiagnoser::BatchDiagnoser(const Topology& topology, const Graph& graph,
                               BatchOptions options)
    : BatchDiagnoser(graph,
                     [&] {
                       // Delegate the delta/plan resolution to a throwaway
                       // sequential Diagnoser so batch and sequential setup
                       // can never disagree.
                       return Diagnoser(topology, graph, options.diagnoser)
                           .partition();
                     }(),
                     options) {}

BatchDiagnoser::BatchDiagnoser(const Graph& graph, CertifiedPartition partition,
                               BatchOptions options)
    : graph_(&graph), bitsliced_(options.bitsliced), pool_(options.threads) {
  // Conflicting options.diagnoser (rule mismatch, non-zero delta disagreeing
  // with partition.delta) are rejected by the first per-lane Diagnoser ctor.
  lanes_.reserve(pool_.size());
  for (unsigned lane = 0; lane < pool_.size(); ++lane) {
    lanes_.push_back(
        std::make_unique<Diagnoser>(graph, partition, options.diagnoser));
  }
}

BatchDiagnoser::BatchDiagnoser(std::shared_ptr<const Graph> graph,
                               CertifiedPartition partition,
                               BatchOptions options)
    : BatchDiagnoser(
          [&]() -> const Graph& {
            if (!graph) {
              throw std::invalid_argument("BatchDiagnoser: null graph");
            }
            return *graph;
          }(),
          std::move(partition), options) {
  graph_owner_ = std::move(graph);
}

BatchResult BatchDiagnoser::diagnose_all(
    const std::vector<const SyndromeOracle*>& oracles) {
  for (const SyndromeOracle* oracle : oracles) {
    if (oracle == nullptr) {
      throw std::invalid_argument("BatchDiagnoser: null oracle in batch");
    }
  }
  BatchResult out;
  out.results.resize(oracles.size());

  // Cohort formation: full 64-wide runs of TableOracle inputs, in input
  // order, each become one bitsliced lockstep solve; the remainder (<64)
  // and every non-table oracle stay scalar per-item work. Grouping only
  // changes which instruction stream serves a syndrome — results and
  // look-up counts per syndrome are bit-identical, so batch output still
  // matches a sequential Diagnoser exactly.
  std::vector<std::size_t> table_idx;
  if (bitsliced_ && graph_->max_degree() <= 64) {
    for (std::size_t i = 0; i < oracles.size(); ++i) {
      if (dynamic_cast<const TableOracle*>(oracles[i]) != nullptr) {
        table_idx.push_back(i);
      }
    }
  }
  const std::size_t num_cohorts = table_idx.size() / BitSlicedOracle::kMaxLanes;
  std::vector<std::size_t> scalar_idx;
  {
    std::vector<bool> in_cohort(oracles.size(), false);
    for (std::size_t k = 0; k < num_cohorts * BitSlicedOracle::kMaxLanes; ++k) {
      in_cohort[table_idx[k]] = true;
    }
    for (std::size_t i = 0; i < oracles.size(); ++i) {
      if (!in_cohort[i]) scalar_idx.push_back(i);
    }
  }

  Timer timer;
  pool_.parallel_for(
      num_cohorts + scalar_idx.size(), [&](unsigned lane, std::size_t item) {
        if (item < num_cohorts) {
          std::vector<const TableOracle*> cohort(BitSlicedOracle::kMaxLanes);
          const std::size_t base = item * BitSlicedOracle::kMaxLanes;
          for (unsigned k = 0; k < BitSlicedOracle::kMaxLanes; ++k) {
            cohort[k] =
                static_cast<const TableOracle*>(oracles[table_idx[base + k]]);
          }
          auto res = lanes_[lane]->diagnose_cohort(cohort);
          for (unsigned k = 0; k < BitSlicedOracle::kMaxLanes; ++k) {
            out.results[table_idx[base + k]] = std::move(res[k]);
          }
        } else {
          // One typeid dispatch per syndrome recovers the devirtualised
          // solve path behind the type-erased batch interface.
          const std::size_t i = scalar_idx[item - num_cohorts];
          out.results[i] = diagnose_devirtualized(*lanes_[lane], *oracles[i]);
        }
      });
  out.seconds = timer.seconds();
  for (const DiagnosisResult& r : out.results) {
    out.succeeded += r.success ? 1 : 0;
    out.total_lookups += r.lookups;
  }
  return out;
}

BatchResult BatchDiagnoser::diagnose_all(
    const std::vector<Syndrome>& syndromes) {
  std::vector<TableOracle> oracles;
  oracles.reserve(syndromes.size());
  for (const Syndrome& s : syndromes) oracles.emplace_back(*graph_, s);
  std::vector<const SyndromeOracle*> ptrs;
  ptrs.reserve(oracles.size());
  for (const TableOracle& o : oracles) ptrs.push_back(&o);
  return diagnose_all(ptrs);
}

}  // namespace mmdiag
