#include "core/batch_diagnoser.hpp"

#include <stdexcept>

#include "core/certified_partition.hpp"
#include "util/timer.hpp"

namespace mmdiag {

BatchDiagnoser::BatchDiagnoser(const Topology& topology, const Graph& graph,
                               BatchOptions options)
    : BatchDiagnoser(graph,
                     [&] {
                       // Delegate the delta/plan resolution to a throwaway
                       // sequential Diagnoser so batch and sequential setup
                       // can never disagree.
                       return Diagnoser(topology, graph, options.diagnoser)
                           .partition();
                     }(),
                     options) {}

BatchDiagnoser::BatchDiagnoser(const Graph& graph, CertifiedPartition partition,
                               BatchOptions options)
    : graph_(&graph), pool_(options.threads) {
  // Conflicting options.diagnoser (rule mismatch, non-zero delta disagreeing
  // with partition.delta) are rejected by the first per-lane Diagnoser ctor.
  lanes_.reserve(pool_.size());
  for (unsigned lane = 0; lane < pool_.size(); ++lane) {
    lanes_.push_back(
        std::make_unique<Diagnoser>(graph, partition, options.diagnoser));
  }
}

BatchDiagnoser::BatchDiagnoser(std::shared_ptr<const Graph> graph,
                               CertifiedPartition partition,
                               BatchOptions options)
    : BatchDiagnoser(
          [&]() -> const Graph& {
            if (!graph) {
              throw std::invalid_argument("BatchDiagnoser: null graph");
            }
            return *graph;
          }(),
          std::move(partition), options) {
  graph_owner_ = std::move(graph);
}

BatchResult BatchDiagnoser::diagnose_all(
    const std::vector<const SyndromeOracle*>& oracles) {
  for (const SyndromeOracle* oracle : oracles) {
    if (oracle == nullptr) {
      throw std::invalid_argument("BatchDiagnoser: null oracle in batch");
    }
  }
  BatchResult out;
  out.results.resize(oracles.size());
  Timer timer;
  pool_.parallel_for(oracles.size(), [&](unsigned lane, std::size_t i) {
    // One typeid dispatch per syndrome recovers the devirtualised solve
    // path behind the type-erased batch interface; counting is
    // bit-identical to the virtual path, so batch results still match a
    // sequential Diagnoser exactly.
    out.results[i] = diagnose_devirtualized(*lanes_[lane], *oracles[i]);
  });
  out.seconds = timer.seconds();
  for (const DiagnosisResult& r : out.results) {
    out.succeeded += r.success ? 1 : 0;
    out.total_lookups += r.lookups;
  }
  return out;
}

BatchResult BatchDiagnoser::diagnose_all(
    const std::vector<Syndrome>& syndromes) {
  std::vector<TableOracle> oracles;
  oracles.reserve(syndromes.size());
  for (const Syndrome& s : syndromes) oracles.emplace_back(*graph_, s);
  std::vector<const SyndromeOracle*> ptrs;
  ptrs.reserve(oracles.size());
  for (const TableOracle& o : oracles) ptrs.push_back(&o);
  return diagnose_all(ptrs);
}

}  // namespace mmdiag
