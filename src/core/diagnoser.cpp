#include "core/diagnoser.hpp"

#include <array>
#include <bit>
#include <stdexcept>
#include <typeinfo>

namespace mmdiag {

namespace {

const Graph& deref_graph(const std::shared_ptr<const Graph>& graph) {
  if (!graph) throw std::invalid_argument("Diagnoser: null graph");
  return *graph;
}

const ImplicitGraph& deref_implicit(
    const std::shared_ptr<const ImplicitGraph>& graph) {
  if (!graph) throw std::invalid_argument("Diagnoser: null graph");
  return *graph;
}

unsigned resolve_delta(const Topology& topology, const DiagnoserOptions& o) {
  if (o.delta != 0) return o.delta;
  const unsigned bound = topology.default_fault_bound();
  if (bound == 0) {
    throw DiagnosisUnsupportedError(
        topology.info().name +
        ": diagnosability is not established for these parameters (see §5's "
        "validity conditions); pass DiagnoserOptions::delta explicitly");
  }
  return bound;
}

}  // namespace

Diagnoser::Diagnoser(const Topology& topology, const Graph& graph,
                     DiagnoserOptions options)
    : Diagnoser(graph,
                find_certified_partition(topology, graph,
                                         resolve_delta(topology, options),
                                         options.rule,
                                         options.validate_all_components),
                options) {}

Diagnoser::Diagnoser(const Graph& graph, CertifiedPartition partition,
                     DiagnoserOptions options)
    : graph_(&graph),
      options_(options),
      delta_(partition.delta),
      partition_(std::move(partition)),
      probe_builder_(graph, options.rule),
      final_builder_(graph, options.final_rule) {
  check_adopted_partition();
  // boundary_seen_ is sized lazily by diagnose_baseline — it is the only
  // user, and production paths should not carry a per-node array for it.
}

Diagnoser::Diagnoser(std::shared_ptr<const Graph> graph,
                     CertifiedPartition partition, DiagnoserOptions options)
    : Diagnoser(deref_graph(graph), std::move(partition), options) {
  graph_owner_ = std::move(graph);
}

Diagnoser::Diagnoser(const Topology& topology, const ImplicitGraph& graph,
                     DiagnoserOptions options)
    : Diagnoser(graph,
                find_certified_partition(topology, graph,
                                         resolve_delta(topology, options),
                                         options.rule,
                                         options.validate_all_components),
                options) {}

Diagnoser::Diagnoser(const ImplicitGraph& graph, CertifiedPartition partition,
                     DiagnoserOptions options)
    : implicit_(&graph),
      options_(options),
      delta_(partition.delta),
      partition_(std::move(partition)),
      probe_builder_(graph, options.rule),
      final_builder_(graph, options.final_rule) {
  check_adopted_partition();
}

Diagnoser::Diagnoser(std::shared_ptr<const ImplicitGraph> graph,
                     CertifiedPartition partition, DiagnoserOptions options)
    : Diagnoser(deref_implicit(graph), std::move(partition), options) {
  implicit_owner_ = std::move(graph);
}

void Diagnoser::check_adopted_partition() const {
  if (!partition_.plan) {
    throw std::invalid_argument("Diagnoser: certified partition has no plan");
  }
  if (options_.rule != partition_.rule) {
    // A fault-free component only certifies at diagnosis time because the
    // probe replays the calibration run; a different rule grows a different
    // tree and the replay argument collapses.
    throw std::invalid_argument(
        "Diagnoser: options.rule (" + to_string(options_.rule) +
        ") does not match the partition's calibration rule (" +
        to_string(partition_.rule) + ")");
  }
  if (options_.delta != 0 && options_.delta != partition_.delta) {
    throw std::invalid_argument(
        "Diagnoser: options.delta (" + std::to_string(options_.delta) +
        ") conflicts with the adopted partition's certified bound (" +
        std::to_string(partition_.delta) + "); pass 0 to adopt the bound");
  }
}

void Diagnoser::require_csr(const char* what) const {
  if (graph_ == nullptr) {
    throw std::logic_error(std::string("Diagnoser: ") + what +
                           " requires a CSR graph, not an implicit view");
  }
}

// Type-erased entry point: the same driver body instantiated on the base
// class, so every look-up stays a virtual call. Kept un-downcast so the
// benches and equivalence tests can measure the virtual path explicitly;
// production call sites that hold a type-erased pointer use
// diagnose_devirtualized instead.
DiagnosisResult Diagnoser::diagnose(const SyndromeOracle& oracle) {
  return diagnose_impl<SyndromeOracle>(oracle);
}

// The seed driver, preserved verbatim over the SetBuilder baseline runs —
// the measured old-vs-new baseline. Do not modernise: its cost profile
// (virtual per-pair look-ups, boundary collection by walking every member's
// adjacency with dedup scratch and a final sort) is what the hot-path bench
// compares against.
DiagnosisResult Diagnoser::diagnose_baseline(const SyndromeOracle& oracle) {
  require_csr("diagnose_baseline");
  oracle.reset_lookups();
  const Timer solve_timer;
  DiagnosisResult out;
  const PartitionPlan& plan = *partition_.plan;

  // Phase 1: probe seeds until a restricted run certifies.
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta_} + 1);
  std::uint32_t certified = 0;
  bool found = false;
  probe_builder_.set_stop_on_certify(options_.stop_probe_on_certify);
  for (std::size_t c = 0; c < max_probes; ++c) {
    ++out.probes;
    const auto probe = probe_builder_.run_restricted_baseline(
        oracle, plan.seed_of(c), delta_, plan, static_cast<std::uint32_t>(c));
    if (probe.all_healthy) {
      certified = static_cast<std::uint32_t>(c);
      found = true;
      break;
    }
  }
  probe_builder_.set_stop_on_certify(false);
  if (!found) {
    out.lookups = oracle.lookups();
    out.failure_reason =
        "no component certified within delta+1 probes; the fault count "
        "likely exceeds the bound delta = " +
        std::to_string(delta_);
    out.diagnose_seconds = solve_timer.seconds();
    return out;
  }
  out.certified_component = certified;

  // Phase 2: unrestricted run from the certified seed.
  const auto full =
      final_builder_.run_baseline(oracle, plan.seed_of(certified), delta_);
  out.final_members = full.members.size();
  out.final_rounds = full.rounds;

  // Phase 3: N(U_r) is exactly F (Theorem 1) — by member-adjacency walk.
  if (boundary_seen_.capacity() < graph_->num_nodes()) {
    boundary_seen_.resize(graph_->num_nodes());
  }
  boundary_seen_.clear();
  for (const Node u : full.members) {
    for (const Node v : graph_->neighbors(u)) {
      if (!final_builder_.in_last_baseline_set(v) && boundary_seen_.insert(v)) {
        out.faults.push_back(v);
      }
    }
  }
  std::sort(out.faults.begin(), out.faults.end());
  out.lookups = oracle.lookups();
  out.diagnose_seconds = solve_timer.seconds();

  if (out.faults.size() > delta_) {
    out.failure_reason = "boundary larger than delta (" +
                         std::to_string(out.faults.size()) + " > " +
                         std::to_string(delta_) +
                         "); the fault count exceeds the bound";
    out.faults.clear();
    return out;
  }
  out.success = true;
  return out;
}

// The cohort driver: the phase-1/2/3 structure of diagnose_impl with lane
// masks for control flow. Each lane leaves the probe stream the moment its
// component certifies — exactly where its scalar loop would break — so
// per-lane probe counts and look-ups match the scalar path bit for bit.
std::vector<DiagnosisResult> Diagnoser::diagnose_cohort(
    const std::vector<const TableOracle*>& lanes) {
  require_csr("diagnose_cohort");
  if (lanes.empty() || lanes.size() > BitSlicedOracle::kMaxLanes) {
    throw std::invalid_argument("Diagnoser: cohort width must be 1..64 (got " +
                                std::to_string(lanes.size()) + ")");
  }
  for (const TableOracle* lane : lanes) {
    if (lane == nullptr) {
      throw std::invalid_argument("Diagnoser: null oracle in cohort");
    }
  }
  const unsigned width = static_cast<unsigned>(lanes.size());
  std::vector<DiagnosisResult> out(width);

  // Rows wider than one word cannot bitslice; the whole cohort peels to
  // the scalar static path (identical results, just not in lockstep).
  if (graph_->max_degree() > 64) {
    for (unsigned i = 0; i < width; ++i) out[i] = diagnose(*lanes[i]);
    return out;
  }

  const Timer solve_timer;
  BitSlicedOracle sliced(*graph_);
  for (const TableOracle* lane : lanes) {
    lane->reset_lookups();
    sliced.add_lane(*lane);
  }
  const std::uint64_t live = sliced.full_mask();
  const PartitionPlan& plan = *partition_.plan;

  std::array<SlicedLaneResult, BitSlicedOracle::kMaxLanes> lane_run;
  std::array<std::uint32_t, BitSlicedOracle::kMaxLanes> component_of{};

  // Phase 1, lockstep: each probe runs once for every not-yet-certified
  // lane.
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta_} + 1);
  std::uint64_t certified = 0;
  probe_builder_.set_stop_on_certify(options_.stop_probe_on_certify);
  for (std::size_t c = 0; c < max_probes; ++c) {
    const std::uint64_t probing = live & ~certified;
    if (probing == 0) break;
    probe_builder_.run_sliced_restricted(sliced, plan.seed_of(c), delta_,
                                         probing, plan,
                                         static_cast<std::uint32_t>(c),
                                         lane_run.data());
    for (std::uint64_t m = probing; m != 0; m &= m - 1) {
      const unsigned L = static_cast<unsigned>(std::countr_zero(m));
      ++out[L].probes;
      if (lane_run[L].all_healthy) {
        certified |= std::uint64_t{1} << L;
        component_of[L] = static_cast<std::uint32_t>(c);
      }
    }
  }
  probe_builder_.set_stop_on_certify(false);
  for (std::uint64_t m = live & ~certified; m != 0; m &= m - 1) {
    out[std::countr_zero(m)].failure_reason =
        "no component certified within delta+1 probes; the fault count "
        "likely exceeds the bound delta = " +
        std::to_string(delta_);
  }

  // Phases 2+3 per distinct certified component: lanes that certified the
  // same seed share one unrestricted lockstep run and one boundary scan.
  const std::size_t num_nodes = graph_->num_nodes();
  std::uint64_t remaining = certified;
  while (remaining != 0) {
    const std::uint32_t comp = component_of[std::countr_zero(remaining)];
    std::uint64_t group = 0;
    for (std::uint64_t m = remaining; m != 0; m &= m - 1) {
      const unsigned L = static_cast<unsigned>(std::countr_zero(m));
      if (component_of[L] == comp) group |= std::uint64_t{1} << L;
    }
    remaining &= ~group;

    final_builder_.run_sliced(sliced, plan.seed_of(comp), delta_, group,
                              lane_run.data());
    for (std::uint64_t m = group; m != 0; m &= m - 1) {
      const unsigned L = static_cast<unsigned>(std::countr_zero(m));
      out[L].certified_component = comp;
      out[L].final_members = lane_run[L].member_count;
      out[L].final_rounds = lane_run[L].rounds;
    }
    // Phase 3, bitsliced: the complement scan of diagnose_impl over
    // lane-membership masks. Ascending v, so per-lane fault lists come
    // out sorted exactly as the scalar path produces them.
    for (Node v = 0; v < num_nodes; ++v) {
      const std::uint64_t cand =
          group & ~final_builder_.sliced_member_mask(v);
      if (cand == 0) continue;
      std::uint64_t hit = 0;
      for (const Node w : graph_->neighbors(v)) {
        hit |= cand & final_builder_.sliced_member_mask(w);
        if (hit == cand) break;
      }
      for (std::uint64_t m = hit; m != 0; m &= m - 1) {
        out[std::countr_zero(m)].faults.push_back(v);
      }
    }
    for (std::uint64_t m = group; m != 0; m &= m - 1) {
      const unsigned L = static_cast<unsigned>(std::countr_zero(m));
      if (out[L].faults.size() > delta_) {
        out[L].failure_reason =
            "boundary larger than delta (" +
            std::to_string(out[L].faults.size()) + " > " +
            std::to_string(delta_) + "); the fault count exceeds the bound";
        out[L].faults.clear();
      } else {
        out[L].success = true;
      }
    }
  }

  // Flush per-lane accounting (the cohort analogue of run_impl's
  // add_lookups flush) and stamp the shared wall time.
  const double seconds = solve_timer.seconds();
  for (unsigned L = 0; L < width; ++L) {
    lanes[L]->add_lookups(sliced.lane_lookups(L));
    out[L].lookups = lanes[L]->lookups();
    out[L].diagnose_seconds = seconds;
  }
  return out;
}

DiagnosisResult diagnose_devirtualized(Diagnoser& diagnoser,
                                       const SyndromeOracle& oracle) {
  const std::type_info& type = typeid(oracle);
  if (type == typeid(TableOracle)) {
    return diagnoser.diagnose(static_cast<const TableOracle&>(oracle));
  }
  if (type == typeid(LazyOracle)) {
    return diagnoser.diagnose(static_cast<const LazyOracle&>(oracle));
  }
  if (type == typeid(ImplicitLazyOracle)) {
    return diagnoser.diagnose(static_cast<const ImplicitLazyOracle&>(oracle));
  }
  if (type == typeid(FaultFreeOracle)) {
    return diagnoser.diagnose(static_cast<const FaultFreeOracle&>(oracle));
  }
  return diagnoser.diagnose(oracle);
}

}  // namespace mmdiag
