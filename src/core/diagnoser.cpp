#include "core/diagnoser.hpp"

#include <stdexcept>
#include <typeinfo>

namespace mmdiag {

namespace {

const Graph& deref_graph(const std::shared_ptr<const Graph>& graph) {
  if (!graph) throw std::invalid_argument("Diagnoser: null graph");
  return *graph;
}

unsigned resolve_delta(const Topology& topology, const DiagnoserOptions& o) {
  if (o.delta != 0) return o.delta;
  const unsigned bound = topology.default_fault_bound();
  if (bound == 0) {
    throw DiagnosisUnsupportedError(
        topology.info().name +
        ": diagnosability is not established for these parameters (see §5's "
        "validity conditions); pass DiagnoserOptions::delta explicitly");
  }
  return bound;
}

}  // namespace

Diagnoser::Diagnoser(const Topology& topology, const Graph& graph,
                     DiagnoserOptions options)
    : Diagnoser(graph,
                find_certified_partition(topology, graph,
                                         resolve_delta(topology, options),
                                         options.rule,
                                         options.validate_all_components),
                options) {}

Diagnoser::Diagnoser(const Graph& graph, CertifiedPartition partition,
                     DiagnoserOptions options)
    : graph_(&graph),
      options_(options),
      delta_(partition.delta),
      partition_(std::move(partition)),
      probe_builder_(graph, options.rule),
      final_builder_(graph, options.final_rule) {
  if (!partition_.plan) {
    throw std::invalid_argument("Diagnoser: certified partition has no plan");
  }
  if (options_.rule != partition_.rule) {
    // A fault-free component only certifies at diagnosis time because the
    // probe replays the calibration run; a different rule grows a different
    // tree and the replay argument collapses.
    throw std::invalid_argument(
        "Diagnoser: options.rule (" + to_string(options_.rule) +
        ") does not match the partition's calibration rule (" +
        to_string(partition_.rule) + ")");
  }
  if (options_.delta != 0 && options_.delta != partition_.delta) {
    throw std::invalid_argument(
        "Diagnoser: options.delta (" + std::to_string(options_.delta) +
        ") conflicts with the adopted partition's certified bound (" +
        std::to_string(partition_.delta) + "); pass 0 to adopt the bound");
  }
  // boundary_seen_ is sized lazily by diagnose_baseline — it is the only
  // user, and production paths should not carry a per-node array for it.
}

Diagnoser::Diagnoser(std::shared_ptr<const Graph> graph,
                     CertifiedPartition partition, DiagnoserOptions options)
    : Diagnoser(deref_graph(graph), std::move(partition), options) {
  graph_owner_ = std::move(graph);
}

// Type-erased entry point: the same driver body instantiated on the base
// class, so every look-up stays a virtual call. Kept un-downcast so the
// benches and equivalence tests can measure the virtual path explicitly;
// production call sites that hold a type-erased pointer use
// diagnose_devirtualized instead.
DiagnosisResult Diagnoser::diagnose(const SyndromeOracle& oracle) {
  return diagnose_impl<SyndromeOracle>(oracle);
}

// The seed driver, preserved verbatim over the SetBuilder baseline runs —
// the measured old-vs-new baseline. Do not modernise: its cost profile
// (virtual per-pair look-ups, boundary collection by walking every member's
// adjacency with dedup scratch and a final sort) is what the hot-path bench
// compares against.
DiagnosisResult Diagnoser::diagnose_baseline(const SyndromeOracle& oracle) {
  oracle.reset_lookups();
  const Timer solve_timer;
  DiagnosisResult out;
  const PartitionPlan& plan = *partition_.plan;

  // Phase 1: probe seeds until a restricted run certifies.
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta_} + 1);
  std::uint32_t certified = 0;
  bool found = false;
  probe_builder_.set_stop_on_certify(options_.stop_probe_on_certify);
  for (std::size_t c = 0; c < max_probes; ++c) {
    ++out.probes;
    const auto probe = probe_builder_.run_restricted_baseline(
        oracle, plan.seed_of(c), delta_, plan, static_cast<std::uint32_t>(c));
    if (probe.all_healthy) {
      certified = static_cast<std::uint32_t>(c);
      found = true;
      break;
    }
  }
  probe_builder_.set_stop_on_certify(false);
  if (!found) {
    out.lookups = oracle.lookups();
    out.failure_reason =
        "no component certified within delta+1 probes; the fault count "
        "likely exceeds the bound delta = " +
        std::to_string(delta_);
    out.diagnose_seconds = solve_timer.seconds();
    return out;
  }
  out.certified_component = certified;

  // Phase 2: unrestricted run from the certified seed.
  const auto full =
      final_builder_.run_baseline(oracle, plan.seed_of(certified), delta_);
  out.final_members = full.members.size();
  out.final_rounds = full.rounds;

  // Phase 3: N(U_r) is exactly F (Theorem 1) — by member-adjacency walk.
  if (boundary_seen_.capacity() < graph_->num_nodes()) {
    boundary_seen_.resize(graph_->num_nodes());
  }
  boundary_seen_.clear();
  for (const Node u : full.members) {
    for (const Node v : graph_->neighbors(u)) {
      if (!final_builder_.in_last_baseline_set(v) && boundary_seen_.insert(v)) {
        out.faults.push_back(v);
      }
    }
  }
  std::sort(out.faults.begin(), out.faults.end());
  out.lookups = oracle.lookups();
  out.diagnose_seconds = solve_timer.seconds();

  if (out.faults.size() > delta_) {
    out.failure_reason = "boundary larger than delta (" +
                         std::to_string(out.faults.size()) + " > " +
                         std::to_string(delta_) +
                         "); the fault count exceeds the bound";
    out.faults.clear();
    return out;
  }
  out.success = true;
  return out;
}

DiagnosisResult diagnose_devirtualized(Diagnoser& diagnoser,
                                       const SyndromeOracle& oracle) {
  const std::type_info& type = typeid(oracle);
  if (type == typeid(TableOracle)) {
    return diagnoser.diagnose(static_cast<const TableOracle&>(oracle));
  }
  if (type == typeid(LazyOracle)) {
    return diagnoser.diagnose(static_cast<const LazyOracle&>(oracle));
  }
  if (type == typeid(FaultFreeOracle)) {
    return diagnoser.diagnose(static_cast<const FaultFreeOracle&>(oracle));
  }
  return diagnoser.diagnose(oracle);
}

}  // namespace mmdiag
