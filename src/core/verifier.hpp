// Post-hoc verification of a claimed diagnosis.
//
// A claimed fault set F' is *consistent* with a syndrome s when every
// healthy tester's result matches the model: for all u ∉ F' and neighbour
// pairs {v,w}, s_u(v,w) = [v ∈ F' or w ∈ F']. If G is δ-diagnosable,
// |F'| <= δ, and F' is consistent, then F' is the unique correct answer —
// so verification upgrades the diagnosis from "correct under the |F| <= δ
// promise" to "checked against the full syndrome".
#pragma once

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/fault_set.hpp"
#include "mm/oracle.hpp"

namespace mmdiag {

/// Full-syndrome consistency check — O(Σ d(d-1)/2) look-ups.
[[nodiscard]] bool syndrome_consistent(const Graph& g,
                                       const SyndromeOracle& oracle,
                                       const FaultSet& claimed);

/// Diagnose and then verify; on inconsistency the result is downgraded to a
/// failure with an explanatory reason.
[[nodiscard]] DiagnosisResult diagnose_and_verify(Diagnoser& diagnoser,
                                                  const SyndromeOracle& oracle);

}  // namespace mmdiag
