#include "core/distributed.hpp"

#include <algorithm>

#include "baselines/chiang_tan.hpp"
#include "core/certified_partition.hpp"
#include "core/set_builder.hpp"
#include "graph/traversal.hpp"

namespace mmdiag {
namespace {

std::uint64_t degree_sum(const Graph& g, const std::vector<Node>& nodes) {
  std::uint64_t sum = 0;
  for (const Node u : nodes) sum += g.degree(u);
  return sum;
}

}  // namespace

DistributedCost distributed_set_builder_cost(const Topology& topology,
                                             const Graph& graph,
                                             const SyndromeOracle& oracle,
                                             const DiagnoserOptions& options) {
  DistributedCost cost;
  const unsigned delta = options.delta != 0 ? options.delta
                                            : topology.default_fault_bound();
  const CertifiedPartition partition = find_certified_partition(
      topology, graph, delta, options.rule, options.validate_all_components);
  const PartitionPlan& plan = *partition.plan;

  oracle.reset_lookups();
  SetBuilder builder(graph, options.rule);

  // Phase A: every component probes concurrently.
  std::uint64_t max_probe_rounds = 0;
  bool any_certified = false;
  std::size_t winner = 0;
  for (std::size_t c = 0; c < plan.num_components(); ++c) {
    const auto probe = builder.run_restricted(
        oracle, plan.seed_of(c), delta, plan, static_cast<std::uint32_t>(c));
    // Offer + reply per scanned edge; one offer round and one reply round
    // per tree level, then a convergecast of contributor counts.
    cost.messages += 2 * degree_sum(graph, probe.members) + probe.members.size();
    max_probe_rounds = std::max<std::uint64_t>(
        max_probe_rounds, 3ULL * (probe.rounds + 1));
    if (probe.all_healthy && !any_certified) {
      any_certified = true;
      winner = c;
    }
  }
  cost.rounds += max_probe_rounds;
  if (!any_certified) {
    cost.local_work = oracle.lookups();
    return cost;  // success stays false
  }

  // Election: certified seeds flood their identity across the network.
  cost.rounds += eccentricity(graph, plan.seed_of(winner));
  cost.messages += 2 * graph.num_edges();

  // Phase B: unrestricted build from the winner, then fault reports
  // converge-cast back to the seed.
  const auto full = builder.run(oracle, plan.seed_of(winner), delta);
  cost.messages += 2 * degree_sum(graph, full.members) + full.members.size();
  cost.rounds += 3ULL * (full.rounds + 1);
  cost.local_work = oracle.lookups();
  cost.success = true;
  return cost;
}

DistributedCost distributed_chiang_tan_cost(const Hypercube& topo,
                                            const Graph& graph,
                                            const SyndromeOracle& oracle) {
  DistributedCost cost;
  const auto ct = ChiangTanDiagnoser::for_hypercube(topo, graph);
  const auto result = ct.diagnose(oracle);
  cost.success = result.success;
  cost.local_work = result.lookups;
  // Each node pulls 3 test bits per branch, relayed over 1+2+3 hops.
  cost.messages =
      6ULL * ct.branches() * static_cast<std::uint64_t>(graph.num_nodes());
  cost.rounds = 6;  // pipelined relays
  return cost;
}

}  // namespace mmdiag
