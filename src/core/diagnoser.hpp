// The generic fault-diagnosis driver (Theorem 1 + the §5 algorithm).
//
// Given a syndrome for an unknown fault set F with |F| <= δ:
//   1. probe the components of a certified partition in order, running the
//      restricted Set_Builder from each seed, until one run certifies
//      all-healthy (at most δ+1 probes are ever needed: at most δ
//      components contain faults, and a fault-free component certifies by
//      calibration);
//   2. rerun Set_Builder unrestricted from that seed — U_r is then a set of
//      healthy nodes containing the whole certified component;
//   3. output N = the neighbours of U_r. By Theorem 1 (κ >= δ), N = F.
//
// Total cost O(Δ·N) time and at most (Δ-1)(Δ/2 + |U_r| - 1) syndrome
// look-ups for the final run (§6) — both measured by the benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/certified_partition.hpp"
#include "core/set_builder.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/topology.hpp"
#include "util/timer.hpp"

namespace mmdiag {

struct DiagnoserOptions {
  /// Fault bound δ; 0 means "use topology.default_fault_bound()".
  unsigned delta = 0;
  /// Parent rule for the certification probes (must match calibration).
  ParentRule rule = ParentRule::kSpread;
  /// Parent rule for the final unrestricted run. The final run starts from a
  /// seed already known healthy, so no certificate is needed and the paper's
  /// least-first rule applies: it admits members as soon as one 0-test
  /// appears, touching each edge at most once — about Δ/2 times fewer
  /// look-ups than the deferred spread rule (measured by bench_ablation).
  ParentRule final_rule = ParentRule::kLeastFirst;
  /// Calibrate every component (safe default) or just component 0.
  bool validate_all_components = true;
  /// Stop probe runs as soon as they certify instead of building the whole
  /// component (optimisation measured by bench_ablation; the paper builds
  /// probes to their fixpoint).
  bool stop_probe_on_certify = false;
};

struct DiagnosisResult {
  bool success = false;
  std::vector<Node> faults;        // sorted ascending; meaningful on success
  std::string failure_reason;      // meaningful on failure

  // Accounting (§6 / benches):
  std::size_t probes = 0;          // restricted Set_Builder runs performed
  std::uint32_t certified_component = 0;
  std::uint64_t lookups = 0;       // syndrome look-ups across all phases
  std::size_t final_members = 0;   // |U_r| of the unrestricted run
  unsigned final_rounds = 0;       // r of the unrestricted run

  // Amortisation accounting. Calibration is the dominant setup cost, so
  // engine benches and the CLI report the setup/solve split per request
  // instead of one blended number. The split is measurement, never input:
  // two results are "bit-identical" when every field above this comment
  // matches; the timing fields vary run to run by construction.
  bool calibration_reused = false; // served without waiting on a
                                   // calibration build (cache hit that
                                   // didn't block behind the builder)
  unsigned shards_used = 1;        // owner/halo shards the engine actually
                                   // solved with; 1 = monolithic, including
                                   // the silent fallback for requests that
                                   // are not shardable (non-table oracle,
                                   // degree > 64, order-serial rule)
  bool used_local_fast_path = false; // answered by bgm_local_diagnose's
                                     // neighbourhood reads alone, no
                                     // global solve (directed serving only)
  double setup_seconds = 0;        // obtaining Topology+Graph+partition
                                   // (engine-filled; 0 on the direct path)
  double diagnose_seconds = 0;     // wall time of the diagnose() call
};

class Diagnoser {
 public:
  /// Builds the certified partition up front (throws
  /// DiagnosisUnsupportedError if the topology cannot support the bound).
  Diagnoser(const Topology& topology, const Graph& graph,
            DiagnoserOptions options = {});

  /// Adopts a partition certified elsewhere (the plan is shared, not
  /// copied). This is the cheap constructor: calibration is the dominant
  /// setup cost, so BatchDiagnoser certifies once and builds one Diagnoser
  /// per worker lane from the same partition. `partition.delta` becomes the
  /// fault bound. Throws std::invalid_argument when options.rule differs
  /// from the rule the partition was calibrated under (mismatched probes
  /// may fail to replay the calibration and mis-diagnose), or when a
  /// non-zero options.delta conflicts with partition.delta.
  Diagnoser(const Graph& graph, CertifiedPartition partition,
            DiagnoserOptions options = {});

  /// Shared-ownership variant of the adopting constructor: the Diagnoser
  /// keeps the graph alive, so callers (the engine's calibration cache, any
  /// code handing Diagnosers across scopes) need not outlive it. Pass an
  /// aliasing shared_ptr to tie the graph's lifetime to a larger bundle.
  /// Throws std::invalid_argument on a null graph, and everything the
  /// raw-reference adopting constructor throws.
  Diagnoser(std::shared_ptr<const Graph> graph, CertifiedPartition partition,
            DiagnoserOptions options = {});

  /// Implicit-view constructors: the same three shapes over an
  /// ImplicitGraph. Phases 1-3 run the identical driver bodies through
  /// closed-form adjacency, so results and look-up counts match the CSR
  /// constructors bit for bit; only diagnose_cohort and diagnose_baseline
  /// (which read CSR layout directly) are unavailable and throw
  /// std::logic_error.
  Diagnoser(const Topology& topology, const ImplicitGraph& graph,
            DiagnoserOptions options = {});
  Diagnoser(const ImplicitGraph& graph, CertifiedPartition partition,
            DiagnoserOptions options = {});
  Diagnoser(std::shared_ptr<const ImplicitGraph> graph,
            CertifiedPartition partition, DiagnoserOptions options = {});

  /// Diagnose one syndrome. The oracle's look-up counter is reset first.
  /// This is the type-erased entry point: phases 1-2 run with virtual
  /// dispatch per look-up.
  [[nodiscard]] DiagnosisResult diagnose(const SyndromeOracle& oracle);

  /// Statically-dispatched variant: when the call site knows the concrete
  /// oracle type, phases 1-2 instantiate on it and every look-up inlines.
  /// Results (faults, probes, rounds, contributors, look-up counts) are
  /// bit-identical to the type-erased path.
  template <StaticOracle O>
  [[nodiscard]] DiagnosisResult diagnose(const O& oracle) {
    return diagnose_impl<O>(oracle);
  }

  /// Diagnose up to 64 materialised syndromes over this calibration in
  /// bitsliced lockstep (SetBuilder::run_sliced): probes, final runs and
  /// boundary scans execute once per cohort instead of once per syndrome.
  /// Per-syndrome results — faults, probes, rounds, members, certified
  /// component, failure strings AND counted look-ups — are bit-identical
  /// to calling diagnose() on each oracle alone; each oracle's counter is
  /// reset and refilled exactly as the scalar path does, so one failing
  /// lane never perturbs the rest. Degrees above 64 (no word-wide rows)
  /// fall back to per-lane scalar solves. Throws std::invalid_argument on
  /// an empty, >64-wide, or null-containing cohort.
  [[nodiscard]] std::vector<DiagnosisResult> diagnose_cohort(
      const std::vector<const TableOracle*>& lanes);

  /// The pre-optimisation driver, preserved verbatim (SetBuilder baseline
  /// runs, member-walk boundary collection with dedup scratch + sort) as
  /// the measured old-vs-new baseline of bench_hotpath and a third voice
  /// in the equivalence tests. Bit-identical results and look-up counts.
  [[nodiscard]] DiagnosisResult diagnose_baseline(const SyndromeOracle& oracle);

  [[nodiscard]] unsigned delta() const noexcept { return delta_; }
  [[nodiscard]] const CertifiedPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const DiagnoserOptions& options() const noexcept {
    return options_;
  }

 private:
  template <class O>
  DiagnosisResult diagnose_impl(const O& oracle) {
    if (implicit_ != nullptr) return diagnose_impl_on<O>(oracle, *implicit_);
    return diagnose_impl_on<O>(oracle, *graph_);
  }

  template <class O, class GV>
  DiagnosisResult diagnose_impl_on(const O& oracle, const GV& g);

  void check_adopted_partition() const;
  void require_csr(const char* what) const;

  std::shared_ptr<const Graph> graph_owner_;  // null on the raw-pointer path
  const Graph* graph_ = nullptr;  // exactly one of graph_ / implicit_ is set
  std::shared_ptr<const ImplicitGraph> implicit_owner_;
  const ImplicitGraph* implicit_ = nullptr;
  DiagnoserOptions options_;
  unsigned delta_;
  CertifiedPartition partition_;
  SetBuilder probe_builder_;  // options.rule — matches the calibration
  SetBuilder final_builder_;  // options.final_rule — no certificate needed
  StampSet boundary_seen_;    // diagnose_baseline's N(U_r) dedup scratch
};

/// Route a type-erased oracle to the statically-dispatched diagnose
/// overload when its dynamic type is one of the shipped oracles (a cheap
/// typeid chain), falling back to the virtual path otherwise. Batch lanes
/// and the engine's serve loop hold `const SyndromeOracle*` — this recovers
/// the devirtualised hot path for them at one dispatch per syndrome.
[[nodiscard]] DiagnosisResult diagnose_devirtualized(
    Diagnoser& diagnoser, const SyndromeOracle& oracle);

// ---------------------------------------------------------------------------
// The phase-1/2/3 driver, templated on the oracle so probe and final
// Set_Builder runs statically dispatch when O is concrete. One body for
// both paths — divergence between them is impossible by construction.
// ---------------------------------------------------------------------------

template <class O, class GV>
DiagnosisResult Diagnoser::diagnose_impl_on(const O& oracle, const GV& g) {
  oracle.reset_lookups();
  const Timer solve_timer;
  DiagnosisResult out;
  const PartitionPlan& plan = *partition_.plan;

  // Phase 1: probe seeds until a restricted run certifies. At most δ
  // components can contain a fault, so δ+1 probes suffice when |F| <= δ.
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta_} + 1);
  std::uint32_t certified = 0;
  bool found = false;
  probe_builder_.set_stop_on_certify(options_.stop_probe_on_certify);
  for (std::size_t c = 0; c < max_probes; ++c) {
    ++out.probes;
    const auto probe = probe_builder_.run_restricted(
        oracle, plan.seed_of(c), delta_, plan, static_cast<std::uint32_t>(c));
    if (probe.all_healthy) {
      certified = static_cast<std::uint32_t>(c);
      found = true;
      break;
    }
  }
  probe_builder_.set_stop_on_certify(false);
  if (!found) {
    out.lookups = oracle.lookups();
    out.failure_reason =
        "no component certified within delta+1 probes; the fault count "
        "likely exceeds the bound delta = " +
        std::to_string(delta_);
    out.diagnose_seconds = solve_timer.seconds();
    return out;
  }
  out.certified_component = certified;

  // Phase 2: unrestricted run from the certified seed. Every member is
  // healthy (the seed is, and health propagates down the 0-tests) — no
  // certificate is required, so the cheaper final rule applies.
  const auto full = final_builder_.run(oracle, plan.seed_of(certified), delta_);
  out.final_members = full.members.size();
  out.final_rounds = full.rounds;

  // Phase 3: N(U_r) is exactly F (Theorem 1). On the success path U_r is
  // within δ of the whole graph, so scan the *complement*: one membership
  // test per node finds the candidates, each checked for a member
  // neighbour. Equivalent to walking every member's adjacency (same set,
  // by definition of N), ~Δ× cheaper, and ascending by construction — no
  // sort, no dedup scratch.
  const std::size_t num_nodes = g.num_nodes();
  for (Node v = 0; v < num_nodes; ++v) {
    if (final_builder_.in_last_set(v)) continue;
    for (const Node w : g.neighbors(v)) {
      if (final_builder_.in_last_set(w)) {
        out.faults.push_back(v);
        break;
      }
    }
  }
  out.lookups = oracle.lookups();
  out.diagnose_seconds = solve_timer.seconds();

  if (out.faults.size() > delta_) {
    // Impossible under the |F| <= δ promise (N ⊆ F); report rather than lie.
    out.failure_reason = "boundary larger than delta (" +
                         std::to_string(out.faults.size()) + " > " +
                         std::to_string(delta_) +
                         "); the fault count exceeds the bound";
    out.faults.clear();
    return out;
  }
  out.success = true;
  return out;
}

}  // namespace mmdiag
