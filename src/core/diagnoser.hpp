// The generic fault-diagnosis driver (Theorem 1 + the §5 algorithm).
//
// Given a syndrome for an unknown fault set F with |F| <= δ:
//   1. probe the components of a certified partition in order, running the
//      restricted Set_Builder from each seed, until one run certifies
//      all-healthy (at most δ+1 probes are ever needed: at most δ
//      components contain faults, and a fault-free component certifies by
//      calibration);
//   2. rerun Set_Builder unrestricted from that seed — U_r is then a set of
//      healthy nodes containing the whole certified component;
//   3. output N = the neighbours of U_r. By Theorem 1 (κ >= δ), N = F.
//
// Total cost O(Δ·N) time and at most (Δ-1)(Δ/2 + |U_r| - 1) syndrome
// look-ups for the final run (§6) — both measured by the benches.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/certified_partition.hpp"
#include "core/set_builder.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

struct DiagnoserOptions {
  /// Fault bound δ; 0 means "use topology.default_fault_bound()".
  unsigned delta = 0;
  /// Parent rule for the certification probes (must match calibration).
  ParentRule rule = ParentRule::kSpread;
  /// Parent rule for the final unrestricted run. The final run starts from a
  /// seed already known healthy, so no certificate is needed and the paper's
  /// least-first rule applies: it admits members as soon as one 0-test
  /// appears, touching each edge at most once — about Δ/2 times fewer
  /// look-ups than the deferred spread rule (measured by bench_ablation).
  ParentRule final_rule = ParentRule::kLeastFirst;
  /// Calibrate every component (safe default) or just component 0.
  bool validate_all_components = true;
  /// Stop probe runs as soon as they certify instead of building the whole
  /// component (optimisation measured by bench_ablation; the paper builds
  /// probes to their fixpoint).
  bool stop_probe_on_certify = false;
};

struct DiagnosisResult {
  bool success = false;
  std::vector<Node> faults;        // sorted ascending; meaningful on success
  std::string failure_reason;      // meaningful on failure

  // Accounting (§6 / benches):
  std::size_t probes = 0;          // restricted Set_Builder runs performed
  std::uint32_t certified_component = 0;
  std::uint64_t lookups = 0;       // syndrome look-ups across all phases
  std::size_t final_members = 0;   // |U_r| of the unrestricted run
  unsigned final_rounds = 0;       // r of the unrestricted run

  // Amortisation accounting. Calibration is the dominant setup cost, so
  // engine benches and the CLI report the setup/solve split per request
  // instead of one blended number. The split is measurement, never input:
  // two results are "bit-identical" when every field above this comment
  // matches; the timing fields vary run to run by construction.
  bool calibration_reused = false; // served without waiting on a
                                   // calibration build (cache hit that
                                   // didn't block behind the builder)
  double setup_seconds = 0;        // obtaining Topology+Graph+partition
                                   // (engine-filled; 0 on the direct path)
  double diagnose_seconds = 0;     // wall time of the diagnose() call
};

class Diagnoser {
 public:
  /// Builds the certified partition up front (throws
  /// DiagnosisUnsupportedError if the topology cannot support the bound).
  Diagnoser(const Topology& topology, const Graph& graph,
            DiagnoserOptions options = {});

  /// Adopts a partition certified elsewhere (the plan is shared, not
  /// copied). This is the cheap constructor: calibration is the dominant
  /// setup cost, so BatchDiagnoser certifies once and builds one Diagnoser
  /// per worker lane from the same partition. `partition.delta` becomes the
  /// fault bound. Throws std::invalid_argument when options.rule differs
  /// from the rule the partition was calibrated under (mismatched probes
  /// may fail to replay the calibration and mis-diagnose), or when a
  /// non-zero options.delta conflicts with partition.delta.
  Diagnoser(const Graph& graph, CertifiedPartition partition,
            DiagnoserOptions options = {});

  /// Shared-ownership variant of the adopting constructor: the Diagnoser
  /// keeps the graph alive, so callers (the engine's calibration cache, any
  /// code handing Diagnosers across scopes) need not outlive it. Pass an
  /// aliasing shared_ptr to tie the graph's lifetime to a larger bundle.
  /// Throws std::invalid_argument on a null graph, and everything the
  /// raw-reference adopting constructor throws.
  Diagnoser(std::shared_ptr<const Graph> graph, CertifiedPartition partition,
            DiagnoserOptions options = {});

  /// Diagnose one syndrome. The oracle's look-up counter is reset first.
  [[nodiscard]] DiagnosisResult diagnose(const SyndromeOracle& oracle);

  [[nodiscard]] unsigned delta() const noexcept { return delta_; }
  [[nodiscard]] const CertifiedPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const DiagnoserOptions& options() const noexcept {
    return options_;
  }

 private:
  std::shared_ptr<const Graph> graph_owner_;  // null on the raw-pointer path
  const Graph* graph_;
  DiagnoserOptions options_;
  unsigned delta_;
  CertifiedPartition partition_;
  SetBuilder probe_builder_;  // options.rule — matches the calibration
  SetBuilder final_builder_;  // options.final_rule — no certificate needed
  StampSet boundary_seen_;    // scratch for collecting N(U_r)
};

}  // namespace mmdiag
