// Batch diagnosis: many syndromes, one topology, all cores.
//
// The §5 driver splits into a per-topology setup (certified partition,
// adjacency — expensive, fault-independent) and a per-syndrome solve
// (cheap, O(Δ·N)). A diagnosis sweep over a large regular network re-uses
// the same setup for every syndrome, so BatchDiagnoser certifies the
// partition once and fans the solves out over a fixed ThreadPool. Each
// worker lane owns a full Diagnoser (SetBuilder frontiers, StampSet
// scratch) built from the shared partition, so no mutable diagnosis state
// crosses a thread boundary and every result is bit-identical to running
// the sequential Diagnoser on the same syndrome: the per-item computation
// is the same code on the same partition, threads only decide *where* it
// runs.
//
// Oracles are the unit of work. Each oracle is consulted by exactly one
// lane (its look-up counter is mutable and unsynchronised), so callers
// must pass one oracle per syndrome, never one shared oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "topology/topology.hpp"
#include "util/thread_pool.hpp"

namespace mmdiag {

struct BatchOptions {
  /// Worker lanes (calling thread included); 0 = hardware concurrency.
  unsigned threads = 0;
  /// Per-item diagnosis options, identical to the sequential Diagnoser's.
  DiagnoserOptions diagnoser;
  /// Solve TableOracle inputs in bitsliced cohorts of 64
  /// (Diagnoser::diagnose_cohort): full 64-wide runs of table inputs, in
  /// input order, become one lockstep solve each; the remainder and every
  /// non-table oracle go through the scalar per-item path. Per-syndrome
  /// results and look-up counts are bit-identical either way — this is
  /// purely a throughput knob, on by default; benches switch it off to
  /// measure the scalar path.
  bool bitsliced = true;
};

struct BatchResult {
  /// One entry per input, in input order.
  std::vector<DiagnosisResult> results;
  std::size_t succeeded = 0;       // results with success == true
  std::uint64_t total_lookups = 0; // summed over every result
  double seconds = 0;              // wall time of the diagnose_all call
};

class BatchDiagnoser {
 public:
  /// Certifies the partition once (throws DiagnosisUnsupportedError exactly
  /// as the sequential Diagnoser would) and spins up the pool.
  BatchDiagnoser(const Topology& topology, const Graph& graph,
                 BatchOptions options = {});

  /// Adopts an already-certified partition (e.g. from a Diagnoser that is
  /// also serving sequential traffic). Throws std::invalid_argument when
  /// options.diagnoser conflicts with the partition — a non-zero delta
  /// disagreeing with partition.delta, or a rule differing from the
  /// calibration rule (both enforced by the per-lane Diagnoser ctors).
  BatchDiagnoser(const Graph& graph, CertifiedPartition partition,
                 BatchOptions options = {});

  /// Shared-ownership variant: keeps the graph (and, through an aliasing
  /// shared_ptr, whatever calibration bundle owns it) alive for the batch
  /// engine's whole lifetime. Throws std::invalid_argument on a null graph
  /// plus everything the raw-reference adopting constructor throws.
  BatchDiagnoser(std::shared_ptr<const Graph> graph,
                 CertifiedPartition partition, BatchOptions options = {});

  /// Diagnose every oracle; oracles[i] -> results[i]. Null entries are
  /// rejected with std::invalid_argument.
  [[nodiscard]] BatchResult diagnose_all(
      const std::vector<const SyndromeOracle*>& oracles);

  /// Convenience: wraps each syndrome in a TableOracle over the shared
  /// graph and diagnoses the lot.
  [[nodiscard]] BatchResult diagnose_all(const std::vector<Syndrome>& syndromes);

  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }
  [[nodiscard]] unsigned delta() const noexcept { return lanes_.front()->delta(); }
  [[nodiscard]] const CertifiedPartition& partition() const noexcept {
    return lanes_.front()->partition();
  }

 private:
  std::shared_ptr<const Graph> graph_owner_;  // null on the raw-pointer path
  const Graph* graph_;
  bool bitsliced_;
  ThreadPool pool_;
  // lanes_[k] is exclusively used by pool lane k. unique_ptr keeps the
  // Diagnosers (and their scratch) stable and avoids false sharing of
  // adjacent hot state.
  std::vector<std::unique_ptr<Diagnoser>> lanes_;
};

}  // namespace mmdiag
