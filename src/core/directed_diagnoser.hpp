// Diagnosis drivers for the directed (PMC / BGM) models.
//
// DirectedDiagnoser is the global solver: a deduction-first driver that
// resolves almost every syndrome without search, falling back to a
// class-granular branch only on the (rare, small) undetermined residue.
//
//   1. Read the whole syndrome (2|E| counted look-ups — any unread arc
//      could flip a global diagnosis) and union nodes joined by a
//      *mutual-0* edge (both arcs 0). Mutual-0 classes are homogeneous:
//      a healthy node tests a faulty neighbour 1, and a healthy unit is
//      tested 1 by a faulty BGM tester or certified by a 0, so one healthy
//      / one faulty endpoints cannot both read 0. Under BGM, additionally
//      seed every 0-tested unit healthy (asymmetric invalidation makes any
//      0-outcome an unconditional health certificate).
//   2. Seed by budget: a class larger than δ − (known faults) cannot be all
//      faulty, hence is all healthy. Applied to a fixpoint, interleaved
//      with arc-consistency propagation (a healthy tester's outcomes decide
//      its neighbours; a decided unit convicts testers whose reports
//      mismatch it).
//   3. If undecided classes remain, branch on them (propagation keeps each
//      class in lockstep through its mutual-0 arcs) and count consistent
//      ≤ δ completions, stopping at two.
//
// Every deduction in 1–2 holds in *all* fault sets of size <= δ consistent
// with the syndrome, and step 3 enumerates the rest, so the driver succeeds
// with fault set F exactly when F is the unique consistent candidate — the
// same contract DirectedExactSolver implements by node-level DPLL, which the
// fuzz differ exploits by demanding identical results from both.
//
// bgm_local_diagnose is the fast path the engine serves ahead of global
// solves: it decides ONE node's status from reads inside its 2-ball, or
// returns kUnknown (at which point a global solve is the only recourse).
// Its three rules are unconditionally sound — they do not assume |F| <= δ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/diagnoser.hpp"
#include "graph/graph.hpp"
#include "mm/directed_oracle.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

class DirectedDiagnoser {
 public:
  /// `delta` is the fault bound the budget deductions reason against.
  /// Reusable across oracles; throws std::invalid_argument on delta larger
  /// than the node count (no such fault set exists to reason about).
  DirectedDiagnoser(const Graph& graph, unsigned delta);

  /// Diagnose one directed syndrome. The oracle's look-up counter is reset
  /// first, and its model must be directed (throws std::invalid_argument on
  /// an MM* oracle). Never claims success with more than delta faults.
  [[nodiscard]] DiagnosisResult diagnose(const DirectedOracle& oracle);

  [[nodiscard]] unsigned delta() const noexcept { return delta_; }

 private:
  enum class State : std::uint8_t { kUnknown, kHealthy, kFaulty };

  [[nodiscard]] bool outcome(Node u, unsigned p) const noexcept {
    return outcomes_[arc_base_[u] + p] != 0;
  }
  [[nodiscard]] Node find_root(Node v) noexcept;

  bool assign(Node v, State s);  // false on conflict or budget overflow
  bool propagate();
  bool propagate_assigned(Node x);
  bool budget_fixpoint();
  void search_residue(std::size_t rep_index, std::size_t max_solutions,
                      std::vector<std::vector<Node>>& out);

  const Graph* graph_;
  unsigned delta_;
  DiagnosisModel model_ = DiagnosisModel::kPMC;

  std::vector<EdgeIndex> arc_base_;
  std::vector<char> outcomes_;

  std::vector<Node> uf_parent_;       // mutual-0 union-find
  std::vector<std::uint32_t> uf_size_;
  std::vector<Node> class_reps_;      // one representative per class

  std::vector<State> state_;
  std::vector<Node> trail_;
  std::vector<Node> queue_;
  std::size_t queue_head_ = 0;
  unsigned faulty_count_ = 0;
};

// ---------------------------------------------------------------------------
// BGM local diagnosis.
// ---------------------------------------------------------------------------

enum class LocalDiagnosisStatus : std::uint8_t { kHealthy, kFaulty, kUnknown };

[[nodiscard]] inline std::string to_string(LocalDiagnosisStatus status) {
  switch (status) {
    case LocalDiagnosisStatus::kHealthy:
      return "healthy";
    case LocalDiagnosisStatus::kFaulty:
      return "faulty";
    case LocalDiagnosisStatus::kUnknown:
      return "unknown";
  }
  return "?";
}

struct LocalDiagnosisResult {
  LocalDiagnosisStatus status = LocalDiagnosisStatus::kUnknown;
  /// Counted oracle reads consumed by this request alone (the caller's
  /// running counter is left intact — local requests are served many to an
  /// oracle). Bounded by 2·d(u) + Σ_{v ∈ N(u)} (d(v) − 1): the 2-ball arcs.
  std::uint64_t lookups = 0;
};

/// Decide node `u`'s status from its neighbourhood reads only, under BGM's
/// asymmetric invalidation. No global solve, no fault-bound assumption:
///
///   1. any incoming v -> u reads 0            =>  u healthy  (0 certifies);
///   2. else any outgoing u -> v reads 0       =>  v healthy, so v's report
///      u -> 1 (rule 1 failed) is reliable     =>  u faulty;
///   3. else any w -> v reads 0 for v ∈ N(u)   =>  v healthy, same as 2
///                                             =>  u faulty;
///   otherwise kUnknown — every arc in sight reads 1, which is consistent
///   with u healthy inside a large fault cluster AND with u faulty, so only
///   a global solve can break the tie.
///
/// All three rules hold for every fault set, of any size. Throws
/// std::invalid_argument on a non-BGM oracle (PMC's symmetric invalidation
/// voids rule 1) or an out-of-range node.
[[nodiscard]] LocalDiagnosisResult bgm_local_diagnose(
    const Graph& graph, const DirectedOracle& oracle, Node u);

}  // namespace mmdiag
