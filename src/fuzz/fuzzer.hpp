// The differential fuzzing loop: generate -> diff -> shrink -> report.
//
// Case `index` of a run is a pure function of (options.seed, index) — the
// stream never depends on what earlier cases did, so a run is replayable
// from its seed alone, a crash loses nothing, and CI failures quote an
// index that reproduces locally. Divergences are shrunk by a greedy
// delta-debugging minimizer before being reported: first the topology is
// walked down the family's catalog ladder (re-drawing the faults with the
// case's recorded injection stream), then faults are dropped one at a time
// to a local fixpoint — every intermediate candidate is re-checked through
// the full differ, so a minimized case is always itself a divergence.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/differ.hpp"
#include "fuzz/fuzz_case.hpp"

namespace mmdiag {

struct FuzzOptions {
  std::uint64_t cases = 500;
  std::uint64_t seed = 1;
  Sabotage sabotage = Sabotage::kNone;
  /// The diagnosis models cases rotate over (drawn uniformly per case);
  /// restrict to one entry to fuzz a single model's voices. Empty falls
  /// back to MM* only.
  std::vector<DiagnosisModel> models = {
      DiagnosisModel::kMMStar, DiagnosisModel::kPMC, DiagnosisModel::kBGM};
  /// Stop after this many minimized bugs (each costs a minimization run);
  /// 0 = keep going through the whole case stream.
  std::size_t max_bugs = 1;
  /// Wall-clock budget for the whole run; 0 = unlimited. Checked between
  /// cases, so the stream prefix that did run is still deterministic.
  double budget_seconds = 0;
};

struct FuzzBug {
  std::uint64_t case_index = 0;
  FuzzCase original;
  FuzzCase minimized;
  std::string config;  // first diverging configuration of the minimized case
  std::string detail;
};

struct FuzzSummary {
  std::uint64_t cases_run = 0;
  std::uint64_t beyond_delta_cases = 0;
  std::map<std::string, std::uint64_t> cases_per_family;
  std::map<std::string, std::uint64_t> cases_per_pattern;
  std::map<std::string, std::uint64_t> cases_per_model;
  std::vector<FuzzBug> bugs;
  bool budget_exhausted = false;
  [[nodiscard]] bool clean() const noexcept { return bugs.empty(); }
};

class Fuzzer {
 public:
  explicit Fuzzer(FuzzOptions options) : options_(options) {}

  /// The deterministic case stream (see header comment).
  [[nodiscard]] FuzzCase generate(std::uint64_t index);

  /// Run the loop over [0, options.cases).
  [[nodiscard]] FuzzSummary run();

  /// Shrink a diverging case (no-op on non-diverging input). Public so a
  /// replayed repro can be re-minimized after harness changes.
  [[nodiscard]] FuzzCase minimize(FuzzCase current);

  [[nodiscard]] FuzzContext& context() noexcept { return ctx_; }
  [[nodiscard]] const FuzzOptions& options() const noexcept { return options_; }

 private:
  [[nodiscard]] bool diverges(const FuzzCase& c);

  FuzzOptions options_;
  FuzzContext ctx_;
};

}  // namespace mmdiag
