#include "fuzz/fuzzer.hpp"

#include <algorithm>
#include <iterator>

#include "mm/injector.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag {
namespace {

std::string family_of(const std::string& spec) {
  const auto space = spec.find(' ');
  return space == std::string::npos ? spec : spec.substr(0, space);
}

/// Draw `count` faults on `setup` with the given pattern, deterministically
/// from `inject_seed`. The count is capped by what the pattern can supply
/// (neighbourhood size, component pool), so the caller's requested count is
/// an upper bound, not a promise.
std::vector<Node> materialize_faults(const FuzzSetup& setup,
                                     InjectionPattern pattern,
                                     std::uint64_t inject_seed,
                                     std::size_t count) {
  const Graph& g = setup.graph();
  const std::size_t n = g.num_nodes();
  Rng rng(inject_seed);
  count = std::min(count, n);
  std::vector<Node> faults;
  switch (pattern) {
    case InjectionPattern::kUniform:
      faults = inject_uniform(n, count, rng);
      break;
    case InjectionPattern::kSurround: {
      const Node centre = static_cast<Node>(rng.below(n));
      faults = inject_surround(g, centre);
      if (count < faults.size()) {
        // Uniform subset of the neighbourhood (partial Fisher-Yates).
        for (std::size_t i = 0; i < count; ++i) {
          const std::size_t j = i + rng.below(faults.size() - i);
          std::swap(faults[i], faults[j]);
        }
        faults.resize(count);
      }
      break;
    }
    case InjectionPattern::kClustered: {
      const Node centre = static_cast<Node>(rng.below(n));
      faults = inject_clustered(g, centre, count);
      break;
    }
    case InjectionPattern::kTargeted: {
      const PartitionPlan& plan = *setup.spread->partition.plan;
      const std::size_t ncomp = plan.num_components();
      const std::uint32_t a = static_cast<std::uint32_t>(rng.below(ncomp));
      const std::uint32_t b = static_cast<std::uint32_t>(rng.below(ncomp));
      const auto in_target = [&](Node v) {
        const std::uint32_t comp = plan.component_of(v);
        return comp == a || comp == b;
      };
      std::size_t pool = 0;
      for (Node v = 0; v < n; ++v) pool += in_target(v) ? 1 : 0;
      faults = inject_where(n, std::min(count, pool), in_target, rng);
      break;
    }
  }
  std::sort(faults.begin(), faults.end());
  return faults;
}

}  // namespace

FuzzCase Fuzzer::generate(std::uint64_t index) {
  Rng rng(mix64(options_.seed, index));
  const auto& catalog = fuzz_catalog();
  const FuzzFamilyLadder& family = catalog[rng.below(catalog.size())];
  const FuzzCatalogEntry& entry =
      family.sizes[rng.below(family.sizes.size())];
  const FuzzSetup& setup = ctx_.setup(entry.spec, entry.delta);

  FuzzCase c;
  c.spec = entry.spec;
  c.delta = entry.delta;
  c.pattern = kAllInjectionPatterns[rng.below(std::size(kAllInjectionPatterns))];
  c.behavior = kAllFaultyBehaviors[rng.below(std::size(kAllFaultyBehaviors))];
  // The model only selects which differ voices run; fault placement below
  // (including the kTargeted component pools) is model-independent.
  c.model = options_.models.empty()
                ? DiagnosisModel::kMMStar
                : options_.models[rng.below(options_.models.size())];
  // One case in eight leaves the promised regime: the driver must then fail
  // gracefully rather than fabricate an answer.
  const bool beyond = rng.below(8) == 0;
  const std::size_t count =
      beyond ? entry.delta + 1 + rng.below(entry.delta + 1)
             : rng.below(entry.delta + 1);
  c.inject_seed = rng();
  c.behavior_seed = rng();
  c.faults = materialize_faults(setup, c.pattern, c.inject_seed, count);
  return c;
}

bool Fuzzer::diverges(const FuzzCase& c) {
  try {
    return run_differential(ctx_, c, options_.sabotage).diverged();
  } catch (const std::exception&) {
    // A candidate the differ cannot even set up (e.g. a ladder entry whose
    // injection failed) is not a divergence.
    return false;
  }
}

FuzzCase Fuzzer::minimize(FuzzCase current) {
  if (!diverges(current)) return current;

  // Phase 1: walk down the family ladder, smallest instance first,
  // re-drawing the fault set from the case's recorded injection stream. A
  // smaller instance that still diverges is a strictly better repro.
  const std::string family = family_of(current.spec);
  const std::size_t current_nodes =
      ctx_.setup(current.spec, current.delta).graph().num_nodes();
  for (const FuzzFamilyLadder& ladder : fuzz_catalog()) {
    if (ladder.family != family) continue;
    for (const FuzzCatalogEntry& entry : ladder.sizes) {
      if (entry.spec == current.spec) continue;
      try {
        const FuzzSetup& setup = ctx_.setup(entry.spec, entry.delta);
        if (setup.graph().num_nodes() >= current_nodes) continue;
        FuzzCase candidate = current;
        candidate.spec = entry.spec;
        candidate.delta = entry.delta;
        candidate.faults =
            materialize_faults(setup, candidate.pattern, candidate.inject_seed,
                               current.faults.size());
        if (diverges(candidate)) {
          current = std::move(candidate);
          break;
        }
      } catch (const std::exception&) {
        continue;  // entry cannot host this case; keep walking
      }
    }
    break;
  }

  // Phase 2: greedily drop faults to a local fixpoint. Every accepted
  // candidate re-ran the full differ, so the invariant "current diverges"
  // holds throughout.
  bool improved = true;
  while (improved) {
    improved = false;
    for (std::size_t i = 0; i < current.faults.size(); ++i) {
      FuzzCase candidate = current;
      candidate.faults.erase(candidate.faults.begin() +
                             static_cast<std::ptrdiff_t>(i));
      if (diverges(candidate)) {
        current = std::move(candidate);
        improved = true;
        break;
      }
    }
  }
  return current;
}

FuzzSummary Fuzzer::run() {
  FuzzSummary summary;
  Timer timer;
  for (std::uint64_t i = 0; i < options_.cases; ++i) {
    if (options_.budget_seconds > 0 &&
        timer.seconds() > options_.budget_seconds) {
      summary.budget_exhausted = true;
      break;
    }
    const FuzzCase c = generate(i);
    ++summary.cases_run;
    ++summary.cases_per_family[family_of(c.spec)];
    ++summary.cases_per_pattern[to_string(c.pattern)];
    ++summary.cases_per_model[diagnosis_model_to_string(c.model)];
    const DiffReport report = run_differential(ctx_, c, options_.sabotage);
    summary.beyond_delta_cases += report.beyond_delta ? 1 : 0;
    if (!report.diverged()) continue;

    FuzzBug bug;
    bug.case_index = i;
    bug.original = c;
    bug.minimized = minimize(c);
    const DiffReport minimized_report =
        run_differential(ctx_, bug.minimized, options_.sabotage);
    const Divergence& first = minimized_report.diverged()
                                  ? minimized_report.divergences.front()
                                  : report.divergences.front();
    bug.config = first.config;
    bug.detail = first.detail;
    // Provenance for the repro file: which probe rule the divergence was
    // observed under (the replay re-runs every configuration regardless).
    bug.minimized.rule = first.rule;
    bug.original.rule = report.divergences.front().rule;
    summary.bugs.push_back(std::move(bug));
    if (options_.max_bugs != 0 && summary.bugs.size() >= options_.max_bugs) {
      break;
    }
  }
  return summary;
}

}  // namespace mmdiag
