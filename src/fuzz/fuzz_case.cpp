#include "fuzz/fuzz_case.hpp"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/parse.hpp"

namespace mmdiag {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("repro file, line " + std::to_string(line) + ": " +
                           what);
}

/// Reads the next non-comment, non-empty line; false at EOF.
bool next_record(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

/// "key value" -> value, or fail with the expected shape.
std::string expect_field(std::istream& is, const std::string& key,
                         std::size_t& lineno) {
  std::string line;
  if (!next_record(is, line, lineno) || line.rfind(key + " ", 0) != 0 ||
      line.size() <= key.size() + 1) {
    fail(lineno, "expected '" + key + " <value>'");
  }
  return line.substr(key.size() + 1);
}

std::uint64_t parse_u64(const std::string& token, std::uint64_t max_value,
                        std::size_t lineno, const std::string& what) {
  const auto value = parse_unsigned(token, max_value);
  if (!value) fail(lineno, "bad " + what + " '" + token + "'");
  return *value;
}

}  // namespace

std::string to_string(InjectionPattern pattern) {
  switch (pattern) {
    case InjectionPattern::kUniform:
      return "uniform";
    case InjectionPattern::kSurround:
      return "surround";
    case InjectionPattern::kClustered:
      return "clustered";
    case InjectionPattern::kTargeted:
      return "targeted";
  }
  return "?";
}

InjectionPattern injection_pattern_from_string(const std::string& name) {
  for (const InjectionPattern p : kAllInjectionPatterns) {
    if (name == to_string(p)) return p;
  }
  throw std::invalid_argument("unknown injection pattern '" + name + "'");
}

const std::vector<FuzzFamilyLadder>& fuzz_catalog() {
  // Verified by the fuzz_test catalog check: every entry certifies under
  // both kSpread and kLeastFirst at the stated delta. Entries below the
  // family's published first supported size (e.g. Q5 at delta 3 instead of
  // Q7 at 7) run the driver at a reduced bound, which Theorem 1 permits
  // whenever kappa >= delta — that is what gives the minimizer something
  // smaller to shrink onto.
  static const std::vector<FuzzFamilyLadder> catalog = {
      {"hypercube", {{"hypercube 5", 3}, {"hypercube 7", 7}}},
      {"crossed_cube", {{"crossed_cube 5", 3}, {"crossed_cube 7", 7}}},
      {"twisted_cube", {{"twisted_cube 7", 7}}},
      {"twisted_n_cube", {{"twisted_n_cube 7", 7}}},
      {"kary_ncube", {{"kary_ncube 2 6", 3}, {"kary_ncube 2 7", 4}}},
      {"star", {{"star 4", 3}, {"star 5", 4}}},
      {"nk_star", {{"nk_star 5 3", 4}, {"nk_star 6 3", 5}}},
      {"pancake", {{"pancake 4", 3}, {"pancake 5", 4}}},
      {"arrangement", {{"arrangement 5 3", 4}, {"arrangement 6 3", 5}}},
  };
  return catalog;
}

void write_repro(std::ostream& os, const FuzzCase& c) {
  os << "mmdiag-repro v1\n";
  os << "spec " << c.spec << "\n";
  os << "delta " << c.delta << "\n";
  os << "pattern " << to_string(c.pattern) << "\n";
  os << "inject-seed " << c.inject_seed << "\n";
  os << "behavior " << to_string(c.behavior) << "\n";
  os << "behavior-seed " << c.behavior_seed << "\n";
  os << "rule " << parent_rule_to_string(c.rule) << "\n";
  os << "model " << diagnosis_model_to_string(c.model) << "\n";
  os << "faults";
  for (const Node v : c.faults) os << ' ' << v;
  os << "\nend\n";
}

FuzzCase read_repro(std::istream& is) {
  std::size_t lineno = 0;
  std::string line;
  if (!next_record(is, line, lineno) || line != "mmdiag-repro v1") {
    fail(lineno, "expected header 'mmdiag-repro v1'");
  }
  FuzzCase c;
  c.spec = expect_field(is, "spec", lineno);
  const std::string delta_token = expect_field(is, "delta", lineno);
  c.delta = static_cast<unsigned>(parse_u64(
      delta_token, std::numeric_limits<unsigned>::max(), lineno, "delta"));
  if (c.delta == 0) fail(lineno, "delta must be positive");
  try {
    c.pattern =
        injection_pattern_from_string(expect_field(is, "pattern", lineno));
  } catch (const std::invalid_argument& e) {
    fail(lineno, e.what());
  }
  const std::string inject_token = expect_field(is, "inject-seed", lineno);
  c.inject_seed = parse_u64(
      inject_token, std::numeric_limits<std::uint64_t>::max(), lineno, "seed");
  try {
    c.behavior = behavior_from_string(expect_field(is, "behavior", lineno));
  } catch (const std::invalid_argument& e) {
    fail(lineno, e.what());
  }
  const std::string behavior_token = expect_field(is, "behavior-seed", lineno);
  c.behavior_seed = parse_u64(
      behavior_token, std::numeric_limits<std::uint64_t>::max(), lineno, "seed");

  if (!next_record(is, line, lineno)) {
    fail(lineno, "expected 'rule <name>' or 'faults [id...]'");
  }
  if (line.rfind("rule ", 0) == 0) {
    try {
      c.rule = parent_rule_from_string(line.substr(5));
    } catch (const std::invalid_argument& e) {
      fail(lineno, e.what());
    }
    if (!next_record(is, line, lineno)) fail(lineno, "expected 'faults [id...]'");
  }
  if (line.rfind("model ", 0) == 0) {
    try {
      c.model = diagnosis_model_from_string(line.substr(6));
    } catch (const std::invalid_argument& e) {
      fail(lineno, e.what());
    }
    if (!next_record(is, line, lineno)) fail(lineno, "expected 'faults [id...]'");
  }
  if (line != "faults" && line.rfind("faults ", 0) != 0) {
    fail(lineno, "expected 'faults [id...]'");
  }
  std::istringstream ls(line.substr(6));
  std::string token;
  while (ls >> token) {
    c.faults.push_back(static_cast<Node>(
        parse_u64(token, std::numeric_limits<Node>::max() - 1, lineno,
                  "fault id")));
  }
  std::sort(c.faults.begin(), c.faults.end());
  if (std::adjacent_find(c.faults.begin(), c.faults.end()) != c.faults.end()) {
    fail(lineno, "duplicate fault id");
  }
  if (!next_record(is, line, lineno) || line != "end") {
    fail(lineno, "expected 'end'");
  }
  return c;
}

}  // namespace mmdiag
