// Differential-fuzz cases and their replayable serialisation.
//
// A FuzzCase pins everything that determines a diagnosis instance: the
// topology spec, the fault bound the driver runs at, the concrete fault
// list, and the faulty-tester behaviour plus its seed. The injection
// pattern and injection seed are provenance: they record *how* the faults
// were drawn (and let the minimizer re-draw them on a smaller instance),
// but a repro file replays from the explicit fault list alone, so a
// checked-in repro keeps reproducing even if case generation changes.
//
// The catalog lists, per topology family, the instances the fuzzer draws
// from — smallest first, so the minimizer can walk down the ladder. Every
// entry is small enough for ExactSolver to answer in well under a
// millisecond and certifies under BOTH probe parent rules (kSpread and
// kLeastFirst), which the differ exercises; fuzz_test asserts both
// properties so the catalog cannot rot silently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/set_builder.hpp"
#include "mm/behavior.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class InjectionPattern : std::uint8_t {
  kUniform,    // faults spread independently over V
  kSurround,   // a subset of one node's neighbourhood
  kClustered,  // a BFS ball around a centre
  kTargeted,   // faults confined to one or two partition components
};

[[nodiscard]] std::string to_string(InjectionPattern pattern);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] InjectionPattern injection_pattern_from_string(
    const std::string& name);

inline constexpr InjectionPattern kAllInjectionPatterns[] = {
    InjectionPattern::kUniform, InjectionPattern::kSurround,
    InjectionPattern::kClustered, InjectionPattern::kTargeted};

struct FuzzCatalogEntry {
  std::string spec;    // registry spec, e.g. "hypercube 5"
  unsigned delta;      // fault bound the fuzzer certifies and runs at
};

struct FuzzFamilyLadder {
  std::string family;                    // registry family key
  std::vector<FuzzCatalogEntry> sizes;   // ascending node count
};

/// The instances the fuzzer draws cases from (see header comment).
[[nodiscard]] const std::vector<FuzzFamilyLadder>& fuzz_catalog();

struct FuzzCase {
  std::string spec;
  unsigned delta = 0;
  InjectionPattern pattern = InjectionPattern::kUniform;
  std::uint64_t inject_seed = 0;   // provenance: rng stream the faults came from
  FaultyBehavior behavior = FaultyBehavior::kRandom;
  std::uint64_t behavior_seed = 0; // seeds the faulty testers' answers
  /// Provenance: the probe parent rule of the first diverging configuration
  /// (the differ always replays every configuration regardless).
  ParentRule rule = ParentRule::kSpread;
  /// Which test semantics the case's syndromes are generated under (and so
  /// which voices the differ races): MM* comparator matrices or a directed
  /// per-arc model.
  DiagnosisModel model = DiagnosisModel::kMMStar;
  std::vector<Node> faults;        // sorted ascending; the replayed ground truth
};

// Repro files (line oriented, '#' comments allowed):
//
//   mmdiag-repro v1
//   spec hypercube 5
//   delta 3
//   pattern uniform
//   inject-seed 17
//   behavior anti-diagnostic
//   behavior-seed 99
//   rule spread
//   model pmc
//   faults 3 17 21
//   end
//
// `faults` with no ids pins the fault-free case. The `rule` line (parent
// rule names via parent_rule_to_string) is optional on read — repro files
// written before it existed default to spread — and so is the `model` line
// (diagnosis_model_to_string names), defaulting to mm-star; both stay
// inside the v1 header because old readers never tolerated unknown fields
// and old files must keep replaying.
void write_repro(std::ostream& os, const FuzzCase& c);

/// Throws std::runtime_error with a line-numbered message on malformed
/// input. Fault ids are validated against the spec's node count by the
/// differ (which is what materialises the graph), not here.
[[nodiscard]] FuzzCase read_repro(std::istream& is);

}  // namespace mmdiag
