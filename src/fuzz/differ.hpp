// Differential checking of the §5 driver against the exact solver.
//
// One FuzzCase is checked end to end: the syndrome implied by (faults,
// behaviour, seed) is served lazily, ExactSolver::diagnose() provides the
// ground truth, and every driver configuration the library ships — both
// probe parent rules, stop_probe_on_certify on and off, all three dispatch
// paths of the hot path (virtual reference, statically-dispatched, and the
// preserved baseline implementation, which must be bit-identical down to
// the look-up counts), and BatchDiagnoser fanning the same case over >1
// worker lane — must agree with it exactly:
//
//   |F| <= delta  — every configuration must succeed and return F (the
//                   paper's worst-case guarantee, which calibration plus
//                   Theorem 1 promises for *all* such fault sets);
//   |F| >  delta  — outside the promise a configuration may fail, but it
//                   must fail *gracefully*: no exception and never a claim
//                   of more than delta faults. A *consistent-looking wrong*
//                   success is unavoidable for any algorithm that reads a
//                   sublinear fraction of the syndrome (a falsely-certified
//                   component is indistinguishable from a healthy one), so
//                   the "never mis-report success" invariant is checked at
//                   the layer that owns it: diagnose_and_verify, which must
//                   downgrade every inconsistent success to failure;
//   batch lanes   — bit-identical (faults, lookups, probes, component) to
//                   the sequential run of the same options.
//
// Sabotage modes deliberately break the driver under test so the fuzzer's
// find -> minimize -> repro pipeline can itself be tested (and so a repro
// of the historical ParentRule-mismatch bug class stays reproducible).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/certified_partition.hpp"
#include "engine/engine.hpp"
#include "fuzz/fuzz_case.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

/// Per-(spec, delta) setup shared by every case on that instance: two
/// calibration handles from the context's DiagnosisEngine, one per probe
/// parent rule the differ exercises. Each bundle owns its own graph build;
/// both builds are the same deterministic adjacency, so faults and oracles
/// drawn over graph() address either one.
struct FuzzSetup {
  std::shared_ptr<const Calibration> spread;  // ParentRule::kSpread
  /// Calibrated under kLeastFirst; null when that rule cannot certify the
  /// instance (the differ then skips the least-first configuration).
  std::shared_ptr<const Calibration> least_first;

  [[nodiscard]] const Graph& graph() const noexcept { return spread->graph; }
};

class FuzzContext {
 public:
  FuzzContext();

  /// Cached lookup; calibrates through the engine on first use. Throws
  /// DiagnosisUnsupportedError when kSpread cannot certify `delta` and
  /// std::invalid_argument on unknown specs.
  const FuzzSetup& setup(const std::string& spec, unsigned delta);

  [[nodiscard]] DiagnosisEngine& engine() noexcept { return engine_; }

 private:
  static EngineOptions engine_options();

  /// The calibration owner. Sized so a whole fuzz run (every catalog entry
  /// × both rules) stays resident — the setup map below then only pins
  /// cheap shared_ptr pairs and the per-(spec, delta) "least-first
  /// uncertifiable" answer.
  DiagnosisEngine engine_;
  std::map<std::pair<std::string, unsigned>, FuzzSetup> cache_;
};

enum class Sabotage : std::uint8_t {
  kNone,
  /// Adopt the kSpread-calibrated partition with options.rule=kLeastFirst —
  /// the exact misuse the partition-adopting Diagnoser ctor now rejects.
  kRuleMismatch,
  /// Drop the last fault from the sequential driver's answer before
  /// comparing — a stand-in for any "driver returns a wrong set" bug.
  kDropFault,
};

[[nodiscard]] std::string to_string(Sabotage s);
[[nodiscard]] Sabotage sabotage_from_string(const std::string& name);

struct Divergence {
  std::string config;  // which configuration disagreed (or "exact")
  std::string detail;
  /// Probe parent rule the diverging configuration ran under (kSpread for
  /// the exact solver and rule-free checks); recorded as provenance in the
  /// repro file.
  ParentRule rule = ParentRule::kSpread;
};

struct DiffReport {
  bool beyond_delta = false;  // |faults| > delta: graceful-failure regime
  std::vector<Divergence> divergences;
  [[nodiscard]] bool diverged() const noexcept { return !divergences.empty(); }
};

/// Run one case through every configuration. Exceptions escaping a driver
/// configuration are recorded as divergences, never propagated; exceptions
/// from setup (unknown spec, uncertifiable delta, fault id out of range)
/// propagate, since the case itself is malformed.
[[nodiscard]] DiffReport run_differential(FuzzContext& ctx, const FuzzCase& c,
                                          Sabotage sabotage = Sabotage::kNone);

}  // namespace mmdiag
