#include "fuzz/differ.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>

#include "baselines/directed_exact.hpp"
#include "baselines/exact_solver.hpp"
#include "churn/churn_stream.hpp"
#include "churn/harness.hpp"
#include "core/batch_diagnoser.hpp"
#include "core/diagnoser.hpp"
#include "core/directed_diagnoser.hpp"
#include "core/verifier.hpp"
#include "graph/builder.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/fault_set.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"

namespace mmdiag {
namespace {

std::string join_nodes(const std::vector<Node>& nodes) {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) os << ' ';
    os << nodes[i];
  }
  os << '}';
  return os.str();
}

/// Checks one driver result against the regime the case is in. `truth` is
/// null in the beyond-delta regime (there is no promised answer there).
void check_result(DiffReport& report, const std::string& config,
                  const DiagnosisResult& result,
                  const std::vector<Node>* truth, const FuzzCase& c) {
  if (truth != nullptr) {
    if (!result.success) {
      report.divergences.push_back(
          {config, "driver failed inside the promise (|F| = " +
                       std::to_string(truth->size()) + " <= delta = " +
                       std::to_string(c.delta) + "): " +
                       result.failure_reason});
      return;
    }
    if (result.faults != *truth) {
      report.divergences.push_back(
          {config, "driver returned " + join_nodes(result.faults) +
                       " but the fault set is " + join_nodes(*truth)});
    }
    return;
  }
  // Beyond delta: failure is the expected graceful outcome. A success claim
  // may be wrong out here (no sublinear-lookup algorithm can avoid that),
  // but the boundary guard must still hold — claiming more than delta
  // faults would be a driver bug in any regime.
  if (result.success && result.faults.size() > c.delta) {
    report.divergences.push_back(
        {config, "beyond-delta success claims " +
                     std::to_string(result.faults.size()) +
                     " faults, more than delta = " + std::to_string(c.delta)});
  }
}

/// Runs one sequential configuration, converting any escape into a
/// divergence. Returns the result when the driver ran to completion.
std::optional<DiagnosisResult> run_config(DiffReport& report,
                                          const std::string& config,
                                          const Graph& graph,
                                          const CertifiedPartition& partition,
                                          const DiagnoserOptions& options,
                                          const FuzzCase& c,
                                          const FaultSet& faults) {
  try {
    Diagnoser diagnoser(graph, partition, options);
    const LazyOracle oracle(graph, faults, c.behavior, c.behavior_seed);
    // Deliberately the type-erased path: the differ's reference runs with
    // virtual dispatch, and the dispatch check below races the baseline
    // and statically-dispatched paths against it.
    return diagnoser.diagnose(static_cast<const SyndromeOracle&>(oracle));
  } catch (const std::exception& e) {
    report.divergences.push_back(
        {config, std::string("driver threw: ") + e.what()});
    return std::nullopt;
  }
}

/// Compares every accounted field of two results; any mismatch between
/// dispatch paths of the same configuration is a hot-path bug by
/// definition (same algorithm, same oracle, same partition).
void check_dispatch_identical(DiffReport& report, const std::string& config,
                              const DiagnosisResult& reference,
                              const DiagnosisResult& other) {
  // failure_reason is part of the comparison: on a beyond-delta boundary
  // failure the fault list is cleared and the boundary size survives only
  // in the message, so dropping it would blind this guard to a phase-3
  // divergence between dispatch paths.
  if (other.success != reference.success ||
      other.faults != reference.faults ||
      other.failure_reason != reference.failure_reason ||
      other.lookups != reference.lookups ||
      other.probes != reference.probes ||
      other.certified_component != reference.certified_component ||
      other.final_members != reference.final_members ||
      other.final_rounds != reference.final_rounds) {
    report.divergences.push_back(
        {config, "not bit-identical to the virtual-dispatch reference "
                 "(faults " +
                     join_nodes(other.faults) + " vs " +
                     join_nodes(reference.faults) + ", lookups " +
                     std::to_string(other.lookups) + " vs " +
                     std::to_string(reference.lookups) + ")"});
  }
}

/// Directed (PMC/BGM) counterpart of run_differential. The voices:
///
///   directed-exact  — DirectedExactSolver vs the injected truth. Within the
///                     promise the injected set is always consistent, so "no
///                     solution" is a harness bug; a success must return
///                     exactly the injected set (the unique solution must be
///                     it). An ambiguous verdict is accepted — directed
///                     diagnosability at the catalog bounds is not
///                     re-derived here — and the driver must then agree.
///   directed-driver — DirectedDiagnoser vs the exact solver: same success
///                     flag, same faults, same failure reason, in BOTH
///                     regimes (the driver's deductions are sound for every
///                     <= delta candidate and its residue search is
///                     exhaustive, so any disagreement is a bug).
///   directed-table  — the driver over a materialised DirectedSyndrome
///                     table must be bit-identical (including look-ups) to
///                     the lazy-oracle run.
///   bgm-local       — every node's local diagnosis: definite answers must
///                     match the injected truth in BOTH regimes (rules 1-3
///                     hold for fault sets of any size), and per-request
///                     look-ups must stay within the node's 2-ball bound.
DiffReport run_differential_directed(FuzzContext& ctx, const FuzzCase& c,
                                     Sabotage sabotage) {
  // Model-tagged calibration: no Set_Builder certification, just the graph
  // and the bound, cached under the "|model=" key.
  const std::shared_ptr<const Calibration> cal = ctx.engine().calibration(
      c.spec, c.delta, ParentRule::kSpread, true, c.model);
  const Graph& graph = cal->graph;
  const std::size_t n = graph.num_nodes();
  for (const Node v : c.faults) {
    if (v >= n) {
      throw std::invalid_argument("fuzz case: fault id " + std::to_string(v) +
                                  " out of range for " + c.spec);
    }
  }
  const FaultSet faults(n, c.faults);

  DiffReport report;
  report.beyond_delta = faults.size() > c.delta;
  const std::vector<Node>* truth =
      report.beyond_delta ? nullptr : &faults.nodes();

  const DirectedLazyOracle lazy(graph, faults, c.model, c.behavior,
                                c.behavior_seed);

  std::optional<DiagnosisResult> exact;
  try {
    DirectedExactSolver solver(graph, lazy, c.delta);
    exact = solver.diagnose();
    if (truth != nullptr) {
      if (exact->success && exact->faults != *truth) {
        report.divergences.push_back(
            {"directed-exact",
             "exact solver returned " + join_nodes(exact->faults) +
                 " for fault set " + join_nodes(*truth)});
      } else if (!exact->success &&
                 exact->failure_reason.rfind("ambiguous", 0) != 0) {
        // The injected set is consistent by construction, so only
        // ambiguity can stop the exact solver inside the promise.
        report.divergences.push_back(
            {"directed-exact",
             "exact solver claims no consistent candidate, but the injected "
             "set " +
                 join_nodes(*truth) + " is one: " + exact->failure_reason});
      }
    }
  } catch (const std::exception& e) {
    report.divergences.push_back(
        {"directed-exact", std::string("exact solver threw: ") + e.what()});
  }

  std::optional<DiagnosisResult> driver;
  try {
    DirectedDiagnoser diagnoser(graph, c.delta);
    driver = diagnoser.diagnose(lazy);
    if (driver->success && driver->faults.size() > c.delta) {
      report.divergences.push_back(
          {"directed-driver",
           "success claims " + std::to_string(driver->faults.size()) +
               " faults, more than delta = " + std::to_string(c.delta)});
    }
    if (exact && (driver->success != exact->success ||
                  driver->faults != exact->faults ||
                  driver->failure_reason != exact->failure_reason)) {
      report.divergences.push_back(
          {"directed-driver",
           "driver disagrees with the exact solver (driver " +
               (driver->success ? join_nodes(driver->faults)
                                : "failure: " + driver->failure_reason) +
               " vs exact " +
               (exact->success ? join_nodes(exact->faults)
                               : "failure: " + exact->failure_reason) +
               ")"});
    }
  } catch (const std::exception& e) {
    report.divergences.push_back(
        {"directed-driver", std::string("driver threw: ") + e.what()});
  }

  // Table-oracle bit-identity: same deductions, same order, same counts.
  if (driver) {
    try {
      const DirectedSyndrome syndrome = generate_directed_syndrome(
          graph, faults, c.model, c.behavior, c.behavior_seed);
      const DirectedTableOracle table(graph, syndrome, c.model);
      DirectedDiagnoser diagnoser(graph, c.delta);
      const DiagnosisResult r = diagnoser.diagnose(table);
      if (r.success != driver->success || r.faults != driver->faults ||
          r.failure_reason != driver->failure_reason ||
          r.lookups != driver->lookups) {
        report.divergences.push_back(
            {"directed-table",
             "table-oracle run not bit-identical to the lazy run (faults " +
                 join_nodes(r.faults) + " vs " + join_nodes(driver->faults) +
                 ", lookups " + std::to_string(r.lookups) + " vs " +
                 std::to_string(driver->lookups) + ")"});
      }
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"directed-table", std::string("driver threw: ") + e.what()});
    }
  }

  // BGM local diagnosis: definite answers are promises with no fault-bound
  // caveat, so they are checked against the injected truth in both regimes.
  if (c.model == DiagnosisModel::kBGM) {
    try {
      for (Node u = 0; u < n; ++u) {
        const LocalDiagnosisResult local = bgm_local_diagnose(graph, lazy, u);
        const bool injected_faulty = faults.is_faulty(u);
        if ((local.status == LocalDiagnosisStatus::kHealthy &&
             injected_faulty) ||
            (local.status == LocalDiagnosisStatus::kFaulty &&
             !injected_faulty)) {
          report.divergences.push_back(
              {"bgm-local", "node " + std::to_string(u) + " reported " +
                                to_string(local.status) + " but is " +
                                (injected_faulty ? "faulty" : "healthy")});
          break;
        }
        std::uint64_t bound = 2 * std::uint64_t{graph.degree(u)};
        for (const Node v : graph.neighbors(u)) {
          bound += graph.degree(v) - 1;
        }
        if (local.lookups > bound) {
          report.divergences.push_back(
              {"bgm-local", "node " + std::to_string(u) + " consumed " +
                                std::to_string(local.lookups) +
                                " look-ups, above its 2-ball bound " +
                                std::to_string(bound)});
          break;
        }
      }
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"bgm-local", std::string("local diagnosis threw: ") + e.what()});
    }
  }

  // Deliberate breakage, for testing the fuzzer itself (the directed
  // analogues of the MM* sabotage modes: a guard-rejected misuse and a
  // tampered answer).
  if (sabotage == Sabotage::kRuleMismatch) {
    try {
      const Graph tiny = build_graph_from_edges(2, {{0, 1}});
      const FaultSet none(2, {});
      const DirectedLazyOracle mismatched(tiny, none, c.model, c.behavior,
                                          c.behavior_seed);
      DirectedDiagnoser diagnoser(graph, c.delta);
      const DiagnosisResult r = diagnoser.diagnose(mismatched);
      check_result(report, "sabotage-rule-mismatch", r, truth, c);
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"sabotage-rule-mismatch", std::string("driver threw: ") + e.what()});
    }
  } else if (sabotage == Sabotage::kDropFault && driver) {
    DiagnosisResult tampered = *driver;
    if (tampered.success && !tampered.faults.empty()) {
      tampered.faults.pop_back();
      check_result(report, "sabotage-drop-fault", tampered, truth, c);
    }
  }

  return report;
}

}  // namespace

EngineOptions FuzzContext::engine_options() {
  EngineOptions options;
  // Every catalog entry under both rules, with headroom for off-catalog
  // replays; fuzzing is sequential, so one serve lane suffices.
  options.cache_capacity = 64;
  options.threads = 1;
  return options;
}

FuzzContext::FuzzContext() : engine_(engine_options()) {}

const FuzzSetup& FuzzContext::setup(const std::string& spec, unsigned delta) {
  const auto key = std::make_pair(spec, delta);
  const auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  FuzzSetup s;
  s.spread = engine_.calibration(spec, delta, ParentRule::kSpread);
  try {
    s.least_first = engine_.calibration(spec, delta, ParentRule::kLeastFirst);
  } catch (const DiagnosisUnsupportedError&) {
    // kSpread certifies strictly more instances; run without this config.
  }
  return cache_.emplace(key, std::move(s)).first->second;
}

std::string to_string(Sabotage s) {
  switch (s) {
    case Sabotage::kNone:
      return "none";
    case Sabotage::kRuleMismatch:
      return "rule-mismatch";
    case Sabotage::kDropFault:
      return "drop-fault";
  }
  return "?";
}

Sabotage sabotage_from_string(const std::string& name) {
  for (const Sabotage s :
       {Sabotage::kNone, Sabotage::kRuleMismatch, Sabotage::kDropFault}) {
    if (name == to_string(s)) return s;
  }
  throw std::invalid_argument("unknown sabotage mode '" + name + "'");
}

DiffReport run_differential(FuzzContext& ctx, const FuzzCase& c,
                            Sabotage sabotage) {
  if (is_directed_model(c.model)) {
    return run_differential_directed(ctx, c, sabotage);
  }
  const FuzzSetup& s = ctx.setup(c.spec, c.delta);
  const std::size_t n = s.graph().num_nodes();
  for (const Node v : c.faults) {
    if (v >= n) {
      throw std::invalid_argument("fuzz case: fault id " + std::to_string(v) +
                                  " out of range for " + c.spec);
    }
  }
  const FaultSet faults(n, c.faults);

  DiffReport report;
  report.beyond_delta = faults.size() > c.delta;
  const std::vector<Node>* truth =
      report.beyond_delta ? nullptr : &faults.nodes();

  // Ground truth: within the promise the syndrome must determine F
  // uniquely, and the exact solver must find exactly it. A divergence here
  // is a harness or diagnosability bug rather than a driver bug — worth
  // surfacing just as loudly.
  if (truth != nullptr) {
    const LazyOracle oracle(s.graph(), faults, c.behavior, c.behavior_seed);
    try {
      ExactSolver solver(s.graph(), oracle, c.delta);
      const DiagnosisResult exact = solver.diagnose();
      if (!exact.success || exact.faults != *truth) {
        report.divergences.push_back(
            {"exact",
             exact.success
                 ? "exact solver returned " + join_nodes(exact.faults) +
                       " for fault set " + join_nodes(*truth)
                 : "exact solver found no unique solution: " +
                       exact.failure_reason});
      }
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"exact", std::string("exact solver threw: ") + e.what()});
    }
  }

  // Sequential configurations.
  DiagnoserOptions spread_options;  // rule = kSpread, stop = false
  const std::optional<DiagnosisResult> reference = run_config(
      report, "seq-spread", s.graph(), s.spread->partition, spread_options, c, faults);
  if (reference) {
    check_result(report, "seq-spread", *reference, truth, c);
  }

  // Dispatch equivalence: the statically-dispatched hot path (concrete
  // LazyOracle overload) and the preserved baseline implementation must be
  // bit-identical — faults, look-ups, probes, component, rounds — to the
  // virtual reference above. This is the fuzz-side guard on the hot-path
  // restructuring; tests/dispatch_equiv_test.cpp is the deterministic one.
  if (reference) {
    try {
      Diagnoser diagnoser(s.graph(), s.spread->partition, spread_options);
      const LazyOracle oracle(s.graph(), faults, c.behavior, c.behavior_seed);
      check_dispatch_identical(report, "seq-spread-static", *reference,
                               diagnoser.diagnose(oracle));
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"seq-spread-static", std::string("driver threw: ") + e.what()});
    }
    try {
      Diagnoser diagnoser(s.graph(), s.spread->partition, spread_options);
      const LazyOracle oracle(s.graph(), faults, c.behavior, c.behavior_seed);
      check_dispatch_identical(report, "seq-spread-baseline", *reference,
                               diagnoser.diagnose_baseline(oracle));
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"seq-spread-baseline", std::string("driver threw: ") + e.what()});
    }
    // Implicit-graph voice: the same case through closed-form adjacency.
    // The implicit view enumerates neighbours in CSR order, so faults,
    // look-ups and probes must all match the materialised reference bit
    // for bit — any drift is an adjacency-formula bug.
    if (s.spread->topology->info().degree <= ImplicitGraph::kMaxDegree) {
      try {
        const ImplicitGraph iview(*s.spread->topology);
        Diagnoser diagnoser(iview, s.spread->partition, spread_options);
        const ImplicitLazyOracle oracle(iview, faults, c.behavior,
                                        c.behavior_seed);
        check_dispatch_identical(report, "seq-spread-implicit", *reference,
                                 diagnoser.diagnose(oracle));
      } catch (const std::exception& e) {
        report.divergences.push_back(
            {"seq-spread-implicit", std::string("driver threw: ") + e.what()});
      }
    }
  }

  // The verifying wrapper owns the beyond-delta safety net: it must return
  // F inside the promise exactly like the raw driver, and outside it every
  // success it lets through must be consistent with the full syndrome.
  try {
    Diagnoser diagnoser(s.graph(), s.spread->partition, spread_options);
    const LazyOracle oracle(s.graph(), faults, c.behavior, c.behavior_seed);
    const DiagnosisResult verified = diagnose_and_verify(diagnoser, oracle);
    if (truth != nullptr) {
      check_result(report, "seq-spread-verified", verified, truth, c);
    } else if (verified.success) {
      const FaultSet claimed(s.graph().num_nodes(), verified.faults);
      const LazyOracle fresh(s.graph(), faults, c.behavior, c.behavior_seed);
      if (verified.faults.size() > c.delta ||
          !syndrome_consistent(s.graph(), fresh, claimed)) {
        report.divergences.push_back(
            {"seq-spread-verified",
             "verified driver let an inconsistent beyond-delta success "
             "through: " +
                 join_nodes(verified.faults)});
      }
    }
  } catch (const std::exception& e) {
    report.divergences.push_back(
        {"seq-spread-verified", std::string("driver threw: ") + e.what()});
  }

  DiagnoserOptions eager = spread_options;
  eager.stop_probe_on_certify = true;
  if (const auto r = run_config(report, "seq-spread-stopcert", s.graph(),
                                s.spread->partition, eager, c, faults)) {
    check_result(report, "seq-spread-stopcert", *r, truth, c);
  }

  if (s.least_first) {
    DiagnoserOptions least;
    least.rule = ParentRule::kLeastFirst;
    const std::string config =
        "seq-" + parent_rule_to_string(ParentRule::kLeastFirst);
    const std::size_t before = report.divergences.size();
    if (const auto r = run_config(report, config, s.graph(), s.least_first->partition,
                                  least, c, faults)) {
      check_result(report, config, *r, truth, c);
    }
    for (std::size_t i = before; i < report.divergences.size(); ++i) {
      report.divergences[i].rule = ParentRule::kLeastFirst;
    }
  }

  // Batch: the same case over 3 worker lanes must be bit-identical to the
  // sequential reference in every accounted dimension.
  if (reference) {
    try {
      BatchOptions batch_options;
      batch_options.threads = 3;
      batch_options.diagnoser = spread_options;
      BatchDiagnoser engine(s.graph(), s.spread->partition, batch_options);
      const LazyOracle o0(s.graph(), faults, c.behavior, c.behavior_seed);
      const LazyOracle o1(s.graph(), faults, c.behavior, c.behavior_seed);
      const LazyOracle o2(s.graph(), faults, c.behavior, c.behavior_seed);
      const BatchResult batch = engine.diagnose_all({&o0, &o1, &o2});
      for (std::size_t i = 0; i < batch.results.size(); ++i) {
        const DiagnosisResult& r = batch.results[i];
        if (r.success != reference->success || r.faults != reference->faults ||
            r.lookups != reference->lookups || r.probes != reference->probes ||
            r.certified_component != reference->certified_component) {
          report.divergences.push_back(
              {"batch-3lane",
               "lane result " + std::to_string(i) +
                   " not bit-identical to the sequential run (faults " +
                   join_nodes(r.faults) + " vs " +
                   join_nodes(reference->faults) + ")"});
          break;
        }
      }
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"batch-3lane", std::string("batch engine threw: ") + e.what()});
    }
  }

  // Bitsliced cohort (fourth dispatch voice): the case rides a 4-lane
  // cohort interleaved with fault-free lanes, so lane admission masks
  // genuinely diverge mid-run and the peel path is exercised. Every lane
  // must be bit-identical to a scalar solve of its own syndrome: the case
  // lanes against the sequential reference, the fault-free lanes against a
  // scalar solve of the fault-free table.
  if (reference) {
    try {
      Diagnoser diagnoser(s.graph(), s.spread->partition, spread_options);
      const Syndrome case_syndrome =
          generate_syndrome(s.graph(), faults, c.behavior, c.behavior_seed);
      const FaultSet no_faults(s.graph().num_nodes(), {});
      const Syndrome healthy_syndrome =
          generate_syndrome(s.graph(), no_faults, c.behavior, c.behavior_seed);
      const TableOracle case0(s.graph(), case_syndrome);
      const TableOracle case1(s.graph(), case_syndrome);
      const TableOracle healthy0(s.graph(), healthy_syndrome);
      const TableOracle healthy1(s.graph(), healthy_syndrome);
      const TableOracle healthy_scalar(s.graph(), healthy_syndrome);
      const DiagnosisResult healthy_expected =
          diagnoser.diagnose(static_cast<const SyndromeOracle&>(healthy_scalar));
      const auto cohort =
          diagnoser.diagnose_cohort({&healthy0, &case0, &healthy1, &case1});
      check_dispatch_identical(report, "cohort-bitsliced", healthy_expected,
                               cohort[0]);
      check_dispatch_identical(report, "cohort-bitsliced", *reference,
                               cohort[1]);
      check_dispatch_identical(report, "cohort-bitsliced", healthy_expected,
                               cohort[2]);
      check_dispatch_identical(report, "cohort-bitsliced", *reference,
                               cohort[3]);
    } catch (const std::exception& e) {
      report.divergences.push_back(
          {"cohort-bitsliced", std::string("driver threw: ") + e.what()});
    }
  }

  // Churn voice: derive a short hostile churn stream from the case seeds
  // and replay it — every warm incremental answer (certification reuse +
  // solve cache) must stay bit-identical to cold full recalibration under
  // the same remove/repair/diagnose interleaving.
  try {
    ChurnStreamConfig churn_config;
    churn_config.spec = c.spec;
    churn_config.delta = c.delta;
    churn_config.seed = mix64(c.inject_seed, c.behavior_seed);
    churn_config.events = 12;
    const ChurnStream stream =
        generate_churn_stream(ctx.engine(), churn_config);
    const ChurnHarnessReport churn = run_churn_stream(ctx.engine(), stream);
    for (const std::string& d : churn.divergences) {
      report.divergences.push_back({"churn-incremental", d});
    }
  } catch (const std::exception& e) {
    report.divergences.push_back(
        {"churn-incremental", std::string("harness threw: ") + e.what()});
  }

  // Deliberate breakage, for testing the fuzzer itself.
  if (sabotage == Sabotage::kRuleMismatch) {
    DiagnoserOptions mismatched;
    mismatched.rule = ParentRule::kLeastFirst;  // partition calibrated kSpread
    const std::size_t before = report.divergences.size();
    if (const auto r = run_config(report, "sabotage-rule-mismatch", s.graph(),
                                  s.spread->partition, mismatched, c, faults)) {
      check_result(report, "sabotage-rule-mismatch", *r, truth, c);
    }
    for (std::size_t i = before; i < report.divergences.size(); ++i) {
      report.divergences[i].rule = ParentRule::kLeastFirst;
    }
  } else if (sabotage == Sabotage::kDropFault && reference) {
    DiagnosisResult tampered = *reference;
    if (tampered.success && !tampered.faults.empty()) {
      tampered.faults.pop_back();
      check_result(report, "sabotage-drop-fault", tampered, truth, c);
    }
  }

  return report;
}

}  // namespace mmdiag
