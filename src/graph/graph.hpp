// Compressed-sparse-row undirected graph.
//
// This is the in-memory form every diagnosis algorithm consumes: adjacency
// lists are contiguous and sorted, so a neighbour position (needed to address
// syndrome bits s_u(v,w) by position) is a binary search, and full scans are
// cache-friendly — the O(Δ·|U_r|) bound of §4.2 relies on both.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/types.hpp"

namespace mmdiag {

class Graph {
 public:
  Graph() = default;
  /// offsets.size() == n+1; neighbors sorted ascending within each node.
  Graph(std::vector<EdgeIndex> offsets, std::vector<Node> neighbors);

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] EdgeIndex num_edges() const noexcept { return neighbors_.size() / 2; }

  // A node-less graph — default-constructed (no offsets at all) or the
  // explicit zero-node CSR (offsets == {0}) — has no offsets_[u + 1] to
  // read, so adjacency queries answer "nothing" instead of indexing out of
  // range. Node ids are only meaningful below num_nodes() otherwise.
  [[nodiscard]] std::span<const Node> neighbors(Node u) const noexcept {
    if (offsets_.size() <= 1) return {};
    return {neighbors_.data() + offsets_[u],
            neighbors_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] unsigned degree(Node u) const noexcept {
    if (offsets_.size() <= 1) return 0;
    return static_cast<unsigned>(offsets_[u + 1] - offsets_[u]);
  }

  [[nodiscard]] unsigned max_degree() const noexcept { return max_degree_; }
  [[nodiscard]] unsigned min_degree() const noexcept { return min_degree_; }

  /// The p-th neighbour of u. Precondition: p < degree(u).
  [[nodiscard]] Node neighbor(Node u, unsigned p) const noexcept {
    return neighbors_[offsets_[u] + p];
  }

  /// Position of v in u's adjacency list, or -1 if absent. O(log Δ).
  [[nodiscard]] int neighbor_position(Node u, Node v) const noexcept;

  /// Position of u in the adjacency list of its p-th neighbour, O(1) from a
  /// table precomputed at construction (an O(E) counting pass). This is the
  /// hot-path replacement for neighbor_position(v, u): Set_Builder carries
  /// it in every frontier entry instead of re-searching per round. Only
  /// meaningful on symmetric (undirected) adjacency, which every topology
  /// builder emits and build_graph_from_edges/generator enforce.
  [[nodiscard]] unsigned mirror_position(Node u, unsigned p) const noexcept {
    return mirror_pos_[offsets_[u] + p];
  }

  /// All mirror positions of u, aligned with neighbors(u).
  [[nodiscard]] std::span<const std::uint32_t> mirror_positions(Node u) const noexcept {
    if (offsets_.size() <= 1) return {};
    return {mirror_pos_.data() + offsets_[u],
            mirror_pos_.data() + offsets_[u + 1]};
  }

  [[nodiscard]] bool has_edge(Node u, Node v) const noexcept {
    return neighbor_position(u, v) >= 0;
  }

  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return offsets_.size() * sizeof(EdgeIndex) + neighbors_.size() * sizeof(Node) +
           mirror_pos_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<EdgeIndex> offsets_;
  std::vector<Node> neighbors_;
  std::vector<std::uint32_t> mirror_pos_;  // aligned with neighbors_
  unsigned max_degree_ = 0;
  unsigned min_degree_ = 0;
};

/// What memory_bytes() would report for a materialised CSR of a regular
/// graph with the given shape — lets the implicit path quote the cost it
/// avoided without paying it.
[[nodiscard]] constexpr std::uint64_t csr_memory_bytes_estimate(
    std::uint64_t num_nodes, unsigned degree) noexcept {
  return (num_nodes + 1) * sizeof(EdgeIndex) +
         num_nodes * degree * (sizeof(Node) + sizeof(std::uint32_t));
}

}  // namespace mmdiag
