// Construction of CSR graphs from edge lists or neighbour generators.
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// Build from an undirected edge list. Self-loops are rejected; duplicate
/// edges are rejected (interconnection networks are simple graphs).
[[nodiscard]] Graph build_graph_from_edges(
    std::size_t num_nodes, const std::vector<std::pair<Node, Node>>& edges);

/// Build by asking `emit_neighbors(u, out)` for each node. The generator must
/// be symmetric (v in adj(u) iff u in adj(v)); this is validated.
[[nodiscard]] Graph build_graph_from_generator(
    std::size_t num_nodes,
    const std::function<void(Node, std::vector<Node>&)>& emit_neighbors);

}  // namespace mmdiag
