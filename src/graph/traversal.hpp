// Breadth-first traversal utilities: distances, components, diameter.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// BFS hop distances from source; unreachable nodes get UINT32_MAX.
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g, Node source);

/// Component id per node (0-based, in order of discovery) and component count.
struct Components {
  std::vector<std::uint32_t> id;
  std::size_t count = 0;
};
[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// True if the subgraph induced by `members` is connected (members nonempty).
[[nodiscard]] bool induced_subgraph_connected(const Graph& g,
                                              const std::vector<Node>& members);

/// Exact diameter by full BFS sweep — O(N·(N+M)); small graphs only.
[[nodiscard]] std::uint32_t diameter(const Graph& g);

/// Eccentricity of one node (max BFS distance) — cheap diameter lower bound.
[[nodiscard]] std::uint32_t eccentricity(const Graph& g, Node source);

}  // namespace mmdiag
