#include "graph/dot.hpp"

#include <algorithm>
#include <ostream>

#include "util/bitvec.hpp"

namespace mmdiag {

void write_dot(std::ostream& os, const Graph& g, const DotStyle& style) {
  StampSet hi(g.num_nodes());
  for (const Node v : style.highlighted) hi.insert(v);

  auto edge_key = [](Node a, Node b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  };
  std::vector<std::uint64_t> bold;
  bold.reserve(style.bold_edges.size());
  for (const auto& [a, b] : style.bold_edges) bold.push_back(edge_key(a, b));
  std::sort(bold.begin(), bold.end());

  os << "graph G {\n  node [shape=circle, fontsize=10];\n";
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    os << "  n" << u << " [label=\""
       << (style.label ? style.label(static_cast<Node>(u)) : std::to_string(u))
       << '"';
    if (hi.contains(static_cast<Node>(u))) {
      os << ", style=filled, fillcolor=\"#e06060\"";
    }
    os << "];\n";
  }
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    for (const Node v : g.neighbors(static_cast<Node>(u))) {
      if (v <= u) continue;  // each undirected edge once
      os << "  n" << u << " -- n" << v;
      if (std::binary_search(bold.begin(), bold.end(),
                             edge_key(static_cast<Node>(u), v))) {
        os << " [penwidth=2.5, color=\"#2040c0\"]";
      }
      os << ";\n";
    }
  }
  os << "}\n";
}

}  // namespace mmdiag
