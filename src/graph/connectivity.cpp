#include "graph/connectivity.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

#include "graph/traversal.hpp"
#include "util/bitvec.hpp"

namespace mmdiag {
namespace {

// Dinic max-flow on the standard node-splitting network:
//   node u -> u_in (2u), u_out (2u+1); capacity(u_in -> u_out) = 1
//   edge {u,v} -> u_out -> v_in and v_out -> u_in with capacity "infinity".
// Max flow s_out -> t_in equals the min s-t vertex cut size.
class Dinic {
 public:
  explicit Dinic(std::size_t num_vertices) : head_(num_vertices, -1) {}

  void add_edge(int from, int to, int capacity) {
    edges_.push_back({to, head_[from], capacity});
    head_[from] = static_cast<int>(edges_.size()) - 1;
    edges_.push_back({from, head_[to], 0});
    head_[to] = static_cast<int>(edges_.size()) - 1;
  }

  int max_flow(int s, int t, int stop_at) {
    int flow = 0;
    while (flow < stop_at && bfs(s, t)) {
      cursor_ = head_;
      while (flow < stop_at) {
        const int pushed = dfs(s, t, stop_at - flow);
        if (pushed == 0) break;
        flow += pushed;
      }
    }
    return flow;
  }

  /// After a max-flow run, vertices reachable from s in the residual graph.
  [[nodiscard]] std::vector<bool> residual_reachable(int s) const {
    std::vector<bool> seen(head_.size(), false);
    std::vector<int> stack{s};
    seen[s] = true;
    while (!stack.empty()) {
      const int u = stack.back();
      stack.pop_back();
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].capacity > 0 && !seen[edges_[e].to]) {
          seen[edges_[e].to] = true;
          stack.push_back(edges_[e].to);
        }
      }
    }
    return seen;
  }

 private:
  struct Edge {
    int to;
    int next;
    int capacity;
  };

  bool bfs(int s, int t) {
    level_.assign(head_.size(), -1);
    std::queue<int> q;
    level_[s] = 0;
    q.push(s);
    while (!q.empty()) {
      const int u = q.front();
      q.pop();
      for (int e = head_[u]; e != -1; e = edges_[e].next) {
        if (edges_[e].capacity > 0 && level_[edges_[e].to] < 0) {
          level_[edges_[e].to] = level_[u] + 1;
          q.push(edges_[e].to);
        }
      }
    }
    return level_[t] >= 0;
  }

  int dfs(int u, int t, int budget) {
    if (u == t || budget == 0) return budget;
    for (int& e = cursor_[u]; e != -1; e = edges_[e].next) {
      Edge& fwd = edges_[e];
      if (fwd.capacity > 0 && level_[fwd.to] == level_[u] + 1) {
        const int pushed = dfs(fwd.to, t, std::min(budget, fwd.capacity));
        if (pushed > 0) {
          fwd.capacity -= pushed;
          edges_[e ^ 1].capacity += pushed;
          return pushed;
        }
      }
    }
    level_[u] = -1;  // dead end
    return 0;
  }

  std::vector<int> head_;
  std::vector<int> cursor_;
  std::vector<int> level_;
  std::vector<Edge> edges_;
};

constexpr int kInf = std::numeric_limits<int>::max() / 2;

Dinic build_split_network(const Graph& g) {
  Dinic dinic(2 * g.num_nodes());
  const auto n = static_cast<int>(g.num_nodes());
  for (int u = 0; u < n; ++u) {
    dinic.add_edge(2 * u, 2 * u + 1, 1);  // u_in -> u_out
    for (const Node v : g.neighbors(static_cast<Node>(u))) {
      dinic.add_edge(2 * u + 1, 2 * static_cast<int>(v), kInf);
    }
  }
  return dinic;
}

int local_connectivity_impl(const Graph& g, Node s, Node t, int stop_at) {
  Dinic dinic = build_split_network(g);
  return dinic.max_flow(2 * static_cast<int>(s) + 1, 2 * static_cast<int>(t),
                        stop_at);
}

}  // namespace

unsigned local_vertex_connectivity(const Graph& g, Node s, Node t) {
  if (s == t) throw std::invalid_argument("s == t");
  if (g.has_edge(s, t)) {
    throw std::invalid_argument("s and t adjacent: vertex cut undefined");
  }
  return static_cast<unsigned>(local_connectivity_impl(g, s, t, kInf));
}

unsigned vertex_connectivity(const Graph& g) {
  const std::size_t n = g.num_nodes();
  if (n < 2) return 0;
  if (!is_connected(g)) return 0;

  // Complete graph: no non-adjacent pair exists.
  if (g.min_degree() == n - 1) return static_cast<unsigned>(n - 1);

  // Let v0 be a minimum-degree vertex. Any minimum cut C either avoids v0
  // (then some non-neighbour t of v0 sits across C) or contains v0 (then v0
  // has neighbours on both sides, so some neighbour s of v0 and a
  // non-neighbour t of s sit across C). Enumerating {v0} ∪ N(v0) as sources
  // against all their non-neighbours is therefore exhaustive.
  Node v0 = 0;
  for (Node u = 0; u < n; ++u) {
    if (g.degree(u) < g.degree(v0)) v0 = u;
  }
  int best = static_cast<int>(g.min_degree());  // κ ≤ min degree
  std::vector<Node> sources{v0};
  for (const Node u : g.neighbors(v0)) sources.push_back(u);
  for (const Node s : sources) {
    for (Node t = 0; t < n; ++t) {
      if (t == s || g.has_edge(s, t)) continue;
      best = std::min(best, local_connectivity_impl(g, s, t, best));
      if (best == 0) return 0;
    }
  }
  return static_cast<unsigned>(best);
}

std::vector<Node> min_vertex_cut(const Graph& g, Node s, Node t) {
  if (s == t || g.has_edge(s, t)) return {};
  Dinic dinic = build_split_network(g);
  dinic.max_flow(2 * static_cast<int>(s) + 1, 2 * static_cast<int>(t), kInf);
  const auto reach = dinic.residual_reachable(2 * static_cast<int>(s) + 1);
  // A node is in the cut iff its in-node is reachable but its out-node is not
  // (the unit splitter edge is saturated across the cut).
  std::vector<Node> cut;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    if (reach[2 * u] && !reach[2 * u + 1]) cut.push_back(static_cast<Node>(u));
  }
  return cut;
}

bool is_articulation_set(const Graph& g, const std::vector<Node>& cut) {
  StampSet removed(g.num_nodes());
  for (const Node v : cut) removed.insert(v);
  // Find a surviving start node.
  Node start = kNoNode;
  std::size_t survivors = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    if (!removed.contains(static_cast<Node>(u))) {
      ++survivors;
      if (start == kNoNode) start = static_cast<Node>(u);
    }
  }
  if (survivors == 0) {
    throw std::invalid_argument("cut removes every node");
  }
  StampSet visited(g.num_nodes());
  std::vector<Node> queue{start};
  visited.insert(start);
  std::size_t seen = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const Node v : g.neighbors(queue[head])) {
      if (!removed.contains(v) && visited.insert(v)) {
        ++seen;
        queue.push_back(v);
      }
    }
  }
  return seen != survivors;
}

}  // namespace mmdiag
