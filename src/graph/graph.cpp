#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<Node> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("Graph: malformed CSR offsets");
  }
  const std::size_t n = offsets_.size() - 1;
  min_degree_ = n == 0 ? 0 : ~0u;
  for (std::size_t u = 0; u < n; ++u) {
    const auto deg = static_cast<unsigned>(offsets_[u + 1] - offsets_[u]);
    max_degree_ = std::max(max_degree_, deg);
    min_degree_ = std::min(min_degree_, deg);
    if (!std::is_sorted(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
                        neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]))) {
      throw std::invalid_argument("Graph: adjacency not sorted");
    }
  }
}

int Graph::neighbor_position(Node u, Node v) const noexcept {
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return -1;
  return static_cast<int>(it - adj.begin());
}

}  // namespace mmdiag
