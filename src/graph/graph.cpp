#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

Graph::Graph(std::vector<EdgeIndex> offsets, std::vector<Node> neighbors)
    : offsets_(std::move(offsets)), neighbors_(std::move(neighbors)) {
  if (offsets_.empty() || offsets_.front() != 0 ||
      offsets_.back() != neighbors_.size()) {
    throw std::invalid_argument("Graph: malformed CSR offsets");
  }
  const std::size_t n = offsets_.size() - 1;
  min_degree_ = n == 0 ? 0 : ~0u;
  for (std::size_t u = 0; u < n; ++u) {
    const auto deg = static_cast<unsigned>(offsets_[u + 1] - offsets_[u]);
    max_degree_ = std::max(max_degree_, deg);
    min_degree_ = std::min(min_degree_, deg);
    if (!std::is_sorted(neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]),
                        neighbors_.begin() + static_cast<std::ptrdiff_t>(offsets_[u + 1]))) {
      throw std::invalid_argument("Graph: adjacency not sorted");
    }
  }

  // Mirror positions in one O(E) counting pass: slots of v fill in ascending
  // u because the outer loop visits u ascending and adj(v) is sorted, so the
  // k-th time v is named across the sweep, the namer sits at position k of
  // adj(v). The pass doubles as the symmetry check this class's contract
  // ("undirected") implies: the hot path trusts mirror_position() where the
  // old neighbor_position() search failed safely, so an asymmetric or
  // out-of-range CSR must be rejected here, not mis-diagnosed later.
  mirror_pos_.assign(neighbors_.size(), 0);
  std::vector<std::uint32_t> cursor(n, 0);
  for (std::size_t u = 0; u < n; ++u) {
    for (EdgeIndex e = offsets_[u]; e < offsets_[u + 1]; ++e) {
      const Node v = neighbors_[e];
      if (v >= n) {
        throw std::invalid_argument("Graph: neighbour id out of range");
      }
      const std::uint32_t q = cursor[v]++;
      if (offsets_[v] + q >= offsets_[v + 1] ||
          neighbors_[offsets_[v] + q] != static_cast<Node>(u)) {
        throw std::invalid_argument("Graph: adjacency not symmetric");
      }
      mirror_pos_[e] = q;
    }
  }
}

int Graph::neighbor_position(Node u, Node v) const noexcept {
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(adj.begin(), adj.end(), v);
  if (it == adj.end() || *it != v) return -1;
  return static_cast<int>(it - adj.begin());
}

}  // namespace mmdiag
