#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace mmdiag {

Graph build_graph_from_edges(std::size_t num_nodes,
                             const std::vector<std::pair<Node, Node>>& edges) {
  std::vector<EdgeIndex> offsets(num_nodes + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= num_nodes || v >= num_nodes) {
      throw std::invalid_argument("edge endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("self-loop not allowed");
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::size_t i = 1; i <= num_nodes; ++i) offsets[i] += offsets[i - 1];
  std::vector<Node> neighbors(offsets[num_nodes]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : edges) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  for (std::size_t u = 0; u < num_nodes; ++u) {
    auto first = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    auto last = neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    std::sort(first, last);
    if (std::adjacent_find(first, last) != last) {
      throw std::invalid_argument("duplicate edge at node " + std::to_string(u));
    }
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph build_graph_from_generator(
    std::size_t num_nodes,
    const std::function<void(Node, std::vector<Node>&)>& emit_neighbors) {
  std::vector<EdgeIndex> offsets(num_nodes + 1, 0);
  std::vector<Node> scratch;
  // First pass: degrees.
  for (std::size_t u = 0; u < num_nodes; ++u) {
    scratch.clear();
    emit_neighbors(static_cast<Node>(u), scratch);
    offsets[u + 1] = offsets[u] + scratch.size();
  }
  std::vector<Node> neighbors(offsets[num_nodes]);
  for (std::size_t u = 0; u < num_nodes; ++u) {
    scratch.clear();
    emit_neighbors(static_cast<Node>(u), scratch);
    std::sort(scratch.begin(), scratch.end());
    if (std::adjacent_find(scratch.begin(), scratch.end()) != scratch.end()) {
      throw std::invalid_argument("generator produced duplicate neighbour at node " +
                                  std::to_string(u));
    }
    for (const Node v : scratch) {
      if (v >= num_nodes) throw std::invalid_argument("neighbour out of range");
      if (v == u) throw std::invalid_argument("generator produced self-loop");
    }
    std::copy(scratch.begin(), scratch.end(),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
  }
  Graph g(std::move(offsets), std::move(neighbors));
  // Symmetry validation: v in adj(u) must imply u in adj(v).
  for (std::size_t u = 0; u < num_nodes; ++u) {
    for (const Node v : g.neighbors(static_cast<Node>(u))) {
      if (!g.has_edge(v, static_cast<Node>(u))) {
        throw std::logic_error("generator adjacency not symmetric at edge (" +
                               std::to_string(u) + "," + std::to_string(v) + ")");
      }
    }
  }
  return g;
}

}  // namespace mmdiag
