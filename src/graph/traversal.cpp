#include "graph/traversal.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "util/bitvec.hpp"

namespace mmdiag {

std::vector<std::uint32_t> bfs_distances(const Graph& g, Node source) {
  std::vector<std::uint32_t> dist(g.num_nodes(),
                                  std::numeric_limits<std::uint32_t>::max());
  if (g.num_nodes() == 0) return dist;  // no dist[source] slot to seed
  std::vector<Node> queue;
  queue.reserve(g.num_nodes());
  dist[source] = 0;
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const Node u = queue[head];
    for (const Node v : g.neighbors(u)) {
      if (dist[v] == std::numeric_limits<std::uint32_t>::max()) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

Components connected_components(const Graph& g) {
  Components comps;
  comps.id.assign(g.num_nodes(), std::numeric_limits<std::uint32_t>::max());
  std::vector<Node> queue;
  for (std::size_t s = 0; s < g.num_nodes(); ++s) {
    if (comps.id[s] != std::numeric_limits<std::uint32_t>::max()) continue;
    const auto cid = static_cast<std::uint32_t>(comps.count++);
    comps.id[s] = cid;
    queue.clear();
    queue.push_back(static_cast<Node>(s));
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const Node v : g.neighbors(queue[head])) {
        if (comps.id[v] == std::numeric_limits<std::uint32_t>::max()) {
          comps.id[v] = cid;
          queue.push_back(v);
        }
      }
    }
  }
  return comps;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == std::numeric_limits<std::uint32_t>::max();
  });
}

bool induced_subgraph_connected(const Graph& g, const std::vector<Node>& members) {
  if (members.empty()) throw std::invalid_argument("empty member set");
  StampSet in_set(g.num_nodes());
  for (const Node v : members) in_set.insert(v);
  StampSet visited(g.num_nodes());
  std::vector<Node> queue{members.front()};
  visited.insert(members.front());
  std::size_t seen = 1;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    for (const Node v : g.neighbors(queue[head])) {
      if (in_set.contains(v) && visited.insert(v)) {
        ++seen;
        queue.push_back(v);
      }
    }
  }
  return seen == members.size();
}

std::uint32_t eccentricity(const Graph& g, Node source) {
  const auto dist = bfs_distances(g, source);
  std::uint32_t ecc = 0;
  for (const auto d : dist) {
    if (d == std::numeric_limits<std::uint32_t>::max()) {
      throw std::logic_error("eccentricity on disconnected graph");
    }
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::uint32_t diameter(const Graph& g) {
  std::uint32_t best = 0;
  for (std::size_t u = 0; u < g.num_nodes(); ++u) {
    best = std::max(best, eccentricity(g, static_cast<Node>(u)));
  }
  return best;
}

}  // namespace mmdiag
