// Exact vertex connectivity via maximum flow (Even–Tarjan reduction).
//
// Theorem 1 of the paper requires κ(G) ≥ δ(G); the applications in §5 quote
// published connectivity results for each family. Tests verify those values
// computationally on small instances so reconstructed topology definitions
// (twisted cube, shuffle-cube, augmented k-ary n-cube) are demonstrably
// faithful where it matters.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// Max number of internally node-disjoint s-t paths (s != t, not adjacent),
/// i.e. the size of a minimum s-t vertex cut (Menger). O(E * sqrt(V)) Dinic.
[[nodiscard]] unsigned local_vertex_connectivity(const Graph& g, Node s, Node t);

/// Exact global vertex connectivity κ(G). Complete graphs return n-1.
/// Intended for graphs up to a few thousand nodes (tests only).
[[nodiscard]] unsigned vertex_connectivity(const Graph& g);

/// A minimum s-t vertex separator (empty if s,t adjacent or equal).
[[nodiscard]] std::vector<Node> min_vertex_cut(const Graph& g, Node s, Node t);

/// True if removing `cut` disconnects the remaining graph (an articulation
/// set in the paper's terminology). The cut must not cover all nodes.
[[nodiscard]] bool is_articulation_set(const Graph& g, const std::vector<Node>& cut);

}  // namespace mmdiag
