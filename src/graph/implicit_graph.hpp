// ImplicitGraph: a GraphView that never materialises edges.
//
// Every adjacency query is answered by the topology's closed-form implicit
// API (Topology::sorted_neighbors / neighbor / neighbor_position), so the
// whole view is O(1) memory regardless of node count — hypercube 20 (2^20
// nodes, 2^20·20 directed edges) costs the same few dozen bytes as
// hypercube 4. neighbors()/mirror_positions() return small by-value arrays
// rather than spans into storage; the solver templates consume either shape
// identically. No mutable scratch: the view is safe to share across the
// engine's worker threads.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>

#include "graph/graph.hpp"
#include "graph/graph_view.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace mmdiag {

class ImplicitGraph {
 public:
  /// Ceiling on the degree this view supports — matches the word-level
  /// syndrome-row width, so anything the fast solver path can drive fits.
  static constexpr unsigned kMaxDegree = 64;

  /// The neighbours of one node, by value. Indexable/iterable like the
  /// std::span the CSR Graph returns.
  class AdjacencyList {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] Node operator[](std::size_t i) const noexcept {
      return node_[i];
    }
    [[nodiscard]] const Node* begin() const noexcept { return node_; }
    [[nodiscard]] const Node* end() const noexcept { return node_ + count_; }

   private:
    friend class ImplicitGraph;
    Node node_[kMaxDegree];
    unsigned count_ = 0;
  };

  /// Mirror positions of one node, aligned with its AdjacencyList.
  class MirrorList {
   public:
    [[nodiscard]] std::size_t size() const noexcept { return count_; }
    [[nodiscard]] std::uint32_t operator[](std::size_t i) const noexcept {
      return pos_[i];
    }
    [[nodiscard]] const std::uint32_t* begin() const noexcept { return pos_; }
    [[nodiscard]] const std::uint32_t* end() const noexcept {
      return pos_ + count_;
    }

   private:
    friend class ImplicitGraph;
    std::uint32_t pos_[kMaxDegree];
    unsigned count_ = 0;
  };

  /// Owning: keeps the topology alive for the view's lifetime (the engine's
  /// calibration path hands the topology over this way).
  explicit ImplicitGraph(std::shared_ptr<const Topology> topology)
      : owner_(std::move(topology)) {
    init(owner_.get());
  }

  /// Non-owning: caller guarantees the topology outlives the view.
  explicit ImplicitGraph(const Topology& topology) { init(&topology); }

  [[nodiscard]] std::size_t num_nodes() const noexcept { return num_nodes_; }
  [[nodiscard]] unsigned degree(Node /*u*/) const noexcept { return degree_; }
  [[nodiscard]] unsigned max_degree() const noexcept { return degree_; }
  [[nodiscard]] unsigned min_degree() const noexcept { return degree_; }

  [[nodiscard]] AdjacencyList neighbors(Node u) const {
    AdjacencyList adj;
    adj.count_ = topo_->sorted_neighbors(u, adj.node_);
    return adj;
  }

  [[nodiscard]] Node neighbor(Node u, unsigned p) const {
    return topo_->neighbor(u, p);
  }

  [[nodiscard]] int neighbor_position(Node u, Node v) const {
    return topo_->neighbor_position(u, v);
  }

  [[nodiscard]] unsigned mirror_position(Node u, unsigned p) const {
    return topo_->mirror_position(u, p);
  }

  [[nodiscard]] MirrorList mirror_positions(Node u) const {
    AdjacencyList adj;
    adj.count_ = topo_->sorted_neighbors(u, adj.node_);
    MirrorList mirrors;
    mirrors.count_ = adj.count_;
    for (unsigned p = 0; p < adj.count_; ++p) {
      mirrors.pos_[p] =
          static_cast<std::uint32_t>(topo_->neighbor_position(adj.node_[p], u));
    }
    return mirrors;
  }

  [[nodiscard]] bool has_edge(Node u, Node v) const {
    return topo_->neighbor_position(u, v) >= 0;
  }

  /// The view's whole footprint — contrast with Graph::memory_bytes().
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return sizeof(*this);
  }

  /// What the CSR representation of the same topology would cost.
  [[nodiscard]] std::uint64_t csr_bytes_estimate() const noexcept {
    return csr_memory_bytes_estimate(num_nodes_, degree_);
  }

  [[nodiscard]] const Topology& topology() const noexcept { return *topo_; }

 private:
  void init(const Topology* topology) {
    topo_ = topology;
    const TopologyInfo ti = topology->info();
    if (ti.degree > kMaxDegree) {
      throw std::invalid_argument(
          "ImplicitGraph: topology degree exceeds the 64-neighbour ceiling");
    }
    if (ti.num_nodes > static_cast<std::uint64_t>(kNoNode)) {
      throw std::invalid_argument(
          "ImplicitGraph: node count overflows 32-bit node id space");
    }
    num_nodes_ = static_cast<std::size_t>(ti.num_nodes);
    degree_ = ti.degree;
  }

  std::shared_ptr<const Topology> owner_;  // null for the non-owning ctor
  const Topology* topo_ = nullptr;
  std::size_t num_nodes_ = 0;
  unsigned degree_ = 0;
};

static_assert(GraphView<Graph>);
static_assert(GraphView<ImplicitGraph>);

}  // namespace mmdiag
