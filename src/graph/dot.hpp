// Graphviz DOT export — used by the Fig.1/Fig.2 example programs.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/types.hpp"

namespace mmdiag {

struct DotStyle {
  /// Optional per-node label; default is the numeric id.
  std::function<std::string(Node)> label;
  /// Nodes to highlight (filled red) — e.g. a fault set.
  std::vector<Node> highlighted;
  /// Optional set of emphasised edges (e.g. a tree or cycle), as pairs.
  std::vector<std::pair<Node, Node>> bold_edges;
};

void write_dot(std::ostream& os, const Graph& g, const DotStyle& style = {});

}  // namespace mmdiag
