// GraphView: the adjacency interface the solver hot path is templated over.
//
// Two models exist: the CSR `Graph` (O(E) arrays, O(1)/O(log Δ) queries) and
// `ImplicitGraph` (O(1) state, queries answered by the topology's closed-form
// adjacency arithmetic). Both enumerate each node's neighbours in ascending
// id order — that shared order is what makes solver runs on the two views
// consult identical (node, position) syndrome bits and therefore produce
// bit-identical results and look-up counts.
#pragma once

#include <concepts>
#include <cstdint>

#include "util/types.hpp"

namespace mmdiag {

template <class G>
concept GraphView = requires(const G& g, Node u, Node v, unsigned p) {
  { g.num_nodes() } -> std::convertible_to<std::size_t>;
  { g.degree(u) } -> std::convertible_to<unsigned>;
  { g.max_degree() } -> std::convertible_to<unsigned>;
  // neighbors(u) yields an indexable, iterable range of ascending node ids.
  { g.neighbors(u)[p] } -> std::convertible_to<Node>;
  { g.neighbors(u).size() } -> std::convertible_to<std::size_t>;
  { g.neighbor(u, p) } -> std::convertible_to<Node>;
  { g.neighbor_position(u, v) } -> std::convertible_to<int>;
  { g.mirror_position(u, p) } -> std::convertible_to<unsigned>;
  // mirror_positions(u) aligned with neighbors(u).
  { g.mirror_positions(u)[p] } -> std::convertible_to<std::uint32_t>;
  { g.memory_bytes() } -> std::convertible_to<std::uint64_t>;
};

}  // namespace mmdiag
