// Text serialisation of syndromes — the interchange point between a real
// machine's self-test collection and this library's diagnosis.
//
// Format (line oriented, '#' comments allowed between records):
//
//   mmdiag-syndrome v1
//   topology <family> <params...>
//   model <mm-star|pmc|bgm>          (optional; absent means mm-star)
//   node <id> <bits>
//   ...
//   end
//
// Under MM* <bits> is the node's triangular pair-test block, one character
// per unordered neighbour pair in (i,j) lexicographic order (i < j over
// adjacency positions), '0' or '1'. Under the directed models (PMC, BGM)
// <bits> is the node's outgoing arc run instead: character p is the
// outcome of the node testing its p-th neighbour, d characters total.
// Every node of the topology must appear exactly once. The topology line
// rebuilds adjacency deterministically, so positions are unambiguous. The
// model line stays inside the v1 header — pre-model files parse unchanged,
// mirroring the .repro format's optional provenance lines.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/syndrome.hpp"
#include "topology/topology.hpp"
#include "util/enum_names.hpp"

namespace mmdiag {

struct LoadedSyndrome {
  std::string spec;                 // e.g. "hypercube 8"
  std::unique_ptr<Topology> topology;
  Graph graph;
  Syndrome syndrome;
};

struct LoadedDirectedSyndrome {
  std::string spec;
  DiagnosisModel model = DiagnosisModel::kPMC;
  std::unique_ptr<Topology> topology;
  Graph graph;
  DirectedSyndrome syndrome;
};

/// Just the header of a syndrome file (version, topology, optional model)
/// — lets a caller dispatch to the matching reader before a full parse.
struct SyndromeFileHeader {
  std::string spec;
  DiagnosisModel model = DiagnosisModel::kMMStar;
};
[[nodiscard]] SyndromeFileHeader peek_syndrome_header(std::istream& is);

/// A syndrome parsed against a caller-resolved graph (no per-file topology
/// or graph build — see the resolver overload of read_syndrome).
struct ParsedSyndrome {
  std::string spec;      // the topology line, as written
  Syndrome syndrome;     // addressed by the resolved graph's adjacency
};

/// Serialise a syndrome together with its topology spec.
void write_syndrome(std::ostream& os, const std::string& spec,
                    const Graph& graph, const Syndrome& syndrome);

/// Parse an MM* syndrome file; throws std::runtime_error with a
/// line-numbered message on any malformed input, including a file whose
/// model line names a directed model (use read_directed_syndrome there).
[[nodiscard]] LoadedSyndrome read_syndrome(std::istream& is);

/// Serialise a directed (PMC/BGM) syndrome; the model line is always
/// written. Throws std::invalid_argument on a non-directed model.
void write_directed_syndrome(std::ostream& os, const std::string& spec,
                             DiagnosisModel model, const Graph& graph,
                             const DirectedSyndrome& syndrome);

/// Parse a directed syndrome file (same error discipline as read_syndrome;
/// an MM* file — no model line, or "model mm-star" — is rejected).
[[nodiscard]] LoadedDirectedSyndrome read_directed_syndrome(std::istream& is);

/// As above, but the graph comes from `resolve(spec)` instead of a fresh
/// topology+graph build per file. Engine-backed entry points (serve, batch)
/// pass a resolver over the calibration cache, so a thousand-file request
/// stream touches one shared adjacency per spec. The resolver owns the
/// graph's lifetime and may throw (reported as a line-numbered parse error
/// naming the spec).
[[nodiscard]] ParsedSyndrome read_syndrome(
    std::istream& is,
    const std::function<const Graph&(const std::string& spec)>& resolve);

/// Convenience: node list serialisation ("3 17 42\n"), used for fault sets.
/// read_node_list skips blank and '#' lines, accepts ids split over any
/// number of lines, and throws std::runtime_error with a line-numbered
/// message on any non-numeric or out-of-range token (empty input is an
/// empty list, matching what write_node_list emits for one).
void write_node_list(std::ostream& os, const std::vector<Node>& nodes);
[[nodiscard]] std::vector<Node> read_node_list(std::istream& is);

}  // namespace mmdiag
