// Text serialisation of syndromes — the interchange point between a real
// machine's self-test collection and this library's diagnosis.
//
// Format (line oriented, '#' comments allowed between records):
//
//   mmdiag-syndrome v1
//   topology <family> <params...>
//   node <id> <bits>
//   ...
//   end
//
// <bits> is the node's triangular pair-test block, one character per
// unordered neighbour pair in (i,j) lexicographic order (i < j over
// adjacency positions), '0' or '1'. Every node of the topology must appear
// exactly once. The topology line rebuilds adjacency deterministically, so
// positions are unambiguous.
#pragma once

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/graph.hpp"
#include "mm/syndrome.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

struct LoadedSyndrome {
  std::string spec;                 // e.g. "hypercube 8"
  std::unique_ptr<Topology> topology;
  Graph graph;
  Syndrome syndrome;
};

/// A syndrome parsed against a caller-resolved graph (no per-file topology
/// or graph build — see the resolver overload of read_syndrome).
struct ParsedSyndrome {
  std::string spec;      // the topology line, as written
  Syndrome syndrome;     // addressed by the resolved graph's adjacency
};

/// Serialise a syndrome together with its topology spec.
void write_syndrome(std::ostream& os, const std::string& spec,
                    const Graph& graph, const Syndrome& syndrome);

/// Parse a syndrome file; throws std::runtime_error with a line-numbered
/// message on any malformed input.
[[nodiscard]] LoadedSyndrome read_syndrome(std::istream& is);

/// As above, but the graph comes from `resolve(spec)` instead of a fresh
/// topology+graph build per file. Engine-backed entry points (serve, batch)
/// pass a resolver over the calibration cache, so a thousand-file request
/// stream touches one shared adjacency per spec. The resolver owns the
/// graph's lifetime and may throw (reported as a line-numbered parse error
/// naming the spec).
[[nodiscard]] ParsedSyndrome read_syndrome(
    std::istream& is,
    const std::function<const Graph&(const std::string& spec)>& resolve);

/// Convenience: node list serialisation ("3 17 42\n"), used for fault sets.
/// read_node_list skips blank and '#' lines, accepts ids split over any
/// number of lines, and throws std::runtime_error with a line-numbered
/// message on any non-numeric or out-of-range token (empty input is an
/// empty list, matching what write_node_list emits for one).
void write_node_list(std::ostream& os, const std::vector<Node>& nodes);
[[nodiscard]] std::vector<Node> read_node_list(std::istream& is);

}  // namespace mmdiag
