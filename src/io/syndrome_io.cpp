#include "io/syndrome_io.hpp"

#include <charconv>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "topology/registry.hpp"
#include "util/parse.hpp"

namespace mmdiag {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("syndrome file, line " + std::to_string(line) +
                           ": " + what);
}

/// Reads the next non-comment, non-empty line; false at EOF.
bool next_record(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

/// Shared body: the "node <id> <bits>" records up to "end", writing into a
/// syndrome sized for `graph`.
Syndrome read_syndrome_records(std::istream& is, const Graph& graph,
                               std::size_t& lineno) {
  Syndrome syndrome(graph);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::size_t remaining = graph.num_nodes();
  std::string line;
  while (next_record(is, line, lineno)) {
    if (line == "end") {
      if (remaining != 0) {
        fail(lineno, std::to_string(remaining) + " node record(s) missing");
      }
      return syndrome;
    }
    std::istringstream ls(line);
    std::string keyword, bits;
    std::uint64_t id = 0;
    if (!(ls >> keyword >> id >> bits) || keyword != "node") {
      fail(lineno, "expected 'node <id> <bits>'");
    }
    if (id >= graph.num_nodes()) fail(lineno, "node id out of range");
    if (seen[id]) fail(lineno, "duplicate node record");
    seen[id] = true;
    --remaining;
    const unsigned d = graph.degree(static_cast<Node>(id));
    const std::size_t expected = static_cast<std::size_t>(d) * (d - 1) / 2;
    if (bits == "-" && expected == 0) continue;
    if (bits.size() != expected) {
      fail(lineno, "expected " + std::to_string(expected) + " bits, got " +
                       std::to_string(bits.size()));
    }
    std::size_t cursor = 0;
    for (unsigned i = 0; i + 1 < d; ++i) {
      for (unsigned j = i + 1; j < d; ++j, ++cursor) {
        if (bits[cursor] != '0' && bits[cursor] != '1') {
          fail(lineno, "bits must be 0 or 1");
        }
        syndrome.set_test(static_cast<Node>(id), i, j, bits[cursor] == '1');
      }
    }
  }
  fail(lineno, "missing 'end'");
}

/// Shared header: "mmdiag-syndrome v1" + "topology <spec>"; returns spec.
std::string read_syndrome_header(std::istream& is, std::size_t& lineno) {
  std::string line;
  if (!next_record(is, line, lineno) || line != "mmdiag-syndrome v1") {
    fail(lineno, "expected header 'mmdiag-syndrome v1'");
  }
  if (!next_record(is, line, lineno) || line.rfind("topology ", 0) != 0) {
    fail(lineno, "expected 'topology <spec>'");
  }
  return line.substr(9);
}

}  // namespace

void write_syndrome(std::ostream& os, const std::string& spec,
                    const Graph& graph, const Syndrome& syndrome) {
  os << "mmdiag-syndrome v1\n";
  os << "topology " << spec << "\n";
  std::string bits;
  for (Node u = 0; u < graph.num_nodes(); ++u) {
    const unsigned d = graph.degree(u);
    bits.clear();
    for (unsigned i = 0; i + 1 < d; ++i) {
      for (unsigned j = i + 1; j < d; ++j) {
        bits.push_back(syndrome.test(u, i, j) ? '1' : '0');
      }
    }
    os << "node " << u << " " << (bits.empty() ? "-" : bits) << "\n";
  }
  os << "end\n";
}

LoadedSyndrome read_syndrome(std::istream& is) {
  std::size_t lineno = 0;
  LoadedSyndrome out{read_syndrome_header(is, lineno), nullptr, Graph{},
                     Syndrome{Graph{}}};
  try {
    out.topology = make_topology_from_spec(out.spec);
  } catch (const std::exception& e) {
    fail(lineno, std::string("bad topology spec: ") + e.what());
  }
  out.graph = out.topology->build_graph();
  out.syndrome = read_syndrome_records(is, out.graph, lineno);
  return out;
}

ParsedSyndrome read_syndrome(
    std::istream& is,
    const std::function<const Graph&(const std::string& spec)>& resolve) {
  std::size_t lineno = 0;
  ParsedSyndrome out{read_syndrome_header(is, lineno), Syndrome{Graph{}}};
  const Graph* graph = nullptr;
  try {
    graph = &resolve(out.spec);
  } catch (const std::exception& e) {
    fail(lineno, "cannot resolve topology spec '" + out.spec +
                     "': " + e.what());
  }
  out.syndrome = read_syndrome_records(is, *graph, lineno);
  return out;
}

void write_node_list(std::ostream& os, const std::vector<Node>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) os << ' ';
    os << nodes[i];
  }
  os << '\n';
}

std::vector<Node> read_node_list(std::istream& is) {
  const auto fail_list = [](std::size_t line, const std::string& what) {
    throw std::runtime_error("node list, line " + std::to_string(line) + ": " +
                             what);
  };
  std::vector<Node> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
      // parse_unsigned accepts exactly the digit strings write_node_list
      // emits; anything else ("xyz", "-3", "1e3", partial parses like
      // "17x") throws instead of being silently dropped the way `is >> v`
      // used to stop. The range check stays separate for its own message.
      const auto value = parse_unsigned(token);
      if (!value) {
        fail_list(lineno, "expected a node id, got '" + token + "'");
      }
      if (*value > std::numeric_limits<Node>::max()) {
        fail_list(lineno, "node id " + token + " out of range");
      }
      out.push_back(static_cast<Node>(*value));
    }
  }
  return out;
}

}  // namespace mmdiag
