#include "io/syndrome_io.hpp"

#include <charconv>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "topology/registry.hpp"
#include "util/parse.hpp"

namespace mmdiag {
namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("syndrome file, line " + std::to_string(line) +
                           ": " + what);
}

/// Reads the next non-comment, non-empty line; false at EOF.
bool next_record(std::istream& is, std::string& line, std::size_t& lineno) {
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    return true;
  }
  return false;
}

/// Header fields plus the first post-header record, which detecting the
/// optional model line had to consume — the record readers drain it first.
struct HeaderInfo {
  std::string spec;
  DiagnosisModel model = DiagnosisModel::kMMStar;
  std::string pending;
  bool has_pending = false;
};

/// Shared header: "mmdiag-syndrome v1" + "topology <spec>" + optional
/// "model <name>" (absent means mm-star, keeping pre-model files valid).
HeaderInfo read_header(std::istream& is, std::size_t& lineno) {
  HeaderInfo h;
  std::string line;
  if (!next_record(is, line, lineno) || line != "mmdiag-syndrome v1") {
    fail(lineno, "expected header 'mmdiag-syndrome v1'");
  }
  if (!next_record(is, line, lineno) || line.rfind("topology ", 0) != 0) {
    fail(lineno, "expected 'topology <spec>'");
  }
  h.spec = line.substr(9);
  if (next_record(is, line, lineno)) {
    if (line.rfind("model ", 0) == 0) {
      try {
        h.model = diagnosis_model_from_string(line.substr(6));
      } catch (const std::exception& e) {
        fail(lineno, e.what());
      }
    } else {
      h.pending = std::move(line);
      h.has_pending = true;
    }
  }
  return h;
}

/// Yields the next record, draining the header's pending line first.
bool next_body_record(std::istream& is, HeaderInfo& h, std::string& line,
                      std::size_t& lineno) {
  if (h.has_pending) {
    line = std::move(h.pending);
    h.has_pending = false;
    return true;
  }
  return next_record(is, line, lineno);
}

[[noreturn]] void fail_wrong_model(std::size_t lineno, DiagnosisModel model,
                                   bool want_directed) {
  const std::string name = diagnosis_model_to_string(model);
  if (want_directed) {
    fail(lineno, "file carries an mm-star syndrome (model '" + name +
                     "'): use read_syndrome");
  }
  fail(lineno, "file carries a directed syndrome (model '" + name +
                   "'): use read_directed_syndrome");
}

/// Shared body: the "node <id> <bits>" records up to "end", writing into a
/// syndrome sized for `graph`.
Syndrome read_syndrome_records(std::istream& is, HeaderInfo& h,
                               const Graph& graph, std::size_t& lineno) {
  Syndrome syndrome(graph);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::size_t remaining = graph.num_nodes();
  std::string line;
  while (next_body_record(is, h, line, lineno)) {
    if (line == "end") {
      if (remaining != 0) {
        fail(lineno, std::to_string(remaining) + " node record(s) missing");
      }
      return syndrome;
    }
    std::istringstream ls(line);
    std::string keyword, bits;
    std::uint64_t id = 0;
    if (!(ls >> keyword >> id >> bits) || keyword != "node") {
      fail(lineno, "expected 'node <id> <bits>'");
    }
    if (id >= graph.num_nodes()) fail(lineno, "node id out of range");
    if (seen[id]) fail(lineno, "duplicate node record");
    seen[id] = true;
    --remaining;
    const unsigned d = graph.degree(static_cast<Node>(id));
    const std::size_t expected = static_cast<std::size_t>(d) * (d - 1) / 2;
    if (bits == "-" && expected == 0) continue;
    if (bits.size() != expected) {
      fail(lineno, "expected " + std::to_string(expected) + " bits, got " +
                       std::to_string(bits.size()));
    }
    std::size_t cursor = 0;
    for (unsigned i = 0; i + 1 < d; ++i) {
      for (unsigned j = i + 1; j < d; ++j, ++cursor) {
        if (bits[cursor] != '0' && bits[cursor] != '1') {
          fail(lineno, "bits must be 0 or 1");
        }
        syndrome.set_test(static_cast<Node>(id), i, j, bits[cursor] == '1');
      }
    }
  }
  fail(lineno, "missing 'end'");
}

/// Directed body: <bits> is the node's outgoing arc run, one character per
/// adjacency position (character p = outcome of testing neighbour p).
DirectedSyndrome read_directed_records(std::istream& is, HeaderInfo& h,
                                       const Graph& graph,
                                       std::size_t& lineno) {
  DirectedSyndrome syndrome(graph);
  std::vector<bool> seen(graph.num_nodes(), false);
  std::size_t remaining = graph.num_nodes();
  std::string line;
  while (next_body_record(is, h, line, lineno)) {
    if (line == "end") {
      if (remaining != 0) {
        fail(lineno, std::to_string(remaining) + " node record(s) missing");
      }
      return syndrome;
    }
    std::istringstream ls(line);
    std::string keyword, bits;
    std::uint64_t id = 0;
    if (!(ls >> keyword >> id >> bits) || keyword != "node") {
      fail(lineno, "expected 'node <id> <bits>'");
    }
    if (id >= graph.num_nodes()) fail(lineno, "node id out of range");
    if (seen[id]) fail(lineno, "duplicate node record");
    seen[id] = true;
    --remaining;
    const unsigned d = graph.degree(static_cast<Node>(id));
    if (bits == "-" && d == 0) continue;
    if (bits.size() != d) {
      fail(lineno, "expected " + std::to_string(d) + " bits, got " +
                       std::to_string(bits.size()));
    }
    for (unsigned p = 0; p < d; ++p) {
      if (bits[p] != '0' && bits[p] != '1') {
        fail(lineno, "bits must be 0 or 1");
      }
      syndrome.set_test(static_cast<Node>(id), p, bits[p] == '1');
    }
  }
  fail(lineno, "missing 'end'");
}

}  // namespace

SyndromeFileHeader peek_syndrome_header(std::istream& is) {
  std::size_t lineno = 0;
  const HeaderInfo h = read_header(is, lineno);
  return SyndromeFileHeader{h.spec, h.model};
}

void write_syndrome(std::ostream& os, const std::string& spec,
                    const Graph& graph, const Syndrome& syndrome) {
  os << "mmdiag-syndrome v1\n";
  os << "topology " << spec << "\n";
  std::string bits;
  for (Node u = 0; u < graph.num_nodes(); ++u) {
    const unsigned d = graph.degree(u);
    bits.clear();
    for (unsigned i = 0; i + 1 < d; ++i) {
      for (unsigned j = i + 1; j < d; ++j) {
        bits.push_back(syndrome.test(u, i, j) ? '1' : '0');
      }
    }
    os << "node " << u << " " << (bits.empty() ? "-" : bits) << "\n";
  }
  os << "end\n";
}

LoadedSyndrome read_syndrome(std::istream& is) {
  std::size_t lineno = 0;
  HeaderInfo h = read_header(is, lineno);
  if (is_directed_model(h.model)) fail_wrong_model(lineno, h.model, false);
  LoadedSyndrome out{h.spec, nullptr, Graph{}, Syndrome{Graph{}}};
  try {
    out.topology = make_topology_from_spec(out.spec);
  } catch (const std::exception& e) {
    fail(lineno, std::string("bad topology spec: ") + e.what());
  }
  out.graph = out.topology->build_graph();
  out.syndrome = read_syndrome_records(is, h, out.graph, lineno);
  return out;
}

ParsedSyndrome read_syndrome(
    std::istream& is,
    const std::function<const Graph&(const std::string& spec)>& resolve) {
  std::size_t lineno = 0;
  HeaderInfo h = read_header(is, lineno);
  if (is_directed_model(h.model)) fail_wrong_model(lineno, h.model, false);
  ParsedSyndrome out{h.spec, Syndrome{Graph{}}};
  const Graph* graph = nullptr;
  try {
    graph = &resolve(out.spec);
  } catch (const std::exception& e) {
    fail(lineno, "cannot resolve topology spec '" + out.spec +
                     "': " + e.what());
  }
  out.syndrome = read_syndrome_records(is, h, *graph, lineno);
  return out;
}

void write_directed_syndrome(std::ostream& os, const std::string& spec,
                             DiagnosisModel model, const Graph& graph,
                             const DirectedSyndrome& syndrome) {
  if (!is_directed_model(model)) {
    throw std::invalid_argument(
        "write_directed_syndrome: mm-star syndromes go through "
        "write_syndrome");
  }
  os << "mmdiag-syndrome v1\n";
  os << "topology " << spec << "\n";
  os << "model " << diagnosis_model_to_string(model) << "\n";
  std::string bits;
  for (Node u = 0; u < graph.num_nodes(); ++u) {
    const unsigned d = graph.degree(u);
    bits.clear();
    for (unsigned p = 0; p < d; ++p) {
      bits.push_back(syndrome.test(u, p) ? '1' : '0');
    }
    os << "node " << u << " " << (bits.empty() ? "-" : bits) << "\n";
  }
  os << "end\n";
}

LoadedDirectedSyndrome read_directed_syndrome(std::istream& is) {
  std::size_t lineno = 0;
  HeaderInfo h = read_header(is, lineno);
  if (!is_directed_model(h.model)) fail_wrong_model(lineno, h.model, true);
  LoadedDirectedSyndrome out{h.spec, h.model, nullptr, Graph{},
                             DirectedSyndrome{Graph{}}};
  try {
    out.topology = make_topology_from_spec(out.spec);
  } catch (const std::exception& e) {
    fail(lineno, std::string("bad topology spec: ") + e.what());
  }
  out.graph = out.topology->build_graph();
  out.syndrome = read_directed_records(is, h, out.graph, lineno);
  return out;
}

void write_node_list(std::ostream& os, const std::vector<Node>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) os << ' ';
    os << nodes[i];
  }
  os << '\n';
}

std::vector<Node> read_node_list(std::istream& is) {
  const auto fail_list = [](std::size_t line, const std::string& what) {
    throw std::runtime_error("node list, line " + std::to_string(line) + ": " +
                             what);
  };
  std::vector<Node> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
      // parse_unsigned accepts exactly the digit strings write_node_list
      // emits; anything else ("xyz", "-3", "1e3", partial parses like
      // "17x") throws instead of being silently dropped the way `is >> v`
      // used to stop. The range check stays separate for its own message.
      const auto value = parse_unsigned(token);
      if (!value) {
        fail_list(lineno, "expected a node id, got '" + token + "'");
      }
      if (*value > std::numeric_limits<Node>::max()) {
        fail_list(lineno, "node id " + token + " out of range");
      }
      out.push_back(static_cast<Node>(*value));
    }
  }
  return out;
}

}  // namespace mmdiag
