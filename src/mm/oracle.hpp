// Syndrome oracles: how diagnosis algorithms read test results.
//
// §6 of the paper argues that Set_Builder's advantage over Chiang–Tan is
// that it consults only (Δ-1)(Δ/2 + |U_r| - 1) results instead of the whole
// table. Every oracle therefore counts look-ups, and a lazy oracle serves
// syndromes that were never materialised (equivalent to performing tests on
// demand in the machine).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <concepts>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "util/types.hpp"

namespace mmdiag {

class ImplicitGraph;

namespace detail {
/// The base class carries a CSR pointer for consumers like the verifier;
/// oracles driven by a non-CSR GraphView have none to offer.
inline const Graph* erased_graph(const Graph& g) noexcept { return &g; }
template <class GV>
const Graph* erased_graph(const GV&) noexcept {
  return nullptr;
}
}  // namespace detail

class SyndromeOracle {
 public:
  virtual ~SyndromeOracle() = default;

  /// s_u over adjacency positions i != j of u. Counted.
  [[nodiscard]] bool test(Node u, unsigned i, unsigned j) const {
    ++lookups_;
    return test_impl(u, i, j);
  }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() const noexcept { lookups_ = 0; }

  /// Bulk accounting for word-granular readers: a caller that served `n`
  /// logical look-ups from one packed row read records them here so the
  /// counter stays bit-identical to having called test() n times.
  void add_lookups(std::uint64_t n) const noexcept { lookups_ += n; }

  /// False for oracles over an implicit view (and the graph-less
  /// FaultFreeOracle): graph() must not be called on them.
  [[nodiscard]] bool has_graph() const noexcept { return graph_ != nullptr; }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 protected:
  SyndromeOracle() = default;
  explicit SyndromeOracle(const Graph& g) : graph_(&g) {}
  explicit SyndromeOracle(const Graph* g) : graph_(g) {}
  [[nodiscard]] virtual bool test_impl(Node u, unsigned i, unsigned j) const = 0;

 private:
  const Graph* graph_ = nullptr;
  mutable std::uint64_t lookups_ = 0;
};

/// Reads a pre-materialised syndrome table.
class TableOracle final : public SyndromeOracle {
 public:
  TableOracle(const Graph& g, const Syndrome& syndrome)
      : SyndromeOracle(g), syndrome_(&syndrome) {}

  /// Raw word-level row read: bit p = s_u(i, p) for every position p != i
  /// of u (Syndrome::row_bits). Deliberately *uncounted* — a row read is a
  /// physical access pattern, not a batch of logical look-ups. Callers
  /// account exactly the pairs they consult via add_lookups(), so the
  /// counter stays bit-identical to the per-pair test() path (§6's look-up
  /// complexity is about results consulted, not words touched).
  /// Requires degree(u) <= 64.
  [[nodiscard]] std::uint64_t row_bits(Node u, unsigned i) const noexcept {
    return syndrome_->row_bits(u, i);
  }

  /// Split row addressing (Syndrome::row_location / row_bits_at): cohort
  /// readers resolve a row's location once — it is layout-determined, hence
  /// identical for every syndrome on the same graph — and issue one raw
  /// read per lane. Uncounted, like row_bits.
  [[nodiscard]] Syndrome::RowLocation row_location(Node u,
                                                   unsigned i) const noexcept {
    return syndrome_->row_location(u, i);
  }
  [[nodiscard]] std::uint64_t row_bits_at(
      Syndrome::RowLocation loc) const noexcept {
    return syndrome_->row_bits_at(loc);
  }

  /// The backing table, for consumers that re-partition the same
  /// materialised rows under their own accounting (the sharded engine's
  /// per-shard row stores copy owned and halo rows out of it).
  [[nodiscard]] const Syndrome& syndrome() const noexcept {
    return *syndrome_;
  }

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    return syndrome_->test(u, i, j);
  }

 private:
  const Syndrome* syndrome_;
};

/// Computes results on demand from the (hidden) fault set — the "perform the
/// test only when consulted" execution mode of §6. Deterministic: repeated
/// look-ups of the same pair agree. Templated over the GraphView supplying
/// adjacency: LazyOracleOn<Graph> is the classic CSR-backed lazy oracle;
/// LazyOracleOn<ImplicitGraph> is the O(1)-memory oracle of the scale path
/// (nodes named by position through the view's closed-form neighbor(u, p),
/// so the outcomes — and thus every downstream result — match the CSR
/// instantiation bit for bit).
template <class GV>
class LazyOracleOn final : public SyndromeOracle {
 public:
  LazyOracleOn(const GV& g, const FaultSet& faults, FaultyBehavior behavior,
               std::uint64_t seed)
      : SyndromeOracle(detail::erased_graph(g)),
        view_(&g),
        faults_(&faults),
        behavior_(behavior),
        seed_(seed) {}

  [[nodiscard]] const GV& view() const noexcept { return *view_; }

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    const Node v = view_->neighbor(u, i);
    const Node w = view_->neighbor(u, j);
    if (!faults_->is_faulty(u)) {
      return faults_->is_faulty(v) || faults_->is_faulty(w);
    }
    return faulty_test_result(behavior_, seed_, u, v, w, faults_->is_faulty(v),
                              faults_->is_faulty(w));
  }

 private:
  const GV* view_;
  const FaultSet* faults_;
  FaultyBehavior behavior_;
  std::uint64_t seed_;
};

using LazyOracle = LazyOracleOn<Graph>;
using ImplicitLazyOracle = LazyOracleOn<ImplicitGraph>;

/// The all-healthy syndrome (every test 0) — used to calibrate partition
/// certification without materialising anything. View-independent, so it
/// needs no graph at all; the CSR-reference ctor is kept for callers that
/// have one handy.
class FaultFreeOracle final : public SyndromeOracle {
 public:
  FaultFreeOracle() = default;
  explicit FaultFreeOracle(const Graph& g) : SyndromeOracle(g) {}

 protected:
  [[nodiscard]] bool test_impl(Node, unsigned, unsigned) const override {
    return false;
  }
};

// ---------------------------------------------------------------------------
// Static-dispatch concepts. SetBuilder/Diagnoser template their hot paths on
// the concrete oracle type: a final subclass lets the compiler devirtualise
// and inline test_impl, so every look-up is a plain counter bump plus a
// direct read instead of a virtual call. The virtual SyndromeOracle
// signatures remain the type-erased entry points; both instantiations run
// the same driver code, so results and look-up counts are bit-identical
// (asserted per family/rule/oracle by tests/dispatch_equiv_test.cpp).
// ---------------------------------------------------------------------------

/// Oracle types eligible for the statically-dispatched hot path: concrete
/// (final) SyndromeOracle implementations whose dynamic type the call site
/// knows exactly. The non-final base deliberately fails this concept so a
/// `const SyndromeOracle&` argument binds to the virtual-dispatch overloads.
template <class O>
concept StaticOracle =
    std::derived_from<O, SyndromeOracle> && std::is_final_v<O>;

/// Static oracles additionally serving packed syndrome rows (TableOracle):
/// the driver reads one 64-bit word per (node, pivot) row and accounts the
/// consulted pairs through add_lookups.
template <class O>
concept WordRowOracle = StaticOracle<O> &&
    requires(const O& o, Node u, unsigned i) {
      { o.row_bits(u, i) } -> std::same_as<std::uint64_t>;
    };

// ---------------------------------------------------------------------------
// Bitsliced cohort view: structure-of-arrays over up to 64 TableOracles.
// ---------------------------------------------------------------------------

/// A lane-major, lazily-transposed view of up to 64 syndromes on one graph.
///
/// Row storage (Syndrome / TableOracle::row_bits) packs one syndrome's
/// s_u(pivot, ·) row into a word: bit p = outcome at neighbour position p.
/// The cohort kernel (SetBuilder::run_sliced) wants the *other* axis in
/// registers — for a fixed (u, pivot, p), the outcome of every cohort
/// member at once — so transposed_row() gathers each lane's packed row and
/// flips the 64×64 bit block (transpose64): word p of the result has bit
/// L = lane L's s_u(pivot, p). One gather+transpose then serves up to
/// 64 lanes × degree consults. The transpose is lazy and per-(u, pivot):
/// a whole-table transpose would touch ~60× more pairs than a solve reads.
///
/// Look-up accounting is per lane and charged per *consulted pair*, never
/// per word read, so each lane's counter stays bit-identical to a scalar
/// run of that lane alone: charge(mask) adds one look-up to every lane in
/// the mask. Charges land in vertical (carry-save) bit-plane counters —
/// one ripple-add of the mask, ~2 word ops amortised — instead of a
/// 64-iteration scalar loop per charge; lane_lookups() folds the planes.
/// The kernel flushes lane_lookups() into each TableOracle's counter via
/// add_lookups(), exactly like the scalar word-row path.
///
/// Single-threaded by design (one cohort per worker lane): the transpose
/// scratch and counters are unsynchronised, like every oracle's counter.
///
/// Transposed blocks persist in a per-cohort cache (direct-mapped,
/// kCacheSlots blocks) for the oracle's lifetime — one diagnose_cohort,
/// probes and final runs included. The final unrestricted run re-reads
/// rows the probe phase already flipped (the certified seed's round-1
/// rows at minimum; every shared (node, pivot) when the rules coincide),
/// and a cache hit serves the stored block instead of re-gathering and
/// re-transposing. The cache changes which words are *touched*, never
/// their content — rows are immutable for the cohort's lifetime — so lane
/// results and per-pair charges are bit-identical with it on
/// (tests/dispatch_equiv_test.cpp asserts results, look-ups and hits > 0).
class BitSlicedOracle {
 public:
  static constexpr unsigned kMaxLanes = 64;
  /// Direct-mapped transpose-cache slots (blocks of 64 words, ~1 MiB
  /// resident once touched). Collisions overwrite — the cache is a reuse
  /// accelerator, never a correctness surface.
  static constexpr std::size_t kCacheSlots = 2048;

  explicit BitSlicedOracle(const Graph& g) : graph_(&g) {
    assert(g.max_degree() <= 64 &&
           "BitSlicedOracle: rows wider than one word — use the scalar path");
  }

  /// Registers the next lane (at most 64). The oracle must address the
  /// same adjacency as graph() — the standard cohort-by-shared-spec rule.
  unsigned add_lane(const TableOracle& lane) {
    assert(width_ < kMaxLanes && "BitSlicedOracle: cohort wider than 64");
    lanes_[width_] = &lane;
    // A cached block encodes the cohort width it was built at (unused lanes
    // zero-filled), so widening the cohort invalidates everything.
    if (!cache_tags_.empty()) {
      std::fill(cache_tags_.begin(), cache_tags_.end(), kEmptyTag);
    }
    return width_++;
  }

  [[nodiscard]] unsigned width() const noexcept { return width_; }
  [[nodiscard]] const TableOracle& lane(unsigned i) const noexcept {
    return *lanes_[i];
  }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// All registered lanes as a mask: bit L set for lane L.
  [[nodiscard]] std::uint64_t full_mask() const noexcept {
    return width_ >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << width_) - 1;
  }

  /// The cohort's s_u(pivot, ·) rows flipped lane-major: word p of the
  /// returned array has bit L = lane L's s_u(pivot, p); only words
  /// p < degree(u) are meaningful. Uncounted, like row_bits — callers
  /// charge() exactly the pairs they consult. The pointer targets the
  /// persistent row cache and stays valid until add_lane() or a colliding
  /// (u, pivot) overwrites the slot; treat it as single-use, like scratch.
  [[nodiscard]] const std::uint64_t* transposed_row(Node u,
                                                    unsigned pivot) const {
    const std::uint64_t key = cache_key(u, pivot);
    std::uint64_t* block = cache_block(key);
    if (cache_tags_[cache_slot(key)] == key) {
      ++cache_hits_;
      return block;
    }
    gather_rows(u, pivot);
    for (unsigned i = width_; i < kMaxLanes; ++i) scratch_[i] = 0;
    transpose64(scratch_.data());
    std::copy(scratch_.begin(), scratch_.end(), block);
    cache_tags_[cache_slot(key)] = key;
    return block;
  }

  /// The cached transposed block for (u, pivot), or nullptr when the cache
  /// has no current entry for it. Lets the gather/column fast path (reads
  /// of < 3 columns) still reuse a block a full transpose already paid
  /// for, without paying one itself on a miss.
  [[nodiscard]] const std::uint64_t* cached_row(Node u, unsigned pivot) const {
    if (cache_tags_.empty()) return nullptr;
    const std::uint64_t key = cache_key(u, pivot);
    if (cache_tags_[cache_slot(key)] != key) return nullptr;
    ++cache_hits_;
    return cache_blocks_.data() + cache_slot(key) * kMaxLanes;
  }

  /// Transposed blocks served from the cache since construction. Not an
  /// accounting counter — reset_accounting() leaves it alone (the cache
  /// survives across probes precisely so the final run hits it).
  [[nodiscard]] std::uint64_t row_cache_hits() const noexcept {
    return cache_hits_;
  }

  /// Gathers each lane's packed s_u(pivot, ·) row into internal scratch
  /// *without* transposing — pair with column() when only a few positions
  /// will be consulted. A full 64×64 transpose costs ~770 word ops flat;
  /// extracting a single column costs ~4 per lane, so the gather+column
  /// route wins whenever fewer than ~3 columns are read (deep rounds of a
  /// solve consult ≈1 position per node). Uncounted; invalidates the
  /// previous gather/transpose.
  void gather_rows(Node u, unsigned pivot) const {
    // The row's location is layout-determined and the cohort rule pins all
    // lanes to one graph, so resolve it once instead of re-walking each
    // lane's (identical) offset/degree tables — that alone halves the
    // scattered cache lines a gather touches.
    const Syndrome::RowLocation loc = lanes_[0]->row_location(u, pivot);
    for (unsigned i = 0; i < width_; ++i) {
      scratch_[i] = lanes_[i]->row_bits_at(loc);
    }
  }

  /// Column p of the last gather_rows() block: bit L = lane L's
  /// s_u(pivot, p) — the same word transposed_row()[p] would hold.
  [[nodiscard]] std::uint64_t column(unsigned p) const noexcept {
    std::uint64_t c = 0;
    for (unsigned i = 0; i < width_; ++i) {
      c |= ((scratch_[i] >> p) & std::uint64_t{1}) << i;
    }
    return c;
  }

  // --- per-lane look-up accounting ----------------------------------------

  /// Pending charges per plane before a lane's vertical counter spills into
  /// its scalar slot: 2^kPlanes - 1 = 63.
  static constexpr unsigned kPlanes = 6;

  /// Zeroes every lane counter.
  void reset_accounting() const noexcept {
    served_.fill(0);
    planes_.fill(0);
  }

  /// One syndrome look-up for every lane in `lanes`: a carry-save ripple
  /// add of the mask into the bit planes (bit L of plane k = bit k of lane
  /// L's pending count). The ripple terminates at the first carry-free
  /// plane, so the common cost is one or two word ops, independent of how
  /// many lanes the mask names.
  void charge(std::uint64_t lanes) const noexcept {
    std::uint64_t carry = lanes;
    for (unsigned k = 0; k < kPlanes; ++k) {
      const std::uint64_t t = planes_[k] & carry;
      planes_[k] ^= carry;
      carry = t;
      if (carry == 0) return;
    }
    // Lanes that just wrapped 63 pending charges spill 64 at once.
    for (; carry != 0; carry &= carry - 1) {
      served_[std::countr_zero(carry)] += std::uint64_t{1} << kPlanes;
    }
  }

  /// Look-ups charged to lane L since the last reset_accounting(). Folds
  /// the pending planes first (cheap, and callers read each lane once).
  [[nodiscard]] std::uint64_t lane_lookups(unsigned L) const noexcept {
    fold();
    return served_[L];
  }

 private:
  void fold() const noexcept {
    for (unsigned k = 0; k < kPlanes; ++k) {
      for (std::uint64_t m = planes_[k]; m != 0; m &= m - 1) {
        served_[std::countr_zero(m)] += std::uint64_t{1} << k;
      }
      planes_[k] = 0;
    }
  }

  // (u, pivot) packs into one word because pivot < 64; the tag is the key
  // itself, and kEmptyTag is unreachable (u < 2^32 keeps bit 63 clear).
  static constexpr std::uint64_t kEmptyTag = ~std::uint64_t{0};
  static std::uint64_t cache_key(Node u, unsigned pivot) noexcept {
    return (std::uint64_t{u} << 6) | pivot;
  }
  static std::size_t cache_slot(std::uint64_t key) noexcept {
    static_assert(kCacheSlots == std::size_t{1} << 11);
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> (64 - 11));
  }
  std::uint64_t* cache_block(std::uint64_t key) const {
    if (cache_tags_.empty()) {
      // Lazily sized on first use: a cohort that never transposes (scalar
      // fallback paths) never pays the ~1 MiB.
      cache_tags_.assign(kCacheSlots, kEmptyTag);
      cache_blocks_.resize(kCacheSlots * kMaxLanes);
    }
    return cache_blocks_.data() + cache_slot(key) * kMaxLanes;
  }

  const Graph* graph_;
  unsigned width_ = 0;
  std::array<const TableOracle*, kMaxLanes> lanes_{};
  mutable std::array<std::uint64_t, kMaxLanes> scratch_{};
  mutable std::array<std::uint64_t, kMaxLanes> served_{};
  mutable std::array<std::uint64_t, kPlanes> planes_{};
  mutable std::vector<std::uint64_t> cache_tags_;
  mutable std::vector<std::uint64_t> cache_blocks_;  // slot * kMaxLanes words
  mutable std::uint64_t cache_hits_ = 0;
};

}  // namespace mmdiag
