// Syndrome oracles: how diagnosis algorithms read test results.
//
// §6 of the paper argues that Set_Builder's advantage over Chiang–Tan is
// that it consults only (Δ-1)(Δ/2 + |U_r| - 1) results instead of the whole
// table. Every oracle therefore counts look-ups, and a lazy oracle serves
// syndromes that were never materialised (equivalent to performing tests on
// demand in the machine).
#pragma once

#include <concepts>
#include <cstdint>
#include <memory>
#include <type_traits>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "util/types.hpp"

namespace mmdiag {

class SyndromeOracle {
 public:
  virtual ~SyndromeOracle() = default;

  /// s_u over adjacency positions i != j of u. Counted.
  [[nodiscard]] bool test(Node u, unsigned i, unsigned j) const {
    ++lookups_;
    return test_impl(u, i, j);
  }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() const noexcept { lookups_ = 0; }

  /// Bulk accounting for word-granular readers: a caller that served `n`
  /// logical look-ups from one packed row read records them here so the
  /// counter stays bit-identical to having called test() n times.
  void add_lookups(std::uint64_t n) const noexcept { lookups_ += n; }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 protected:
  explicit SyndromeOracle(const Graph& g) : graph_(&g) {}
  [[nodiscard]] virtual bool test_impl(Node u, unsigned i, unsigned j) const = 0;

 private:
  const Graph* graph_;
  mutable std::uint64_t lookups_ = 0;
};

/// Reads a pre-materialised syndrome table.
class TableOracle final : public SyndromeOracle {
 public:
  TableOracle(const Graph& g, const Syndrome& syndrome)
      : SyndromeOracle(g), syndrome_(&syndrome) {}

  /// Raw word-level row read: bit p = s_u(i, p) for every position p != i
  /// of u (Syndrome::row_bits). Deliberately *uncounted* — a row read is a
  /// physical access pattern, not a batch of logical look-ups. Callers
  /// account exactly the pairs they consult via add_lookups(), so the
  /// counter stays bit-identical to the per-pair test() path (§6's look-up
  /// complexity is about results consulted, not words touched).
  /// Requires degree(u) <= 64.
  [[nodiscard]] std::uint64_t row_bits(Node u, unsigned i) const noexcept {
    return syndrome_->row_bits(u, i);
  }

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    return syndrome_->test(u, i, j);
  }

 private:
  const Syndrome* syndrome_;
};

/// Computes results on demand from the (hidden) fault set — the "perform the
/// test only when consulted" execution mode of §6. Deterministic: repeated
/// look-ups of the same pair agree.
class LazyOracle final : public SyndromeOracle {
 public:
  LazyOracle(const Graph& g, const FaultSet& faults, FaultyBehavior behavior,
             std::uint64_t seed)
      : SyndromeOracle(g), faults_(&faults), behavior_(behavior), seed_(seed) {}

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    const auto adj = graph().neighbors(u);
    const Node v = adj[i];
    const Node w = adj[j];
    if (!faults_->is_faulty(u)) {
      return faults_->is_faulty(v) || faults_->is_faulty(w);
    }
    return faulty_test_result(behavior_, seed_, u, v, w, faults_->is_faulty(v),
                              faults_->is_faulty(w));
  }

 private:
  const FaultSet* faults_;
  FaultyBehavior behavior_;
  std::uint64_t seed_;
};

/// The all-healthy syndrome (every test 0) — used to calibrate partition
/// certification without materialising anything.
class FaultFreeOracle final : public SyndromeOracle {
 public:
  explicit FaultFreeOracle(const Graph& g) : SyndromeOracle(g) {}

 protected:
  [[nodiscard]] bool test_impl(Node, unsigned, unsigned) const override {
    return false;
  }
};

// ---------------------------------------------------------------------------
// Static-dispatch concepts. SetBuilder/Diagnoser template their hot paths on
// the concrete oracle type: a final subclass lets the compiler devirtualise
// and inline test_impl, so every look-up is a plain counter bump plus a
// direct read instead of a virtual call. The virtual SyndromeOracle
// signatures remain the type-erased entry points; both instantiations run
// the same driver code, so results and look-up counts are bit-identical
// (asserted per family/rule/oracle by tests/dispatch_equiv_test.cpp).
// ---------------------------------------------------------------------------

/// Oracle types eligible for the statically-dispatched hot path: concrete
/// (final) SyndromeOracle implementations whose dynamic type the call site
/// knows exactly. The non-final base deliberately fails this concept so a
/// `const SyndromeOracle&` argument binds to the virtual-dispatch overloads.
template <class O>
concept StaticOracle =
    std::derived_from<O, SyndromeOracle> && std::is_final_v<O>;

/// Static oracles additionally serving packed syndrome rows (TableOracle):
/// the driver reads one 64-bit word per (node, pivot) row and accounts the
/// consulted pairs through add_lookups.
template <class O>
concept WordRowOracle = StaticOracle<O> &&
    requires(const O& o, Node u, unsigned i) {
      { o.row_bits(u, i) } -> std::same_as<std::uint64_t>;
    };

}  // namespace mmdiag
