// Syndrome oracles: how diagnosis algorithms read test results.
//
// §6 of the paper argues that Set_Builder's advantage over Chiang–Tan is
// that it consults only (Δ-1)(Δ/2 + |U_r| - 1) results instead of the whole
// table. Every oracle therefore counts look-ups, and a lazy oracle serves
// syndromes that were never materialised (equivalent to performing tests on
// demand in the machine).
#pragma once

#include <cstdint>
#include <memory>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "util/types.hpp"

namespace mmdiag {

class SyndromeOracle {
 public:
  virtual ~SyndromeOracle() = default;

  /// s_u over adjacency positions i != j of u. Counted.
  [[nodiscard]] bool test(Node u, unsigned i, unsigned j) const {
    ++lookups_;
    return test_impl(u, i, j);
  }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() const noexcept { lookups_ = 0; }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 protected:
  explicit SyndromeOracle(const Graph& g) : graph_(&g) {}
  [[nodiscard]] virtual bool test_impl(Node u, unsigned i, unsigned j) const = 0;

 private:
  const Graph* graph_;
  mutable std::uint64_t lookups_ = 0;
};

/// Reads a pre-materialised syndrome table.
class TableOracle final : public SyndromeOracle {
 public:
  TableOracle(const Graph& g, const Syndrome& syndrome)
      : SyndromeOracle(g), syndrome_(&syndrome) {}

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    return syndrome_->test(u, i, j);
  }

 private:
  const Syndrome* syndrome_;
};

/// Computes results on demand from the (hidden) fault set — the "perform the
/// test only when consulted" execution mode of §6. Deterministic: repeated
/// look-ups of the same pair agree.
class LazyOracle final : public SyndromeOracle {
 public:
  LazyOracle(const Graph& g, const FaultSet& faults, FaultyBehavior behavior,
             std::uint64_t seed)
      : SyndromeOracle(g), faults_(&faults), behavior_(behavior), seed_(seed) {}

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned i, unsigned j) const override {
    const auto adj = graph().neighbors(u);
    const Node v = adj[i];
    const Node w = adj[j];
    if (!faults_->is_faulty(u)) {
      return faults_->is_faulty(v) || faults_->is_faulty(w);
    }
    return faulty_test_result(behavior_, seed_, u, v, w, faults_->is_faulty(v),
                              faults_->is_faulty(w));
  }

 private:
  const FaultSet* faults_;
  FaultyBehavior behavior_;
  std::uint64_t seed_;
};

/// The all-healthy syndrome (every test 0) — used to calibrate partition
/// certification without materialising anything.
class FaultFreeOracle final : public SyndromeOracle {
 public:
  explicit FaultFreeOracle(const Graph& g) : SyndromeOracle(g) {}

 protected:
  [[nodiscard]] bool test_impl(Node, unsigned, unsigned) const override {
    return false;
  }
};

}  // namespace mmdiag
