#include "mm/oracle.hpp"

// All oracle methods are inline; this TU exists to anchor the vtables.
namespace mmdiag {}  // namespace mmdiag
