#include "mm/injector.hpp"

#include <stdexcept>

#include "graph/traversal.hpp"
#include "util/bitvec.hpp"

namespace mmdiag {

std::vector<Node> inject_uniform(std::size_t num_nodes, std::size_t count,
                                 Rng& rng) {
  if (count > num_nodes) throw std::invalid_argument("more faults than nodes");
  // Floyd's algorithm for a uniform distinct sample.
  StampSet chosen(num_nodes);
  std::vector<Node> out;
  out.reserve(count);
  for (std::size_t i = num_nodes - count; i < num_nodes; ++i) {
    const auto t = static_cast<Node>(rng.below(i + 1));
    if (chosen.insert(t)) {
      out.push_back(t);
    } else {
      chosen.insert(static_cast<Node>(i));
      out.push_back(static_cast<Node>(i));
    }
  }
  return out;
}

std::vector<Node> inject_surround(const Graph& g, Node center) {
  const auto adj = g.neighbors(center);
  return {adj.begin(), adj.end()};
}

std::vector<Node> inject_clustered(const Graph& g, Node center,
                                   std::size_t count) {
  if (count > g.num_nodes()) throw std::invalid_argument("more faults than nodes");
  if (count == 0) return {};  // the ball of 0 nodes excludes even the centre
  StampSet visited(g.num_nodes());
  std::vector<Node> queue{center};
  visited.insert(center);
  for (std::size_t head = 0; head < queue.size() && queue.size() < count; ++head) {
    for (const Node v : g.neighbors(queue[head])) {
      if (visited.insert(v)) {
        queue.push_back(v);
        if (queue.size() == count) break;
      }
    }
  }
  if (queue.size() < count) {
    throw std::invalid_argument("component around centre smaller than count");
  }
  return queue;
}

std::vector<Node> inject_where(std::size_t num_nodes, std::size_t count,
                               const std::function<bool(Node)>& predicate,
                               Rng& rng) {
  std::vector<Node> pool;
  for (std::size_t v = 0; v < num_nodes; ++v) {
    if (predicate(static_cast<Node>(v))) pool.push_back(static_cast<Node>(v));
  }
  if (pool.size() < count) {
    throw std::invalid_argument("predicate admits fewer nodes than requested");
  }
  // Partial Fisher–Yates over the pool.
  std::vector<Node> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j = i + rng.below(pool.size() - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

}  // namespace mmdiag
