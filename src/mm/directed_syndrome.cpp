#include "mm/directed_syndrome.hpp"

#include <stdexcept>

namespace mmdiag {

DirectedSyndrome::DirectedSyndrome(const Graph& g) {
  const std::size_t n = g.num_nodes();
  offsets_.resize(n + 1);
  degree_.resize(n);
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    offsets_[u] = total;
    const std::uint64_t d = g.degree(static_cast<Node>(u));
    degree_[u] = static_cast<std::uint32_t>(d);
    total += d;
  }
  offsets_[n] = total;
  bits_ = BitVec(total);
}

DirectedSyndrome generate_directed_syndrome(const Graph& g,
                                            const FaultSet& faults,
                                            DiagnosisModel model,
                                            FaultyBehavior behavior,
                                            std::uint64_t seed) {
  if (!is_directed_model(model)) {
    throw std::invalid_argument(
        "generate_directed_syndrome: MM* syndromes are comparator matrices — "
        "use generate_syndrome");
  }
  DirectedSyndrome s(g);
  const std::size_t n = g.num_nodes();
  for (std::size_t u = 0; u < n; ++u) {
    const auto node = static_cast<Node>(u);
    const auto adj = g.neighbors(node);
    const bool u_faulty = faults.is_faulty(node);
    for (unsigned p = 0; p < adj.size(); ++p) {
      s.set_test(node, p,
                 directed_test_result(model, behavior, seed, node, adj[p],
                                      u_faulty, faults.is_faulty(adj[p])));
    }
  }
  return s;
}

}  // namespace mmdiag
