#include "mm/syndrome.hpp"

namespace mmdiag {

Syndrome::Syndrome(const Graph& g) {
  const std::size_t n = g.num_nodes();
  offsets_.resize(n + 1);
  degree_.resize(n);
  std::uint64_t total = 0;
  for (std::size_t u = 0; u < n; ++u) {
    offsets_[u] = total;
    const std::uint64_t d = g.degree(static_cast<Node>(u));
    degree_[u] = static_cast<std::uint32_t>(d);
    total += d * d;
    logical_tests_ += d * (d - 1) / 2;
  }
  offsets_[n] = total;
  bits_ = BitVec(total);
}

Syndrome generate_syndrome(const Graph& g, const FaultSet& faults,
                           FaultyBehavior behavior, std::uint64_t seed) {
  Syndrome s(g);
  const std::size_t n = g.num_nodes();
  for (std::size_t u = 0; u < n; ++u) {
    const auto node = static_cast<Node>(u);
    const auto adj = g.neighbors(node);
    const bool u_faulty = faults.is_faulty(node);
    for (unsigned i = 0; i + 1 < adj.size(); ++i) {
      const bool vi_faulty = faults.is_faulty(adj[i]);
      for (unsigned j = i + 1; j < adj.size(); ++j) {
        const bool vj_faulty = faults.is_faulty(adj[j]);
        const bool result =
            u_faulty ? faulty_test_result(behavior, seed, node, adj[i], adj[j],
                                          vi_faulty, vj_faulty)
                     : (vi_faulty || vj_faulty);
        s.set_test(node, i, j, result);
      }
    }
  }
  return s;
}

}  // namespace mmdiag
