// Directed syndrome oracles — how PMC/BGM diagnosis reads per-arc tests.
//
// The same counted-look-up discipline as the MM* SyndromeOracle family: the
// per-model drivers' complexity claims (and the BGM local-diagnosis bound —
// per-request look-ups within the node's neighbourhood arc count) are about
// results consulted, so every oracle counts. TableOracle's uncounted
// row_bits analogue exists here too for whole-run readers that account in
// bulk via add_lookups.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/fault_set.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

class DirectedOracle {
 public:
  virtual ~DirectedOracle() = default;

  /// Outcome of u testing its p-th neighbour. Counted.
  [[nodiscard]] bool test(Node u, unsigned p) const {
    ++lookups_;
    return test_impl(u, p);
  }

  [[nodiscard]] std::uint64_t lookups() const noexcept { return lookups_; }
  void reset_lookups() const noexcept { lookups_ = 0; }

  /// Bulk accounting for word-granular readers (see SyndromeOracle).
  void add_lookups(std::uint64_t n) const noexcept { lookups_ += n; }

  /// The test semantics this oracle's syndrome was produced under.
  [[nodiscard]] DiagnosisModel model() const noexcept { return model_; }

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 protected:
  DirectedOracle(const Graph& g, DiagnosisModel model)
      : graph_(&g), model_(model) {}
  [[nodiscard]] virtual bool test_impl(Node u, unsigned p) const = 0;

 private:
  const Graph* graph_;
  DiagnosisModel model_;
  mutable std::uint64_t lookups_ = 0;
};

/// Reads a pre-materialised directed syndrome table.
class DirectedTableOracle final : public DirectedOracle {
 public:
  DirectedTableOracle(const Graph& g, const DirectedSyndrome& syndrome,
                      DiagnosisModel model)
      : DirectedOracle(g, model), syndrome_(&syndrome) {}

  /// Raw word-level read of u's whole outgoing run — uncounted, like
  /// TableOracle::row_bits; callers account consulted arcs via
  /// add_lookups(). Requires degree(u) <= 64.
  [[nodiscard]] std::uint64_t row_bits(Node u) const noexcept {
    return syndrome_->row_bits(u);
  }

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned p) const override {
    return syndrome_->test(u, p);
  }

 private:
  const DirectedSyndrome* syndrome_;
};

/// Computes directed results on demand from the (hidden) fault set — the
/// per-arc analogue of LazyOracle. Deterministic: repeated look-ups of the
/// same arc agree.
class DirectedLazyOracle final : public DirectedOracle {
 public:
  DirectedLazyOracle(const Graph& g, const FaultSet& faults,
                     DiagnosisModel model, FaultyBehavior behavior,
                     std::uint64_t seed)
      : DirectedOracle(g, model),
        faults_(&faults),
        behavior_(behavior),
        seed_(seed) {}

 protected:
  [[nodiscard]] bool test_impl(Node u, unsigned p) const override {
    const Node v = graph().neighbor(u, p);
    return directed_test_result(model(), behavior_, seed_, u, v,
                                faults_->is_faulty(u), faults_->is_faulty(v));
  }

 private:
  const FaultSet* faults_;
  FaultyBehavior behavior_;
  std::uint64_t seed_;
};

}  // namespace mmdiag
