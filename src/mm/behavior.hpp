// Faulty-tester behaviours under the MM model.
//
// The model places *no* reliance on a faulty node's comparisons: s_u(v,w)
// may be arbitrarily 0 or 1 when u is faulty. Correct algorithms must return
// the exact fault set for every behaviour, so the library ships several —
// including an adversarial one that inverts the truth — and property tests
// sweep all of them.
#pragma once

#include <cstdint>
#include <string>

#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class FaultyBehavior : std::uint8_t {
  kRandom,          // seeded hash of (u, {v,w}) — arbitrary but repeatable
  kAllZero,         // liar: claims every pair healthy
  kAllOne,          // alarmist: claims every pair suspicious
  kAntiDiagnostic,  // inverts the truth a healthy tester would report
};

[[nodiscard]] std::string to_string(FaultyBehavior b);

/// Inverse of to_string (also accepts the CLI shorthand "anti").
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] FaultyBehavior behavior_from_string(const std::string& name);

inline constexpr FaultyBehavior kAllFaultyBehaviors[] = {
    FaultyBehavior::kRandom, FaultyBehavior::kAllZero, FaultyBehavior::kAllOne,
    FaultyBehavior::kAntiDiagnostic};

/// The result a *faulty* tester u reports for the unordered pair {v,w}.
/// v_faulty/w_faulty describe the true state of the subjects (only the
/// anti-diagnostic behaviour reads them).
[[nodiscard]] bool faulty_test_result(FaultyBehavior behavior,
                                      std::uint64_t seed, Node u, Node v,
                                      Node w, bool v_faulty, bool w_faulty);

/// The outcome of the *directed* test u -> v under a PMC-family model: a
/// healthy u reports v's true state; a faulty u reports whatever the
/// behaviour dictates — except that under kBGM (asymmetric invalidation) a
/// faulty tester testing a faulty unit is forced to report 1 before the
/// behaviour is even consulted. The kRandom stream hashes the *ordered*
/// pair (u, v), so the two arcs of one edge are independent draws — the
/// asymmetric-outcome property directed models need (and tests pin).
/// model must be a directed model (kPMC or kBGM), never kMMStar.
[[nodiscard]] bool directed_test_result(DiagnosisModel model,
                                        FaultyBehavior behavior,
                                        std::uint64_t seed, Node u, Node v,
                                        bool u_faulty, bool v_faulty);

}  // namespace mmdiag
