#include "mm/behavior.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace mmdiag {

std::string to_string(FaultyBehavior b) {
  switch (b) {
    case FaultyBehavior::kRandom:
      return "random";
    case FaultyBehavior::kAllZero:
      return "all-zero";
    case FaultyBehavior::kAllOne:
      return "all-one";
    case FaultyBehavior::kAntiDiagnostic:
      return "anti-diagnostic";
  }
  return "?";
}

FaultyBehavior behavior_from_string(const std::string& name) {
  if (name == "random") return FaultyBehavior::kRandom;
  if (name == "all-zero") return FaultyBehavior::kAllZero;
  if (name == "all-one") return FaultyBehavior::kAllOne;
  if (name == "anti-diagnostic" || name == "anti") {
    return FaultyBehavior::kAntiDiagnostic;
  }
  throw std::invalid_argument("unknown faulty behaviour '" + name + "'");
}

bool faulty_test_result(FaultyBehavior behavior, std::uint64_t seed, Node u,
                        Node v, Node w, bool v_faulty, bool w_faulty) {
  switch (behavior) {
    case FaultyBehavior::kRandom: {
      // Canonicalise the unordered pair so the syndrome is well defined.
      const Node lo = std::min(v, w);
      const Node hi = std::max(v, w);
      const std::uint64_t pair =
          (static_cast<std::uint64_t>(lo) << 32) | hi;
      return (mix64(seed, u, pair) & 1ULL) != 0;
    }
    case FaultyBehavior::kAllZero:
      return false;
    case FaultyBehavior::kAllOne:
      return true;
    case FaultyBehavior::kAntiDiagnostic:
      // A healthy tester would report (v_faulty || w_faulty); invert it.
      return !(v_faulty || w_faulty);
  }
  return false;
}

bool directed_test_result(DiagnosisModel model, FaultyBehavior behavior,
                          std::uint64_t seed, Node u, Node v, bool u_faulty,
                          bool v_faulty) {
  if (!u_faulty) return v_faulty;  // a healthy tester is reliable
  // BGM's asymmetric invalidation: faulty-tests-faulty is forced to 1; the
  // behaviour only governs a faulty tester's reports about healthy units.
  if (model == DiagnosisModel::kBGM && v_faulty) return true;
  switch (behavior) {
    case FaultyBehavior::kRandom:
      // Ordered (u, v): the reverse arc draws independently.
      return (mix64(seed, u, v) & 1ULL) != 0;
    case FaultyBehavior::kAllZero:
      return false;
    case FaultyBehavior::kAllOne:
      return true;
    case FaultyBehavior::kAntiDiagnostic:
      // A healthy tester would report v_faulty; invert it.
      return !v_faulty;
  }
  return false;
}

}  // namespace mmdiag
