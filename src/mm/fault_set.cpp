#include "mm/fault_set.hpp"

#include <algorithm>
#include <stdexcept>

namespace mmdiag {

FaultSet::FaultSet(std::size_t num_nodes, std::vector<Node> faulty)
    : nodes_(std::move(faulty)), member_(num_nodes) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
  for (const Node v : nodes_) {
    if (v >= num_nodes) throw std::invalid_argument("faulty node out of range");
    member_.set(v);
  }
}

}  // namespace mmdiag
