// The syndrome: every node's comparison results over pairs of neighbours.
//
// For a node u of degree d there are d(d-1)/2 unordered neighbour pairs;
// s_u(v,w) is addressed by the *positions* of v and w in u's sorted
// adjacency list. Storage is a full d×d bit matrix per node (both (i,j) and
// (j,i) carry the result, the diagonal stays 0): ~2× the bits of the
// minimal triangular packing, but every row s_u(i, ·) is one contiguous
// d-bit run, so the diagnosis hot path reads a whole row as a single
// word-level extract instead of d strided bit gathers. total_tests() keeps
// reporting the logical count Σ d(d-1)/2 — the layout is an access-path
// choice, not a change to what the syndrome contains.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "util/bitvec.hpp"
#include "util/types.hpp"

namespace mmdiag {

class Syndrome {
 public:
  explicit Syndrome(const Graph& g);

  /// s_u over adjacency positions i != j (order irrelevant).
  [[nodiscard]] bool test(Node u, unsigned i, unsigned j) const noexcept {
    return bits_.get(pair_index(u, i, j));
  }
  void set_test(Node u, unsigned i, unsigned j, bool value) noexcept {
    bits_.assign(pair_index(u, i, j), value);
    bits_.assign(pair_index(u, j, i), value);
  }

  /// The whole row s_u(i, ·) as one packed word: bit p = s_u(i, p) for every
  /// position p != i of u (bit i is 0). One contiguous extract — at most
  /// two word loads, which can only cover a row of up to 64 bits: at
  /// degree 65+ a single word cannot hold the row and extract would
  /// silently truncate it, so the requirement is asserted here and every
  /// caller (SetBuilder's word paths, BitSlicedOracle) gates on
  /// max_degree() <= 64 and falls back to per-pair test() beyond that.
  /// Rows at degree 63/64 that straddle word boundaries stay exact —
  /// pinned by tests/syndrome_test.cpp.
  [[nodiscard]] std::uint64_t row_bits(Node u, unsigned i) const noexcept {
    const std::uint64_t d = degree_[u];
    if (d == 0) return 0;
    assert(d <= 64 && "row_bits: row wider than one word — use test()");
    assert(i < d && "row_bits: pivot position out of range");
    return bits_.extract(offsets_[u] + i * d, static_cast<unsigned>(d));
  }

  /// Split row addressing for cohort readers: the (bit offset, width) of
  /// row s_u(i, ·) depends only on the graph's layout, so every syndrome on
  /// the same graph places the row identically. A caller reading the same
  /// row across many syndromes resolves the address once via row_location()
  /// and issues one raw row_bits_at() per syndrome, instead of re-walking
  /// each syndrome's (identical) offset and degree tables.
  struct RowLocation {
    std::uint64_t bit_offset;
    unsigned width;
  };
  [[nodiscard]] RowLocation row_location(Node u, unsigned i) const noexcept {
    const std::uint64_t d = degree_[u];
    assert(d >= 1 && d <= 64 && "row_location: row wider than one word");
    assert(i < d && "row_location: pivot position out of range");
    return {offsets_[u] + i * d, static_cast<unsigned>(d)};
  }
  [[nodiscard]] std::uint64_t row_bits_at(RowLocation loc) const noexcept {
    return bits_.extract(loc.bit_offset, loc.width);
  }

  /// Logical number of test results stored: Σ_u d(u)(d(u)-1)/2 (each
  /// unordered pair counted once, however the bits are laid out).
  [[nodiscard]] std::uint64_t total_tests() const noexcept {
    return logical_tests_;
  }
  [[nodiscard]] std::uint64_t ones() const noexcept {
    return bits_.count() / 2;  // every result is mirrored across the diagonal
  }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bits_.memory_bytes() + offsets_.size() * sizeof(std::uint64_t) +
           degree_.size() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::uint64_t pair_index(Node u, unsigned i, unsigned j) const noexcept {
    // Row-major within u's d×d block.
    return offsets_[u] + std::uint64_t{i} * degree_[u] + j;
  }

  std::vector<std::uint64_t> offsets_;  // per-node block start
  std::vector<std::uint32_t> degree_;
  std::uint64_t logical_tests_ = 0;
  BitVec bits_;
};

/// Materialise the complete syndrome produced by fault set `faults` with the
/// given faulty-tester behaviour: a healthy u reports s_u(v,w) = 1 iff v or
/// w is faulty; a faulty u reports whatever the behaviour dictates.
[[nodiscard]] Syndrome generate_syndrome(const Graph& g, const FaultSet& faults,
                                         FaultyBehavior behavior,
                                         std::uint64_t seed);

}  // namespace mmdiag
