// The syndrome: every node's comparison results over pairs of neighbours.
//
// For a node u of degree d there are d(d-1)/2 unordered neighbour pairs;
// s_u(v,w) is addressed by the *positions* of v and w in u's sorted
// adjacency list, packed into a triangular bit block per node.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "util/bitvec.hpp"
#include "util/types.hpp"

namespace mmdiag {

class Syndrome {
 public:
  explicit Syndrome(const Graph& g);

  /// s_u over adjacency positions i != j (order irrelevant).
  [[nodiscard]] bool test(Node u, unsigned i, unsigned j) const noexcept {
    return bits_.get(pair_index(u, i, j));
  }
  void set_test(Node u, unsigned i, unsigned j, bool value) noexcept {
    bits_.assign(pair_index(u, i, j), value);
  }

  /// Total number of test results stored: Σ_u d(u)(d(u)-1)/2.
  [[nodiscard]] std::uint64_t total_tests() const noexcept { return bits_.size(); }
  [[nodiscard]] std::uint64_t ones() const noexcept { return bits_.count(); }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bits_.memory_bytes() + offsets_.size() * sizeof(std::uint64_t) +
           degree_.size() * sizeof(std::uint32_t);
  }

 private:
  [[nodiscard]] std::uint64_t pair_index(Node u, unsigned i, unsigned j) const noexcept {
    if (i > j) {
      const unsigned t = i;
      i = j;
      j = t;
    }
    const std::uint64_t d = degree_[u];
    // Triangular index of (i,j), i<j, within u's block.
    return offsets_[u] + i * d - (std::uint64_t{i} * (i + 1)) / 2 + (j - i - 1);
  }

  std::vector<std::uint64_t> offsets_;  // per-node block start
  std::vector<std::uint32_t> degree_;
  BitVec bits_;
};

/// Materialise the complete syndrome produced by fault set `faults` with the
/// given faulty-tester behaviour: a healthy u reports s_u(v,w) = 1 iff v or
/// w is faulty; a faulty u reports whatever the behaviour dictates.
[[nodiscard]] Syndrome generate_syndrome(const Graph& g, const FaultSet& faults,
                                         FaultyBehavior behavior,
                                         std::uint64_t seed);

}  // namespace mmdiag
