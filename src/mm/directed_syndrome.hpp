// Directed syndromes — per-arc test outcomes for the PMC-family models.
//
// Under PMC and BGM every node u tests each neighbour v *individually* and
// *directionally*: the outcome of u -> v is one bit, and the reverse arc
// v -> u is a separate, independent test. Storage is therefore one bit per
// directed arc in CSR order — bit p of node u's run is the outcome of u
// testing its p-th neighbour — which shares the adjacency layout (and the
// position vocabulary: Graph::mirror_position flips an arc) with the MM*
// comparator matrix. A node never tests itself: the layout has no slot for
// a self-arc by construction.
//
// Like Syndrome, a node's whole outgoing run packs into one word for
// degree <= 64 (row_bits), which the local-diagnosis fast path and the
// bench reader use; per-arc test()/set_test stay exact at any degree.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "util/bitvec.hpp"
#include "util/enum_names.hpp"
#include "util/types.hpp"

namespace mmdiag {

class DirectedSyndrome {
 public:
  explicit DirectedSyndrome(const Graph& g);

  /// Outcome of u testing its p-th neighbour. Precondition: p < degree(u).
  [[nodiscard]] bool test(Node u, unsigned p) const noexcept {
    return bits_.get(offsets_[u] + p);
  }
  void set_test(Node u, unsigned p, bool value) noexcept {
    bits_.assign(offsets_[u] + p, value);
  }

  /// All of u's outgoing outcomes as one packed word: bit p = test(u, p).
  /// Requires degree(u) <= 64 (asserted), like Syndrome::row_bits.
  [[nodiscard]] std::uint64_t row_bits(Node u) const noexcept {
    const std::uint64_t d = degree_[u];
    if (d == 0) return 0;
    assert(d <= 64 && "row_bits: row wider than one word — use test()");
    return bits_.extract(offsets_[u], static_cast<unsigned>(d));
  }

  /// Number of directed arcs stored: Σ_u d(u) (= 2|E|). One test per arc.
  [[nodiscard]] std::uint64_t total_tests() const noexcept {
    return bits_.size();
  }
  [[nodiscard]] std::uint64_t ones() const noexcept { return bits_.count(); }
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return bits_.memory_bytes() + offsets_.size() * sizeof(std::uint64_t) +
           degree_.size() * sizeof(std::uint32_t);
  }

 private:
  std::vector<std::uint64_t> offsets_;  // per-node run start (CSR order)
  std::vector<std::uint32_t> degree_;
  BitVec bits_;
};

/// Materialise the complete directed syndrome produced by fault set `faults`
/// under `model`'s test semantics (see directed_test_result): a healthy u
/// reports each neighbour's true state; a faulty u reports per `behavior`,
/// with BGM forcing faulty-tests-faulty arcs to 1.
/// `model` must be a directed model (kPMC or kBGM; throws on kMMStar).
[[nodiscard]] DirectedSyndrome generate_directed_syndrome(
    const Graph& g, const FaultSet& faults, DiagnosisModel model,
    FaultyBehavior behavior, std::uint64_t seed);

}  // namespace mmdiag
