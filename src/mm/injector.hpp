// Fault-set generators for experiments and property tests.
//
// The diagnosis guarantee is worst-case over all fault sets of size <= δ, so
// tests sweep several structurally different injection patterns:
//   uniform   — faults spread independently over V
//   surround  — all neighbours of a centre node (the classic near-ambiguous
//               configuration from §2's diagnosability upper-bound argument)
//   clustered — a BFS ball around a centre (stresses component probing)
//   targeted  — faults confined to chosen partition components (stresses the
//               seed search order of the §5 driver)
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// `count` distinct nodes uniformly at random.
[[nodiscard]] std::vector<Node> inject_uniform(std::size_t num_nodes,
                                               std::size_t count, Rng& rng);

/// All neighbours of `center` (center itself stays healthy).
[[nodiscard]] std::vector<Node> inject_surround(const Graph& g, Node center);

/// `count` nodes nearest to `center` in BFS order (including center; count 0
/// yields the empty set). Throws if the component around `center` has fewer
/// than `count` nodes.
[[nodiscard]] std::vector<Node> inject_clustered(const Graph& g, Node center,
                                                 std::size_t count);

/// `count` distinct nodes sampled uniformly from {v : predicate(v)}.
/// Throws if fewer than `count` nodes satisfy the predicate.
[[nodiscard]] std::vector<Node> inject_where(
    std::size_t num_nodes, std::size_t count,
    const std::function<bool(Node)>& predicate, Rng& rng);

}  // namespace mmdiag
