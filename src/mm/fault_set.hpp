// A set of faulty nodes with O(1) membership queries.
#pragma once

#include <vector>

#include "util/bitvec.hpp"
#include "util/types.hpp"

namespace mmdiag {

class FaultSet {
 public:
  /// Builds from an arbitrary node list (sorted and deduplicated here).
  FaultSet(std::size_t num_nodes, std::vector<Node> faulty);

  [[nodiscard]] bool is_faulty(Node v) const noexcept { return member_.get(v); }
  [[nodiscard]] const std::vector<Node>& nodes() const noexcept { return nodes_; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] std::size_t universe() const noexcept {
    return static_cast<std::size_t>(member_.size());
  }

  [[nodiscard]] bool operator==(const FaultSet& other) const noexcept {
    return nodes_ == other.nodes_;
  }

 private:
  std::vector<Node> nodes_;  // sorted ascending
  BitVec member_;
};

}  // namespace mmdiag
