#include "engine/calibration.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace mmdiag {

std::shared_ptr<const Calibration> build_calibration(
    std::unique_ptr<const Topology> topology, unsigned delta, ParentRule rule,
    bool validate_all, GraphMode mode) {
  if (!topology) {
    throw std::invalid_argument("build_calibration: null topology");
  }
  if (delta == 0) {
    delta = topology->default_fault_bound();
    if (delta == 0) {
      throw DiagnosisUnsupportedError(
          topology->info().name +
          ": diagnosability is not established for these parameters (see "
          "§5's validity conditions); request an explicit delta");
    }
  }
  const bool implicit = resolve_implicit_mode(mode, topology->info());
  const Timer timer;
  auto calibration = std::make_shared<Calibration>();
  calibration->spec = topology->spec();
  calibration->topology = std::move(topology);
  if (implicit) {
    // No edges are ever materialised: the view computes adjacency on the
    // fly and the certification walk runs straight through it.
    calibration->implicit_view =
        std::make_shared<const ImplicitGraph>(calibration->topology);
    calibration->partition =
        find_certified_partition(*calibration->topology,
                                 *calibration->implicit_view, delta, rule,
                                 validate_all);
  } else {
    calibration->graph = calibration->topology->build_graph();
    calibration->partition = find_certified_partition(
        *calibration->topology, calibration->graph, delta, rule, validate_all);
  }
  calibration->build_seconds = timer.seconds();
  return calibration;
}

}  // namespace mmdiag
