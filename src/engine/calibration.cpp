#include "engine/calibration.hpp"

#include <stdexcept>

#include "util/timer.hpp"

namespace mmdiag {

std::shared_ptr<const Calibration> build_calibration(
    std::unique_ptr<const Topology> topology, unsigned delta, ParentRule rule,
    bool validate_all, GraphMode mode, DiagnosisModel model) {
  if (!topology) {
    throw std::invalid_argument("build_calibration: null topology");
  }
  if (delta == 0) {
    delta = topology->default_fault_bound();
    if (delta == 0) {
      throw DiagnosisUnsupportedError(
          topology->info().name +
          ": diagnosability is not established for these parameters (see "
          "§5's validity conditions); request an explicit delta");
    }
  }
  if (is_directed_model(model)) {
    if (mode == GraphMode::kImplicit) {
      throw std::invalid_argument(
          "build_calibration: directed (PMC/BGM) bundles read CSR adjacency; "
          "GraphMode::kImplicit is not available for model " +
          to_string(model));
    }
    // No Set_Builder certification: directed drivers deduce from per-arc
    // outcomes. The bundle is the graph plus the bound parameters.
    const Timer timer;
    auto calibration = std::make_shared<Calibration>();
    calibration->spec = topology->spec();
    calibration->topology = std::move(topology);
    calibration->model = model;
    calibration->graph = calibration->topology->build_graph();
    calibration->partition.delta = delta;
    calibration->partition.rule = rule;
    calibration->build_seconds = timer.seconds();
    return calibration;
  }
  const bool implicit = resolve_implicit_mode(mode, topology->info());
  const Timer timer;
  auto calibration = std::make_shared<Calibration>();
  calibration->spec = topology->spec();
  calibration->topology = std::move(topology);
  if (implicit) {
    // No edges are ever materialised: the view computes adjacency on the
    // fly and the certification walk runs straight through it.
    calibration->implicit_view =
        std::make_shared<const ImplicitGraph>(calibration->topology);
    calibration->partition =
        find_certified_partition(*calibration->topology,
                                 *calibration->implicit_view, delta, rule,
                                 validate_all);
  } else {
    calibration->graph = calibration->topology->build_graph();
    calibration->partition = find_certified_partition(
        *calibration->topology, calibration->graph, delta, rule, validate_all);
  }
  calibration->build_seconds = timer.seconds();
  return calibration;
}

}  // namespace mmdiag
