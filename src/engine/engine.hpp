// DiagnosisEngine — the shared calibration-cache service layer.
//
// Every entry point of this library (CLI one-shot diagnosis, batch
// directories, the differential fuzzer, the benches) needs the same
// expensive fault-independent state per topology spec: Topology + CSR graph
// + certified partition. A production service facing a mixed-spec request
// stream needs exactly one owner of that state, so the engine provides it:
//
//   - a thread-safe LRU cache of immutable shared_ptr<const Calibration>
//     entries keyed by *canonical* spec (Topology::spec(), so "hypercube 7",
//     " hypercube  07" and a registry-parsed equivalent all share one
//     entry) extended with the calibration parameters (delta/rule/validate)
//     when a caller departs from the engine defaults;
//   - per-key striped build locks: concurrent misses on the same key
//     calibrate exactly once (the losers block, then reuse the winner's
//     bundle), while misses on different keys calibrate in parallel;
//   - eviction safety by construction: entries are shared_ptr, so a bundle
//     evicted mid-flight stays alive for every Diagnoser still holding it;
//   - serve(): a mixed-spec request stream fanned over the PR 2 ThreadPool,
//     with per-lane Diagnoser scratch reuse and per-request setup/solve
//     accounting (DiagnosisResult::calibration_reused / setup_seconds).
//
// Results are bit-identical to constructing Diagnoser/BatchDiagnoser
// directly: the engine only decides *where* the calibration lives, never
// what the solver computes (asserted across all registry families by
// tests/engine_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/batch_diagnoser.hpp"
#include "core/diagnoser.hpp"
#include "core/directed_diagnoser.hpp"
#include "engine/calibration.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/oracle.hpp"
#include "util/thread_pool.hpp"

namespace mmdiag {

struct EngineOptions {
  /// Resident calibration entries; at least 1 (0 is clamped to 1). Sized by
  /// the number of *distinct specs in flight*, not by traffic volume.
  std::size_t cache_capacity = 8;
  /// serve() worker lanes (calling thread included); 0 = hardware.
  unsigned threads = 0;
  /// Per-request defaults: rule/delta/validate_all select the calibration,
  /// the remaining fields configure each per-request Diagnoser.
  DiagnoserOptions diagnoser;
  /// GraphView selection for calibrations this engine builds. kAuto keeps
  /// small instances on CSR (which also serves TableOracle/batch requests)
  /// and switches large implicit-capable topologies to the O(1)-memory
  /// ImplicitGraph. The resolved choice is part of the cache key, so one
  /// engine never conflates the two representations of a spec.
  GraphMode graph_mode = GraphMode::kAuto;
  /// Owner/halo sharding for diagnose() (the MM* syndrome entry point).
  /// 1 = always monolithic (default). N in [2, ShardPlan::kMaxShards] =
  /// always shard into N when the request is shardable — a TableOracle
  /// syndrome, degree <= 64, and deferred rules; a ShardedDiagnoser
  /// constructor error (e.g. kLeastFirst) then propagates. 0 = auto: shard
  /// at hardware-thread count once the instance crosses
  /// kShardAutoNodeThreshold nodes, silently staying monolithic whenever
  /// the request is not shardable. Results are bit-identical either way
  /// (tests/shard_test.cpp asserts the routed-vs-monolithic contract).
  unsigned shards = 1;
};

/// Auto sharding (EngineOptions::shards == 0) engages above this many
/// nodes: below it the monolithic solve is already cache-resident and the
/// per-shard plan/exchange overhead cannot pay for itself.
inline constexpr std::size_t kShardAutoNodeThreshold = std::size_t{1} << 20;

/// Monotonic cache counters (entries is a snapshot). misses counts actual
/// calibration builds: racing misses on one key resolve to one miss for the
/// winner and hits for the losers.
struct EngineCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  // total = evictions_lru + evictions_explicit
  std::uint64_t evictions_lru = 0;       // capacity pressure
  std::uint64_t evictions_explicit = 0;  // invalidate()/invalidate_all()
  std::size_t entries = 0;
};

/// One unit of a mixed-spec request stream. The oracle is consulted by
/// exactly one lane (its look-up counter is unsynchronised), so pass one
/// oracle per request, never a shared one.
///
/// Exactly one of `oracle` (MM* comparator syndrome) and `directed`
/// (PMC/BGM per-arc syndrome; the model tag travels on the oracle) may be
/// set. A directed request with `local_node` set asks only for that node's
/// status: under BGM it is served by the local-diagnosis fast path first —
/// neighbourhood reads, no global solve — falling back to a full
/// DirectedDiagnoser solve only on kUnknown. The result then reports
/// success with faults = {local_node} (faulty) or {} (healthy), and
/// used_local_fast_path says which path answered.
struct EngineRequest {
  std::string spec;
  const SyndromeOracle* oracle = nullptr;
  const DirectedOracle* directed = nullptr;
  Node local_node = kNoNode;
};

class DiagnosisEngine {
 public:
  explicit DiagnosisEngine(EngineOptions options = {});

  DiagnosisEngine(const DiagnosisEngine&) = delete;
  DiagnosisEngine& operator=(const DiagnosisEngine&) = delete;

  /// Get-or-build under the engine's default calibration parameters.
  /// Thread-safe; throws std::invalid_argument on unknown specs and
  /// DiagnosisUnsupportedError when the instance cannot certify the bound.
  [[nodiscard]] std::shared_ptr<const Calibration> calibration(
      const std::string& spec);

  /// Get-or-build with explicit parameters (delta = 0 resolves to the
  /// topology's default fault bound). The fuzzer uses this to hold both
  /// probe-rule calibrations of one instance side by side. Directed models
  /// get their own cache entries — the key gains a "|model=" tag — holding
  /// an uncertified CSR bundle (see build_calibration).
  [[nodiscard]] std::shared_ptr<const Calibration> calibration(
      const std::string& spec, unsigned delta, ParentRule rule,
      bool validate_all = true,
      DiagnosisModel model = DiagnosisModel::kMMStar);

  /// Diagnose one syndrome through the cache. Thread-safe (a fresh
  /// Diagnoser is built per call — use serve() to amortise scratch across a
  /// stream). Fills the result's calibration_reused/setup_seconds split.
  [[nodiscard]] DiagnosisResult diagnose(const std::string& spec,
                                         const SyndromeOracle& oracle);

  /// Diagnose one directed (PMC/BGM) syndrome through the cache; the model
  /// tag comes from the oracle. Thread-safe; a fresh DirectedDiagnoser is
  /// built per call.
  [[nodiscard]] DiagnosisResult diagnose_directed(
      const std::string& spec, const DirectedOracle& oracle);

  /// Decide one node's status under BGM: the local fast path first, a full
  /// solve only on kUnknown (see EngineRequest::local_node for the result
  /// convention). Throws std::invalid_argument on a non-BGM oracle or an
  /// out-of-range node.
  [[nodiscard]] DiagnosisResult local_diagnose(const std::string& spec,
                                               const DirectedOracle& oracle,
                                               Node node);

  /// Diagnose a mixed-spec request stream over the engine's ThreadPool,
  /// reusing per-lane Diagnoser scratch per calibration. requests[i] ->
  /// results[i]. Per-request failures (unknown spec, uncertifiable bound)
  /// become failed results, never exceptions — one bad request must not
  /// poison a stream. Serialised: concurrent serve() calls run one at a
  /// time (each already uses every pool lane).
  [[nodiscard]] std::vector<DiagnosisResult> serve(
      const std::vector<EngineRequest>& requests);

  /// A Diagnoser wired to the cached calibration via shared ownership —
  /// safe to keep after the entry is evicted or the engine destroyed.
  [[nodiscard]] std::unique_ptr<Diagnoser> make_diagnoser(
      const std::string& spec);

  /// As above with explicit per-diagnoser options; the calibration is
  /// looked up (or built) under options.rule/delta/validate_all_components
  /// so the pair can never mismatch.
  [[nodiscard]] std::unique_ptr<Diagnoser> make_diagnoser(
      const std::string& spec, const DiagnoserOptions& diagnoser_options);

  /// Same for a whole BatchDiagnoser (threads = 0 means hardware).
  [[nodiscard]] std::unique_ptr<BatchDiagnoser> make_batch_diagnoser(
      const std::string& spec, unsigned threads = 0);

  /// Explicitly retire every cached calibration of `spec` (all delta/rule/
  /// model variants — the key stem is the canonical spec). Returns how many
  /// entries were dropped; they count as explicit evictions, never LRU.
  /// In-flight holders keep their bundles alive (shared_ptr); the next
  /// request for the spec rebuilds. Throws std::invalid_argument on a spec
  /// the registry cannot parse. This is how churn retires calibrations
  /// whose topology has drifted too far from the base.
  std::size_t invalidate(const std::string& spec);

  /// Drop every cached calibration (explicit evictions). Returns the count.
  std::size_t invalidate_all();

  [[nodiscard]] EngineCounters counters() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] unsigned threads() const noexcept { return pool_.size(); }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const Calibration> calibration;
  };
  using LruList = std::list<Entry>;

  /// Canonicalise the spec (parsing it into a topology as a by-product),
  /// resolve delta, and return the full cache key.
  struct ResolvedKey {
    std::string key;
    std::unique_ptr<const Topology> topology;  // consumed on build
    unsigned delta = 0;
    bool implicit = false;  // resolved from options_.graph_mode
  };
  [[nodiscard]] ResolvedKey resolve(const std::string& spec, unsigned delta,
                                    ParentRule rule, bool validate_all,
                                    DiagnosisModel model) const;

  [[nodiscard]] std::shared_ptr<const Calibration> get_or_build(
      const std::string& spec, unsigned delta, ParentRule rule,
      bool validate_all, DiagnosisModel model, bool* reused);

  EngineOptions options_;
  std::size_t capacity_;
  ThreadPool pool_;

  mutable std::mutex mu_;  // guards lru_/index_/counters_
  LruList lru_;            // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_;
  EngineCounters counters_;

  /// Build-time locks, striped by key hash: held across a calibration build
  /// so racing misses on one key build once, while other stripes proceed.
  /// Never acquired while holding mu_.
  static constexpr std::size_t kStripes = 16;
  std::array<std::mutex, kStripes> stripes_;

  std::mutex serve_mu_;  // parallel_for is not reentrant
  /// lane_scratch_[lane] maps calibration -> that lane's driver; touched
  /// only by lane `lane` inside serve()'s parallel_for. A calibration is
  /// MM* or directed (the model is in its cache key), so exactly one of
  /// the two driver slots is populated per entry.
  struct LaneDiagnoser {
    std::shared_ptr<const Calibration> calibration;
    std::unique_ptr<Diagnoser> diagnoser;
    std::unique_ptr<DirectedDiagnoser> directed;
  };
  std::vector<std::unordered_map<const Calibration*, LaneDiagnoser>>
      lane_scratch_;

  /// Drops scratch entries whose calibration the LRU has since evicted.
  void prune_stale(
      std::unordered_map<const Calibration*, LaneDiagnoser>& scratch) const;
};

}  // namespace mmdiag
