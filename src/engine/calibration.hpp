// Calibration — the immutable per-instance bundle the engine shares.
//
// Everything fault-independent about one topology instance lives here: the
// Topology (adjacency arithmetic, constants), its materialised CSR graph,
// and the certified partition with the ParentRule/delta it was calibrated
// under. Building one is the dominant setup cost of the §5 driver, which is
// exactly why the engine caches them; once built, a Calibration is
// immutable and shared by shared_ptr, so a cache eviction can never
// invalidate a bundle a Diagnoser is still using.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/certified_partition.hpp"
#include "graph/graph.hpp"
#include "graph/implicit_graph.hpp"
#include "topology/topology.hpp"
#include "util/enum_names.hpp"

namespace mmdiag {

// GraphMode (and its name helpers) lives in util/enum_names.hpp. kAuto
// picks kImplicit for implicit-capable topologies at or above
// kImplicitAutoNodeThreshold nodes — where the CSR arrays start to
// dominate memory — and kCsr below it, keeping small instances on the
// path that also serves materialised-syndrome (TableOracle) requests.

inline constexpr std::uint64_t kImplicitAutoNodeThreshold = std::uint64_t{1}
                                                            << 17;

[[nodiscard]] inline bool resolve_implicit_mode(GraphMode mode,
                                                const TopologyInfo& info) {
  switch (mode) {
    case GraphMode::kCsr:
      return false;
    case GraphMode::kImplicit:
      return true;
    case GraphMode::kAuto:
      break;
  }
  return info.num_nodes >= kImplicitAutoNodeThreshold &&
         info.degree <= ImplicitGraph::kMaxDegree;
}

struct Calibration {
  std::string spec;  // canonical Topology::spec() — the cache-key stem
  std::shared_ptr<const Topology> topology;
  /// The test semantics this bundle serves. MM* bundles carry a certified
  /// partition; directed (PMC/BGM) bundles skip certification — the §5
  /// probe machinery is comparison-model-specific — and carry only the
  /// delta/rule parameters in an empty partition.
  DiagnosisModel model = DiagnosisModel::kMMStar;
  Graph graph;  // empty when is_implicit()
  std::shared_ptr<const ImplicitGraph> implicit_view;  // null when CSR
  CertifiedPartition partition;  // carries its calibration rule and delta
  double build_seconds = 0;      // graph build + partition calibration cost

  [[nodiscard]] unsigned delta() const noexcept { return partition.delta; }
  [[nodiscard]] ParentRule rule() const noexcept { return partition.rule; }
  [[nodiscard]] bool is_implicit() const noexcept {
    return implicit_view != nullptr;
  }
  [[nodiscard]] bool is_directed() const noexcept {
    return is_directed_model(model);
  }
};

/// An aliasing handle to the bundle's graph: the pointee is
/// `&calibration->graph` but the control block is the whole Calibration, so
/// handing this to the shared-ownership Diagnoser/BatchDiagnoser
/// constructors keeps Topology and partition alive too.
[[nodiscard]] inline std::shared_ptr<const Graph> graph_handle(
    std::shared_ptr<const Calibration> calibration) {
  const Graph* graph = &calibration->graph;
  return std::shared_ptr<const Graph>(std::move(calibration), graph);
}

/// The implicit-view counterpart of graph_handle. The view already owns the
/// topology through its own shared_ptr, so the handle keeps everything a
/// Diagnoser needs alive.
[[nodiscard]] inline std::shared_ptr<const ImplicitGraph> implicit_handle(
    const std::shared_ptr<const Calibration>& calibration) {
  return calibration->implicit_view;
}

/// Build a bundle from an already-parsed topology. `delta` = 0 resolves to
/// topology->default_fault_bound() (throws DiagnosisUnsupportedError when
/// that is unknown, with the same guidance the Diagnoser gives); non-zero
/// delta is used as-is. Throws DiagnosisUnsupportedError when no partition
/// plan certifies the bound under `rule`. `mode` selects the GraphView: in
/// implicit mode no edge is ever materialised — calibration itself runs
/// through the closed-form adjacency.
///
/// `model` tags the bundle's test semantics. Directed models (kPMC/kBGM)
/// need no partition certification — their drivers deduce from per-arc
/// outcomes, not Set_Builder probes — so the bundle materialises the CSR
/// graph (directed solvers read adjacency both ways; `mode` must not be
/// kImplicit, throws std::invalid_argument) and records delta/rule in an
/// uncertified partition.
[[nodiscard]] std::shared_ptr<const Calibration> build_calibration(
    std::unique_ptr<const Topology> topology, unsigned delta, ParentRule rule,
    bool validate_all, GraphMode mode = GraphMode::kCsr,
    DiagnosisModel model = DiagnosisModel::kMMStar);

}  // namespace mmdiag
