// Calibration — the immutable per-instance bundle the engine shares.
//
// Everything fault-independent about one topology instance lives here: the
// Topology (adjacency arithmetic, constants), its materialised CSR graph,
// and the certified partition with the ParentRule/delta it was calibrated
// under. Building one is the dominant setup cost of the §5 driver, which is
// exactly why the engine caches them; once built, a Calibration is
// immutable and shared by shared_ptr, so a cache eviction can never
// invalidate a bundle a Diagnoser is still using.
#pragma once

#include <memory>
#include <string>

#include "core/certified_partition.hpp"
#include "graph/graph.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

struct Calibration {
  std::string spec;  // canonical Topology::spec() — the cache-key stem
  std::unique_ptr<const Topology> topology;
  Graph graph;
  CertifiedPartition partition;  // carries its calibration rule and delta
  double build_seconds = 0;      // graph build + partition calibration cost

  [[nodiscard]] unsigned delta() const noexcept { return partition.delta; }
  [[nodiscard]] ParentRule rule() const noexcept { return partition.rule; }
};

/// An aliasing handle to the bundle's graph: the pointee is
/// `&calibration->graph` but the control block is the whole Calibration, so
/// handing this to the shared-ownership Diagnoser/BatchDiagnoser
/// constructors keeps Topology and partition alive too.
[[nodiscard]] inline std::shared_ptr<const Graph> graph_handle(
    std::shared_ptr<const Calibration> calibration) {
  const Graph* graph = &calibration->graph;
  return std::shared_ptr<const Graph>(std::move(calibration), graph);
}

/// Build a bundle from an already-parsed topology. `delta` = 0 resolves to
/// topology->default_fault_bound() (throws DiagnosisUnsupportedError when
/// that is unknown, with the same guidance the Diagnoser gives); non-zero
/// delta is used as-is. Throws DiagnosisUnsupportedError when no partition
/// plan certifies the bound under `rule`.
[[nodiscard]] std::shared_ptr<const Calibration> build_calibration(
    std::unique_ptr<const Topology> topology, unsigned delta, ParentRule rule,
    bool validate_all);

}  // namespace mmdiag
