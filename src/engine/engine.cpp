#include "engine/engine.hpp"

#include <algorithm>
#include <array>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include <thread>

#include "distributed/sharded_diagnoser.hpp"
#include "topology/registry.hpp"
#include "util/timer.hpp"

namespace mmdiag {

namespace {

/// Diagnoser over whichever GraphView the calibration carries, with shared
/// ownership of the whole bundle either way.
std::unique_ptr<Diagnoser> make_calibrated_diagnoser(
    const std::shared_ptr<const Calibration>& cal,
    const DiagnoserOptions& options) {
  if (cal->is_implicit()) {
    return std::make_unique<Diagnoser>(implicit_handle(cal), cal->partition,
                                       options);
  }
  return std::make_unique<Diagnoser>(graph_handle(cal), cal->partition,
                                     options);
}

/// Result convention for a definite local answer: success about one node.
DiagnosisResult definite_local(LocalDiagnosisStatus status,
                               std::uint64_t lookups, Node node) {
  DiagnosisResult out;
  out.success = true;
  if (status == LocalDiagnosisStatus::kFaulty) out.faults.push_back(node);
  out.lookups = lookups;
  out.used_local_fast_path = true;
  return out;
}

/// Narrow a global solve down to the one node a local request asked about,
/// folding the fast path's (inconclusive) reads into the look-up count.
DiagnosisResult restrict_to_node(DiagnosisResult global, Node node,
                                 std::uint64_t local_lookups) {
  global.lookups += local_lookups;
  if (global.success) {
    const bool faulty = std::binary_search(global.faults.begin(),
                                           global.faults.end(), node);
    global.faults.clear();
    if (faulty) global.faults.push_back(node);
  }
  return global;
}

/// One directed request, start to finish: a plain global solve, or —
/// when local_node is set — the BGM fast path with global fallback.
DiagnosisResult run_directed(DirectedDiagnoser& driver, const Graph& graph,
                             const DirectedOracle& oracle, Node local_node) {
  if (local_node == kNoNode) return driver.diagnose(oracle);
  const Timer timer;
  const LocalDiagnosisResult local =
      bgm_local_diagnose(graph, oracle, local_node);
  if (local.status != LocalDiagnosisStatus::kUnknown) {
    DiagnosisResult out = definite_local(local.status, local.lookups,
                                         local_node);
    out.diagnose_seconds = timer.seconds();
    return out;
  }
  DiagnosisResult out =
      restrict_to_node(driver.diagnose(oracle), local_node, local.lookups);
  out.diagnose_seconds = timer.seconds();
  return out;
}

}  // namespace

DiagnosisEngine::DiagnosisEngine(EngineOptions options)
    : options_(options),
      capacity_(options.cache_capacity == 0 ? 1 : options.cache_capacity),
      pool_(options.threads),
      lane_scratch_(pool_.size()) {}

DiagnosisEngine::ResolvedKey DiagnosisEngine::resolve(
    const std::string& spec, unsigned delta, ParentRule rule,
    bool validate_all, DiagnosisModel model) const {
  ResolvedKey out;
  out.topology = make_topology_from_spec(spec);
  out.delta = delta != 0 ? delta : out.topology->default_fault_bound();
  // out.delta may still be 0 (diagnosability unknown): the key is then never
  // inserted because build_calibration throws its descriptive error first.
  // Directed bundles are CSR-only (their drivers read adjacency both ways),
  // so a graph_mode preference never leaks into their keys.
  out.implicit = !is_directed_model(model) &&
                 resolve_implicit_mode(options_.graph_mode,
                                       out.topology->info());
  out.key = out.topology->spec();
  out.key += "|delta=" + std::to_string(out.delta);
  out.key += "|rule=" + parent_rule_to_string(rule);
  if (!validate_all) out.key += "|component0-only";
  if (out.implicit) out.key += "|implicit";
  if (is_directed_model(model)) {
    out.key += "|model=" + diagnosis_model_to_string(model);
  }
  return out;
}

std::shared_ptr<const Calibration> DiagnosisEngine::get_or_build(
    const std::string& spec, unsigned delta, ParentRule rule,
    bool validate_all, DiagnosisModel model, bool* reused) {
  ResolvedKey resolved = resolve(spec, delta, rule, validate_all, model);
  if (reused) *reused = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = index_.find(resolved.key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++counters_.hits;
      return it->second->calibration;
    }
  }

  // Miss: serialise builds of this key on its stripe (other stripes — other
  // specs — keep calibrating in parallel), then re-check. A racer that
  // loses the stripe finds the winner's entry here and scores a counter
  // *hit* (one build per key, however many threads miss simultaneously) —
  // but it blocked for the whole build, so for latency attribution it is
  // reported as not-reused: calibration_reused describes what this request
  // waited for, the hit/miss counters describe what was built.
  const std::lock_guard<std::mutex> build_lock(
      stripes_[std::hash<std::string>{}(resolved.key) % kStripes]);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = index_.find(resolved.key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++counters_.hits;
      if (reused) *reused = false;
      return it->second->calibration;
    }
  }

  std::shared_ptr<const Calibration> built = build_calibration(
      std::move(resolved.topology), resolved.delta, rule, validate_all,
      resolved.implicit ? GraphMode::kImplicit : GraphMode::kCsr, model);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    lru_.push_front(Entry{resolved.key, built});
    index_[resolved.key] = lru_.begin();
    ++counters_.misses;
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++counters_.evictions;  // holders keep the evicted bundle alive
      ++counters_.evictions_lru;
    }
  }
  if (reused) *reused = false;
  return built;
}

std::shared_ptr<const Calibration> DiagnosisEngine::calibration(
    const std::string& spec) {
  return get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                      options_.diagnoser.validate_all_components,
                      DiagnosisModel::kMMStar, nullptr);
}

std::shared_ptr<const Calibration> DiagnosisEngine::calibration(
    const std::string& spec, unsigned delta, ParentRule rule,
    bool validate_all, DiagnosisModel model) {
  return get_or_build(spec, delta, rule, validate_all, model, nullptr);
}

DiagnosisResult DiagnosisEngine::diagnose(const std::string& spec,
                                          const SyndromeOracle& oracle) {
  const Timer setup_timer;
  bool reused = false;
  const std::shared_ptr<const Calibration> cal =
      get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                   options_.diagnoser.validate_all_components,
                   DiagnosisModel::kMMStar, &reused);

  // Owner/halo sharded routing (EngineOptions::shards). Explicit N > 1
  // shards whenever the oracle carries a materialised table the shard
  // stores can re-partition (option errors like a kLeastFirst rule then
  // propagate from the ShardedDiagnoser constructor); auto (0) additionally
  // requires the instance to be big enough to pay for the plan and the
  // rules to be shardable, silently staying monolithic otherwise. Either
  // route returns bit-identical results (tests/shard_test.cpp).
  if (options_.shards != 1) {
    const auto* table = dynamic_cast<const TableOracle*>(&oracle);
    const bool row_capable =
        table != nullptr && cal->topology->info().degree <= 64;
    unsigned shards = options_.shards;
    if (shards == 0) {
      const bool deferred_rules =
          options_.diagnoser.rule != ParentRule::kLeastFirst &&
          options_.diagnoser.final_rule != ParentRule::kLeastFirst;
      const std::size_t nodes = cal->topology->info().num_nodes;
      if (row_capable && deferred_rules &&
          nodes >= kShardAutoNodeThreshold) {
        shards = std::clamp(std::thread::hardware_concurrency(), 2u,
                            unsigned{ShardPlan::kMaxShards});
      } else {
        shards = 1;  // not shardable or not worth it: monolithic
      }
    }
    if (shards > 1 && row_capable) {
      ShardedOptions sharded;
      sharded.shards = shards;
      sharded.threads = options_.threads;
      sharded.diagnoser = options_.diagnoser;
      ShardedDiagnoser engine(cal->topology, cal->partition, sharded);
      const double setup_seconds = setup_timer.seconds();
      DiagnosisResult result = engine.diagnose(table->syndrome());
      result.shards_used = shards;
      result.calibration_reused = reused;
      result.setup_seconds = setup_seconds;
      return result;
    }
    // Falling through leaves shards_used = 1: the fallback to a monolithic
    // solve is visible in the result, never silent.
  }

  const std::unique_ptr<Diagnoser> diagnoser =
      make_calibrated_diagnoser(cal, options_.diagnoser);
  const double setup_seconds = setup_timer.seconds();
  DiagnosisResult result = diagnose_devirtualized(*diagnoser, oracle);
  result.calibration_reused = reused;
  result.setup_seconds = setup_seconds;
  return result;
}

DiagnosisResult DiagnosisEngine::diagnose_directed(
    const std::string& spec, const DirectedOracle& oracle) {
  const Timer setup_timer;
  bool reused = false;
  const std::shared_ptr<const Calibration> cal =
      get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                   options_.diagnoser.validate_all_components, oracle.model(),
                   &reused);
  DirectedDiagnoser driver(cal->graph, cal->delta());
  const double setup_seconds = setup_timer.seconds();
  DiagnosisResult result = driver.diagnose(oracle);
  result.calibration_reused = reused;
  result.setup_seconds = setup_seconds;
  return result;
}

DiagnosisResult DiagnosisEngine::local_diagnose(const std::string& spec,
                                                const DirectedOracle& oracle,
                                                Node node) {
  const Timer setup_timer;
  bool reused = false;
  const std::shared_ptr<const Calibration> cal =
      get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                   options_.diagnoser.validate_all_components, oracle.model(),
                   &reused);
  const double setup_seconds = setup_timer.seconds();
  const Timer solve_timer;
  const LocalDiagnosisResult local = bgm_local_diagnose(cal->graph, oracle,
                                                        node);
  DiagnosisResult result;
  if (local.status != LocalDiagnosisStatus::kUnknown) {
    // The fast path answered: no DirectedDiagnoser is even constructed —
    // per-request cost stays at the neighbourhood reads.
    result = definite_local(local.status, local.lookups, node);
  } else {
    DirectedDiagnoser driver(cal->graph, cal->delta());
    result = restrict_to_node(driver.diagnose(oracle), node, local.lookups);
  }
  result.diagnose_seconds = solve_timer.seconds();
  result.calibration_reused = reused;
  result.setup_seconds = setup_seconds;
  return result;
}

std::vector<DiagnosisResult> DiagnosisEngine::serve(
    const std::vector<EngineRequest>& requests) {
  const std::lock_guard<std::mutex> serve_lock(serve_mu_);
  std::vector<DiagnosisResult> results(requests.size());

  // Bitsliced cohorts: full 64-wide runs of same-spec TableOracle requests
  // (in request order per spec) each become one lockstep solve
  // (Diagnoser::diagnose_cohort) on whichever lane picks them up; the
  // per-spec remainder and every other request stay scalar items.
  // get_or_build still runs once per *request*, so cache hit/miss counters
  // and per-request calibration_reused semantics are exactly the scalar
  // path's. Per-syndrome results and look-up counts are bit-identical
  // either way.
  std::vector<std::vector<std::size_t>> cohorts;
  std::vector<std::size_t> scalar_idx;
  {
    std::unordered_map<std::string, std::vector<std::size_t>> by_spec;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const EngineRequest& rq = requests[i];
      if (rq.oracle != nullptr && rq.oracle->has_graph() &&
          dynamic_cast<const TableOracle*>(rq.oracle) != nullptr &&
          rq.oracle->graph().max_degree() <= 64) {
        by_spec[rq.spec].push_back(i);
      }
    }
    std::vector<char> in_cohort(requests.size(), 0);
    for (auto& [spec, idx] : by_spec) {
      for (std::size_t k = 0; k + BitSlicedOracle::kMaxLanes <= idx.size();
           k += BitSlicedOracle::kMaxLanes) {
        cohorts.emplace_back(idx.begin() + k,
                             idx.begin() + k + BitSlicedOracle::kMaxLanes);
        for (const std::size_t i : cohorts.back()) in_cohort[i] = 1;
      }
    }
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (in_cohort[i] == 0) scalar_idx.push_back(i);
    }
  }

  // Lane-local Diagnoser per calibration: scratch (frontiers, stamp sets)
  // is reused across the stream without crossing threads. Stale entries
  // for evicted calibrations can never be looked up again (the pointer
  // differs), so on overflow those are pruned first — keeping total pinned
  // memory proportional to the cache capacity, not to threads x capacity —
  // and only if every entry is still resident is the map cleared outright.
  auto lane_diagnoser =
      [&](unsigned lane,
          const std::shared_ptr<const Calibration>& cal) -> Diagnoser& {
    auto& scratch = lane_scratch_[lane];
    auto it = scratch.find(cal.get());
    if (it == scratch.end()) {
      if (scratch.size() >= capacity_) {
        prune_stale(scratch);
        if (scratch.size() >= capacity_) scratch.clear();
      }
      it = scratch
               .emplace(cal.get(),
                        LaneDiagnoser{cal,
                                      make_calibrated_diagnoser(
                                          cal, options_.diagnoser),
                                      nullptr})
               .first;
    }
    return *it->second.diagnoser;
  };

  // The directed counterpart: one DirectedDiagnoser per directed
  // calibration per lane. Model-tagged keys mean a calibration is MM* or
  // directed, never both, so the two scratch kinds never collide on a key.
  auto lane_directed =
      [&](unsigned lane,
          const std::shared_ptr<const Calibration>& cal) -> DirectedDiagnoser& {
    auto& scratch = lane_scratch_[lane];
    auto it = scratch.find(cal.get());
    if (it == scratch.end()) {
      if (scratch.size() >= capacity_) {
        prune_stale(scratch);
        if (scratch.size() >= capacity_) scratch.clear();
      }
      LaneDiagnoser entry;
      entry.calibration = cal;
      entry.directed =
          std::make_unique<DirectedDiagnoser>(cal->graph, cal->delta());
      it = scratch.emplace(cal.get(), std::move(entry)).first;
    }
    return *it->second.directed;
  };

  pool_.parallel_for(
      cohorts.size() + scalar_idx.size(),
      [&](unsigned lane, std::size_t item) {
        if (item < cohorts.size()) {
          const std::vector<std::size_t>& idx = cohorts[item];
          try {
            const Timer setup_timer;
            std::shared_ptr<const Calibration> cal;
            std::array<bool, BitSlicedOracle::kMaxLanes> reused{};
            for (std::size_t k = 0; k < idx.size(); ++k) {
              bool r = false;
              cal = get_or_build(requests[idx[k]].spec,
                                 options_.diagnoser.delta,
                                 options_.diagnoser.rule,
                                 options_.diagnoser.validate_all_components,
                                 DiagnosisModel::kMMStar, &r);
              reused[k] = r;
            }
            Diagnoser& diagnoser = lane_diagnoser(lane, cal);
            const double setup_seconds = setup_timer.seconds();
            if (cal->is_implicit()) {
              // Cohorts bitslice through CSR row layout; an implicit
              // calibration serves its TableOracle requests scalar instead
              // (same results, no lockstep).
              for (std::size_t k = 0; k < idx.size(); ++k) {
                DiagnosisResult r =
                    diagnose_devirtualized(diagnoser, *requests[idx[k]].oracle);
                r.calibration_reused = reused[k];
                r.setup_seconds = setup_seconds;
                results[idx[k]] = std::move(r);
              }
              return;
            }
            std::vector<const TableOracle*> cohort;
            cohort.reserve(idx.size());
            for (const std::size_t i : idx) {
              cohort.push_back(
                  static_cast<const TableOracle*>(requests[i].oracle));
            }
            auto res = diagnoser.diagnose_cohort(cohort);
            for (std::size_t k = 0; k < idx.size(); ++k) {
              res[k].calibration_reused = reused[k];
              res[k].setup_seconds = setup_seconds;
              results[idx[k]] = std::move(res[k]);
            }
          } catch (const std::exception& e) {
            // A failing cohort fails alone; the stream goes on.
            for (const std::size_t i : idx) {
              results[i] = DiagnosisResult{};
              results[i].failure_reason =
                  std::string("engine setup failed: ") + e.what();
            }
          }
          return;
        }
        const std::size_t i = scalar_idx[item - cohorts.size()];
        const EngineRequest& request = requests[i];
        DiagnosisResult& out = results[i];
        if (request.oracle != nullptr && request.directed != nullptr) {
          out.failure_reason =
              "request carries both an MM* and a directed oracle";
          return;
        }
        if (request.oracle == nullptr && request.directed == nullptr) {
          out.failure_reason = "null oracle in request";
          return;
        }
        if (request.local_node != kNoNode && request.directed == nullptr) {
          out.failure_reason =
              "local_node is set but the request has no directed oracle";
          return;
        }
        try {
          const Timer setup_timer;
          bool reused = false;
          if (request.directed != nullptr) {
            const std::shared_ptr<const Calibration> cal = get_or_build(
                request.spec, options_.diagnoser.delta,
                options_.diagnoser.rule,
                options_.diagnoser.validate_all_components,
                request.directed->model(), &reused);
            DirectedDiagnoser& driver = lane_directed(lane, cal);
            const double setup_seconds = setup_timer.seconds();
            out = run_directed(driver, cal->graph, *request.directed,
                               request.local_node);
            out.calibration_reused = reused;
            out.setup_seconds = setup_seconds;
            return;
          }
          const std::shared_ptr<const Calibration> cal = get_or_build(
              request.spec, options_.diagnoser.delta, options_.diagnoser.rule,
              options_.diagnoser.validate_all_components,
              DiagnosisModel::kMMStar, &reused);
          Diagnoser& diagnoser = lane_diagnoser(lane, cal);
          const double setup_seconds = setup_timer.seconds();
          out = diagnose_devirtualized(diagnoser, *request.oracle);
          out.calibration_reused = reused;
          out.setup_seconds = setup_seconds;
        } catch (const std::exception& e) {
          // A malformed or unsupported request fails alone.
          out = DiagnosisResult{};
          out.failure_reason = std::string("engine setup failed: ") + e.what();
        }
      });
  return results;
}

std::unique_ptr<Diagnoser> DiagnosisEngine::make_diagnoser(
    const std::string& spec) {
  return make_diagnoser(spec, options_.diagnoser);
}

std::unique_ptr<Diagnoser> DiagnosisEngine::make_diagnoser(
    const std::string& spec, const DiagnoserOptions& diagnoser_options) {
  const std::shared_ptr<const Calibration> cal = get_or_build(
      spec, diagnoser_options.delta, diagnoser_options.rule,
      diagnoser_options.validate_all_components, DiagnosisModel::kMMStar,
      nullptr);
  return make_calibrated_diagnoser(cal, diagnoser_options);
}

std::unique_ptr<BatchDiagnoser> DiagnosisEngine::make_batch_diagnoser(
    const std::string& spec, unsigned threads) {
  const std::shared_ptr<const Calibration> cal = calibration(spec);
  if (cal->is_implicit()) {
    throw std::invalid_argument(
        "make_batch_diagnoser: batch lanes bitslice through CSR syndrome "
        "rows; use EngineOptions::graph_mode = GraphMode::kCsr for '" +
        spec + "'");
  }
  BatchOptions batch;
  batch.threads = threads;
  batch.diagnoser = options_.diagnoser;
  return std::make_unique<BatchDiagnoser>(graph_handle(cal), cal->partition,
                                          batch);
}

void DiagnosisEngine::prune_stale(
    std::unordered_map<const Calibration*, LaneDiagnoser>& scratch) const {
  std::unordered_set<const Calibration*> resident;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    resident.reserve(lru_.size());
    for (const Entry& entry : lru_) resident.insert(entry.calibration.get());
  }
  std::erase_if(scratch, [&](const auto& kv) {
    return resident.find(kv.first) == resident.end();
  });
}

std::size_t DiagnosisEngine::invalidate(const std::string& spec) {
  // Canonicalise through the registry so "hypercube  07" retires the
  // "hypercube 7" entries; unknown specs throw rather than silently
  // matching nothing.
  const std::string stem = make_topology_from_spec(spec)->spec();
  const std::string prefix = stem + "|";
  std::size_t dropped = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key == stem || it->key.rfind(prefix, 0) == 0) {
      index_.erase(it->key);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  counters_.evictions += dropped;
  counters_.evictions_explicit += dropped;
  return dropped;
}

std::size_t DiagnosisEngine::invalidate_all() {
  const std::lock_guard<std::mutex> lock(mu_);
  const std::size_t dropped = lru_.size();
  index_.clear();
  lru_.clear();
  counters_.evictions += dropped;
  counters_.evictions_explicit += dropped;
  return dropped;
}

EngineCounters DiagnosisEngine::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  EngineCounters out = counters_;
  out.entries = lru_.size();
  return out;
}

}  // namespace mmdiag
