#include "engine/engine.hpp"

#include <functional>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "topology/registry.hpp"
#include "util/timer.hpp"

namespace mmdiag {

DiagnosisEngine::DiagnosisEngine(EngineOptions options)
    : options_(options),
      capacity_(options.cache_capacity == 0 ? 1 : options.cache_capacity),
      pool_(options.threads),
      lane_scratch_(pool_.size()) {}

DiagnosisEngine::ResolvedKey DiagnosisEngine::resolve(const std::string& spec,
                                                      unsigned delta,
                                                      ParentRule rule,
                                                      bool validate_all) const {
  ResolvedKey out;
  out.topology = make_topology_from_spec(spec);
  out.delta = delta != 0 ? delta : out.topology->default_fault_bound();
  // out.delta may still be 0 (diagnosability unknown): the key is then never
  // inserted because build_calibration throws its descriptive error first.
  out.key = out.topology->spec();
  out.key += "|delta=" + std::to_string(out.delta);
  out.key += "|rule=" + parent_rule_to_string(rule);
  if (!validate_all) out.key += "|component0-only";
  return out;
}

std::shared_ptr<const Calibration> DiagnosisEngine::get_or_build(
    const std::string& spec, unsigned delta, ParentRule rule,
    bool validate_all, bool* reused) {
  ResolvedKey resolved = resolve(spec, delta, rule, validate_all);
  if (reused) *reused = true;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = index_.find(resolved.key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++counters_.hits;
      return it->second->calibration;
    }
  }

  // Miss: serialise builds of this key on its stripe (other stripes — other
  // specs — keep calibrating in parallel), then re-check. A racer that
  // loses the stripe finds the winner's entry here and scores a counter
  // *hit* (one build per key, however many threads miss simultaneously) —
  // but it blocked for the whole build, so for latency attribution it is
  // reported as not-reused: calibration_reused describes what this request
  // waited for, the hit/miss counters describe what was built.
  const std::lock_guard<std::mutex> build_lock(
      stripes_[std::hash<std::string>{}(resolved.key) % kStripes]);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (const auto it = index_.find(resolved.key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++counters_.hits;
      if (reused) *reused = false;
      return it->second->calibration;
    }
  }

  std::shared_ptr<const Calibration> built = build_calibration(
      std::move(resolved.topology), resolved.delta, rule, validate_all);
  {
    const std::lock_guard<std::mutex> lock(mu_);
    lru_.push_front(Entry{resolved.key, built});
    index_[resolved.key] = lru_.begin();
    ++counters_.misses;
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().key);
      lru_.pop_back();
      ++counters_.evictions;  // holders keep the evicted bundle alive
    }
  }
  if (reused) *reused = false;
  return built;
}

std::shared_ptr<const Calibration> DiagnosisEngine::calibration(
    const std::string& spec) {
  return get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                      options_.diagnoser.validate_all_components, nullptr);
}

std::shared_ptr<const Calibration> DiagnosisEngine::calibration(
    const std::string& spec, unsigned delta, ParentRule rule,
    bool validate_all) {
  return get_or_build(spec, delta, rule, validate_all, nullptr);
}

DiagnosisResult DiagnosisEngine::diagnose(const std::string& spec,
                                          const SyndromeOracle& oracle) {
  const Timer setup_timer;
  bool reused = false;
  const std::shared_ptr<const Calibration> cal =
      get_or_build(spec, options_.diagnoser.delta, options_.diagnoser.rule,
                   options_.diagnoser.validate_all_components, &reused);
  Diagnoser diagnoser(graph_handle(cal), cal->partition, options_.diagnoser);
  const double setup_seconds = setup_timer.seconds();
  DiagnosisResult result = diagnose_devirtualized(diagnoser, oracle);
  result.calibration_reused = reused;
  result.setup_seconds = setup_seconds;
  return result;
}

std::vector<DiagnosisResult> DiagnosisEngine::serve(
    const std::vector<EngineRequest>& requests) {
  const std::lock_guard<std::mutex> serve_lock(serve_mu_);
  std::vector<DiagnosisResult> results(requests.size());
  pool_.parallel_for(requests.size(), [&](unsigned lane, std::size_t i) {
    const EngineRequest& request = requests[i];
    DiagnosisResult& out = results[i];
    if (request.oracle == nullptr) {
      out.failure_reason = "null oracle in request";
      return;
    }
    try {
      const Timer setup_timer;
      bool reused = false;
      const std::shared_ptr<const Calibration> cal = get_or_build(
          request.spec, options_.diagnoser.delta, options_.diagnoser.rule,
          options_.diagnoser.validate_all_components, &reused);
      // Lane-local Diagnoser per calibration: scratch (frontiers, stamp
      // sets) is reused across the stream without crossing threads. Stale
      // entries for evicted calibrations can never be looked up again (the
      // pointer differs), so on overflow those are pruned first — keeping
      // total pinned memory proportional to the cache capacity, not to
      // threads x capacity — and only if every entry is still resident is
      // the map cleared outright.
      auto& scratch = lane_scratch_[lane];
      auto it = scratch.find(cal.get());
      if (it == scratch.end()) {
        if (scratch.size() >= capacity_) {
          prune_stale(scratch);
          if (scratch.size() >= capacity_) scratch.clear();
        }
        it = scratch
                 .emplace(cal.get(),
                          LaneDiagnoser{cal, std::make_unique<Diagnoser>(
                                                 graph_handle(cal),
                                                 cal->partition,
                                                 options_.diagnoser)})
                 .first;
      }
      const double setup_seconds = setup_timer.seconds();
      out = diagnose_devirtualized(*it->second.diagnoser, *request.oracle);
      out.calibration_reused = reused;
      out.setup_seconds = setup_seconds;
    } catch (const std::exception& e) {
      // A malformed or unsupported request fails alone; the stream goes on.
      out = DiagnosisResult{};
      out.failure_reason = std::string("engine setup failed: ") + e.what();
    }
  });
  return results;
}

std::unique_ptr<Diagnoser> DiagnosisEngine::make_diagnoser(
    const std::string& spec) {
  return make_diagnoser(spec, options_.diagnoser);
}

std::unique_ptr<Diagnoser> DiagnosisEngine::make_diagnoser(
    const std::string& spec, const DiagnoserOptions& diagnoser_options) {
  const std::shared_ptr<const Calibration> cal = get_or_build(
      spec, diagnoser_options.delta, diagnoser_options.rule,
      diagnoser_options.validate_all_components, nullptr);
  return std::make_unique<Diagnoser>(graph_handle(cal), cal->partition,
                                     diagnoser_options);
}

std::unique_ptr<BatchDiagnoser> DiagnosisEngine::make_batch_diagnoser(
    const std::string& spec, unsigned threads) {
  const std::shared_ptr<const Calibration> cal = calibration(spec);
  BatchOptions batch;
  batch.threads = threads;
  batch.diagnoser = options_.diagnoser;
  return std::make_unique<BatchDiagnoser>(graph_handle(cal), cal->partition,
                                          batch);
}

void DiagnosisEngine::prune_stale(
    std::unordered_map<const Calibration*, LaneDiagnoser>& scratch) const {
  std::unordered_set<const Calibration*> resident;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    resident.reserve(lru_.size());
    for (const Entry& entry : lru_) resident.insert(entry.calibration.get());
  }
  std::erase_if(scratch, [&](const auto& kv) {
    return resident.find(kv.first) == resident.end();
  });
}

EngineCounters DiagnosisEngine::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  EngineCounters out = counters_;
  out.entries = lru_.size();
  return out;
}

}  // namespace mmdiag
