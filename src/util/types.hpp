// Fundamental scalar types shared by every mmdiag module.
#pragma once

#include <cstddef>
#include <cstdint>

namespace mmdiag {

/// Node identifier. Topologies index their nodes densely in [0, num_nodes).
using Node = std::uint32_t;

/// Sentinel used where "no node" must be representable (e.g. tree roots).
inline constexpr Node kNoNode = static_cast<Node>(-1);

/// Edge/adjacency offsets can exceed 32 bits on large instances.
using EdgeIndex = std::uint64_t;

}  // namespace mmdiag
