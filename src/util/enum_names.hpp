// The shared enum <-> name tables of the library's public vocabulary.
//
// ParentRule, GraphMode and DiagnosisModel each used to carry (or were about
// to grow) their own to_string/from_string pair, and the CLI, the repro
// format and the differ configs each re-spelled the names. One header now
// owns the enums and their canonical spellings; every consumer — CLI flags,
// .repro provenance lines, syndrome-file headers, differ config labels —
// goes through these functions, so a new enumerator is added in exactly one
// place.
//
// from_string parsers canonicalise '_' to '-' (so "least_first" and
// "least-first" both parse) and throw std::invalid_argument naming the
// expected spellings, which the CLI surfaces as a usage diagnostic.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace mmdiag {

// ---------------------------------------------------------------------------
// ParentRule — Set_Builder's growth-tree parent selection (core/set_builder
// documents the semantics of each rule; this header only names them).
// ---------------------------------------------------------------------------

enum class ParentRule : std::uint8_t {
  kLeastFirst,
  kSpread,
  kLeastSync,
  kHashSpread,
};

inline constexpr ParentRule kAllParentRules[] = {
    ParentRule::kLeastFirst, ParentRule::kSpread, ParentRule::kLeastSync,
    ParentRule::kHashSpread};

// ---------------------------------------------------------------------------
// GraphMode — which GraphView a calibration (and the Diagnosers built on it)
// uses; engine/calibration.hpp documents the kAuto resolution rule.
// ---------------------------------------------------------------------------

enum class GraphMode : std::uint8_t { kAuto, kCsr, kImplicit };

inline constexpr GraphMode kAllGraphModes[] = {GraphMode::kAuto, GraphMode::kCsr,
                                               GraphMode::kImplicit};

// ---------------------------------------------------------------------------
// DiagnosisModel — the test semantics a syndrome was produced under.
//
//   kMMStar — the comparison model: node u compares each unordered pair
//     {v,w} of its neighbours; a healthy u reports 1 iff v or w is faulty,
//     a faulty u reports arbitrarily. Mirrored d×d bit-matrix syndrome.
//   kPMC — directed per-edge tests with symmetric invalidation: u tests
//     each neighbour v individually; a healthy u reports v's true state, a
//     faulty u reports arbitrarily (regardless of v's state).
//   kBGM — PMC's asymmetric-invalidation variant: as kPMC, except a faulty
//     tester testing a *faulty* unit is forced to report 1. Hence any
//     0-outcome certifies the tested unit healthy no matter who tested it —
//     the property the BGM local-diagnosis fast path is built on.
// ---------------------------------------------------------------------------

enum class DiagnosisModel : std::uint8_t { kMMStar, kPMC, kBGM };

inline constexpr DiagnosisModel kAllDiagnosisModels[] = {
    DiagnosisModel::kMMStar, DiagnosisModel::kPMC, DiagnosisModel::kBGM};

// ---------------------------------------------------------------------------
// Name tables. to_string returns the canonical spelling; from_string accepts
// canonical and underscore spellings (plus the documented shorthands).
// ---------------------------------------------------------------------------

namespace detail {
inline std::string canonical_enum_name(const std::string& name) {
  std::string canon = name;
  std::replace(canon.begin(), canon.end(), '_', '-');
  return canon;
}
}  // namespace detail

[[nodiscard]] inline std::string to_string(ParentRule rule) {
  switch (rule) {
    case ParentRule::kLeastFirst:
      return "least-first";
    case ParentRule::kSpread:
      return "spread";
    case ParentRule::kLeastSync:
      return "least-sync";
    case ParentRule::kHashSpread:
      return "hash-spread";
  }
  return "?";
}

/// Named form of to_string(ParentRule) for call sites that also handle
/// other enums' names (CLI flags, repro files) and want to say which
/// mapping they mean.
[[nodiscard]] inline std::string parent_rule_to_string(ParentRule rule) {
  return to_string(rule);
}

/// Inverse of parent_rule_to_string (also accepts underscore variants such
/// as "least_first"). Throws std::invalid_argument on unknown names —
/// shared by the CLI's --rule flag and repro IO, mirroring
/// behavior_from_string.
[[nodiscard]] inline ParentRule parent_rule_from_string(
    const std::string& name) {
  const std::string canon = detail::canonical_enum_name(name);
  for (const ParentRule rule : kAllParentRules) {
    if (canon == to_string(rule)) return rule;
  }
  throw std::invalid_argument("unknown parent rule '" + name +
                              "' (expected least-first, spread, least-sync, "
                              "or hash-spread)");
}

[[nodiscard]] inline std::string to_string(GraphMode mode) {
  switch (mode) {
    case GraphMode::kAuto:
      return "auto";
    case GraphMode::kCsr:
      return "csr";
    case GraphMode::kImplicit:
      return "implicit";
  }
  return "?";
}

[[nodiscard]] inline std::string graph_mode_to_string(GraphMode mode) {
  return to_string(mode);
}

/// Inverse of graph_mode_to_string; throws std::invalid_argument on unknown
/// names (the CLI's --graph-mode flag reports it as a usage error).
[[nodiscard]] inline GraphMode graph_mode_from_string(const std::string& name) {
  const std::string canon = detail::canonical_enum_name(name);
  for (const GraphMode mode : kAllGraphModes) {
    if (canon == to_string(mode)) return mode;
  }
  throw std::invalid_argument("unknown graph mode '" + name +
                              "' (expected auto, csr, or implicit)");
}

[[nodiscard]] inline std::string to_string(DiagnosisModel model) {
  switch (model) {
    case DiagnosisModel::kMMStar:
      return "mm-star";
    case DiagnosisModel::kPMC:
      return "pmc";
    case DiagnosisModel::kBGM:
      return "bgm";
  }
  return "?";
}

[[nodiscard]] inline std::string diagnosis_model_to_string(
    DiagnosisModel model) {
  return to_string(model);
}

/// Inverse of diagnosis_model_to_string (also accepts the CLI shorthand
/// "mm" and the underscore variant "mm_star"). Throws std::invalid_argument
/// on unknown names — shared by the CLI's --model flag, repro IO and the
/// syndrome-file model header.
[[nodiscard]] inline DiagnosisModel diagnosis_model_from_string(
    const std::string& name) {
  const std::string canon = detail::canonical_enum_name(name);
  if (canon == "mm") return DiagnosisModel::kMMStar;
  for (const DiagnosisModel model : kAllDiagnosisModels) {
    if (canon == to_string(model)) return model;
  }
  throw std::invalid_argument("unknown diagnosis model '" + name +
                              "' (expected mm-star, pmc, or bgm)");
}

/// True for the models whose syndromes are directed per-arc outcomes
/// (DirectedSyndrome / DirectedOracle) rather than MM*'s comparator matrix.
[[nodiscard]] inline constexpr bool is_directed_model(
    DiagnosisModel model) noexcept {
  return model != DiagnosisModel::kMMStar;
}

}  // namespace mmdiag
