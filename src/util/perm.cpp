#include "util/perm.hpp"

#include <stdexcept>

namespace mmdiag {

std::uint64_t falling_factorial(unsigned n, unsigned k) {
  if (k > n) throw std::invalid_argument("falling_factorial: k > n");
  std::uint64_t result = 1;
  for (unsigned i = 0; i < k; ++i) {
    const std::uint64_t factor = n - i;
    if (result > UINT64_MAX / factor) {
      throw std::overflow_error("falling_factorial overflows 64 bits");
    }
    result *= factor;
  }
  return result;
}

std::uint64_t factorial(unsigned n) { return falling_factorial(n, n); }

PermCodec::PermCodec(unsigned n, unsigned k) : n_(n), k_(k) {
  if (k == 0 || k > n) throw std::invalid_argument("PermCodec: need 1 <= k <= n");
  if (n > 64) throw std::invalid_argument("PermCodec: n too large");
  count_ = falling_factorial(n, k);
  place_value_.resize(k);
  // Position i has n-i symbol choices, so its place value is the number of
  // arrangements of the remaining positions: place[k-1] = 1 and
  // place[i-1] = place[i] * (n-i).
  std::uint64_t v = 1;
  for (unsigned i = k; i-- > 0;) {
    place_value_[i] = v;
    v *= (n - i);
  }
}

void PermCodec::unrank(std::uint64_t rank, std::uint8_t* out) const {
  // Decode the mixed-radix digits, then map digit -> i-th unused symbol.
  std::uint8_t digits[64];
  for (unsigned i = 0; i < k_; ++i) {
    digits[i] = static_cast<std::uint8_t>(rank / place_value_[i]);
    rank %= place_value_[i];
  }
  std::uint64_t used = 0;  // bitmask over symbols 1..n (bit s-1)
  for (unsigned i = 0; i < k_; ++i) {
    // Find the (digits[i]+1)-th unset symbol.
    unsigned remaining = digits[i];
    unsigned s = 0;
    for (;; ++s) {
      if (((used >> s) & 1ULL) == 0) {
        if (remaining == 0) break;
        --remaining;
      }
    }
    used |= 1ULL << s;
    out[i] = static_cast<std::uint8_t>(s + 1);
  }
}

std::uint64_t PermCodec::rank(const std::uint8_t* arrangement) const {
  std::uint64_t rank = 0;
  std::uint64_t used = 0;
  for (unsigned i = 0; i < k_; ++i) {
    const unsigned s = arrangement[i] - 1;
    // Digit = number of unused symbols smaller than s.
    const std::uint64_t below = used & ((1ULL << s) - 1);
    const unsigned digit = s - static_cast<unsigned>(__builtin_popcountll(below));
    rank += digit * place_value_[i];
    used |= 1ULL << s;
  }
  return rank;
}

}  // namespace mmdiag
