// Minimal aligned-column table writer for bench/example output.
//
// Benches print the rows the paper's evaluation implies (per-theorem sweeps,
// §6 look-up comparisons) in both human-readable and CSV form.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <type_traits>
#include <vector>

namespace mmdiag {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers.
  template <typename T, typename = std::enable_if_t<std::is_integral_v<T>>>
  static std::string num(T v) {
    return std::to_string(v);
  }
  static std::string num(double v, int precision = 3);

  void print(std::ostream& os) const;       // aligned text
  void print_csv(std::ostream& os) const;   // machine readable

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmdiag
