// Ranking / unranking of k-permutations ("arrangements") of {1,...,n}.
//
// Star graphs, (n,k)-stars, pancake graphs and arrangement graphs all name
// their nodes by sequences of k distinct symbols drawn from {1..n}. We index
// them densely in [0, n!/(n-k)!) with a mixed-radix Lehmer-style code:
// position 0 has n choices, position 1 has n-1 remaining choices, etc.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mmdiag {

/// n!/(n-k)! as a 64-bit value. Throws std::overflow_error if it does not fit.
[[nodiscard]] std::uint64_t falling_factorial(unsigned n, unsigned k);

/// n! (n <= 20).
[[nodiscard]] std::uint64_t factorial(unsigned n);

/// Encoder/decoder between dense ranks and arrangements.
///
/// Symbols are 1-based (1..n) to match the interconnection-network
/// literature; an arrangement is stored as a vector of k symbols, position 0
/// being "the first position" of the papers.
class PermCodec {
 public:
  PermCodec(unsigned n, unsigned k);

  [[nodiscard]] unsigned n() const noexcept { return n_; }
  [[nodiscard]] unsigned k() const noexcept { return k_; }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }

  /// rank -> arrangement (out must have size k).
  void unrank(std::uint64_t rank, std::uint8_t* out) const;

  /// arrangement -> rank.
  [[nodiscard]] std::uint64_t rank(const std::uint8_t* arrangement) const;

 private:
  unsigned n_;
  unsigned k_;
  std::uint64_t count_;
  std::vector<std::uint64_t> place_value_;  // place_value_[i] = (n-1-i)!/(n-k)!
};

}  // namespace mmdiag
