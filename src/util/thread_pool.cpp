#include "util/thread_pool.hpp"

namespace mmdiag {

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (unsigned lane = 1; lane < threads; ++lane) {
    workers_.emplace_back([this, lane] { worker_loop(lane); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::drain(unsigned lane) {
  // Pull indices until the shared counter runs past the end. After an
  // exception the remaining indices are consumed unexecuted so every lane
  // terminates; the first error is kept and rethrown by parallel_for.
  for (;;) {
    const std::size_t i = next_index_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_count_) return;
    if (has_error_.load(std::memory_order_relaxed)) continue;
    try {
      (*job_)(lane, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      has_error_.store(true, std::memory_order_relaxed);
    }
  }
}

void ThreadPool::worker_loop(unsigned lane) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_ready_.wait(lock, [&] { return stopping_ || job_epoch_ != seen_epoch; });
      if (stopping_) return;
      seen_epoch = job_epoch_;
    }
    drain(lane);
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (--lanes_busy_ == 0) work_done_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t count, const std::function<void(unsigned, std::size_t)>& fn) {
  if (count == 0) return;
  if (workers_.empty()) {
    // Sequential fast path: no atomics, no signalling.
    for (std::size_t i = 0; i < count; ++i) fn(0, i);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    job_count_ = count;
    first_error_ = nullptr;
    has_error_.store(false, std::memory_order_relaxed);
    next_index_.store(0, std::memory_order_relaxed);
    lanes_busy_ = static_cast<unsigned>(workers_.size());
    ++job_epoch_;
  }
  work_ready_.notify_all();
  drain(0);  // the caller is lane 0
  {
    std::unique_lock<std::mutex> lock(mu_);
    work_done_.wait(lock, [&] { return lanes_busy_ == 0; });
    job_ = nullptr;
    if (first_error_) {
      std::exception_ptr err = first_error_;
      first_error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }
}

}  // namespace mmdiag
