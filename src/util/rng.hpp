// Small deterministic PRNG utilities.
//
// All randomness in the library (fault injection, faulty-tester behaviour)
// flows through these generators so that every experiment is reproducible
// from a single 64-bit seed.
#pragma once

#include <cstdint>
#include <limits>

namespace mmdiag {

/// SplitMix64 — used to seed other generators and as a stateless hash.
/// Reference: Steele, Lea & Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateless mixing of several words into one hash; used where a test result
/// must be an *arbitrary but repeatable* function of its arguments (the
/// random faulty-tester behaviour).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  return splitmix64(a ^ splitmix64(b));
}
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b,
                                            std::uint64_t c) noexcept {
  return splitmix64(mix64(a, b) ^ splitmix64(c));
}

/// xoshiro256** 1.0 (Blackman & Vigna) — the workhorse sequential generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    // Expand the seed through SplitMix64 as recommended by the authors.
    for (auto& word : state_) {
      seed = splitmix64(seed);
      word = seed;
    }
  }

  [[nodiscard]] result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    // Lemire's nearly-divisionless rejection method.
    __extension__ using u128 = unsigned __int128;
    std::uint64_t x = (*this)();
    u128 m = static_cast<u128>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<u128>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  [[nodiscard]] bool coin() noexcept { return ((*this)() >> 63) != 0; }

  /// Uniform double in [0,1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

}  // namespace mmdiag
