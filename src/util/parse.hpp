// Strict text-to-integer parsing shared by the CLI and file parsers.
#pragma once

#include <charconv>
#include <cstdint>
#include <limits>
#include <optional>
#include <string_view>

namespace mmdiag {

/// The whole token must be a decimal unsigned integer within
/// [0, max_value]. Anything else — empty, signs, trailing junk ("12junk"),
/// overflow — yields nullopt, so callers turn bad input into their own
/// diagnostics instead of uncaught std::stoul exceptions or silent wraps.
[[nodiscard]] inline std::optional<std::uint64_t> parse_unsigned(
    std::string_view token,
    std::uint64_t max_value = std::numeric_limits<std::uint64_t>::max()) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = begin + token.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (token.empty() || ec != std::errc{} || ptr != end || value > max_value) {
    return std::nullopt;
  }
  return value;
}

}  // namespace mmdiag
