// Monotonic wall-clock timer for example programs and ad-hoc measurements.
// (Benches use google-benchmark's timing; this is for examples/tests.)
#pragma once

#include <chrono>

namespace mmdiag {

class Timer {
 public:
  Timer() : start_(clock::now()) {}
  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace mmdiag
