#include "util/bitvec.hpp"

#include <bit>

namespace mmdiag {

std::uint64_t BitVec::count() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    // Mask tail bits of the final partial word.
    if (i + 1 == words_.size() && (size_ & 63) != 0) {
      w &= (1ULL << (size_ & 63)) - 1;
    }
    total += static_cast<std::uint64_t>(std::popcount(w));
  }
  return total;
}

}  // namespace mmdiag
