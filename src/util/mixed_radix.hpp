// Mixed-radix encoding of tuples in Z_k^n (k-ary n-cube node names).
#pragma once

#include <cstdint>

#include "util/types.hpp"

namespace mmdiag {

/// Tuples are little-endian: digit 0 is coordinate 1 of the papers (the
/// "lowest" dimension); node id = sum digit_i * k^i.
struct TupleCodec {
  unsigned n;       // number of coordinates
  unsigned k;       // radix
  std::uint64_t count;  // k^n

  TupleCodec(unsigned n_, unsigned k_) : n(n_), k(k_), count(1) {
    // Saturate instead of wrapping so callers' size caps (e.g. KAryNCube's
    // "instance too large" check) fire on absurd (n, k) rather than letting
    // k^n alias a small value mod 2^64.
    for (unsigned i = 0; i < n; ++i) {
      if (k != 0 && count > UINT64_MAX / k) {
        count = UINT64_MAX;
        break;
      }
      count *= k;
    }
  }

  void unrank(std::uint64_t id, std::uint8_t* out) const noexcept {
    for (unsigned i = 0; i < n; ++i) {
      out[i] = static_cast<std::uint8_t>(id % k);
      id /= k;
    }
  }

  [[nodiscard]] std::uint64_t rank(const std::uint8_t* digits) const noexcept {
    std::uint64_t id = 0;
    for (unsigned i = n; i-- > 0;) id = id * k + digits[i];
    return id;
  }

  /// Replace coordinate i of id with value v (digits otherwise unchanged).
  [[nodiscard]] std::uint64_t with_digit(std::uint64_t id, unsigned i,
                                         unsigned v) const noexcept {
    std::uint64_t p = 1;
    for (unsigned j = 0; j < i; ++j) p *= k;
    const auto old = (id / p) % k;
    return id + (static_cast<std::uint64_t>(v) - old) * p;
  }
};

}  // namespace mmdiag
