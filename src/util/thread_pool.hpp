// Fixed-size thread pool with a shared-counter parallel_for.
//
// Deliberately work-stealing-free: batch diagnosis partitions work by item
// index and every item is independent, so a single atomic fetch_add is both
// the scheduler and the load balancer. The calling thread participates as
// worker 0, which makes a 1-thread pool run the loop inline with zero
// synchronisation — the sequential baseline every speedup is measured
// against is therefore exactly the sequential code path.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmdiag {

class ThreadPool {
 public:
  /// A pool of `threads` total lanes (callers thread included); 0 means
  /// std::thread::hardware_concurrency(). Spawns threads-1 workers.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes, including the calling thread.
  [[nodiscard]] unsigned size() const noexcept {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// Runs fn(lane, index) for every index in [0, count), spread over all
  /// lanes; lane is in [0, size()) and identifies the executing thread, so
  /// callers may index per-lane scratch. Blocks until every index has run.
  /// The first exception thrown by fn is rethrown here (remaining indices
  /// are still drained so no lane blocks).
  void parallel_for(std::size_t count,
                    const std::function<void(unsigned, std::size_t)>& fn);

 private:
  void worker_loop(unsigned lane);
  void drain(unsigned lane);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_ready_;
  std::condition_variable work_done_;
  const std::function<void(unsigned, std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::uint64_t job_epoch_ = 0;     // bumped per parallel_for call
  unsigned lanes_busy_ = 0;
  bool stopping_ = false;
  std::exception_ptr first_error_;

  std::atomic<std::size_t> next_index_{0};
  std::atomic<bool> has_error_{false};
};

}  // namespace mmdiag
