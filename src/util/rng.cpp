#include "util/rng.hpp"

// Header-only in practice; this TU pins the vtable-free inline definitions
// into the library so downstream users get a stable symbol for debugging.
namespace mmdiag {
namespace {
// Compile-time self-checks of the stateless hash (documented fixed points
// guard against accidental edits changing every seeded experiment).
static_assert(splitmix64(0) == 0xe220a8397b1dcdafULL);
static_assert(mix64(1, 2) != mix64(2, 1), "mix64 must be order sensitive");
}  // namespace
}  // namespace mmdiag
