#include "util/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mmdiag {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: cell count mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(width[c]))
         << cells[c];
    }
    os << " |\n";
  };
  line(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << '|';
  }
  os << '\n';
  for (const auto& row : rows_) line(row);
}

void Table::print_csv(std::ostream& os) const {
  auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c != 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  line(headers_);
  for (const auto& row : rows_) line(row);
}

}  // namespace mmdiag
