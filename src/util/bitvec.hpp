// Packed bit vector and an epoch-stamped node-set.
//
// BitVec backs syndrome tables (hundreds of millions of bits).
// StampSet gives O(1) clear between repeated algorithm runs over the same
// graph, which keeps Set_Builder at O(Δ·|U_r|) rather than O(N) per probe.
#pragma once

#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mmdiag {

/// Fixed-size packed vector of bits.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::uint64_t n, bool value = false)
      : size_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool get(std::uint64_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::uint64_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::uint64_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void assign(std::uint64_t i, bool v) noexcept {
    if (v) {
      set(i);
    } else {
      reset(i);
    }
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Bytes of heap storage (used by memory accounting in benches).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// A set over [0, n) supporting O(1) insert/lookup and O(1) bulk clear via
/// epoch stamps. Membership survives only until the next clear().
class StampSet {
 public:
  StampSet() = default;
  explicit StampSet(std::size_t n) : stamp_(n, 0) {}

  void resize(std::size_t n) {
    stamp_.assign(n, 0);
    epoch_ = 1;
  }

  void clear() noexcept {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the rare O(n) reset
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool contains(Node v) const noexcept { return stamp_[v] == epoch_; }

  /// Returns true if v was newly inserted.
  bool insert(Node v) noexcept {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return stamp_.size(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
};

}  // namespace mmdiag
