// Packed bit vector and an epoch-stamped node-set.
//
// BitVec backs syndrome tables (hundreds of millions of bits).
// StampSet gives O(1) clear between repeated algorithm runs over the same
// graph, which keeps Set_Builder at O(Δ·|U_r|) rather than O(N) per probe.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/types.hpp"

namespace mmdiag {

/// Fixed-size packed vector of bits.
class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::uint64_t n, bool value = false)
      : size_(n), words_((n + 63) / 64, value ? ~0ULL : 0ULL) {}

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

  [[nodiscard]] bool get(std::uint64_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }
  void set(std::uint64_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }
  void reset(std::uint64_t i) noexcept { words_[i >> 6] &= ~(1ULL << (i & 63)); }
  void assign(std::uint64_t i, bool v) noexcept {
    if (v) {
      set(i);
    } else {
      reset(i);
    }
  }

  void clear_all() noexcept {
    for (auto& w : words_) w = 0;
  }

  /// Word-level read: the `len` (1..64) bits starting at bit `start`,
  /// packed little-endian into the low bits of the result. At most two
  /// word loads, so a whole syndrome row costs what one get() used to.
  /// Requires 1 <= len <= 64 and start + len <= size(): both shift
  /// amounts below are then provably < 64 (off != 0 guards the second
  /// shift, len < 64 guards the mask), so no shift-by-width UB path
  /// exists, and the w + 1 load only happens when that word holds bits
  /// the caller asked for.
  [[nodiscard]] std::uint64_t extract(std::uint64_t start, unsigned len) const noexcept {
    assert(len >= 1 && len <= 64 && "extract: len out of [1, 64]");
    assert(start + len <= size_ && "extract: range past the end");
    const std::uint64_t w = start >> 6;
    const unsigned off = static_cast<unsigned>(start & 63);
    std::uint64_t bits = words_[w] >> off;
    if (off != 0 && w + 1 < words_.size()) {
      bits |= words_[w + 1] << (64 - off);
    }
    if (len < 64) bits &= (std::uint64_t{1} << len) - 1;
    return bits;
  }

  [[nodiscard]] std::uint64_t count() const noexcept;

  /// Bytes of heap storage (used by memory accounting in benches).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept {
    return words_.size() * sizeof(std::uint64_t);
  }

 private:
  std::uint64_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

/// In-place 64×64 bit-matrix transpose: on return, bit c of a[r] is the
/// old bit r of a[c]. The recursive block-swap runs 6 stages of masked
/// exchanges (Hacker's Delight 7-3) — a few hundred register ops for all
/// 4096 bits, which is what makes gathering one syndrome row per cohort
/// lane and flipping it into lane-major words cheaper than 64 scalar row
/// walks (see BitSlicedOracle).
inline void transpose64(std::uint64_t a[64]) noexcept {
  std::uint64_t m = 0x00000000FFFFFFFFULL;
  for (unsigned j = 32; j != 0; j >>= 1, m ^= m << j) {
    for (unsigned k = 0; k < 64; k = (k + j + 1) & ~j) {
      const std::uint64_t t = ((a[k] >> j) ^ a[k + j]) & m;
      a[k + j] ^= t;
      a[k] ^= t << j;
    }
  }
}

/// A node set packed one bit per element — 512 bytes per 4096 nodes, so
/// membership tests in hot loops stay L1-resident where a stamp array would
/// thrash (4 bytes per element). clear() zeroes only the words insert()
/// dirtied, so sparse uses (partition probes touching one component of a
/// huge graph) stay O(|set|), not O(n). Membership survives until the next
/// clear(), exactly like StampSet.
class DirtyBitset {
 public:
  DirtyBitset() = default;

  void resize(std::size_t n) {
    words_.assign((n + 63) / 64, 0u);
    dirty_.clear();
    dirty_.reserve(words_.size());
  }

  void clear() noexcept {
    for (const std::uint32_t w : dirty_) words_[w] = 0;
    dirty_.clear();
  }

  [[nodiscard]] bool contains(Node v) const noexcept {
    return (words_[v >> 6] >> (v & 63)) & 1u;
  }

  /// Returns true if v was newly inserted.
  bool insert(Node v) noexcept {
    const std::uint32_t w = static_cast<std::uint32_t>(v >> 6);
    const std::uint64_t bit = std::uint64_t{1} << (v & 63);
    const std::uint64_t word = words_[w];
    if (word & bit) return false;
    if (word == 0) dirty_.push_back(w);
    words_[w] = word | bit;
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return words_.size() * 64;
  }

 private:
  std::vector<std::uint64_t> words_;
  std::vector<std::uint32_t> dirty_;  // indices of nonzero words
};

/// A set over [0, n) supporting O(1) insert/lookup and O(1) bulk clear via
/// epoch stamps. Membership survives only until the next clear().
class StampSet {
 public:
  StampSet() = default;
  explicit StampSet(std::size_t n) : stamp_(n, 0) {}

  void resize(std::size_t n) {
    stamp_.assign(n, 0);
    epoch_ = 1;
  }

  void clear() noexcept {
    ++epoch_;
    if (epoch_ == 0) {  // wrapped: do the rare O(n) reset
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      epoch_ = 1;
    }
  }

  [[nodiscard]] bool contains(Node v) const noexcept { return stamp_[v] == epoch_; }

  /// Returns true if v was newly inserted.
  bool insert(Node v) noexcept {
    if (stamp_[v] == epoch_) return false;
    stamp_[v] = epoch_;
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return stamp_.size(); }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 1;
};

}  // namespace mmdiag
