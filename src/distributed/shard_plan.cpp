#include "distributed/shard_plan.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "graph/implicit_graph.hpp"

namespace mmdiag {

namespace {

std::vector<Node> make_cuts(std::uint64_t num_nodes, unsigned shards,
                            std::uint64_t align_unit) {
  if (shards == 0 || shards > ShardPlan::kMaxShards) {
    throw std::invalid_argument("ShardPlan: shards must be in [1, 64]");
  }
  std::vector<Node> cuts(shards + 1);
  if (align_unit > 1 && align_unit * shards <= num_nodes) {
    // Distribute whole alignment units evenly; the guard ensures at least
    // one unit per shard, so interior cuts strictly increase. Any
    // remainder (num_nodes not a multiple of align_unit) lands in the
    // last shard via the final cut below.
    const std::uint64_t units = num_nodes / align_unit;
    for (unsigned s = 0; s < shards; ++s) {
      cuts[s] = static_cast<Node>(align_unit * (s * units / shards));
    }
  } else {
    for (unsigned s = 0; s < shards; ++s) {
      cuts[s] = static_cast<Node>(s * num_nodes / shards);
    }
  }
  cuts[shards] = static_cast<Node>(num_nodes);
  return cuts;
}

// Sort-unique a node list and coalesce runs of consecutive ids into ranges.
std::vector<ShardRange> coalesce(std::vector<Node>& nodes) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::vector<ShardRange> ranges;
  for (std::size_t i = 0; i < nodes.size();) {
    std::size_t j = i + 1;
    while (j < nodes.size() && nodes[j] == nodes[j - 1] + 1) ++j;
    ranges.push_back({nodes[i], nodes[j - 1] + 1});
    i = j;
  }
  return ranges;
}

}  // namespace

ShardPlan::ShardPlan(std::size_t num_nodes, unsigned shards,
                     std::uint64_t align_unit) {
  cuts_ = make_cuts(num_nodes, shards, align_unit);
  halo_.resize(shards);
  halo_prefix_.assign(shards, std::vector<std::uint64_t>{0});
}

ShardPlan ShardPlan::make(const Topology& topology, unsigned shards,
                          const PartitionPlan* align) {
  const TopologyInfo info = topology.info();
  std::uint64_t align_unit = 0;
  // Only the contiguous uniform plans give an alignment worth honouring:
  // their component c occupies exactly [c*size, (c+1)*size). A
  // FixLastSymbolPlan's components interleave, so no contiguous cut could
  // respect them — leave those cuts unaligned.
  if (align != nullptr &&
      (dynamic_cast<const PrefixBitsPlan*>(align) != nullptr ||
       dynamic_cast<const TuplePrefixPlan*>(align) != nullptr)) {
    align_unit = align->component_size();
  }

  ShardPlan plan(static_cast<std::size_t>(info.num_nodes), shards, align_unit);

  // Closed-form halo: every shard owns an aligned power-of-two block of a
  // hypercube address space, so the 1-hop boundary is exactly the b peer
  // blocks reached by flipping one of the b prefix bits.
  const bool uniform_pow2_blocks =
      info.family == "hypercube" && std::has_single_bit(std::uint64_t{shards}) &&
      shards <= info.num_nodes && info.num_nodes % shards == 0;
  if (uniform_pow2_blocks) {
    const std::uint64_t block = info.num_nodes / shards;
    bool blocks_even = std::has_single_bit(block);
    for (unsigned s = 0; blocks_even && s <= shards; ++s) {
      blocks_even = plan.cuts_[s] == static_cast<Node>(s * block);
    }
    if (blocks_even) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(
          std::uint64_t{shards}));
      for (unsigned s = 0; s < shards; ++s) {
        std::vector<unsigned> peers;
        for (unsigned j = 0; j < b; ++j) peers.push_back(s ^ (1u << j));
        std::sort(peers.begin(), peers.end());
        for (unsigned peer : peers) {
          plan.halo_[s].push_back({static_cast<Node>(peer * block),
                                   static_cast<Node>((peer + 1) * block)});
        }
      }
      plan.closed_form_ = true;
      plan.finish_halo();
      return plan;
    }
  }

  // Generic halo: enumerate each owned node's adjacency through the
  // implicit API and keep the out-of-range endpoints.
  const ImplicitGraph view(topology);
  for (unsigned s = 0; s < shards; ++s) {
    const ShardRange owned = plan.owned(s);
    std::vector<Node> outside;
    for (Node u = owned.lo; u < owned.hi; ++u) {
      for (Node v : view.neighbors(u)) {
        if (!owned.contains(v)) outside.push_back(v);
      }
    }
    plan.halo_[s] = coalesce(outside);
  }
  plan.finish_halo();
  return plan;
}

void ShardPlan::finish_halo() {
  for (unsigned s = 0; s < num_shards(); ++s) {
    auto& prefix = halo_prefix_[s];
    prefix.assign(1, 0);
    for (const ShardRange& r : halo_[s]) {
      prefix.push_back(prefix.back() + r.size());
    }
  }
}

std::int64_t ShardPlan::halo_slot(unsigned s, Node v) const noexcept {
  const auto& ranges = halo_[s];
  // First range starting beyond v, then check the one before it.
  auto it = std::upper_bound(
      ranges.begin(), ranges.end(), v,
      [](Node value, const ShardRange& r) { return value < r.lo; });
  if (it == ranges.begin()) return -1;
  const std::size_t idx = static_cast<std::size_t>(it - ranges.begin()) - 1;
  const ShardRange& r = ranges[idx];
  if (v >= r.hi) return -1;
  return static_cast<std::int64_t>(halo_prefix_[s][idx] + (v - r.lo));
}

}  // namespace mmdiag
