#include "distributed/simulator.hpp"

#include <stdexcept>

namespace mmdiag {

std::span<const Node> NetContext::neighbors() const noexcept {
  return net_->graph_->neighbors(self_);
}

std::uint64_t NetContext::round() const noexcept { return net_->round_; }

void NetContext::send(Node to, MsgType type, std::uint64_t payload) {
  if (!net_->graph_->has_edge(self_, to)) {
    throw std::logic_error("NetContext::send: not a link");
  }
  net_->next_inbox_[to].push_back({self_, type, payload});
  ++net_->messages_;
  if (!net_->next_active_flag_[to]) {
    net_->next_active_flag_[to] = 1;
    net_->next_active_.push_back(to);
  }
}

void NetContext::wake_next_round() {
  if (!net_->next_active_flag_[self_]) {
    net_->next_active_flag_[self_] = 1;
    net_->next_active_.push_back(self_);
  }
}

bool NetContext::my_test(unsigned i, unsigned j) const {
  return net_->oracle_->test(self_, i, j);
}

SyncNetwork::SyncNetwork(const Graph& graph, const SyndromeOracle& oracle,
                         NodeProgram& program)
    : graph_(&graph),
      oracle_(&oracle),
      program_(&program),
      inbox_(graph.num_nodes()),
      next_inbox_(graph.num_nodes()),
      active_flag_(graph.num_nodes(), 0),
      next_active_flag_(graph.num_nodes(), 0) {}

void SyncNetwork::wake(Node v) {
  if (!next_active_flag_[v]) {
    next_active_flag_[v] = 1;
    next_active_.push_back(v);
  }
}

std::uint64_t SyncNetwork::run_to_quiescence(std::uint64_t max_rounds) {
  std::uint64_t executed = 0;
  while (!next_active_.empty()) {
    if (++executed > max_rounds) {
      throw std::runtime_error("SyncNetwork: round limit exceeded");
    }
    ++round_;
    std::swap(inbox_, next_inbox_);
    std::swap(active_, next_active_);
    std::swap(active_flag_, next_active_flag_);
    next_active_.clear();
    for (const Node v : active_) {
      NetContext ctx(this, v);
      program_->on_round(ctx, inbox_[v]);
      inbox_[v].clear();
      active_flag_[v] = 0;
    }
  }
  return executed;
}

}  // namespace mmdiag
