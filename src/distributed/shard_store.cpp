#include "distributed/shard_store.hpp"

#include <stdexcept>
#include <string>

namespace mmdiag {

namespace {

std::uint64_t ones(unsigned d) noexcept {
  return d >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << d) - 1;
}

}  // namespace

ShardRowStore::ShardRowStore(const ShardPlan& plan, unsigned shard,
                             const ImplicitGraph& view,
                             const Syndrome& syndrome)
    : plan_(&plan),
      shard_(shard),
      view_(&view),
      degree_(view.max_degree()),
      syndrome_(&syndrome) {
  const ShardRange owned = plan.owned(shard);
  const std::uint64_t d = degree_;
  owned_words_.resize(owned.size() * d);
  for (Node u = owned.lo; u < owned.hi; ++u) {
    const std::uint64_t base = (u - owned.lo) * d;
    for (unsigned pivot = 0; pivot < d; ++pivot) {
      owned_words_[base + pivot] = syndrome.row_bits(u, pivot);
    }
  }
  // Eager halo exchange: pull every boundary node's row block across the
  // cut once, before any solving starts.
  halo_words_.resize(plan.halo_size(shard) * d);
  std::uint64_t slot = 0;
  for (const ShardRange& r : plan.halo(shard)) {
    for (Node u = r.lo; u < r.hi; ++u, ++slot) {
      const std::uint64_t base = slot * d;
      for (unsigned pivot = 0; pivot < d; ++pivot) {
        halo_words_[base + pivot] = syndrome.row_bits(u, pivot);
      }
    }
  }
}

ShardRowStore::ShardRowStore(const ShardPlan& plan, unsigned shard,
                             const ImplicitGraph& view, const FaultSet& faults,
                             FaultyBehavior behavior, std::uint64_t seed)
    : plan_(&plan),
      shard_(shard),
      view_(&view),
      degree_(view.max_degree()),
      faults_(&faults),
      behavior_(behavior),
      seed_(seed) {}

std::uint64_t ShardRowStore::row_bits(Node u, unsigned pivot) const {
  const ShardRange owned = plan_->owned(shard_);
  if (owned.contains(u)) {
    if (lazy()) return compute_row(u, pivot);
    return owned_words_[(u - owned.lo) * std::uint64_t{degree_} + pivot];
  }
  if (lazy()) {
    if (!plan_->in_halo(shard_, u)) {
      throw std::logic_error(
          "ShardRowStore: row " + std::to_string(u) +
          " requested outside shard " + std::to_string(shard_) +
          "'s owned range and halo ring");
    }
    return halo_block(u)[pivot];
  }
  const std::int64_t slot = plan_->halo_slot(shard_, u);
  if (slot < 0) {
    throw std::logic_error(
        "ShardRowStore: row " + std::to_string(u) +
        " requested outside shard " + std::to_string(shard_) +
        "'s owned range and halo ring");
  }
  return halo_words_[static_cast<std::uint64_t>(slot) * degree_ + pivot];
}

std::uint64_t ShardRowStore::compute_row(Node u, unsigned pivot) const {
  // Bit-for-bit the row generate_syndrome() stores: bit p = s_u(pivot, p)
  // for p != pivot, the diagonal bit 0.
  const auto adj = view_->neighbors(u);
  const unsigned d = static_cast<unsigned>(adj.size());
  const std::uint64_t pivot_bit = std::uint64_t{1} << pivot;
  if (!faults_->is_faulty(u)) {
    if (faults_->is_faulty(adj[pivot])) return ones(d) & ~pivot_bit;
    std::uint64_t row = 0;
    for (unsigned p = 0; p < d; ++p) {
      row |= std::uint64_t{faults_->is_faulty(adj[p])} << p;
    }
    return row;  // bit pivot is already 0 (adj[pivot] is healthy here)
  }
  const Node vp = adj[pivot];
  const bool fp = faults_->is_faulty(vp);
  std::uint64_t row = 0;
  for (unsigned p = 0; p < d; ++p) {
    if (p == pivot) continue;
    row |= std::uint64_t{faulty_test_result(behavior_, seed_, u, vp, adj[p],
                                            fp, faults_->is_faulty(adj[p]))}
           << p;
  }
  return row;
}

void ShardRowStore::compute_block(Node u, std::uint64_t* out) const {
  const auto adj = view_->neighbors(u);
  const unsigned d = static_cast<unsigned>(adj.size());
  if (!faults_->is_faulty(u)) {
    std::uint64_t mask = 0;
    for (unsigned p = 0; p < d; ++p) {
      mask |= std::uint64_t{faults_->is_faulty(adj[p])} << p;
    }
    const std::uint64_t all = ones(d);
    for (unsigned pivot = 0; pivot < d; ++pivot) {
      const std::uint64_t pivot_bit = std::uint64_t{1} << pivot;
      out[pivot] = ((mask & pivot_bit) != 0 ? all : mask) & ~pivot_bit;
    }
    return;
  }
  for (unsigned pivot = 0; pivot < d; ++pivot) {
    out[pivot] = compute_row(u, pivot);
  }
}

const std::uint64_t* ShardRowStore::halo_block(Node u) const {
  const auto [it, inserted] = halo_page_.try_emplace(
      u, static_cast<std::uint32_t>(halo_page_.size()));
  const std::uint64_t base = std::uint64_t{it->second} * degree_;
  if (inserted) {
    // First touch of this boundary node: fetch its whole d-pivot block —
    // the demand-paged unit of the halo exchange. Never evicted, so a
    // block crosses the boundary at most once.
    halo_pool_.resize(halo_pool_.size() + degree_);
    compute_block(u, halo_pool_.data() + base);
  }
  return halo_pool_.data() + base;
}

std::uint64_t ShardRowStore::memory_bytes() const noexcept {
  const std::uint64_t words =
      owned_words_.size() + halo_words_.size() + halo_pool_.size();
  // Unordered-map nodes cost roughly a key, a value, padding and a next
  // pointer plus the bucket array — a reporting estimate, not an ABI fact.
  const std::uint64_t page_index =
      halo_page_.size() * 24 + halo_page_.bucket_count() * 8;
  return words * sizeof(std::uint64_t) + page_index;
}

}  // namespace mmdiag
