// ShardedDiagnoser — the monolithic §5 driver over owner/halo shards.
//
// The monolithic Diagnoser holds one Graph/Syndrome and one SetBuilder;
// beyond ~2^20 nodes a materialised CSR alone is hundreds of megabytes and
// the solve is bounded by one core. This engine splits the node space into
// S owner shards (ShardPlan), gives each shard only the syndrome rows it
// owns plus a 1-hop halo (ShardRowStore), and runs every Set_Builder round
// as S parallel scans over a ThreadPool — while producing results
// *bit-identical* to the monolith: same faults, probes, rounds, members,
// failure strings and counted look-ups (tests/shard_test.cpp asserts all of
// it against Diagnoser per family, shard count and rule).
//
// Why bit-identity is achievable at all: under the deferred parent rules
// (kSpread / kLeastSync / kHashSpread) a Set_Builder round is two pure
// phases. The scan phase consults syndrome rows against start-of-round
// membership — membership is frozen while it runs, so it can be computed in
// any order, including S shards in parallel. The join phase then replays
// admissions in an order fixed entirely by (parent, position) keys. The
// sharded engine parallelises only the scan and keeps the join sequential:
//
//   - Scan: each shard walks the shared frontier bitmap and processes the
//     frontier nodes *assigned* to it, collecting its 0-test offers in
//     (parent asc, position asc) order. The frontier node u is assigned to
//     owner(t(u)) — the shard owning u's tree parent — because the row the
//     scan reads is u's row pivoted at the parent position, and
//     u ∈ neighbours(t(u)) puts u inside owner(t(u))'s owned ∪ halo set by
//     the definition of a 1-hop halo. That assignment is what makes the
//     halo exchange exactly sufficient, and ShardRowStore throws if any
//     scan ever reaches past it.
//   - Join: every frontier node is scanned by exactly one shard, so each
//     shard's offer list holds whole parent groups in ascending parent
//     order. A k-way merge at parent-group granularity therefore walks the
//     exact offer sequence the monolith's zero_edges_ buffer held, without
//     materialising it; the monolith's pass-A/pass-B logic then replays
//     admissions verbatim (kHashSpread materialises and sorts, as the
//     monolith does). Round 1 (the seed's pair loop) and the certificate
//     checks run sequentially, byte-for-byte the monolithic code.
//
// The paper's kLeastFirst rule is the one rule this cannot shard: it admits
// members *during* the scan, making each consult depend on the admissions
// of all lower-numbered frontier nodes — an order-serial chain. The
// constructor rejects it for either phase; sharded callers use kSpread
// (the default probe rule) for the final run too.
//
// Look-up accounting is unchanged by construction: row reads are physical
// and uncounted (TableOracle::row_bits semantics), each shard counts
// exactly the pairs it consults, and the per-round sum over shards equals
// the monolith's count because both consult the same pair set. The halo
// exchange moves rows, never look-ups.
//
// Phase 3 (N(U_r)) is a parallel per-owner-range complement scan;
// concatenating shard outputs in shard order is ascending node order, so
// the fault vector needs no sort — same as the monolith's ascending scan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "distributed/shard_plan.hpp"
#include "distributed/shard_store.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "topology/topology.hpp"
#include "util/bitvec.hpp"
#include "util/thread_pool.hpp"

namespace mmdiag {

struct ShardedOptions {
  /// Owner shards to split the node space into (1..ShardPlan::kMaxShards).
  unsigned shards = 2;
  /// ThreadPool lanes for the scan phases; 0 = hardware concurrency.
  unsigned threads = 0;
  /// The monolithic options being replicated. rule must match the adopted
  /// partition's calibration rule; rule and final_rule must both be
  /// deferred (anything but kLeastFirst — see the header comment).
  DiagnoserOptions diagnoser{.final_rule = ParentRule::kSpread};
};

/// Per-diagnose sharding telemetry (memory honesty for the benches).
struct ShardedRunStats {
  unsigned shards = 0;
  /// Whole d-pivot row blocks moved across shard boundaries: the full halo
  /// in table mode, the demand-paged subset actually touched in lazy mode.
  std::uint64_t halo_blocks_exchanged = 0;
  std::uint64_t max_store_bytes = 0;    // largest single shard's row store
  std::uint64_t total_store_bytes = 0;  // all shards together
  bool closed_form_halo = false;
};

class ShardedDiagnoser {
 public:
  /// Adopts a partition certified elsewhere, like the monolithic adopting
  /// constructors. Throws std::invalid_argument on a null topology, a rule
  /// mismatch with the partition, a delta conflict, shards out of range,
  /// or a kLeastFirst probe/final rule (not shardable — header comment).
  ShardedDiagnoser(std::shared_ptr<const Topology> topology,
                   CertifiedPartition partition, ShardedOptions options = {});

  /// Table mode: diagnose a materialised syndrome. Each shard copies its
  /// owned rows and eagerly exchanges its halo rows before solving.
  [[nodiscard]] DiagnosisResult diagnose(const Syndrome& syndrome);

  /// Lazy mode: diagnose against a hidden fault set (the
  /// ImplicitLazyOracle analogue) — rows are computed on consultation and
  /// halo rows demand-paged, so the row footprint stays far below the
  /// monolithic syndrome. This is the multi-million-node path.
  [[nodiscard]] DiagnosisResult diagnose(const FaultSet& faults,
                                         FaultyBehavior behavior,
                                         std::uint64_t seed);

  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const ShardedRunStats& last_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] unsigned delta() const noexcept { return delta_; }
  [[nodiscard]] const CertifiedPartition& partition() const noexcept {
    return partition_;
  }
  [[nodiscard]] const ImplicitGraph& view() const noexcept { return view_; }

 private:
  struct ZeroEdge {
    Node parent;
    Node child;
    std::uint32_t child_parent_pos;
  };
  struct RunOutcome {
    bool all_healthy = false;
    unsigned rounds = 0;
    std::size_t contributors = 0;
    std::size_t member_count = 0;
  };

  void check_options() const;
  DiagnosisResult diagnose_on(std::vector<ShardRowStore>& stores);
  RunOutcome run_sharded(std::vector<ShardRowStore>& stores, Node u0,
                         ParentRule rule, const PartitionPlan* plan,
                         std::uint32_t comp, bool stop_on_certify);
  template <class Fn>
  void for_each_parent_group(Fn&& fn);
  void fill_stats(const std::vector<ShardRowStore>& stores);

  std::shared_ptr<const Topology> topology_;
  ImplicitGraph view_;
  ShardedOptions options_;
  unsigned delta_;
  CertifiedPartition partition_;
  ShardPlan plan_;
  std::unique_ptr<ThreadPool> pool_;
  ShardedRunStats stats_;

  // Global solver state, shared across shards: syndrome rows are sharded,
  // the growth tree is not. Written only in the sequential join phases;
  // the parallel scans read it frozen.
  DirtyBitset in_set_;
  DirtyBitset is_contributor_;
  std::vector<std::uint64_t> frontier_words_[2];
  std::vector<std::uint32_t> parent_pos_of_;
  /// owner(t(v)) recorded at admission — which shard scans v's row when v
  /// reaches the frontier. One byte per node caps shards at 64+ headroom.
  std::vector<std::uint8_t> scan_shard_of_;
  bool frontier_clean_ = true;
  std::uint64_t lookups_ = 0;  // running total across probes + final run

  // Per-shard scratch, reused across rounds and runs.
  std::vector<unsigned> round1_pos_;
  std::vector<std::vector<ZeroEdge>> shard_edges_;
  std::vector<std::uint64_t> shard_consults_;
  std::vector<std::size_t> merge_cursor_;
  std::vector<ZeroEdge> merged_edges_;  // kHashSpread's sort buffer
  std::vector<std::vector<Node>> shard_faults_;
};

}  // namespace mmdiag
