// The distributed Set_Builder diagnosis protocol (§6 "further research").
//
// Every node runs the same program; only link-local messages and the node's
// own comparison results are used. The run proceeds in stages, each executed
// to quiescence on the synchronous network:
//
//   1. kProbe    — every partition component concurrently grows its
//                  restricted Set_Builder tree: members OFFER membership to
//                  neighbours whose pair test (against the member's parent)
//                  read 0; a joiner ACKs the least offerer, which thereby
//                  learns it is an internal node.
//   2. kCount    — convergecast up each tree: leaves send COUNT(0); internal
//                  nodes add 1; each seed learns its tree's internal-node
//                  count and certifies if it exceeds δ.
//   3. kElect    — certified seeds flood their id; everyone forwards the
//                  minimum seen; the surviving seed wins.
//   4. kBuild    — the winning seed rebuilds unrestricted; joiners announce
//                  JOINED to all neighbours so that members learn which
//                  neighbours stayed outside U_r.
//   5. kReport   — convergecast of fault reports: members forward the ids of
//                  non-JOINED neighbours (deduplicated per subtree) to the
//                  winner, which assembles F = N(U_r).
//
// Stage transitions are driven by the harness at network quiescence; a real
// deployment would use static round bounds instead (same message counts,
// slightly more rounds) — see DESIGN.md. Membership and contributor counts
// equal the sequential Set_Builder under ParentRule::kLeastSync, so the
// partition is calibrated with that rule.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/diagnoser.hpp"
#include "distributed/simulator.hpp"
#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "topology/topology.hpp"

namespace mmdiag {

struct DistributedRunStats {
  bool success = false;
  std::vector<Node> faults;   // assembled at the winning seed, sorted
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t lookups = 0;  // total syndrome reads across all nodes
  std::uint32_t certified_components = 0;
  Node winner_seed = kNoNode;
  std::string failure_reason;
};

/// Run the full five-stage protocol for `topology` on `graph`.
/// The partition is calibrated with ParentRule::kLeastSync; throws
/// DiagnosisUnsupportedError if no plan certifies under that rule.
[[nodiscard]] DistributedRunStats run_distributed_diagnosis(
    const Topology& topology, const Graph& graph, const SyndromeOracle& oracle,
    unsigned delta = 0);

}  // namespace mmdiag
