// A synchronous message-passing network simulator.
//
// The paper's closing section argues the *system itself* should compute the
// diagnosis: nodes are unreliable, but links and the communication layer are
// not ("it is entirely realistic to assume that the communication network is
// intact and fault-free"). This module provides that substrate: N nodes on
// the interconnection graph exchange messages in synchronous rounds;
// messages sent in round r are delivered in round r+1; only link-local
// communication is possible. The simulator counts rounds and messages —
// the two costs the §6 sketch cares about.
//
// Programs see only local information: their id, their neighbour list, and
// (through LocalSyndrome) their OWN comparison results — never another
// node's tests.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "mm/oracle.hpp"
#include "util/types.hpp"

namespace mmdiag {

enum class MsgType : std::uint8_t {
  kOffer,       // Set_Builder membership offer (sender's 0-test admitted you)
  kAck,         // parent choice: sender became the receiver's child
  kCount,       // convergecast: subtree internal-node count (payload)
  kElect,       // flooding: best certified seed id seen so far (payload)
  kJoined,      // membership announcement to all neighbours
  kReport,      // fault report: payload = suspected node id
  kReportDone,  // convergecast: subtree finished reporting
};

struct Message {
  Node from = kNoNode;
  MsgType type = MsgType::kOffer;
  std::uint64_t payload = 0;
};

class SyncNetwork;

/// Per-round execution context handed to a node.
class NetContext {
 public:
  [[nodiscard]] Node self() const noexcept { return self_; }
  [[nodiscard]] std::span<const Node> neighbors() const noexcept;
  [[nodiscard]] std::uint64_t round() const noexcept;

  /// Send to a direct neighbour (asserted); delivered next round.
  void send(Node to, MsgType type, std::uint64_t payload = 0);

  /// Schedule this node to run next round even with an empty inbox.
  void wake_next_round();

  /// This node's own comparison result over adjacency positions i != j —
  /// the only syndrome data a real node possesses.
  [[nodiscard]] bool my_test(unsigned i, unsigned j) const;

 private:
  friend class SyncNetwork;
  NetContext(SyncNetwork* net, Node self) : net_(net), self_(self) {}
  SyncNetwork* net_;
  Node self_;
};

/// A node program: called once per round in which the node has mail or has
/// requested a wake-up.
class NodeProgram {
 public:
  virtual ~NodeProgram() = default;
  virtual void on_round(NetContext& ctx, std::span<const Message> inbox) = 0;
};

class SyncNetwork {
 public:
  /// One shared program instance services every node (it must key its state
  /// by ctx.self()); the oracle supplies each node's own tests.
  SyncNetwork(const Graph& graph, const SyndromeOracle& oracle,
              NodeProgram& program);

  /// Wake a node at the start of the next run.
  void wake(Node v);

  /// Run until a round with no deliverable messages and no wake requests,
  /// or until `max_rounds` elapse (throws std::runtime_error on overrun).
  /// Returns the number of rounds executed in this call.
  std::uint64_t run_to_quiescence(std::uint64_t max_rounds = 1'000'000);

  [[nodiscard]] std::uint64_t total_rounds() const noexcept { return round_; }
  [[nodiscard]] std::uint64_t total_messages() const noexcept {
    return messages_;
  }
  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

 private:
  friend class NetContext;

  const Graph* graph_;
  const SyndromeOracle* oracle_;
  NodeProgram* program_;

  std::vector<std::vector<Message>> inbox_;
  std::vector<std::vector<Message>> next_inbox_;
  std::vector<Node> active_;       // nodes with mail or wake requests
  std::vector<Node> next_active_;
  std::vector<std::uint8_t> active_flag_;
  std::vector<std::uint8_t> next_active_flag_;

  std::uint64_t round_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace mmdiag
