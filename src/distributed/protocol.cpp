#include "distributed/protocol.hpp"

#include <algorithm>
#include <limits>

#include "util/rng.hpp"

#include "core/certified_partition.hpp"

namespace mmdiag {
namespace {

constexpr std::uint64_t kNoSeed = std::numeric_limits<std::uint64_t>::max();

enum class Stage : std::uint8_t { kProbe, kCount, kElect, kBuild, kReport };

struct NodeState {
  // Probe-stage tree (restricted to the node's component).
  bool member_a = false;
  bool offers_sent_a = false;
  Node parent_a = kNoNode;
  std::vector<Node> children_a;
  // Counting convergecast.
  std::uint64_t count_sum = 0;
  std::size_t counts_received = 0;
  bool count_sent = false;
  bool certified_seed = false;
  // Election flood.
  std::uint64_t best = kNoSeed;
  // Build-stage tree (unrestricted).
  bool member_b = false;
  bool offers_sent_b = false;
  Node parent_b = kNoNode;
  std::vector<Node> children_b;
  std::vector<std::uint8_t> neighbor_joined;  // by adjacency position
  // Report convergecast.
  std::vector<Node> collected;  // fault ids from own boundary + children
  std::size_t reports_done = 0;
  bool report_sent = false;
};

class DiagnosisProtocol final : public NodeProgram {
 public:
  DiagnosisProtocol(const Graph& graph, const PartitionPlan& plan,
                    unsigned delta, ParentRule join_rule)
      : graph_(&graph),
        plan_(&plan),
        delta_(delta),
        join_rule_(join_rule),
        state_(graph.num_nodes()) {
    for (std::size_t c = 0; c < plan.num_components(); ++c) {
      is_seed_.push_back(plan.seed_of(c));
    }
    std::sort(is_seed_.begin(), is_seed_.end());
  }

  void set_stage(Stage s) noexcept { stage_ = s; }
  void set_winner(Node w) noexcept { winner_ = w; }

  [[nodiscard]] const NodeState& state(Node v) const { return state_[v]; }
  [[nodiscard]] bool is_probe_seed(Node v) const {
    return std::binary_search(is_seed_.begin(), is_seed_.end(), v);
  }

  void on_round(NetContext& ctx, std::span<const Message> inbox) override {
    switch (stage_) {
      case Stage::kProbe:
        round_probe(ctx, inbox);
        break;
      case Stage::kCount:
        round_count(ctx, inbox);
        break;
      case Stage::kElect:
        round_elect(ctx, inbox);
        break;
      case Stage::kBuild:
        round_build(ctx, inbox);
        break;
      case Stage::kReport:
        round_report(ctx, inbox);
        break;
    }
  }

 private:
  // ---- Stage 1: component-restricted tree growth. -------------------------
  void round_probe(NetContext& ctx, std::span<const Message> inbox) {
    NodeState& st = state_[ctx.self()];
    const auto comp = plan_->component_of(ctx.self());
    if (!st.member_a) {
      if (is_probe_seed(ctx.self()) && inbox.empty()) {
        // Seed kick-off: U_1 from the seed's own pair tests.
        st.member_a = true;
        seed_offers(ctx, /*restricted=*/true);
        return;
      }
      const Node best_parent = choose_parent(ctx.self(), inbox);
      if (best_parent == kNoNode) return;
      st.member_a = true;
      st.parent_a = best_parent;
      ctx.send(best_parent, MsgType::kAck);
      ctx.wake_next_round();  // own offers go out next round
      return;
    }
    // Already a member: record children; send own offers exactly once.
    for (const Message& m : inbox) {
      if (m.type == MsgType::kAck) st.children_a.push_back(m.from);
    }
    if (!st.offers_sent_a && st.parent_a != kNoNode) {
      st.offers_sent_a = true;
      member_offers(ctx, st.parent_a, /*restricted=*/true, comp);
    }
  }

  // ---- Stage 2: contributor-count convergecast. ----------------------------
  void round_count(NetContext& ctx, std::span<const Message> inbox) {
    NodeState& st = state_[ctx.self()];
    if (!st.member_a) return;
    for (const Message& m : inbox) {
      if (m.type == MsgType::kCount) {
        st.count_sum += m.payload;
        ++st.counts_received;
      }
    }
    if (st.count_sent || st.counts_received < st.children_a.size()) return;
    const std::uint64_t internal_below =
        st.count_sum + (st.children_a.empty() ? 0 : 1);
    st.count_sent = true;
    if (st.parent_a != kNoNode) {
      ctx.send(st.parent_a, MsgType::kCount, internal_below);
    } else {
      // Seed: the tree is complete; certify if internal nodes exceed delta.
      st.certified_seed = internal_below > delta_;
    }
  }

  // ---- Stage 3: minimum-certified-seed flood. ------------------------------
  void round_elect(NetContext& ctx, std::span<const Message> inbox) {
    NodeState& st = state_[ctx.self()];
    std::uint64_t incoming = st.best;
    if (st.certified_seed) {
      incoming = std::min<std::uint64_t>(incoming, ctx.self());
    }
    for (const Message& m : inbox) {
      if (m.type == MsgType::kElect) incoming = std::min(incoming, m.payload);
    }
    if (incoming < st.best) {
      st.best = incoming;
      for (const Node w : ctx.neighbors()) {
        ctx.send(w, MsgType::kElect, incoming);
      }
    }
  }

  // ---- Stage 4: unrestricted tree growth with JOINED announcements. --------
  void round_build(NetContext& ctx, std::span<const Message> inbox) {
    NodeState& st = state_[ctx.self()];
    if (st.neighbor_joined.empty()) {
      st.neighbor_joined.assign(ctx.neighbors().size(), 0);
    }
    for (const Message& m : inbox) {
      if (m.type == MsgType::kJoined) {
        const int p = graph_->neighbor_position(ctx.self(), m.from);
        st.neighbor_joined[static_cast<unsigned>(p)] = 1;
      } else if (m.type == MsgType::kAck) {
        st.children_b.push_back(m.from);
      }
    }
    if (!st.member_b) {
      if (ctx.self() == winner_ && inbox.empty()) {
        st.member_b = true;
        announce_joined(ctx);
        seed_offers(ctx, /*restricted=*/false);
        return;
      }
      const Node best_parent = choose_parent(ctx.self(), inbox);
      if (best_parent == kNoNode) return;
      st.member_b = true;
      st.parent_b = best_parent;
      ctx.send(best_parent, MsgType::kAck);
      announce_joined(ctx);
      ctx.wake_next_round();
      return;
    }
    if (!st.offers_sent_b && st.parent_b != kNoNode) {
      st.offers_sent_b = true;
      member_offers(ctx, st.parent_b, /*restricted=*/false, 0);
    }
  }

  // ---- Stage 5: fault-report convergecast to the winner. -------------------
  void round_report(NetContext& ctx, std::span<const Message> inbox) {
    NodeState& st = state_[ctx.self()];
    if (!st.member_b) return;
    for (const Message& m : inbox) {
      if (m.type == MsgType::kReport) {
        st.collected.push_back(static_cast<Node>(m.payload));
      } else if (m.type == MsgType::kReportDone) {
        ++st.reports_done;
      }
    }
    if (st.report_sent || st.reports_done < st.children_b.size()) return;
    st.report_sent = true;
    // Own boundary: neighbours that never announced JOINED are outside U_r.
    const auto adj = ctx.neighbors();
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (!st.neighbor_joined[p]) st.collected.push_back(adj[p]);
    }
    std::sort(st.collected.begin(), st.collected.end());
    st.collected.erase(std::unique(st.collected.begin(), st.collected.end()),
                       st.collected.end());
    if (st.parent_b != kNoNode) {
      for (const Node f : st.collected) {
        ctx.send(st.parent_b, MsgType::kReport, f);
      }
      ctx.send(st.parent_b, MsgType::kReportDone);
    }
    // The winner keeps st.collected as the final answer.
  }

  // ---- Helpers. -------------------------------------------------------------

  /// Parent selection among this round's offers: the least sender
  /// (kLeastSync) or the sender minimising mix64(sender, self)
  /// (kHashSpread) — both computable from local information alone.
  [[nodiscard]] Node choose_parent(Node self,
                                   std::span<const Message> inbox) const {
    Node best = kNoNode;
    std::uint64_t best_key = ~std::uint64_t{0};
    for (const Message& m : inbox) {
      if (m.type != MsgType::kOffer) continue;
      const std::uint64_t key = join_rule_ == ParentRule::kHashSpread
                                    ? mix64(m.from, self)
                                    : m.from;
      if (key < best_key || (key == best_key && m.from < best)) {
        best_key = key;
        best = m.from;
      }
    }
    return best;
  }

  void announce_joined(NetContext& ctx) {
    for (const Node w : ctx.neighbors()) ctx.send(w, MsgType::kJoined);
  }

  /// U_1 offers from a seed: scan the node's own pair tests.
  void seed_offers(NetContext& ctx, bool restricted) {
    const auto adj = ctx.neighbors();
    const auto comp = plan_->component_of(ctx.self());
    std::vector<unsigned> pos;
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (!restricted || plan_->component_of(adj[p]) == comp) pos.push_back(p);
    }
    std::vector<std::uint8_t> marked(adj.size(), 0);
    for (std::size_t a = 0; a < pos.size(); ++a) {
      for (std::size_t b = a + 1; b < pos.size(); ++b) {
        if (marked[pos[a]] && marked[pos[b]]) continue;
        if (!ctx.my_test(pos[a], pos[b])) {
          marked[pos[a]] = 1;
          marked[pos[b]] = 1;
        }
      }
    }
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (marked[p]) ctx.send(adj[p], MsgType::kOffer);
    }
  }

  /// A member's offers: one test per non-parent neighbour against the parent.
  void member_offers(NetContext& ctx, Node parent, bool restricted,
                     std::uint32_t comp) {
    const auto adj = ctx.neighbors();
    const int parent_pos = graph_->neighbor_position(ctx.self(), parent);
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (static_cast<int>(p) == parent_pos) continue;
      if (restricted && plan_->component_of(adj[p]) != comp) continue;
      if (!ctx.my_test(p, static_cast<unsigned>(parent_pos))) {
        ctx.send(adj[p], MsgType::kOffer);
      }
    }
  }

  const Graph* graph_;
  const PartitionPlan* plan_;
  unsigned delta_;
  ParentRule join_rule_;
  Stage stage_ = Stage::kProbe;
  Node winner_ = kNoNode;
  std::vector<Node> is_seed_;
  std::vector<NodeState> state_;
};

}  // namespace

DistributedRunStats run_distributed_diagnosis(const Topology& topology,
                                              const Graph& graph,
                                              const SyndromeOracle& oracle,
                                              unsigned delta) {
  DistributedRunStats stats;
  if (delta == 0) delta = topology.default_fault_bound();
  if (delta == 0) {
    throw DiagnosisUnsupportedError(topology.info().name +
                                    ": pass delta explicitly");
  }
  // The distributed tree equals the sequential kLeastSync (or kHashSpread)
  // tree, so the partition must certify under the rule the joiners use.
  // Try the simple least-sender rule first, then the hash spread.
  ParentRule rule = ParentRule::kLeastSync;
  CertifiedPartition partition = [&] {
    try {
      return find_certified_partition(topology, graph, delta,
                                      ParentRule::kLeastSync, true);
    } catch (const DiagnosisUnsupportedError&) {
      rule = ParentRule::kHashSpread;
      return find_certified_partition(topology, graph, delta,
                                      ParentRule::kHashSpread, true);
    }
  }();
  const PartitionPlan& plan = *partition.plan;

  oracle.reset_lookups();
  DiagnosisProtocol program(graph, plan, delta, rule);
  SyncNetwork net(graph, oracle, program);

  // Stage 1: all components probe concurrently.
  for (std::size_t c = 0; c < plan.num_components(); ++c) {
    net.wake(plan.seed_of(c));
  }
  net.run_to_quiescence();

  // Stage 2: count convergecast (wake every probe member).
  program.set_stage(Stage::kCount);
  for (Node v = 0; v < graph.num_nodes(); ++v) {
    if (program.state(v).member_a) net.wake(v);
  }
  net.run_to_quiescence();

  Node winner = kNoNode;
  for (std::size_t c = 0; c < plan.num_components(); ++c) {
    if (program.state(plan.seed_of(c)).certified_seed) {
      ++stats.certified_components;
      winner = std::min(winner, plan.seed_of(c));
    }
  }
  if (winner == kNoNode) {
    stats.rounds = net.total_rounds();
    stats.messages = net.total_messages();
    stats.lookups = oracle.lookups();
    stats.failure_reason =
        "no component certified; fault count likely exceeds delta";
    return stats;
  }

  // Stage 3: election flood from the certified seeds.
  program.set_stage(Stage::kElect);
  for (std::size_t c = 0; c < plan.num_components(); ++c) {
    if (program.state(plan.seed_of(c)).certified_seed) {
      net.wake(plan.seed_of(c));
    }
  }
  net.run_to_quiescence();
  stats.winner_seed = winner;
  program.set_winner(winner);

  // Stage 4: unrestricted build from the winner.
  program.set_stage(Stage::kBuild);
  net.wake(winner);
  net.run_to_quiescence();

  // Stage 5: fault reports converge on the winner.
  program.set_stage(Stage::kReport);
  for (Node v = 0; v < graph.num_nodes(); ++v) {
    if (program.state(v).member_b) net.wake(v);
  }
  net.run_to_quiescence();

  stats.rounds = net.total_rounds();
  stats.messages = net.total_messages();
  stats.lookups = oracle.lookups();
  stats.faults = program.state(winner).collected;
  if (stats.faults.size() > delta) {
    stats.failure_reason = "boundary larger than delta";
    stats.faults.clear();
    return stats;
  }
  stats.success = true;
  return stats;
}

}  // namespace mmdiag
