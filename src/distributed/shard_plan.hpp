// ShardPlan — contiguous owner ranges plus 1-hop halo rings.
//
// A sharded solve splits the node space [0, N) into S contiguous owner
// ranges separated by cuts. Contiguity is the load-bearing choice: the
// frontier bitmaps and membership bitsets of the solver are node-indexed,
// so "the nodes shard s owns" is a word range, owner_of() is a binary
// search over S+1 cuts, and per-shard outputs concatenated in shard order
// are already in ascending node order — exactly the order the monolithic
// Set_Builder produces.
//
// The halo of a shard is the set of non-owned nodes adjacent to an owned
// node: the only remote nodes whose syndrome rows the shard can ever be
// asked to read (see sharded_diagnoser.hpp for why). Two constructions:
//
//   - Closed form (hypercube, power-of-two shard count): an owner range is
//     then an aligned block fixing the top b = log2(S) address bits, and
//     flipping prefix bit j maps the whole block onto the block of shard
//     s ^ (1 << j). The halo is exactly those b peer blocks — b·N/S nodes,
//     no adjacency ever enumerated. The b/ n ratio is the isoperimetry of
//     the cut: thin boundaries are what make sharding pay.
//   - Generic: enumerate the adjacency of every owned node through the
//     topology's implicit API, collect out-of-range neighbours, sort and
//     coalesce into maximal ranges. O(owned · degree) per shard, used for
//     non-hypercube families and non-power-of-two shard counts.
//
// Cuts align to the certified partition's component size when the
// partition is contiguous and uniform (PrefixBitsPlan / TuplePrefixPlan),
// so probe components rarely straddle a cut. Alignment is a locality
// optimisation, never a correctness requirement: straddling components
// (FixLastSymbolPlan, or more shards than components) run through the same
// round-synchronous machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/partition.hpp"
#include "topology/topology.hpp"
#include "util/types.hpp"

namespace mmdiag {

/// A contiguous node range [lo, hi).
struct ShardRange {
  Node lo = 0;
  Node hi = 0;
  [[nodiscard]] std::uint64_t size() const noexcept { return hi - lo; }
  [[nodiscard]] bool contains(Node v) const noexcept {
    return v >= lo && v < hi;
  }
};

class ShardPlan {
 public:
  /// Owner indices are stored per node as one byte (see
  /// ShardedDiagnoser::scan_shard_of_), so plans cap at 64 shards — the
  /// same width as a cohort, and far past any core count this in-process
  /// engine fans over.
  static constexpr unsigned kMaxShards = 64;

  /// Geometry-only plan: `shards` even contiguous cuts over num_nodes,
  /// each interior cut rounded down to a multiple of align_unit (0 = no
  /// alignment; alignment is skipped when it would force empty shards).
  /// Halo rings are empty — use make() for a plan the sharded engine can
  /// solve with. Degenerate inputs are legal: zero nodes yields S empty
  /// ranges, and shards > num_nodes leaves the tail ranges empty.
  ShardPlan(std::size_t num_nodes, unsigned shards,
            std::uint64_t align_unit = 0);

  /// Full plan over a topology: contiguous cuts (aligned to `align`'s
  /// component size when that plan is contiguous and uniform) plus
  /// per-shard 1-hop halo rings — closed form on hypercubes with
  /// power-of-two shard counts, adjacency enumeration otherwise. Throws
  /// std::invalid_argument for shards outside [1, kMaxShards].
  static ShardPlan make(const Topology& topology, unsigned shards,
                        const PartitionPlan* align = nullptr);

  [[nodiscard]] unsigned num_shards() const noexcept {
    return static_cast<unsigned>(cuts_.size() - 1);
  }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return static_cast<std::size_t>(cuts_.back());
  }
  [[nodiscard]] ShardRange owned(unsigned s) const noexcept {
    return {cuts_[s], cuts_[s + 1]};
  }

  /// The shard whose owner range contains v (v < num_nodes()).
  [[nodiscard]] unsigned owner_of(Node v) const noexcept {
    // Binary search over the S+1 cuts; empty ranges never win because the
    // first cut <= v with cuts_[s+1] > v identifies a non-empty range.
    unsigned lo = 0;
    unsigned hi = num_shards() - 1;
    while (lo < hi) {
      const unsigned mid = (lo + hi) / 2;
      if (v < cuts_[mid + 1]) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    return lo;
  }

  /// Shard s's halo as sorted, disjoint, maximal ranges.
  [[nodiscard]] const std::vector<ShardRange>& halo(unsigned s) const noexcept {
    return halo_[s];
  }
  /// Total nodes in shard s's halo.
  [[nodiscard]] std::uint64_t halo_size(unsigned s) const noexcept {
    return halo_prefix_[s].back();
  }
  [[nodiscard]] bool in_halo(unsigned s, Node v) const noexcept {
    return halo_slot(s, v) >= 0;
  }
  /// Dense index of v within shard s's halo (for halo buffer addressing),
  /// or -1 when v is not in the halo.
  [[nodiscard]] std::int64_t halo_slot(unsigned s, Node v) const noexcept;

  /// True when the halo came from the hypercube prefix arithmetic rather
  /// than adjacency enumeration.
  [[nodiscard]] bool closed_form_halo() const noexcept {
    return closed_form_;
  }

 private:
  ShardPlan() = default;
  void finish_halo();

  std::vector<Node> cuts_;  // size S+1; cuts_[0] = 0, cuts_[S] = N
  std::vector<std::vector<ShardRange>> halo_;
  // halo_prefix_[s][i] = nodes in halo_[s][0..i) — halo_slot's offsets.
  std::vector<std::vector<std::uint64_t>> halo_prefix_;
  bool closed_form_ = false;
};

}  // namespace mmdiag
