// ShardRowStore — the syndrome rows one shard is entitled to read.
//
// A shard may read the packed s_u(pivot, ·) row of exactly the nodes in
// its owner range plus its 1-hop halo; row_bits() throws on anything else,
// which is the runtime proof that the halo ring suffices for the sharded
// solve (see sharded_diagnoser.hpp for why it must).
//
// Two storage modes mirror the two oracle families of the monolith:
//
//   - Table mode (the TableOracle analogue): owned rows are copied out of
//     a full materialised Syndrome into a dense per-shard block, and the
//     halo rows are exchanged eagerly up front into a second dense block —
//     the "boundary-row exchange" of a real distributed run, performed
//     once before any solving starts.
//   - Lazy mode (the ImplicitLazyOracle analogue): owned rows are computed
//     on consultation from the hidden fault set — bit-for-bit the rows
//     generate_syndrome() would have stored — and halo rows are
//     demand-paged: the first read of a remote node fetches its whole
//     d-pivot row block into a per-shard page cache, after which every
//     further pivot of that node is served locally. Fetch-once holds by
//     construction (the cache never evicts), so the exchange traffic a
//     real cluster would see is exactly halo_rows_exchanged().
//
// Row reads are *uncounted* here for the same reason TableOracle::row_bits
// is: a row read is a physical access pattern. The sharded solver charges
// exactly the pairs it consults, so counted look-ups stay bit-identical to
// the monolithic run — the exchange adds traffic, never look-ups.
//
// Thread safety: one shard's store is touched only by the worker scanning
// that shard (the lazy page cache is unsynchronised by design).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "distributed/shard_plan.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/syndrome.hpp"
#include "util/types.hpp"

namespace mmdiag {

class ShardRowStore {
 public:
  /// Table mode: copy this shard's owned rows from `syndrome` and perform
  /// the eager halo exchange. The syndrome and view must outlive the store.
  ShardRowStore(const ShardPlan& plan, unsigned shard,
                const ImplicitGraph& view, const Syndrome& syndrome);

  /// Lazy mode: compute rows on consultation from the hidden fault set;
  /// halo rows are demand-paged. faults and view must outlive the store.
  ShardRowStore(const ShardPlan& plan, unsigned shard,
                const ImplicitGraph& view, const FaultSet& faults,
                FaultyBehavior behavior, std::uint64_t seed);

  /// The packed s_u(pivot, ·) row — identical bits to
  /// Syndrome::row_bits(u, pivot). Throws std::logic_error when u is
  /// outside this shard's owned range and halo ring.
  [[nodiscard]] std::uint64_t row_bits(Node u, unsigned pivot) const;

  [[nodiscard]] bool lazy() const noexcept { return syndrome_ == nullptr; }
  [[nodiscard]] unsigned shard() const noexcept { return shard_; }

  /// Whole d-pivot row blocks moved across the shard boundary: the full
  /// halo in table mode, the demand-paged subset so far in lazy mode.
  [[nodiscard]] std::uint64_t halo_blocks_exchanged() const noexcept {
    return lazy() ? halo_page_.size() : plan_->halo_size(shard_);
  }

  /// Resident bytes of row storage (owned + halo copies, page cache and
  /// its index; the lazy owned side is 0 by design).
  [[nodiscard]] std::uint64_t memory_bytes() const noexcept;

 private:
  [[nodiscard]] std::uint64_t compute_row(Node u, unsigned pivot) const;
  void compute_block(Node u, std::uint64_t* out) const;
  [[nodiscard]] const std::uint64_t* halo_block(Node u) const;

  const ShardPlan* plan_;
  unsigned shard_;
  const ImplicitGraph* view_;
  unsigned degree_;

  // Table mode.
  const Syndrome* syndrome_ = nullptr;
  std::vector<std::uint64_t> owned_words_;  // (u - lo) * d + pivot
  std::vector<std::uint64_t> halo_words_;   // halo_slot(u) * d + pivot

  // Lazy mode.
  const FaultSet* faults_ = nullptr;
  FaultyBehavior behavior_ = FaultyBehavior::kRandom;
  std::uint64_t seed_ = 0;
  mutable std::unordered_map<Node, std::uint32_t> halo_page_;  // node -> block
  mutable std::vector<std::uint64_t> halo_pool_;  // blocks of d words
};

}  // namespace mmdiag
