#include "distributed/sharded_diagnoser.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

#include "util/enum_names.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace mmdiag {

namespace {

std::shared_ptr<const Topology> require_topology(
    std::shared_ptr<const Topology> t) {
  if (!t) throw std::invalid_argument("ShardedDiagnoser: null topology");
  return t;
}

}  // namespace

ShardedDiagnoser::ShardedDiagnoser(std::shared_ptr<const Topology> topology,
                                   CertifiedPartition partition,
                                   ShardedOptions options)
    : topology_(require_topology(std::move(topology))),
      view_(topology_),
      options_(options),
      delta_(partition.delta),
      partition_(std::move(partition)),
      plan_(ShardPlan::make(*topology_, options.shards,
                            partition_.plan.get())),
      pool_(std::make_unique<ThreadPool>(options.threads)) {
  check_options();
  const std::size_t n = view_.num_nodes();
  in_set_.resize(n);
  is_contributor_.resize(n);
  frontier_words_[0].assign((n + 63) / 64, 0u);
  frontier_words_[1].assign((n + 63) / 64, 0u);
  parent_pos_of_.assign(n, 0u);
  scan_shard_of_.assign(n, 0u);
  const unsigned shards = plan_.num_shards();
  shard_edges_.resize(shards);
  shard_consults_.assign(shards, 0);
  merge_cursor_.assign(shards, 0);
  shard_faults_.resize(shards);
}

void ShardedDiagnoser::check_options() const {
  if (!partition_.plan) {
    throw std::invalid_argument(
        "ShardedDiagnoser: certified partition has no plan");
  }
  const DiagnoserOptions& d = options_.diagnoser;
  if (d.rule != partition_.rule) {
    throw std::invalid_argument(
        "ShardedDiagnoser: options.rule (" + to_string(d.rule) +
        ") does not match the partition's calibration rule (" +
        to_string(partition_.rule) + ")");
  }
  if (d.delta != 0 && d.delta != partition_.delta) {
    throw std::invalid_argument(
        "ShardedDiagnoser: options.delta (" + std::to_string(d.delta) +
        ") conflicts with the adopted partition's certified bound (" +
        std::to_string(partition_.delta) + "); pass 0 to adopt the bound");
  }
  if (d.rule == ParentRule::kLeastFirst ||
      d.final_rule == ParentRule::kLeastFirst) {
    // kLeastFirst admits members during the scan, so every consult depends
    // on the admissions of all lower-numbered frontier nodes — an
    // order-serial chain no parallel scan can replay bit-identically.
    throw std::invalid_argument(
        "ShardedDiagnoser: kLeastFirst admits members mid-scan and cannot "
        "be sharded bit-identically; use a deferred rule (kSpread, "
        "kLeastSync or kHashSpread) for both rule and final_rule");
  }
}

DiagnosisResult ShardedDiagnoser::diagnose(const Syndrome& syndrome) {
  std::vector<ShardRowStore> stores;
  stores.reserve(plan_.num_shards());
  for (unsigned s = 0; s < plan_.num_shards(); ++s) {
    stores.emplace_back(plan_, s, view_, syndrome);
  }
  return diagnose_on(stores);
}

DiagnosisResult ShardedDiagnoser::diagnose(const FaultSet& faults,
                                           FaultyBehavior behavior,
                                           std::uint64_t seed) {
  std::vector<ShardRowStore> stores;
  stores.reserve(plan_.num_shards());
  for (unsigned s = 0; s < plan_.num_shards(); ++s) {
    stores.emplace_back(plan_, s, view_, faults, behavior, seed);
  }
  return diagnose_on(stores);
}

// The monolithic Diagnoser::diagnose_impl_on, with SetBuilder runs replaced
// by run_sharded and the boundary scan fanned over owner ranges. Phase
// structure, failure strings and accounting are replicated verbatim — the
// bit-identity contract depends on it.
DiagnosisResult ShardedDiagnoser::diagnose_on(
    std::vector<ShardRowStore>& stores) {
  lookups_ = 0;
  const Timer solve_timer;
  DiagnosisResult out;
  const PartitionPlan& plan = *partition_.plan;

  // Phase 1: probe seeds until a restricted run certifies.
  const std::size_t max_probes =
      std::min<std::size_t>(plan.num_components(), std::size_t{delta_} + 1);
  std::uint32_t certified = 0;
  bool found = false;
  for (std::size_t c = 0; c < max_probes; ++c) {
    ++out.probes;
    const RunOutcome probe = run_sharded(
        stores, plan.seed_of(c), options_.diagnoser.rule, &plan,
        static_cast<std::uint32_t>(c), options_.diagnoser.stop_probe_on_certify);
    if (probe.all_healthy) {
      certified = static_cast<std::uint32_t>(c);
      found = true;
      break;
    }
  }
  if (!found) {
    out.lookups = lookups_;
    out.failure_reason =
        "no component certified within delta+1 probes; the fault count "
        "likely exceeds the bound delta = " +
        std::to_string(delta_);
    out.diagnose_seconds = solve_timer.seconds();
    fill_stats(stores);
    return out;
  }
  out.certified_component = certified;

  // Phase 2: unrestricted run from the certified seed.
  const RunOutcome full =
      run_sharded(stores, plan.seed_of(certified), options_.diagnoser.final_rule,
                  nullptr, 0, false);
  out.final_members = full.member_count;
  out.final_rounds = full.rounds;

  // Phase 3: N(U_r) by complement scan, one owner range per shard.
  // Contiguous ranges concatenated in shard order are ascending node
  // order, so the result needs no sort — same output as the monolith's
  // single ascending scan.
  const unsigned shards = plan_.num_shards();
  pool_->parallel_for(shards, [&](unsigned, std::size_t s_idx) {
    const unsigned s = static_cast<unsigned>(s_idx);
    auto& faults = shard_faults_[s];
    faults.clear();
    const ShardRange owned = plan_.owned(s);
    for (Node v = owned.lo; v < owned.hi; ++v) {
      if (in_set_.contains(v)) continue;
      for (const Node w : view_.neighbors(v)) {
        if (in_set_.contains(w)) {
          faults.push_back(v);
          break;
        }
      }
    }
  });
  for (unsigned s = 0; s < shards; ++s) {
    out.faults.insert(out.faults.end(), shard_faults_[s].begin(),
                      shard_faults_[s].end());
  }
  out.lookups = lookups_;
  out.diagnose_seconds = solve_timer.seconds();
  fill_stats(stores);

  if (out.faults.size() > delta_) {
    out.failure_reason = "boundary larger than delta (" +
                         std::to_string(out.faults.size()) + " > " +
                         std::to_string(delta_) +
                         "); the fault count exceeds the bound";
    out.faults.clear();
    return out;
  }
  out.success = true;
  return out;
}

template <class Fn>
void ShardedDiagnoser::for_each_parent_group(Fn&& fn) {
  // K-way merge of the shard offer lists at parent-group granularity.
  // Every list is ascending in parent and one parent's offers live in
  // exactly one list (one shard scanned it), so repeatedly taking the
  // group with the least parent walks the monolith's zero_edges_ order.
  const unsigned shards = plan_.num_shards();
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), std::size_t{0});
  for (;;) {
    unsigned best = shards;
    Node best_parent = 0;
    for (unsigned s = 0; s < shards; ++s) {
      if (merge_cursor_[s] >= shard_edges_[s].size()) continue;
      const Node parent = shard_edges_[s][merge_cursor_[s]].parent;
      if (best == shards || parent < best_parent) {
        best = s;
        best_parent = parent;
      }
    }
    if (best == shards) return;
    const auto& edges = shard_edges_[best];
    std::size_t i = merge_cursor_[best];
    std::size_t j = i;
    while (j < edges.size() && edges[j].parent == best_parent) ++j;
    fn(edges.data() + i, edges.data() + j);
    merge_cursor_[best] = j;
  }
}

// SetBuilder::run_impl over sharded row stores: sequential round 1 and
// joins, parallel per-shard scans. Every admission decision, certificate
// check and consult replicates the monolith's order.
ShardedDiagnoser::RunOutcome ShardedDiagnoser::run_sharded(
    std::vector<ShardRowStore>& stores, Node u0, ParentRule rule,
    const PartitionPlan* plan, std::uint32_t comp, bool stop_on_certify) {
  const ImplicitGraph& g = view_;
  if (u0 >= g.num_nodes()) throw std::invalid_argument("Set_Builder: bad seed");
  if (plan != nullptr && plan->component_of(u0) != comp) {
    throw std::invalid_argument("Set_Builder: seed outside its component");
  }
  const auto* prefix_plan =
      plan != nullptr ? dynamic_cast<const PrefixBitsPlan*>(plan) : nullptr;
  const unsigned prefix_shift =
      prefix_plan != nullptr ? prefix_plan->suffix_bits() : 0;
  auto eligible = [&](Node v) {
    if (plan == nullptr) return true;
    if (prefix_plan != nullptr) return (v >> prefix_shift) == comp;
    return plan->component_of(v) == comp;
  };

  in_set_.clear();
  is_contributor_.clear();
  if (!frontier_clean_) {
    std::fill(frontier_words_[0].begin(), frontier_words_[0].end(), 0u);
    std::fill(frontier_words_[1].begin(), frontier_words_[1].end(), 0u);
  }
  frontier_clean_ = false;

  RunOutcome result;
  result.member_count = 1;
  in_set_.insert(u0);

  unsigned fi = 0;
  std::size_t next_count = 0;
  const unsigned shards = plan_.num_shards();

  auto add_member = [&](Node v, std::uint32_t parent_pos,
                        unsigned scan_shard) {
    parent_pos_of_[v] = parent_pos;
    scan_shard_of_[v] = static_cast<std::uint8_t>(scan_shard);
    frontier_words_[fi][v >> 6] |= std::uint64_t{1} << (v & 63);
    ++next_count;
    ++result.member_count;
  };

  std::uint64_t consults = 0;

  // ---- Round 1: U_1 from u0's pair tests (sequential; the seed's rows
  // live in owner(u0)'s store by definition). --------------------------------
  {
    const unsigned s0 = plan_.owner_of(u0);
    const ShardRowStore& store = stores[s0];
    const auto adj = g.neighbors(u0);
    const auto mirror = g.mirror_positions(u0);
    round1_pos_.clear();
    for (unsigned p = 0; p < adj.size(); ++p) {
      if (eligible(adj[p])) round1_pos_.push_back(p);
    }
    for (std::size_t a = 0; a < round1_pos_.size(); ++a) {
      const unsigned pa = round1_pos_[a];
      std::uint64_t row = 0;
      bool have_row = false;
      for (std::size_t b = a + 1; b < round1_pos_.size(); ++b) {
        const unsigned pb = round1_pos_[b];
        const Node va = adj[pa];
        const Node vb = adj[pb];
        if (in_set_.contains(va) && in_set_.contains(vb)) continue;
        if (!have_row) {
          row = store.row_bits(u0, pa);
          have_row = true;
        }
        ++consults;
        const bool one = (row >> pb) & 1;
        if (!one) {
          if (in_set_.insert(va)) add_member(va, mirror[pa], s0);
          if (in_set_.insert(vb)) add_member(vb, mirror[pb], s0);
        }
      }
    }
    if (next_count > 0) {
      is_contributor_.insert(u0);
      result.contributors = 1;
      result.rounds = 1;
    }
  }

  // ---- Rounds i >= 2. -------------------------------------------------------
  while (next_count > 0) {
    if (result.contributors > delta_) {
      result.all_healthy = true;
      if (stop_on_certify) break;
    }
    const unsigned ci = fi;  // the frontier being consumed this round
    fi ^= 1;
    next_count = 0;
    const std::uint64_t* const cur = frontier_words_[ci].data();
    const std::size_t cur_words = frontier_words_[ci].size();

    // Scan phase (parallel): membership, parent positions and scan-shard
    // assignments are frozen — each shard reads them and its own row
    // store only, collecting offers in (parent asc, position asc) order.
    pool_->parallel_for(shards, [&](unsigned, std::size_t s_idx) {
      const unsigned s = static_cast<unsigned>(s_idx);
      auto& edges = shard_edges_[s];
      edges.clear();
      std::uint64_t local_consults = 0;
      const ShardRowStore& store = stores[s];
      for (std::size_t w = 0; w < cur_words; ++w) {
        std::uint64_t bits = cur[w];
        while (bits != 0) {
          const Node u =
              static_cast<Node>((w << 6) + std::countr_zero(bits));
          bits &= bits - 1;
          if (scan_shard_of_[u] != s) continue;
          const unsigned parent_pos = parent_pos_of_[u];
          const auto adj = g.neighbors(u);
          const auto mirror = g.mirror_positions(u);
          std::uint64_t row = 0;
          bool have_row = false;
          for (unsigned p = 0; p < adj.size(); ++p) {
            const Node v = adj[p];
            if (p == parent_pos || in_set_.contains(v) || !eligible(v)) {
              continue;
            }
            if (!have_row) {
              row = store.row_bits(u, parent_pos);
              have_row = true;
            }
            ++local_consults;
            const bool one = (row >> p) & 1;
            if (!one) edges.push_back(ZeroEdge{u, v, mirror[p]});
          }
        }
      }
      shard_consults_[s] = local_consults;
    });
    for (unsigned s = 0; s < shards; ++s) consults += shard_consults_[s];
    // The monolith consumes the bitmap word-by-word; the parallel scans
    // read it S times instead, so zero it in one sequential sweep.
    std::fill(frontier_words_[ci].begin(), frontier_words_[ci].end(), 0u);

    // Join phase (sequential): replay the monolith's deferred admissions
    // over the merged offer order.
    if (rule == ParentRule::kSpread) {
      // Pass A: one child per distinct parent, parents ascending. The
      // monolith keeps scanning a claimed parent's remaining offers
      // without effect; stopping at the claim is the same admissions.
      for_each_parent_group([&](const ZeroEdge* begin, const ZeroEdge* end) {
        for (const ZeroEdge* e = begin; e != end; ++e) {
          if (in_set_.insert(e->child)) {
            add_member(e->child, e->child_parent_pos,
                       plan_.owner_of(e->parent));
            if (is_contributor_.insert(e->parent)) ++result.contributors;
            break;
          }
        }
      });
      // Pass B: remaining offers to the first admitting parent in order.
      for_each_parent_group([&](const ZeroEdge* begin, const ZeroEdge* end) {
        for (const ZeroEdge* e = begin; e != end; ++e) {
          if (in_set_.insert(e->child)) {
            add_member(e->child, e->child_parent_pos,
                       plan_.owner_of(e->parent));
            if (is_contributor_.insert(e->parent)) ++result.contributors;
          }
        }
      });
    } else if (rule == ParentRule::kHashSpread) {
      // The monolith sorts its whole offer buffer by (child, hash,
      // parent); that comparator is a total order over the (unique)
      // offers, so sorting the concatenation gives the identical
      // sequence regardless of shard interleaving.
      merged_edges_.clear();
      for (unsigned s = 0; s < shards; ++s) {
        merged_edges_.insert(merged_edges_.end(), shard_edges_[s].begin(),
                             shard_edges_[s].end());
      }
      std::sort(merged_edges_.begin(), merged_edges_.end(),
                [](const ZeroEdge& a, const ZeroEdge& b) {
                  if (a.child != b.child) return a.child < b.child;
                  const auto ha = mix64(a.parent, a.child);
                  const auto hb = mix64(b.parent, b.child);
                  if (ha != hb) return ha < hb;
                  return a.parent < b.parent;
                });
      for (const ZeroEdge& e : merged_edges_) {
        if (in_set_.insert(e.child)) {
          add_member(e.child, e.child_parent_pos, plan_.owner_of(e.parent));
          if (is_contributor_.insert(e.parent)) ++result.contributors;
        }
      }
    } else {  // kLeastSync: first admitting parent in offer order.
      for_each_parent_group([&](const ZeroEdge* begin, const ZeroEdge* end) {
        for (const ZeroEdge* e = begin; e != end; ++e) {
          if (in_set_.insert(e->child)) {
            add_member(e->child, e->child_parent_pos,
                       plan_.owner_of(e->parent));
            if (is_contributor_.insert(e->parent)) ++result.contributors;
          }
        }
      });
    }

    if (next_count > 0) ++result.rounds;
  }

  if (stop_on_certify && next_count > 0) {
    std::fill(frontier_words_[0].begin(), frontier_words_[0].end(), 0u);
    std::fill(frontier_words_[1].begin(), frontier_words_[1].end(), 0u);
  }

  if (result.contributors > delta_) result.all_healthy = true;
  lookups_ += consults;
  frontier_clean_ = true;
  return result;
}

void ShardedDiagnoser::fill_stats(const std::vector<ShardRowStore>& stores) {
  stats_ = ShardedRunStats{};
  stats_.shards = plan_.num_shards();
  stats_.closed_form_halo = plan_.closed_form_halo();
  for (const ShardRowStore& store : stores) {
    const std::uint64_t bytes = store.memory_bytes();
    stats_.halo_blocks_exchanged += store.halo_blocks_exchanged();
    stats_.total_store_bytes += bytes;
    stats_.max_store_bytes = std::max(stats_.max_store_bytes, bytes);
  }
}

}  // namespace mmdiag
