// minigtest — a single-header, dependency-free GoogleTest substitute.
//
// This is the offline fallback tier of cmake/GetGTest.cmake: when neither a
// system GoogleTest nor a network fetch is available, the suites link
// against this header plus gtest_main.cpp instead. It implements exactly
// the API surface the mmdiag suites use:
//
//   TEST, TEST_F (fixtures with SetUp/TearDown),
//   TEST_P / TestWithParam<T> / INSTANTIATE_TEST_SUITE_P (with optional
//     name-generator taking TestParamInfo<T>), ::testing::Values,
//   EXPECT_/ASSERT_ {EQ,NE,LT,LE,GT,GE,TRUE,FALSE}, EXPECT_NEAR,
//   EXPECT_THROW, EXPECT_NO_THROW, FAIL, ADD_FAILURE, SUCCEED,
//   GTEST_SKIP, SCOPED_TRACE, RUN_ALL_TESTS, InitGoogleTest.
//
// Output mimics gtest's [ RUN ]/[ OK ]/[ FAILED ] format closely enough
// for log-scraping tools. Not thread-safe (tests run sequentially).
#pragma once

#include <cstddef>
#include <cstdio>
#include <exception>
#include <functional>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

// ---------------------------------------------------------------------------
// Message: the streaming payload of every assertion.
// ---------------------------------------------------------------------------
class Message {
 public:
  Message() = default;
  Message(const Message& other) { ss_ << other.str(); }

  template <typename T>
  Message& operator<<(const T& value) {
    ss_ << value;
    return *this;
  }

  [[nodiscard]] std::string str() const { return ss_.str(); }

 private:
  std::ostringstream ss_;
};

namespace internal {

// ---------------------------------------------------------------------------
// Value printing for failure messages: stream when possible, fall back to
// element-wise printing for containers, else an opaque placeholder.
// ---------------------------------------------------------------------------
template <typename T, typename = void>
struct is_streamable : std::false_type {};
template <typename T>
struct is_streamable<T, std::void_t<decltype(std::declval<std::ostream&>()
                                             << std::declval<const T&>())>>
    : std::true_type {};

template <typename T, typename = void>
struct is_container : std::false_type {};
template <typename T>
struct is_container<T, std::void_t<decltype(std::begin(std::declval<const T&>())),
                                   decltype(std::end(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T>
void PrintValue(std::ostream& os, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (is_streamable<T>::value) {
    os << value;
  } else if constexpr (is_container<T>::value) {
    os << "{ ";
    bool first = true;
    for (const auto& item : value) {
      if (!first) os << ", ";
      first = false;
      PrintValue(os, item);
    }
    os << " }";
  } else {
    os << "<unprintable " << sizeof(T) << "-byte object>";
  }
}

template <typename T>
std::string PrintToString(const T& value) {
  std::ostringstream os;
  PrintValue(os, value);
  return os.str();
}

// ---------------------------------------------------------------------------
// Per-test state and the global run context.
// ---------------------------------------------------------------------------
struct TestState {
  bool failed = false;
  bool skipped = false;
  std::vector<std::string> failure_messages;
};

inline TestState*& CurrentState() {
  static TestState* state = nullptr;
  return state;
}

inline std::vector<std::string>& TraceStack() {
  static std::vector<std::string> stack;
  return stack;
}

class ScopedTrace {
 public:
  ScopedTrace(const char* file, int line, const Message& message) {
    std::ostringstream os;
    os << file << ":" << line << ": " << message.str();
    TraceStack().push_back(os.str());
  }
  ~ScopedTrace() { TraceStack().pop_back(); }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

enum class FailureKind { kNonFatal, kFatal, kSkip };

// The `AssertHelper(...) = Message() << ...` trick: operator<< binds tighter
// than operator=, so user streaming lands in the Message before recording.
class AssertHelper {
 public:
  AssertHelper(const char* file, int line, FailureKind kind)
      : file_(file), line_(line), kind_(kind) {}

  void operator=(const Message& message) const {
    TestState* state = CurrentState();
    if (state == nullptr) return;
    if (kind_ == FailureKind::kSkip) {
      state->skipped = true;
      return;
    }
    state->failed = true;
    std::ostringstream os;
    os << file_ << ":" << line_ << ": Failure\n" << message.str();
    for (const std::string& frame : TraceStack()) {
      os << "\nGoogle Test trace:\n" << frame;
    }
    state->failure_messages.push_back(os.str());
  }

 private:
  const char* file_;
  int line_;
  FailureKind kind_;
};

// Comparison helpers live in the header so any -Wsign-compare from mixed
// operand types is attributed (and suppressed) here, not at the call site.
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wsign-compare"
#endif
struct CmpResult {
  bool ok;
  std::string message;
};

template <typename A, typename B, typename Op>
CmpResult DoCompare(Op op, const A& a, const B& b, const char* expr_a,
                    const char* expr_b, const char* op_text, bool equality) {
  if (op(a, b)) return {true, {}};
  std::ostringstream os;
  if (equality) {
    os << "Expected equality of these values:\n  " << expr_a
       << "\n    Which is: " << PrintToString(a) << "\n  " << expr_b
       << "\n    Which is: " << PrintToString(b);
  } else {
    os << "Expected: (" << expr_a << ") " << op_text << " (" << expr_b
       << "), actual: " << PrintToString(a) << " vs " << PrintToString(b);
  }
  return {false, os.str()};
}

struct OpEq {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a == b; }
};
struct OpNe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a != b; }
};
struct OpLt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a < b; }
};
struct OpLe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a <= b; }
};
struct OpGt {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a > b; }
};
struct OpGe {
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const { return a >= b; }
};
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif

template <typename Exception, typename Fn>
bool ThrowsExpected(Fn&& fn) {
  try {
    fn();
  } catch (const Exception&) {
    return true;
  } catch (...) {
    return false;
  }
  return false;
}

template <typename Fn>
bool ThrowsAnything(Fn&& fn) {
  try {
    fn();
  } catch (...) {
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Registration: plain tests, parameterized tests, instantiations.
// ---------------------------------------------------------------------------
class TestCase;  // fwd: ::testing::Test

struct TestEntry {
  std::string suite;
  std::string name;
  std::function<void()> run;  // constructs, runs, destroys one test object
};

inline std::vector<TestEntry>& RegisteredTests() {
  static std::vector<TestEntry> tests;
  return tests;
}

struct ParamTestEntry {
  std::string suite;
  std::string name;
  std::function<void(const void*)> run_with_param;
};

inline std::vector<ParamTestEntry>& RegisteredParamTests() {
  static std::vector<ParamTestEntry> tests;
  return tests;
}

// Instantiations expand lazily inside RUN_ALL_TESTS so TEST_P/INSTANTIATE
// static-init order never matters.
inline std::vector<std::function<void()>>& PendingInstantiations() {
  static std::vector<std::function<void()>> pending;
  return pending;
}

}  // namespace internal

// ---------------------------------------------------------------------------
// Test base classes.
// ---------------------------------------------------------------------------
class Test {
 public:
  virtual ~Test() = default;

 protected:
  Test() = default;
  virtual void SetUp() {}
  virtual void TearDown() {}
  virtual void TestBody() = 0;

 public:
  void RunSingle() {
    SetUp();
    TestBody();
    TearDown();
  }
};

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  [[nodiscard]] const T& GetParam() const { return *current_param_; }
  static void SetParam(const T* param) { current_param_ = param; }

 private:
  static inline const T* current_param_ = nullptr;
};

template <typename T>
struct TestParamInfo {
  T param;
  std::size_t index;
};

// Values(...) materialises to the suite's ParamType at instantiation time,
// so Values("a", "b") feeds a TestWithParam<std::string> correctly.
template <typename... Ts>
struct ValuesHolder {
  std::tuple<Ts...> values;

  template <typename T>
  [[nodiscard]] std::vector<T> Materialize() const {
    std::vector<T> out;
    out.reserve(sizeof...(Ts));
    std::apply([&out](const Ts&... vs) { (out.push_back(static_cast<T>(vs)), ...); },
               values);
    return out;
  }
};

template <typename... Ts>
ValuesHolder<std::decay_t<Ts>...> Values(Ts&&... values) {
  return {std::tuple<std::decay_t<Ts>...>(std::forward<Ts>(values)...)};
}

namespace internal {

inline int RegisterTest(const char* suite, const char* name,
                        std::function<std::unique_ptr<Test>()> factory) {
  RegisteredTests().push_back(
      {suite, name, [factory = std::move(factory)]() { factory()->RunSingle(); }});
  return 0;
}

template <typename Suite>
int RegisterParamTest(const char* suite, const char* name,
                      std::function<std::unique_ptr<Test>()> factory) {
  using T = typename Suite::ParamType;
  RegisteredParamTests().push_back(
      {suite, name, [factory = std::move(factory)](const void* param) {
         Suite::SetParam(static_cast<const T*>(param));
         factory()->RunSingle();
       }});
  return 0;
}

template <typename T>
std::string DefaultParamName(const TestParamInfo<T>& info) {
  return std::to_string(info.index);
}

template <typename Suite, typename Holder, typename NameGen>
int RegisterInstantiation(const char* prefix, const char* suite,
                          const Holder& holder, NameGen name_gen) {
  using T = typename Suite::ParamType;
  auto params = std::make_shared<std::vector<T>>(holder.template Materialize<T>());
  std::string prefix_str = prefix;
  std::string suite_str = suite;
  PendingInstantiations().push_back([params, prefix_str, suite_str, name_gen]() {
    for (std::size_t i = 0; i < params->size(); ++i) {
      const std::string label = name_gen(TestParamInfo<T>{(*params)[i], i});
      for (const ParamTestEntry& entry : RegisteredParamTests()) {
        if (entry.suite != suite_str) continue;
        const void* param_ptr = &(*params)[i];
        auto run = entry.run_with_param;
        // `params` rides along in the closure so the pointed-to element
        // outlives the expansion phase.
        RegisteredTests().push_back(
            {prefix_str + "/" + suite_str, entry.name + "/" + label,
             [run, param_ptr, params]() { run(param_ptr); }});
      }
    }
  });
  return 0;
}

template <typename Suite, typename Holder>
int RegisterInstantiation(const char* prefix, const char* suite,
                          const Holder& holder) {
  using T = typename Suite::ParamType;
  return RegisterInstantiation<Suite>(prefix, suite, holder,
                                      &DefaultParamName<T>);
}

int RunAllTests();

}  // namespace internal

inline void InitGoogleTest(int* /*argc*/, char** /*argv*/) {}
inline void InitGoogleTest() {}

}  // namespace testing

// ---------------------------------------------------------------------------
// Macros.
// ---------------------------------------------------------------------------
#define MMG_CONCAT_IMPL_(a, b) a##b
#define MMG_CONCAT_(a, b) MMG_CONCAT_IMPL_(a, b)

// Guards against `if (x) EXPECT_...; else ...` swallowing the user's else.
#define MMG_BLOCKER_ \
  switch (0)         \
  case 0:            \
  default:

#define MMG_MESSAGE_AT_(kind) \
  ::testing::internal::AssertHelper(__FILE__, __LINE__, kind) = ::testing::Message()

#define MMG_NONFATAL_ MMG_MESSAGE_AT_(::testing::internal::FailureKind::kNonFatal)
#define MMG_FATAL_ return MMG_MESSAGE_AT_(::testing::internal::FailureKind::kFatal)

#define FAIL() MMG_FATAL_ << "Failed\n"
#define ADD_FAILURE() MMG_NONFATAL_ << "Failed\n"
#define SUCCEED() \
  MMG_BLOCKER_ if (true); else MMG_NONFATAL_
#define GTEST_SKIP() return MMG_MESSAGE_AT_(::testing::internal::FailureKind::kSkip)

#define MMG_BOOL_(expr, expected, FAILMODE)                                  \
  MMG_BLOCKER_                                                               \
  if (static_cast<bool>(expr) == (expected));                                \
  else                                                                       \
    FAILMODE << "Value of: " #expr "\n  Actual: "                            \
             << ((expected) ? "false" : "true")                              \
             << "\nExpected: " << ((expected) ? "true" : "false") << "\n"

#define EXPECT_TRUE(expr) MMG_BOOL_(expr, true, MMG_NONFATAL_)
#define EXPECT_FALSE(expr) MMG_BOOL_(expr, false, MMG_NONFATAL_)
#define ASSERT_TRUE(expr) MMG_BOOL_(expr, true, MMG_FATAL_)
#define ASSERT_FALSE(expr) MMG_BOOL_(expr, false, MMG_FATAL_)

#define MMG_CMP_(v1, v2, OP, op_text, equality, FAILMODE)                     \
  MMG_BLOCKER_                                                                \
  if (auto mmg_result = ::testing::internal::DoCompare(                       \
          ::testing::internal::OP{}, (v1), (v2), #v1, #v2, op_text, equality); \
      mmg_result.ok);                                                         \
  else                                                                        \
    FAILMODE << mmg_result.message << "\n"

#define EXPECT_EQ(v1, v2) MMG_CMP_(v1, v2, OpEq, "==", true, MMG_NONFATAL_)
#define EXPECT_NE(v1, v2) MMG_CMP_(v1, v2, OpNe, "!=", false, MMG_NONFATAL_)
#define EXPECT_LT(v1, v2) MMG_CMP_(v1, v2, OpLt, "<", false, MMG_NONFATAL_)
#define EXPECT_LE(v1, v2) MMG_CMP_(v1, v2, OpLe, "<=", false, MMG_NONFATAL_)
#define EXPECT_GT(v1, v2) MMG_CMP_(v1, v2, OpGt, ">", false, MMG_NONFATAL_)
#define EXPECT_GE(v1, v2) MMG_CMP_(v1, v2, OpGe, ">=", false, MMG_NONFATAL_)
#define ASSERT_EQ(v1, v2) MMG_CMP_(v1, v2, OpEq, "==", true, MMG_FATAL_)
#define ASSERT_NE(v1, v2) MMG_CMP_(v1, v2, OpNe, "!=", false, MMG_FATAL_)
#define ASSERT_LT(v1, v2) MMG_CMP_(v1, v2, OpLt, "<", false, MMG_FATAL_)
#define ASSERT_LE(v1, v2) MMG_CMP_(v1, v2, OpLe, "<=", false, MMG_FATAL_)
#define ASSERT_GT(v1, v2) MMG_CMP_(v1, v2, OpGt, ">", false, MMG_FATAL_)
#define ASSERT_GE(v1, v2) MMG_CMP_(v1, v2, OpGe, ">=", false, MMG_FATAL_)

#define EXPECT_NEAR(v1, v2, abs_error)                                        \
  MMG_BLOCKER_                                                                \
  if (auto mmg_diff = ((v1) > (v2)) ? ((v1) - (v2)) : ((v2) - (v1));          \
      mmg_diff <= (abs_error));                                               \
  else                                                                        \
    MMG_NONFATAL_ << "The difference between " #v1 " and " #v2 " is "         \
                  << mmg_diff << ", which exceeds " #abs_error "\n"

#define MMG_THROW_(statement, exception_type, FAILMODE)                       \
  MMG_BLOCKER_                                                                \
  if (::testing::internal::ThrowsExpected<exception_type>(                    \
          [&]() { statement; }));                                             \
  else                                                                        \
    FAILMODE << "Expected: " #statement " throws an exception of type "       \
             << #exception_type ".\n  Actual: it throws a different type "    \
                "or nothing.\n"

#define EXPECT_THROW(statement, exception_type) \
  MMG_THROW_(statement, exception_type, MMG_NONFATAL_)
#define ASSERT_THROW(statement, exception_type) \
  MMG_THROW_(statement, exception_type, MMG_FATAL_)

#define MMG_NO_THROW_(statement, FAILMODE)                                  \
  MMG_BLOCKER_                                                              \
  if (!::testing::internal::ThrowsAnything([&]() { statement; }));          \
  else                                                                      \
    FAILMODE << "Expected: " #statement " doesn't throw an exception.\n"    \
                "  Actual: it throws.\n"

#define EXPECT_NO_THROW(statement) MMG_NO_THROW_(statement, MMG_NONFATAL_)
#define ASSERT_NO_THROW(statement) MMG_NO_THROW_(statement, MMG_FATAL_)

#define SCOPED_TRACE(message)                                     \
  const ::testing::internal::ScopedTrace MMG_CONCAT_(mmg_trace_,  \
                                                     __LINE__)(   \
      __FILE__, __LINE__, ::testing::Message() << (message))

#define MMG_CLASS_NAME_(suite, name) MmgTest_##suite##_##name

#define MMG_TEST_(suite, name, base)                                         \
  class MMG_CLASS_NAME_(suite, name) final : public base {                   \
    void TestBody() override;                                                \
  };                                                                         \
  [[maybe_unused]] static const int MMG_CONCAT_(mmg_reg_##suite##_, name) =  \
      ::testing::internal::RegisterTest(                                     \
          #suite, #name, []() -> std::unique_ptr<::testing::Test> {          \
            return std::make_unique<MMG_CLASS_NAME_(suite, name)>();         \
          });                                                                \
  void MMG_CLASS_NAME_(suite, name)::TestBody()

#define TEST(suite, name) MMG_TEST_(suite, name, ::testing::Test)
#define TEST_F(fixture, name) MMG_TEST_(fixture, name, fixture)

#define TEST_P(suite, name)                                                  \
  class MMG_CLASS_NAME_(suite, name) final : public suite {                  \
    void TestBody() override;                                                \
  };                                                                         \
  [[maybe_unused]] static const int MMG_CONCAT_(mmg_preg_##suite##_, name) = \
      ::testing::internal::RegisterParamTest<suite>(                         \
          #suite, #name, []() -> std::unique_ptr<::testing::Test> {          \
            return std::make_unique<MMG_CLASS_NAME_(suite, name)>();         \
          });                                                                \
  void MMG_CLASS_NAME_(suite, name)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(prefix, suite, ...)                         \
  [[maybe_unused]] static const int MMG_CONCAT_(mmg_inst_##suite##_,         \
                                                __LINE__) =                  \
      ::testing::internal::RegisterInstantiation<suite>(#prefix, #suite,     \
                                                        __VA_ARGS__)

// ---------------------------------------------------------------------------
// Runner.
// ---------------------------------------------------------------------------
namespace testing::internal {

inline int RunAllTests() {
  for (const auto& expand : PendingInstantiations()) expand();
  PendingInstantiations().clear();

  auto& tests = RegisteredTests();
  std::size_t failed = 0;
  std::size_t skipped = 0;
  std::vector<std::string> failed_names;

  std::printf("[==========] Running %zu tests (minigtest).\n", tests.size());
  for (const TestEntry& entry : tests) {
    const std::string full = entry.suite + "." + entry.name;
    std::printf("[ RUN      ] %s\n", full.c_str());
    TestState state;
    CurrentState() = &state;
    try {
      entry.run();
    } catch (const std::exception& e) {
      state.failed = true;
      state.failure_messages.push_back(
          std::string("unknown file: Failure\nC++ exception with description \"") +
          e.what() + "\" thrown in the test body.");
    } catch (...) {
      state.failed = true;
      state.failure_messages.push_back(
          "unknown file: Failure\nUnknown C++ exception thrown in the test body.");
    }
    CurrentState() = nullptr;
    for (const std::string& message : state.failure_messages) {
      std::printf("%s\n", message.c_str());
    }
    if (state.failed) {
      ++failed;
      failed_names.push_back(full);
      std::printf("[  FAILED  ] %s\n", full.c_str());
    } else if (state.skipped) {
      ++skipped;
      std::printf("[  SKIPPED ] %s\n", full.c_str());
    } else {
      std::printf("[       OK ] %s\n", full.c_str());
    }
  }

  std::printf("[==========] %zu tests ran.\n", tests.size());
  std::printf("[  PASSED  ] %zu tests.\n", tests.size() - failed - skipped);
  if (skipped != 0) std::printf("[  SKIPPED ] %zu tests.\n", skipped);
  if (failed != 0) {
    std::printf("[  FAILED  ] %zu tests, listed below:\n", failed);
    for (const std::string& name : failed_names) {
      std::printf("[  FAILED  ] %s\n", name.c_str());
    }
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace testing::internal

#define RUN_ALL_TESTS() ::testing::internal::RunAllTests()
