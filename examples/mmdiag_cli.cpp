// mmdiag_cli — command-line front end over the syndrome file format.
//
//   mmdiag_cli generate <spec...> --faults k [--seed s] [--behavior b] -o F
//       Simulate an MM-model self-test sweep of the given topology with k
//       random faults and write the syndrome to file F (ground truth goes
//       to F.truth). behaviours: random | all-zero | all-one | anti.
//
//   mmdiag_cli diagnose <file> [--verify]
//       Load a syndrome file, run the paper's diagnosis, print the fault
//       ids (and check full-syndrome consistency with --verify).
//
//   mmdiag_cli diagnose --batch <dir> [--threads N]
//       Load every syndrome file in <dir> (anything not ending in .truth),
//       group the files by topology spec, and diagnose each group in
//       parallel with BatchDiagnoser — the certified partition is built
//       once per topology and shared by all N worker threads.
//
//   mmdiag_cli info <spec...>
//       Print the topology's constants and its certified partition.
//
//   mmdiag_cli fuzz [--cases N] [--seed S] [--out-dir DIR] ...
//   mmdiag_cli fuzz --replay FILE
//       Differentially fuzz the §5 driver against the exact solver over the
//       registered topology catalog; divergences are minimized and written
//       as replayable .repro files. --replay re-executes one repro file.
//
// Exit status: 0 on success, 1 on diagnosis failure / fuzz divergence,
// 2 on usage errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/batch_diagnoser.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "core/verifier.hpp"
#include "fuzz/fuzzer.hpp"
#include "io/syndrome_io.hpp"
#include "mm/injector.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace mmdiag;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  mmdiag_cli generate <spec...> --faults K [--seed S] "
               "[--behavior random|all-zero|all-one|anti] -o FILE\n"
            << "  mmdiag_cli diagnose FILE [--verify]\n"
            << "  mmdiag_cli diagnose --batch DIR [--threads N]\n"
            << "  mmdiag_cli info <spec...>\n"
            << "  mmdiag_cli fuzz [--cases N] [--seed S] [--out-dir DIR] "
               "[--max-bugs K] [--budget-seconds T]\n"
            << "             [--sabotage none|rule-mismatch|drop-fault]\n"
            << "  mmdiag_cli fuzz --replay FILE "
               "[--sabotage none|rule-mismatch|drop-fault]\n";
  return 2;
}

/// Parses the value of `flag` into `out`; prints a usage diagnostic and
/// returns false on anything parse_unsigned (util/parse.hpp) rejects —
/// empty, signs, trailing junk ("12junk"), overflow — so bad command lines
/// become usage errors instead of uncaught std::stoul exceptions or silent
/// wrap-arounds.
template <typename T>
bool parse_flag_value(const std::string& flag, const std::string& token,
                      std::uint64_t max_value, T& out) {
  const auto value = parse_unsigned(token, max_value);
  if (!value) {
    std::cerr << "bad value for " << flag << ": '" << token
              << "' (expected an integer in [0, " << max_value << "])\n";
    return false;
  }
  out = static_cast<T>(*value);
  return true;
}

/// Threads beyond this are a typo, not a machine.
constexpr std::uint64_t kMaxThreads = 4096;

int cmd_generate(const std::vector<std::string>& args) {
  std::string spec, out_path;
  std::size_t faults = 0;
  std::uint64_t seed = 1;
  FaultyBehavior behavior = FaultyBehavior::kRandom;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--faults" && i + 1 < args.size()) {
      if (!parse_flag_value("--faults", args[++i],
                            std::numeric_limits<std::uint32_t>::max(),
                            faults)) {
        return usage();
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_flag_value("--seed", args[++i],
                            std::numeric_limits<std::uint64_t>::max(), seed)) {
        return usage();
      }
    } else if (args[i] == "--behavior" && i + 1 < args.size()) {
      behavior = behavior_from_string(args[++i]);
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      if (!spec.empty()) spec += ' ';
      spec += args[i];
    }
  }
  if (spec.empty() || out_path.empty()) return usage();

  const auto topo = make_topology_from_spec(spec);
  const Graph graph = topo->build_graph();
  Rng rng(seed);
  const FaultSet fault_set(graph.num_nodes(),
                           inject_uniform(graph.num_nodes(), faults, rng));
  const Syndrome syndrome = generate_syndrome(graph, fault_set, behavior, seed);

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << "# generated by mmdiag_cli: " << faults << " faults, seed " << seed
      << ", behaviour " << to_string(behavior) << "\n";
  write_syndrome(out, spec, graph, syndrome);

  std::ofstream truth(out_path + ".truth");
  write_node_list(truth, fault_set.nodes());
  std::cout << "wrote " << out_path << " (" << syndrome.total_tests()
            << " tests) and " << out_path << ".truth\n";
  return 0;
}

int cmd_diagnose_batch(const std::string& dir, unsigned threads) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::cerr << "not a directory: " << dir << "\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".truth" || p.filename().string().front() == '.') {
      continue;
    }
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no syndrome files in " << dir << "\n";
    return 2;
  }

  // One BatchDiagnoser per topology spec: the partition and graph are the
  // shared per-topology setup, the syndromes are the per-item work.
  std::map<std::string, std::vector<std::size_t>> by_spec;
  std::vector<LoadedSyndrome> loaded;
  loaded.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i]);
    if (!in) {
      std::cerr << "cannot read " << files[i].string() << "\n";
      return 2;
    }
    try {
      loaded.push_back(read_syndrome(in));
    } catch (const std::exception& e) {
      std::cerr << files[i].string() << ": " << e.what() << "\n";
      return 2;
    }
    by_spec[loaded.back().spec].push_back(i);
  }

  int exit_code = 0;
  std::size_t total_ok = 0;
  Timer timer;
  for (const auto& [spec, indices] : by_spec) {
    const LoadedSyndrome& first = loaded[indices.front()];
    BatchOptions options;
    options.threads = threads;
    BatchDiagnoser engine(*first.topology, first.graph, options);

    std::vector<TableOracle> oracles;
    oracles.reserve(indices.size());
    for (const std::size_t i : indices) {
      // All graphs of one spec are the same deterministic build, so the
      // group's shared graph addresses every file's syndrome bits.
      oracles.emplace_back(first.graph, loaded[i].syndrome);
    }
    std::vector<const SyndromeOracle*> ptrs;
    ptrs.reserve(oracles.size());
    for (const TableOracle& o : oracles) ptrs.push_back(&o);

    const BatchResult batch = engine.diagnose_all(ptrs);
    std::cout << spec << ": " << indices.size() << " syndrome(s), "
              << engine.threads() << " thread(s), " << batch.succeeded
              << " diagnosed in " << batch.seconds * 1e3 << " ms\n";
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const DiagnosisResult& r = batch.results[k];
      std::cout << "  " << files[indices[k]].filename().string() << ": ";
      if (!r.success) {
        std::cout << "FAILED (" << r.failure_reason << ")\n";
        exit_code = 1;
        continue;
      }
      ++total_ok;
      std::cout << r.faults.size() << " fault(s)";
      for (const Node v : r.faults) std::cout << ' ' << v;
      std::cout << "\n";
    }
  }
  std::cout << "batch total: " << total_ok << "/" << files.size()
            << " diagnosed in " << timer.millis() << " ms\n";
  return exit_code;
}

int cmd_diagnose(const std::vector<std::string>& args) {
  std::string path, batch_dir;
  bool verify = false;
  unsigned threads = 0;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--verify") {
      verify = true;
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      batch_dir = args[++i];
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_flag_value("--threads", args[++i], kMaxThreads, threads)) {
        return usage();
      }
    } else {
      path = args[i];
    }
  }
  if (!batch_dir.empty()) return cmd_diagnose_batch(batch_dir, threads);
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  LoadedSyndrome loaded = read_syndrome(in);
  std::cout << "loaded " << loaded.spec << ": " << loaded.graph.num_nodes()
            << " nodes, " << loaded.syndrome.total_tests() << " tests\n";

  Diagnoser diagnoser(*loaded.topology, loaded.graph);
  const TableOracle oracle(loaded.graph, loaded.syndrome);
  Timer timer;
  const DiagnosisResult result =
      verify ? diagnose_and_verify(diagnoser, oracle) : diagnoser.diagnose(oracle);
  if (!result.success) {
    std::cerr << "diagnosis failed: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "diagnosed " << result.faults.size() << " fault(s) in "
            << timer.millis() << " ms (" << result.lookups << " look-ups"
            << (verify ? ", verified" : "") << "):\n";
  for (const Node v : result.faults) {
    std::cout << "  " << v << "  [" << loaded.topology->node_label(v) << "]\n";
  }
  if (result.faults.empty()) std::cout << "  (system healthy)\n";
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  std::string spec;
  for (const auto& a : args) {
    if (!spec.empty()) spec += ' ';
    spec += a;
  }
  if (spec.empty()) return usage();
  const auto topo = make_topology_from_spec(spec);
  const auto info = topo->info();
  const Graph graph = topo->build_graph();
  std::cout << info.name << " (" << info.family << ")\n"
            << "  nodes:          " << info.num_nodes << "\n"
            << "  degree:         " << info.degree << "\n"
            << "  connectivity:   " << info.connectivity << "\n"
            << "  diagnosability: " << info.diagnosability << "\n"
            << "  fault bound:    " << topo->default_fault_bound() << "\n";
  try {
    const auto cp = find_certified_partition(*topo, graph,
                                             topo->default_fault_bound(),
                                             ParentRule::kSpread, true);
    std::cout << "  partition:      " << cp.plan->description() << "\n";
  } catch (const DiagnosisUnsupportedError& e) {
    std::cout << "  partition:      UNSUPPORTED\n" << e.what();
  }
  return 0;
}

int cmd_fuzz_replay(const std::string& path, Sabotage sabotage) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  const FuzzCase c = read_repro(in);
  std::cout << "replaying " << path << ": " << c.spec << ", delta " << c.delta
            << ", " << c.faults.size() << " fault(s), pattern "
            << to_string(c.pattern) << ", behaviour " << to_string(c.behavior)
            << "\n";
  FuzzContext ctx;
  const DiffReport report = run_differential(ctx, c, sabotage);
  if (!report.diverged()) {
    std::cout << "replay clean: all driver configurations agree with the "
                 "exact solver\n";
    return 0;
  }
  for (const Divergence& d : report.divergences) {
    std::cerr << "DIVERGENCE [" << d.config << "] " << d.detail << "\n";
  }
  return 1;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  FuzzOptions options;
  std::string replay_path, out_dir = ".";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--cases" && i + 1 < args.size()) {
      if (!parse_flag_value("--cases", args[++i], std::uint64_t{100'000'000},
                            options.cases)) {
        return usage();
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_flag_value("--seed", args[++i],
                            std::numeric_limits<std::uint64_t>::max(),
                            options.seed)) {
        return usage();
      }
    } else if (args[i] == "--max-bugs" && i + 1 < args.size()) {
      if (!parse_flag_value("--max-bugs", args[++i], std::uint64_t{1'000'000},
                            options.max_bugs)) {
        return usage();
      }
    } else if (args[i] == "--budget-seconds" && i + 1 < args.size()) {
      std::uint64_t seconds = 0;
      if (!parse_flag_value("--budget-seconds", args[++i],
                            std::uint64_t{86'400}, seconds)) {
        return usage();
      }
      options.budget_seconds = static_cast<double>(seconds);
    } else if (args[i] == "--sabotage" && i + 1 < args.size()) {
      options.sabotage = sabotage_from_string(args[++i]);
    } else if (args[i] == "--replay" && i + 1 < args.size()) {
      replay_path = args[++i];
    } else if (args[i] == "--out-dir" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else {
      std::cerr << "unknown fuzz argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (!replay_path.empty()) return cmd_fuzz_replay(replay_path, options.sabotage);

  Fuzzer fuzzer(options);
  Timer timer;
  const FuzzSummary summary = fuzzer.run();
  std::cout << "fuzz: " << summary.cases_run << " case(s), seed "
            << options.seed << ", " << summary.beyond_delta_cases
            << " beyond-delta, " << timer.millis() << " ms"
            << (summary.budget_exhausted ? " (budget exhausted)" : "") << "\n";
  std::cout << "  families:";
  for (const auto& [family, count] : summary.cases_per_family) {
    std::cout << ' ' << family << '=' << count;
  }
  std::cout << "\n  patterns:";
  for (const auto& [pattern, count] : summary.cases_per_pattern) {
    std::cout << ' ' << pattern << '=' << count;
  }
  std::cout << "\n";
  if (summary.clean()) {
    std::cout << "no divergences: every driver configuration agreed with the "
                 "exact solver on every case\n";
    return 0;
  }
  std::filesystem::create_directories(out_dir);
  for (const FuzzBug& bug : summary.bugs) {
    const std::string name = "repro-seed" + std::to_string(options.seed) +
                             "-case" + std::to_string(bug.case_index) +
                             ".repro";
    const std::filesystem::path path = std::filesystem::path(out_dir) / name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path.string() << "\n";
      return 2;
    }
    out << "# minimized from case " << bug.case_index << " of seed "
        << options.seed << " (" << bug.original.spec << ", "
        << bug.original.faults.size() << " faults)\n";
    out << "# divergence [" << bug.config << "] " << bug.detail << "\n";
    write_repro(out, bug.minimized);
    std::cerr << "DIVERGENCE at case " << bug.case_index << " ["
              << bug.config << "] " << bug.detail << "\n";
    std::cerr << "  minimized to " << bug.minimized.spec << " with "
              << bug.minimized.faults.size() << " fault(s); repro written to "
              << path.string() << "\n";
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "diagnose") return cmd_diagnose(args);
    if (command == "info") return cmd_info(args);
    if (command == "fuzz") return cmd_fuzz(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
