// mmdiag_cli — command-line front end over the syndrome file format.
//
//   mmdiag_cli generate <spec...> --faults k [--seed s] [--model m]
//              [--behavior b] -o F
//       Simulate a self-test sweep of the given topology with k random
//       faults and write the syndrome to file F (ground truth goes to
//       F.truth). models: mm-star (default, comparator matrix) | pmc |
//       bgm (directed per-arc outcomes). behaviours: random | all-zero |
//       all-one | anti.
//
//   mmdiag_cli diagnose <file> [--verify] [--model m] [--local NODE]
//              [--graph-mode csr|auto] [--shards S]
//       Load a syndrome file (its model header picks the solver), run the
//       diagnosis through the DiagnosisEngine, print the fault ids and the
//       setup/solve split (and check full-syndrome consistency with
//       --verify, MM* only). --model asserts the file's model. --local
//       answers one node's status via the BGM neighbourhood-read fast
//       path instead of a global solve. Syndrome files address rows
//       through CSR adjacency, so --graph-mode implicit is a usage error.
//       --shards S routes an mm-star solve through the owner/halo
//       ShardedDiagnoser (S owner shards, parallel scans, bit-identical
//       results); the final-pass rule becomes spread, the one change the
//       sharded engine requires.
//
//   mmdiag_cli diagnose --batch <dir> [--threads N]
//       Load every syndrome file in <dir> (anything not ending in .truth),
//       group the files by canonical topology spec, and diagnose each group
//       in parallel with an engine-backed BatchDiagnoser — the certified
//       partition is built once per topology and shared by all N worker
//       threads.
//
//   mmdiag_cli serve --requests <file> [--threads N] [--cache-capacity C]
//       Mixed-spec request-stream mode: <file> lists one syndrome-file
//       path per line ('#' comments allowed; relative paths resolve
//       against the list's directory). Every request flows through one
//       DiagnosisEngine whose LRU calibration cache owns the per-topology
//       setup, so repeated specs pay it once; per-request cold/warm setup
//       cost and cache counters are reported.
//
//   mmdiag_cli info <spec...> [--rule R] [--memory]
//       Print the topology's constants, the diagnosis models it can be
//       served under (with each model's solver and oracle family), and its
//       certified partition under probe rule R (least-first | spread |
//       least-sync | hash-spread). --memory adds the CSR footprint
//       (estimated, never built, when the instance resolves to the
//       implicit view) against ImplicitGraph's O(1) bytes.
//
//   mmdiag_cli fuzz [--cases N] [--seed S] [--model M] [--out-dir DIR] ...
//   mmdiag_cli fuzz --replay FILE
//       Differentially fuzz the per-model drivers against the per-model
//       exact solvers over the registered topology catalog (cases rotate
//       over mm-star/pmc/bgm; --model restricts to one); divergences are
//       minimized and written as replayable .repro files. --replay
//       re-executes one repro file.
//
//   mmdiag_cli churn --stream FILE [--table-oracle]
//       Replay a churn stream (remove/repair/diagnose interleavings, see
//       src/churn/churn_stream.hpp for the format) through the churn
//       harness: every warm incremental answer is differentially checked
//       against cold full recalibration; divergences exit 1.
//
//   mmdiag_cli churn <spec...> [--events N] [--seed S] [--delta D]
//              [--out FILE]
//       Deterministically generate a hostile churn stream for the spec and
//       write it to FILE (stdout when omitted).
//
// Exit status: 0 on success, 1 on diagnosis failure / fuzz divergence,
// 2 on usage errors.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "churn/churn_stream.hpp"
#include "churn/harness.hpp"
#include "core/batch_diagnoser.hpp"
#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "core/verifier.hpp"
#include "distributed/shard_plan.hpp"
#include "engine/engine.hpp"
#include "fuzz/fuzzer.hpp"
#include "io/syndrome_io.hpp"
#include "mm/directed_oracle.hpp"
#include "mm/directed_syndrome.hpp"
#include "mm/injector.hpp"
#include "mm/syndrome.hpp"
#include "topology/registry.hpp"
#include "util/parse.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace mmdiag;

namespace {

int usage() {
  std::cerr << "usage:\n"
            << "  mmdiag_cli generate <spec...> --faults K [--seed S] "
               "[--model mm-star|pmc|bgm] "
               "[--behavior random|all-zero|all-one|anti] -o FILE\n"
            << "  mmdiag_cli diagnose FILE [--verify] "
               "[--model mm-star|pmc|bgm] [--local NODE] "
               "[--graph-mode csr|auto] [--shards S]\n"
            << "  mmdiag_cli diagnose --batch DIR [--threads N] "
               "[--graph-mode csr|auto]\n"
            << "  mmdiag_cli serve --requests FILE [--threads N] "
               "[--cache-capacity C] [--graph-mode csr|auto]\n"
            << "  mmdiag_cli info <spec...> "
               "[--rule least-first|spread|least-sync|hash-spread] "
               "[--memory]\n"
            << "  mmdiag_cli fuzz [--cases N] [--seed S] "
               "[--model mm-star|pmc|bgm] [--out-dir DIR] "
               "[--max-bugs K] [--budget-seconds T]\n"
            << "             [--sabotage none|rule-mismatch|drop-fault]\n"
            << "  mmdiag_cli fuzz --replay FILE "
               "[--sabotage none|rule-mismatch|drop-fault]\n"
            << "  mmdiag_cli churn --stream FILE [--table-oracle]\n"
            << "  mmdiag_cli churn <spec...> [--events N] [--seed S] "
               "[--delta D] [--out FILE]\n";
  return 2;
}

/// Parses the value of `flag` into `out`; prints a usage diagnostic and
/// returns false on anything parse_unsigned (util/parse.hpp) rejects —
/// empty, signs, trailing junk ("12junk"), overflow — so bad command lines
/// become usage errors instead of uncaught std::stoul exceptions or silent
/// wrap-arounds.
template <typename T>
bool parse_flag_value(const std::string& flag, const std::string& token,
                      std::uint64_t max_value, T& out) {
  const auto value = parse_unsigned(token, max_value);
  if (!value) {
    std::cerr << "bad value for " << flag << ": '" << token
              << "' (expected an integer in [0, " << max_value << "])\n";
    return false;
  }
  out = static_cast<T>(*value);
  return true;
}

/// Threads beyond this are a typo, not a machine.
constexpr std::uint64_t kMaxThreads = 4096;

/// Shared handling of --graph-mode in the syndrome-file modes (diagnose,
/// serve). File rows address the materialised CSR adjacency, so the
/// implicit view can never host them — rejecting the combination here
/// turns what would otherwise surface as a deep engine error into a plain
/// usage diagnostic. auto resolves to csr (the only view files can use).
bool parse_file_graph_mode(const std::string& token, GraphMode& out) {
  GraphMode mode;
  try {
    mode = graph_mode_from_string(token);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return false;
  }
  if (mode == GraphMode::kImplicit) {
    std::cerr << "--graph-mode implicit cannot serve syndrome files: file "
                 "rows address the materialised CSR adjacency (use csr or "
                 "auto)\n";
    return false;
  }
  out = GraphMode::kCsr;
  return true;
}

int cmd_generate(const std::vector<std::string>& args) {
  std::string spec, out_path;
  std::size_t faults = 0;
  std::uint64_t seed = 1;
  DiagnosisModel model = DiagnosisModel::kMMStar;
  FaultyBehavior behavior = FaultyBehavior::kRandom;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--faults" && i + 1 < args.size()) {
      if (!parse_flag_value("--faults", args[++i],
                            std::numeric_limits<std::uint32_t>::max(),
                            faults)) {
        return usage();
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_flag_value("--seed", args[++i],
                            std::numeric_limits<std::uint64_t>::max(), seed)) {
        return usage();
      }
    } else if (args[i] == "--model" && i + 1 < args.size()) {
      model = diagnosis_model_from_string(args[++i]);
    } else if (args[i] == "--behavior" && i + 1 < args.size()) {
      behavior = behavior_from_string(args[++i]);
    } else if (args[i] == "-o" && i + 1 < args.size()) {
      out_path = args[++i];
    } else {
      if (!spec.empty()) spec += ' ';
      spec += args[i];
    }
  }
  if (spec.empty() || out_path.empty()) return usage();

  const auto topo = make_topology_from_spec(spec);
  const Graph graph = topo->build_graph();
  Rng rng(seed);
  const FaultSet fault_set(graph.num_nodes(),
                           inject_uniform(graph.num_nodes(), faults, rng));

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << "# generated by mmdiag_cli: " << faults << " faults, seed " << seed
      << ", model " << diagnosis_model_to_string(model) << ", behaviour "
      << to_string(behavior) << "\n";
  std::uint64_t total_tests = 0;
  if (is_directed_model(model)) {
    const DirectedSyndrome syndrome =
        generate_directed_syndrome(graph, fault_set, model, behavior, seed);
    write_directed_syndrome(out, spec, model, graph, syndrome);
    total_tests = syndrome.total_tests();
  } else {
    const Syndrome syndrome =
        generate_syndrome(graph, fault_set, behavior, seed);
    write_syndrome(out, spec, graph, syndrome);
    total_tests = syndrome.total_tests();
  }

  std::ofstream truth(out_path + ".truth");
  write_node_list(truth, fault_set.nodes());
  std::cout << "wrote " << out_path << " (" << total_tests << " tests, model "
            << diagnosis_model_to_string(model) << ") and " << out_path
            << ".truth\n";
  return 0;
}

/// A resolver over the engine's calibration cache that also pins every
/// resolved bundle: oracles built over these graphs must outlive the LRU's
/// eviction decisions, and the pin map guarantees they do.
class PinnedResolver {
 public:
  explicit PinnedResolver(DiagnosisEngine& engine) : engine_(&engine) {}

  const Graph& operator()(const std::string& spec) {
    std::shared_ptr<const Calibration> cal = engine_->calibration(spec);
    const Graph& graph = cal->graph;
    canonical_[spec] = cal->spec;
    // keep_alive_ retains *every* resolved bundle, not just the latest per
    // spec: if the LRU evicts and rebuilds a spec mid-ingest, oracles built
    // over the older bundle's graph must stay valid for the whole run.
    keep_alive_.push_back(cal);
    pinned_[cal->spec] = std::move(cal);
    return graph;
  }

  /// Canonical spec of a raw spec (a map lookup once resolved).
  [[nodiscard]] std::string canonical(const std::string& spec) const {
    const auto it = canonical_.find(spec);
    return it != canonical_.end() ? it->second : canonical_topology_spec(spec);
  }

  /// The pinned bundle for a canonical spec; null if never resolved. Lets
  /// callers reuse a calibration the LRU may since have evicted without
  /// rebuilding it.
  [[nodiscard]] std::shared_ptr<const Calibration> pinned(
      const std::string& canonical_spec) const {
    const auto it = pinned_.find(canonical_spec);
    return it != pinned_.end() ? it->second : nullptr;
  }

 private:
  DiagnosisEngine* engine_;
  std::map<std::string, std::string> canonical_;  // raw -> canonical
  std::map<std::string, std::shared_ptr<const Calibration>> pinned_;
  std::vector<std::shared_ptr<const Calibration>> keep_alive_;
};

int cmd_diagnose_batch(const std::string& dir, unsigned threads) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    std::cerr << "not a directory: " << dir << "\n";
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const fs::path& p = entry.path();
    if (p.extension() == ".truth" || p.filename().string().front() == '.') {
      continue;
    }
    files.push_back(p);
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::cerr << "no syndrome files in " << dir << "\n";
    return 2;
  }

  // The engine owns the per-topology setup; syndromes are parsed directly
  // against its cached graphs (no per-file topology+graph build), grouped
  // by canonical spec, and each group fans out over one BatchDiagnoser.
  EngineOptions engine_options;
  engine_options.threads = 1;  // BatchDiagnoser brings its own pool
  // Syndrome files address rows through the materialised CSR layout.
  engine_options.graph_mode = GraphMode::kCsr;
  DiagnosisEngine engine(engine_options);
  PinnedResolver resolve(engine);

  std::map<std::string, std::vector<std::size_t>> by_spec;
  std::vector<ParsedSyndrome> loaded;
  loaded.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::ifstream in(files[i]);
    if (!in) {
      std::cerr << "cannot read " << files[i].string() << "\n";
      return 2;
    }
    try {
      loaded.push_back(read_syndrome(in, std::ref(resolve)));
      by_spec[resolve.canonical(loaded.back().spec)].push_back(i);
    } catch (const std::exception& e) {
      std::cerr << files[i].string() << ": " << e.what() << "\n";
      return 2;
    }
  }

  int exit_code = 0;
  std::size_t total_ok = 0;
  Timer timer;
  for (const auto& [spec, indices] : by_spec) {
    // Reuse the ingest-pinned bundle directly: with more distinct specs
    // than cache capacity, asking the engine again would rebuild evicted
    // calibrations for no reason.
    const std::shared_ptr<const Calibration> cal = resolve.pinned(spec);
    if (!cal) {
      std::cerr << "internal error: no calibration pinned for " << spec
                << "\n";
      return 2;
    }
    BatchOptions batch_options;
    batch_options.threads = threads;
    const auto batch_engine = std::make_unique<BatchDiagnoser>(
        graph_handle(cal), cal->partition, batch_options);

    std::vector<TableOracle> oracles;
    oracles.reserve(indices.size());
    for (const std::size_t i : indices) {
      oracles.emplace_back(cal->graph, loaded[i].syndrome);
    }
    std::vector<const SyndromeOracle*> ptrs;
    ptrs.reserve(oracles.size());
    for (const TableOracle& o : oracles) ptrs.push_back(&o);

    const BatchResult batch = batch_engine->diagnose_all(ptrs);
    std::cout << spec << ": " << indices.size() << " syndrome(s), "
              << batch_engine->threads() << " thread(s), " << batch.succeeded
              << " diagnosed in " << batch.seconds * 1e3 << " ms\n";
    for (std::size_t k = 0; k < indices.size(); ++k) {
      const DiagnosisResult& r = batch.results[k];
      std::cout << "  " << files[indices[k]].filename().string() << ": ";
      if (!r.success) {
        std::cout << "FAILED (" << r.failure_reason << ")\n";
        exit_code = 1;
        continue;
      }
      ++total_ok;
      std::cout << r.faults.size() << " fault(s)";
      for (const Node v : r.faults) std::cout << ' ' << v;
      std::cout << "\n";
    }
  }
  const EngineCounters counters = engine.counters();
  std::cout << "batch total: " << total_ok << "/" << files.size()
            << " diagnosed in " << timer.millis() << " ms ("
            << counters.misses << " calibration(s) built, " << counters.hits
            << " cache hit(s))\n";
  return exit_code;
}

/// Directed (PMC/BGM) single-file diagnose: global solve through
/// DiagnosisEngine::diagnose_directed, or — with `--local` — one node's
/// status through the BGM neighbourhood-read fast path.
int cmd_diagnose_directed(const LoadedDirectedSyndrome& loaded,
                          Node local_node, bool have_local) {
  DiagnosisEngine engine(EngineOptions{});
  const DirectedTableOracle oracle(loaded.graph, loaded.syndrome,
                                   loaded.model);
  std::cout << "loaded " << loaded.spec << ": " << loaded.graph.num_nodes()
            << " nodes, " << loaded.syndrome.total_tests()
            << " directed tests, model "
            << diagnosis_model_to_string(loaded.model) << "\n";

  if (have_local) {
    if (loaded.model != DiagnosisModel::kBGM) {
      std::cerr << "--local needs a bgm syndrome (the local rules rely on "
                   "BGM's asymmetric invalidation); this file is "
                << diagnosis_model_to_string(loaded.model) << "\n";
      return 2;
    }
    if (local_node >= loaded.graph.num_nodes()) {
      std::cerr << "--local node " << local_node << " out of range (graph "
                << "has " << loaded.graph.num_nodes() << " nodes)\n";
      return 2;
    }
    const DiagnosisResult r =
        engine.local_diagnose(loaded.spec, oracle, local_node);
    if (!r.success) {
      std::cerr << "local diagnosis failed: " << r.failure_reason << "\n";
      return 1;
    }
    const bool faulty = !r.faults.empty();
    std::cout << "node " << local_node << ": "
              << (faulty ? "FAULTY" : "healthy") << " via "
              << (r.used_local_fast_path ? "local neighbourhood reads"
                                         : "global solve fallback")
              << " (" << r.lookups << " look-ups, "
              << r.diagnose_seconds * 1e3 << " ms)\n";
    return 0;
  }

  const DiagnosisResult result = engine.diagnose_directed(loaded.spec, oracle);
  if (!result.success) {
    std::cerr << "diagnosis failed: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "diagnosed " << result.faults.size() << " fault(s) in "
            << result.diagnose_seconds * 1e3 << " ms solve ("
            << result.lookups << " look-ups):\n";
  for (const Node v : result.faults) {
    std::cout << "  " << v << "  [" << loaded.topology->node_label(v)
              << "]\n";
  }
  if (result.faults.empty()) std::cout << "  (system healthy)\n";
  return 0;
}

int cmd_diagnose(const std::vector<std::string>& args) {
  std::string path, batch_dir;
  bool verify = false;
  unsigned threads = 0;
  unsigned shards = 1;
  GraphMode graph_mode = GraphMode::kCsr;
  DiagnosisModel expected_model = DiagnosisModel::kMMStar;
  bool have_expected_model = false;
  Node local_node = kNoNode;
  bool have_local = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--verify") {
      verify = true;
    } else if (args[i] == "--batch" && i + 1 < args.size()) {
      batch_dir = args[++i];
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_flag_value("--threads", args[++i], kMaxThreads, threads)) {
        return usage();
      }
    } else if (args[i] == "--shards" && i + 1 < args.size()) {
      if (!parse_flag_value("--shards", args[++i], ShardPlan::kMaxShards,
                            shards)) {
        return usage();
      }
    } else if (args[i] == "--graph-mode" && i + 1 < args.size()) {
      if (!parse_file_graph_mode(args[++i], graph_mode)) return 2;
    } else if (args[i] == "--model" && i + 1 < args.size()) {
      expected_model = diagnosis_model_from_string(args[++i]);
      have_expected_model = true;
    } else if (args[i] == "--local" && i + 1 < args.size()) {
      if (!parse_flag_value("--local", args[++i],
                            std::numeric_limits<Node>::max() - 1,
                            local_node)) {
        return usage();
      }
      have_local = true;
    } else {
      path = args[i];
    }
  }
  if (!batch_dir.empty()) return cmd_diagnose_batch(batch_dir, threads);
  if (path.empty()) return usage();

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  // Slurp once: the model header decides which reader (and solver) the
  // file goes to, and the chosen reader re-parses from the start.
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::istringstream peek(buffer.str());
  const SyndromeFileHeader header = peek_syndrome_header(peek);
  if (have_expected_model && header.model != expected_model) {
    std::cerr << path << " carries a "
              << diagnosis_model_to_string(header.model)
              << " syndrome, but --model "
              << diagnosis_model_to_string(expected_model)
              << " was requested\n";
    return 2;
  }
  if (is_directed_model(header.model)) {
    if (verify) {
      std::cerr << "--verify applies to mm-star syndromes only (directed "
                   "models have no comparator-consistency check)\n";
      return 2;
    }
    std::istringstream body(buffer.str());
    return cmd_diagnose_directed(read_directed_syndrome(body), local_node,
                                 have_local);
  }
  if (have_local) {
    std::cerr << "--local needs a bgm syndrome; this file is mm-star\n";
    return 2;
  }

  EngineOptions engine_options;
  engine_options.threads = 1;
  engine_options.graph_mode = graph_mode;
  engine_options.shards = shards;
  if (shards != 1) {
    // The sharded engine needs deferred rules for both phases; spread is
    // the probe-rule default, so only the final pass changes. Results stay
    // bit-identical to a monolithic run under the same pair of rules.
    engine_options.diagnoser.final_rule = ParentRule::kSpread;
    engine_options.threads = threads;  // scan lanes; 0 = hardware
  }
  DiagnosisEngine engine(engine_options);
  PinnedResolver resolve(engine);
  std::istringstream body(buffer.str());
  const ParsedSyndrome loaded = read_syndrome(body, std::ref(resolve));
  const std::shared_ptr<const Calibration> cal =
      engine.calibration(loaded.spec);
  std::cout << "loaded " << cal->spec << ": " << cal->graph.num_nodes()
            << " nodes, " << loaded.syndrome.total_tests() << " tests\n";

  const TableOracle oracle(cal->graph, loaded.syndrome);
  DiagnosisResult result;
  if (verify) {
    const auto diagnoser = engine.make_diagnoser(loaded.spec);
    result = diagnose_and_verify(*diagnoser, oracle);
  } else {
    result = engine.diagnose(loaded.spec, oracle);
  }
  if (!result.success) {
    std::cerr << "diagnosis failed: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "diagnosed " << result.faults.size() << " fault(s) in "
            << result.diagnose_seconds * 1e3 << " ms solve + "
            << cal->build_seconds * 1e3 << " ms calibration ("
            << result.lookups << " look-ups, " << result.shards_used
            << " shard(s)" << (verify ? ", verified" : "") << "):\n";
  for (const Node v : result.faults) {
    std::cout << "  " << v << "  [" << cal->topology->node_label(v) << "]\n";
  }
  if (result.faults.empty()) std::cout << "  (system healthy)\n";
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  namespace fs = std::filesystem;
  std::string requests_path;
  unsigned threads = 0;
  std::size_t cache_capacity = 8;
  GraphMode graph_mode = GraphMode::kCsr;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--requests" && i + 1 < args.size()) {
      requests_path = args[++i];
    } else if (args[i] == "--graph-mode" && i + 1 < args.size()) {
      if (!parse_file_graph_mode(args[++i], graph_mode)) return 2;
    } else if (args[i] == "--threads" && i + 1 < args.size()) {
      if (!parse_flag_value("--threads", args[++i], kMaxThreads, threads)) {
        return usage();
      }
    } else if (args[i] == "--cache-capacity" && i + 1 < args.size()) {
      if (!parse_flag_value("--cache-capacity", args[++i],
                            std::uint64_t{1'000'000}, cache_capacity)) {
        return usage();
      }
    } else {
      std::cerr << "unknown serve argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (requests_path.empty()) return usage();

  std::ifstream list(requests_path);
  if (!list) {
    std::cerr << "cannot read " << requests_path << "\n";
    return 2;
  }
  const fs::path base = fs::path(requests_path).parent_path();
  std::vector<fs::path> files;
  std::string line;
  while (std::getline(list, line)) {
    if (line.empty() || line[0] == '#') continue;
    fs::path p(line);
    if (p.is_relative()) p = base / p;
    files.push_back(std::move(p));
  }
  if (files.empty()) {
    std::cerr << "no requests in " << requests_path << "\n";
    return 2;
  }

  EngineOptions engine_options;
  engine_options.threads = threads;
  engine_options.cache_capacity = cache_capacity;
  engine_options.graph_mode = graph_mode;
  DiagnosisEngine engine(engine_options);
  PinnedResolver resolve(engine);

  // Load the stream up front. Parsing resolves each spec through the
  // engine, so first-touch calibration cost lands here — reported as the
  // ingest line below; the per-request cold/warm rows then describe the
  // serve phase itself (a "cold" request there means the LRU had to
  // rebuild an evicted calibration mid-stream).
  Timer ingest_timer;
  std::vector<ParsedSyndrome> loaded;
  loaded.reserve(files.size());
  std::vector<TableOracle> oracles;
  oracles.reserve(files.size());
  std::vector<EngineRequest> requests;
  requests.reserve(files.size());
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) {
      std::cerr << "cannot read " << file.string() << "\n";
      return 2;
    }
    try {
      loaded.push_back(read_syndrome(in, std::ref(resolve)));
    } catch (const std::exception& e) {
      std::cerr << file.string() << ": " << e.what() << "\n";
      return 2;
    }
    const std::string spec = loaded.back().spec;
    // The bundle is already pinned from the parse above; touching the
    // engine again here would only inflate the cache counters the summary
    // reports.
    const auto cal = resolve.pinned(resolve.canonical(spec));
    if (!cal) {
      std::cerr << "internal error: no calibration pinned for " << spec
                << "\n";
      return 2;
    }
    oracles.emplace_back(cal->graph, loaded.back().syndrome);
    requests.push_back(EngineRequest{spec, &oracles.back()});
  }
  const EngineCounters ingested = engine.counters();
  std::cout << "ingest: " << files.size() << " request(s), "
            << ingested.misses << " calibration(s) built in "
            << ingest_timer.millis() << " ms\n";

  Timer timer;
  const std::vector<DiagnosisResult> results = engine.serve(requests);
  const double serve_seconds = timer.seconds();

  int exit_code = 0;
  std::size_t ok = 0;
  double cold_setup = 0, warm_setup = 0, solve_seconds = 0;
  std::size_t cold = 0, warm = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const DiagnosisResult& r = results[i];
    std::cout << files[i].filename().string() << " [" << requests[i].spec
              << "] " << (r.calibration_reused ? "warm" : "cold")
              << " setup " << r.setup_seconds * 1e3 << " ms, solve "
              << r.diagnose_seconds * 1e3 << " ms: ";
    if (!r.success) {
      // Failed requests (engine setup errors have setup_seconds = 0) are
      // excluded from the tallies so they cannot skew the cold/warm
      // amortisation averages.
      std::cout << "FAILED (" << r.failure_reason << ")\n";
      exit_code = 1;
      continue;
    }
    (r.calibration_reused ? warm_setup : cold_setup) += r.setup_seconds;
    ++(r.calibration_reused ? warm : cold);
    solve_seconds += r.diagnose_seconds;
    ++ok;
    std::cout << r.faults.size() << " fault(s)";
    for (const Node v : r.faults) std::cout << ' ' << v;
    std::cout << "\n";
  }

  const EngineCounters counters = engine.counters();
  std::cout << "serve total: " << ok << "/" << results.size()
            << " diagnosed in " << serve_seconds * 1e3 << " ms over "
            << engine.threads() << " thread(s)\n"
            << "  cache: " << counters.hits << " hit(s), " << counters.misses
            << " miss(es), " << counters.evictions << " eviction(s), "
            << counters.entries << "/" << engine.capacity() << " resident\n"
            << "  setup: " << cold << " cold request(s) totalling "
            << cold_setup * 1e3 << " ms, " << warm
            << " warm totalling " << warm_setup * 1e3 << " ms; solve total "
            << solve_seconds * 1e3 << " ms\n";
  if (cold > 0 && warm > 0 && warm_setup > 0) {
    const double amortization =
        (cold_setup / static_cast<double>(cold)) /
        (warm_setup / static_cast<double>(warm));
    std::cout << "  warm-cache per-request setup is " << amortization
              << "x cheaper than cold\n";
  }
  return exit_code;
}

int cmd_info(const std::vector<std::string>& args) {
  std::string spec;
  ParentRule rule = ParentRule::kSpread;
  bool show_memory = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--rule" && i + 1 < args.size()) {
      rule = parent_rule_from_string(args[++i]);
      continue;
    }
    if (args[i] == "--memory") {
      show_memory = true;
      continue;
    }
    if (!spec.empty()) spec += ' ';
    spec += args[i];
  }
  if (spec.empty()) return usage();
  const auto topo = make_topology_from_spec(spec);
  const auto info = topo->info();
  // The same auto rule the engine applies: large implicit-capable instances
  // never materialise their CSR here — info stays O(N) memory at any size.
  const bool implicit = resolve_implicit_mode(GraphMode::kAuto, info);
  std::cout << info.name << " (" << info.family << ")\n"
            << "  spec:           " << topo->spec() << "\n"
            << "  nodes:          " << info.num_nodes << "\n"
            << "  degree:         " << info.degree << "\n"
            << "  connectivity:   " << info.connectivity << "\n"
            << "  diagnosability: " << info.diagnosability << "\n"
            << "  fault bound:    " << topo->default_fault_bound() << "\n"
            << "  probe rule:     " << parent_rule_to_string(rule) << "\n"
            << "  graph view:     " << (implicit ? "implicit" : "csr") << "\n"
            << "  models:\n"
            << "    mm-star       Diagnoser over the comparator matrix "
               "(SyndromeOracle; csr or implicit view)\n"
            << "    pmc           DirectedDiagnoser global solve "
               "(DirectedOracle; csr only)\n"
            << "    bgm           DirectedDiagnoser + bgm_local_diagnose "
               "fast path (DirectedOracle; csr only)\n";
  Graph graph;
  if (!implicit) graph = topo->build_graph();
  if (show_memory) {
    const std::uint64_t csr_bytes =
        implicit ? csr_memory_bytes_estimate(info.num_nodes, info.degree)
                 : graph.memory_bytes();
    std::cout << "  memory:         csr " << csr_bytes << " B"
              << (implicit ? " (estimated, not built)" : "");
    if (info.degree <= ImplicitGraph::kMaxDegree &&
        info.num_nodes <= static_cast<std::uint64_t>(kNoNode)) {
      const ImplicitGraph view(*topo);
      std::cout << " vs implicit " << view.memory_bytes() << " B";
    }
    std::cout << "\n";
  }
  try {
    CertifiedPartition cp;
    if (implicit) {
      const ImplicitGraph view(*topo);
      cp = find_certified_partition(*topo, view, topo->default_fault_bound(),
                                    rule, true);
    } else {
      cp = find_certified_partition(*topo, graph, topo->default_fault_bound(),
                                    rule, true);
    }
    std::cout << "  partition:      " << cp.plan->description() << "\n";
  } catch (const DiagnosisUnsupportedError& e) {
    std::cout << "  partition:      UNSUPPORTED\n" << e.what();
  }
  return 0;
}

int cmd_fuzz_replay(const std::string& path, Sabotage sabotage) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot read " << path << "\n";
    return 2;
  }
  const FuzzCase c = read_repro(in);
  std::cout << "replaying " << path << ": " << c.spec << ", delta " << c.delta
            << ", " << c.faults.size() << " fault(s), model "
            << diagnosis_model_to_string(c.model) << ", pattern "
            << to_string(c.pattern) << ", behaviour " << to_string(c.behavior)
            << "\n";
  FuzzContext ctx;
  const DiffReport report = run_differential(ctx, c, sabotage);
  if (!report.diverged()) {
    std::cout << "replay clean: all driver configurations agree with the "
                 "exact solver\n";
    return 0;
  }
  for (const Divergence& d : report.divergences) {
    std::cerr << "DIVERGENCE [" << d.config << "] " << d.detail << "\n";
  }
  return 1;
}

int cmd_fuzz(const std::vector<std::string>& args) {
  FuzzOptions options;
  std::string replay_path, out_dir = ".";
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--cases" && i + 1 < args.size()) {
      if (!parse_flag_value("--cases", args[++i], std::uint64_t{100'000'000},
                            options.cases)) {
        return usage();
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_flag_value("--seed", args[++i],
                            std::numeric_limits<std::uint64_t>::max(),
                            options.seed)) {
        return usage();
      }
    } else if (args[i] == "--max-bugs" && i + 1 < args.size()) {
      if (!parse_flag_value("--max-bugs", args[++i], std::uint64_t{1'000'000},
                            options.max_bugs)) {
        return usage();
      }
    } else if (args[i] == "--budget-seconds" && i + 1 < args.size()) {
      std::uint64_t seconds = 0;
      if (!parse_flag_value("--budget-seconds", args[++i],
                            std::uint64_t{86'400}, seconds)) {
        return usage();
      }
      options.budget_seconds = static_cast<double>(seconds);
    } else if (args[i] == "--model" && i + 1 < args.size()) {
      options.models = {diagnosis_model_from_string(args[++i])};
    } else if (args[i] == "--sabotage" && i + 1 < args.size()) {
      options.sabotage = sabotage_from_string(args[++i]);
    } else if (args[i] == "--replay" && i + 1 < args.size()) {
      replay_path = args[++i];
    } else if (args[i] == "--out-dir" && i + 1 < args.size()) {
      out_dir = args[++i];
    } else {
      std::cerr << "unknown fuzz argument '" << args[i] << "'\n";
      return usage();
    }
  }
  if (!replay_path.empty()) return cmd_fuzz_replay(replay_path, options.sabotage);

  Fuzzer fuzzer(options);
  Timer timer;
  const FuzzSummary summary = fuzzer.run();
  std::cout << "fuzz: " << summary.cases_run << " case(s), seed "
            << options.seed << ", " << summary.beyond_delta_cases
            << " beyond-delta, " << timer.millis() << " ms"
            << (summary.budget_exhausted ? " (budget exhausted)" : "") << "\n";
  std::cout << "  families:";
  for (const auto& [family, count] : summary.cases_per_family) {
    std::cout << ' ' << family << '=' << count;
  }
  std::cout << "\n  patterns:";
  for (const auto& [pattern, count] : summary.cases_per_pattern) {
    std::cout << ' ' << pattern << '=' << count;
  }
  std::cout << "\n  models:";
  for (const auto& [model, count] : summary.cases_per_model) {
    std::cout << ' ' << model << '=' << count;
  }
  std::cout << "\n";
  if (summary.clean()) {
    std::cout << "no divergences: every driver configuration agreed with the "
                 "exact solver on every case\n";
    return 0;
  }
  std::filesystem::create_directories(out_dir);
  for (const FuzzBug& bug : summary.bugs) {
    const std::string name = "repro-seed" + std::to_string(options.seed) +
                             "-case" + std::to_string(bug.case_index) +
                             ".repro";
    const std::filesystem::path path = std::filesystem::path(out_dir) / name;
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write " << path.string() << "\n";
      return 2;
    }
    out << "# minimized from case " << bug.case_index << " of seed "
        << options.seed << " (" << bug.original.spec << ", "
        << bug.original.faults.size() << " faults)\n";
    out << "# divergence [" << bug.config << "] " << bug.detail << "\n";
    write_repro(out, bug.minimized);
    std::cerr << "DIVERGENCE at case " << bug.case_index << " ["
              << bug.config << "] " << bug.detail << "\n";
    std::cerr << "  minimized to " << bug.minimized.spec << " with "
              << bug.minimized.faults.size() << " fault(s); repro written to "
              << path.string() << "\n";
  }
  return 1;
}

int cmd_churn(const std::vector<std::string>& args) {
  std::string stream_path, out_path, spec;
  std::size_t events = 32;
  std::uint64_t seed = 1;
  unsigned delta = 0;
  bool table_oracle = false;
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--stream" && i + 1 < args.size()) {
      stream_path = args[++i];
    } else if (args[i] == "--out" && i + 1 < args.size()) {
      out_path = args[++i];
    } else if (args[i] == "--table-oracle") {
      table_oracle = true;
    } else if (args[i] == "--events" && i + 1 < args.size()) {
      if (!parse_flag_value("--events", args[++i], std::uint64_t{1'000'000},
                            events)) {
        return usage();
      }
    } else if (args[i] == "--seed" && i + 1 < args.size()) {
      if (!parse_flag_value("--seed", args[++i],
                            std::numeric_limits<std::uint64_t>::max(), seed)) {
        return usage();
      }
    } else if (args[i] == "--delta" && i + 1 < args.size()) {
      if (!parse_flag_value("--delta", args[++i], std::uint64_t{1'000},
                            delta)) {
        return usage();
      }
    } else {
      if (!spec.empty()) spec += ' ';
      spec += args[i];
    }
  }
  // Exactly one mode: replay a stream file, or generate one for a spec.
  if (stream_path.empty() == spec.empty()) return usage();

  EngineOptions engine_options;
  engine_options.threads = 1;
  DiagnosisEngine engine(engine_options);

  if (!stream_path.empty()) {
    std::ifstream in(stream_path);
    if (!in) {
      std::cerr << "cannot read " << stream_path << "\n";
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    const ChurnStream stream = parse_churn_stream(buffer.str());
    ChurnHarnessOptions harness_options;
    harness_options.use_table_oracle = table_oracle;
    Timer timer;
    const ChurnHarnessReport report =
        run_churn_stream(engine, stream, harness_options);
    std::cout << "churn replay of " << stream.spec << ": " << report.events
              << " event(s) in " << timer.millis() << " ms ("
              << report.topology_events << " topology, "
              << report.diagnose_events << " diagnose, "
              << report.delta_events << " delta, " << report.expected_errors
              << " expected-error)\n";
    std::cout << "  degraded components seen " << report.degraded_components_seen
              << ", empty " << report.empty_components_seen
              << ", cache reuses " << report.cache_reuses << "\n";
    std::cout << "  recertified " << report.warm_recert_components
              << " component(s) incrementally vs " << report.cold_recert_components
              << " under cold recalibration\n";
    if (report.ok()) {
      std::cout << "warm incremental answers bit-identical to cold "
                   "recalibration throughout\n";
      return 0;
    }
    for (const std::string& d : report.divergences) {
      std::cerr << "DIVERGENCE " << d << "\n";
    }
    return 1;
  }

  ChurnStreamConfig config;
  config.spec = spec;
  config.delta = delta;
  config.seed = seed;
  config.events = events;
  const ChurnStream stream = generate_churn_stream(engine, config);
  const std::string text = format_churn_stream(stream);
  if (out_path.empty()) {
    std::cout << text;
    return 0;
  }
  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot write " << out_path << "\n";
    return 2;
  }
  out << text;
  std::cout << "wrote " << stream.events.size() << " event(s) for "
            << stream.spec << " to " << out_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (command == "generate") return cmd_generate(args);
    if (command == "diagnose") return cmd_diagnose(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "info") return cmd_info(args);
    if (command == "fuzz") return cmd_fuzz(args);
    if (command == "churn") return cmd_churn(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  return usage();
}
