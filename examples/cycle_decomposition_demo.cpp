// cycle_decomposition_demo — reproduces Fig. 1 of the paper: the hypercube
// decomposed into node-disjoint (Gray-code) cycles connected by matchings,
// the structure Yang's algorithm [27] diagnoses from.
//
// Shows the 2^{n-m} cycles of Q_n, verifies the matchings between cycles
// whose indices differ in one bit, runs Yang's diagnosis on an injected
// fault set, and emits fig1.dot for a small instance.
//
// Usage: cycle_decomposition_demo [n]
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/yang_cycle.hpp"
#include "graph/dot.hpp"
#include "mm/injector.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"

using namespace mmdiag;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::stoul(argv[1]) : 7;
  const Hypercube topo(n);
  const Graph graph = topo.build_graph();
  YangCycleDiagnoser yang(topo, graph);
  const unsigned m = yang.subcube_dim();
  const Node len = Node{1} << m;

  std::cout << "Fig. 1 — " << topo.info().name << " decomposes into "
            << yang.num_cycles() << " node-disjoint cycles of length " << len
            << " (Gray codes of its Q_" << m << " sub-cubes),\nconnected by "
            << "perfect matchings in the shape of Q_" << (n - m) << ".\n\n";

  std::cout << "cycle 0: ";
  for (Node t = 0; t < len; ++t) {
    std::cout << topo.node_label(yang.cycle_node(0, t)) << " ";
  }
  std::cout << "(back to start)\n";

  // Verify the matchings: cycles c and c^2^j are joined by a perfect
  // matching (the dimension m+j edges), exactly the dotted edges of Fig. 1.
  std::size_t matchings = 0;
  for (std::size_t c = 0; c < yang.num_cycles(); ++c) {
    for (unsigned j = 0; j < n - m; ++j) {
      const std::size_t other = c ^ (std::size_t{1} << j);
      if (other < c) continue;
      for (Node t = 0; t < len; ++t) {
        const Node u = yang.cycle_node(c, t);
        const Node v = u ^ (Node{1} << (m + j));
        if (!graph.has_edge(u, v)) {
          std::cerr << "matching edge missing!\n";
          return 1;
        }
      }
      ++matchings;
    }
  }
  std::cout << "verified " << matchings << " perfect matchings between cycles.\n\n";

  // Yang's diagnosis over this decomposition.
  Rng rng(3);
  const FaultSet faults(graph.num_nodes(),
                        inject_uniform(graph.num_nodes(), n, rng));
  const LazyOracle oracle(graph, faults, FaultyBehavior::kRandom, 1);
  const auto result = yang.diagnose(oracle);
  std::cout << "Yang's algorithm scanned " << result.probes
            << " cycle(s) before finding an all-healthy one (cycle "
            << result.certified_component << "), then classified every node: "
            << (result.success && result.faults == faults.nodes()
                    ? "exact diagnosis ✓"
                    : "MISMATCH ✗")
            << "\n";

  // Figure export for Q_4-style visual (4 cycles joined in a 4-cycle, as in
  // the paper's figure) — use the smallest decomposable case.
  const Hypercube small(7);
  const Graph small_graph = small.build_graph();
  YangCycleDiagnoser small_yang(small, small_graph);
  DotStyle style;
  style.label = [&](Node v) { return small.node_label(v); };
  const Node small_len = Node{1} << small_yang.subcube_dim();
  for (std::size_t c = 0; c < 4; ++c) {  // first four cycles only
    for (Node t = 0; t < small_len; ++t) {
      style.bold_edges.emplace_back(
          small_yang.cycle_node(c, t),
          small_yang.cycle_node(c, (t + 1) & (small_len - 1)));
    }
  }
  std::ofstream out("fig1.dot");
  write_dot(out, small_graph, style);
  std::cout << "wrote fig1.dot (cycles of Q_7 emphasised)\n";
  return 0;
}
