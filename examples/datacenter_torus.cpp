// datacenter_torus — periodic self-diagnosis of a 3D torus fabric.
//
// Scenario: a k-ary n-cube (here an 8x8x8 torus, the topology of several
// production supercomputer interconnects) runs a health sweep every epoch.
// Nodes exchange comparison probes with neighbour pairs; the collected
// syndrome is diagnosed centrally; diagnosed-faulty nodes are drained and
// "repaired" (returned to service) a few epochs later. The example runs 20
// epochs with a failure process that injects up to δ = 2n faults at a time
// and shows the maintenance loop converging every epoch.
//
// Usage: datacenter_torus [epochs] [seed]
#include <algorithm>
#include <iostream>
#include <set>
#include <string>

#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "topology/kary_ncube.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace mmdiag;

int main(int argc, char** argv) {
  const unsigned epochs = argc > 1 ? std::stoul(argv[1]) : 20;
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 7;

  const KAryNCube topo(/*n=*/3, /*k=*/8);  // 8x8x8 torus, 512 nodes
  const Graph graph = topo.build_graph();
  const unsigned delta = topo.info().diagnosability;  // 2n = 6
  std::cout << "torus " << topo.info().name << ": " << graph.num_nodes()
            << " nodes, degree " << topo.info().degree
            << ", diagnosable up to " << delta << " simultaneous faults\n\n";

  Diagnoser diagnoser(topo, graph);
  Rng rng(seed);
  std::set<Node> broken;                     // ground truth
  std::vector<std::pair<unsigned, Node>> repair_queue;  // (ready_epoch, node)

  Table log({"epoch", "failed", "diagnosed", "repaired", "in_service",
             "diag_ms", "lookups", "exact"});
  for (unsigned epoch = 1; epoch <= epochs; ++epoch) {
    // Failure process: a few random new faults, capped so the live fault
    // count stays within the diagnosable bound.
    const std::size_t budget = delta - broken.size();
    const std::size_t arrivals = budget == 0 ? 0 : rng.below(budget + 1);
    std::size_t failed = 0;
    for (std::size_t i = 0; i < arrivals; ++i) {
      const auto v = static_cast<Node>(rng.below(graph.num_nodes()));
      if (broken.insert(v).second) ++failed;
    }

    // Health sweep: the fabric performs its comparison tests (simulated by
    // the lazy oracle — tests are "executed" only when the algorithm reads
    // them, the execution mode §6 of the paper advocates).
    const FaultSet truth(graph.num_nodes(),
                         {broken.begin(), broken.end()});
    const LazyOracle oracle(graph, truth, FaultyBehavior::kRandom, epoch);
    Timer timer;
    const auto result = diagnoser.diagnose(oracle);
    const double ms = timer.millis();
    if (!result.success) {
      std::cerr << "epoch " << epoch << ": diagnosis failed — "
                << result.failure_reason << "\n";
      return 1;
    }
    const bool exact = result.faults == truth.nodes();

    // Maintenance: drain newly diagnosed nodes; repairs complete two epochs
    // later. Nodes already in the repair pipeline are not re-queued.
    for (const Node v : result.faults) {
      const bool queued = std::any_of(
          repair_queue.begin(), repair_queue.end(),
          [v](const auto& item) { return item.second == v; });
      if (!queued) repair_queue.emplace_back(epoch + 2, v);
    }
    std::size_t repaired = 0;
    std::erase_if(repair_queue, [&](const auto& item) {
      if (item.first != epoch) return false;
      repaired += broken.erase(item.second);
      return true;
    });

    log.add_row({Table::num(epoch), Table::num(failed),
                 Table::num(result.faults.size()), Table::num(repaired),
                 Table::num(graph.num_nodes() - broken.size()),
                 Table::num(ms, 3), Table::num(result.lookups),
                 exact ? "yes" : "NO"});
    if (!exact) {
      std::cerr << "epoch " << epoch << ": diagnosis mismatch!\n";
      return 1;
    }
  }
  log.print(std::cout);
  std::cout << "\nall " << epochs << " epochs diagnosed exactly.\n";
  return 0;
}
