// diagnosability_probe — empirically estimate a topology's diagnosability.
//
// For increasing candidate bounds t, generate random fault sets of size t
// with adversarial tester behaviours and ask the exact solver whether the
// syndrome determines the fault set uniquely. The largest t with no
// ambiguity across all trials is an empirical lower estimate of the
// diagnosability; the first ambiguous t gives a certified upper bound
// (an explicit pair of consistent candidates is printed).
//
// This is how one might *discover* δ for a new interconnection network
// before any theory exists for it — the exact solver needs none of the
// paper's structural hypotheses.
//
// Usage: diagnosability_probe "<family> <n> [k]" [max_t] [trials] [seed]
#include <algorithm>
#include <iostream>
#include <string>

#include "baselines/exact_solver.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mmdiag;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " \"<family> <n> [k]\" [max_t] "
              << "[trials] [seed]\n";
    return 2;
  }
  const auto topo = make_topology_from_spec(argv[1]);
  const auto info = topo->info();
  const Graph graph = topo->build_graph();
  const unsigned max_t =
      argc > 2 ? std::stoul(argv[2]) : info.degree + 1;  // δ <= min degree
  const unsigned trials = argc > 3 ? std::stoul(argv[3]) : 20;
  const std::uint64_t seed = argc > 4 ? std::stoull(argv[4]) : 1;

  std::cout << info.name << ": N=" << info.num_nodes << ", degree "
            << info.degree << ", published diagnosability "
            << (info.diagnosability ? std::to_string(info.diagnosability)
                                    : std::string("unknown"))
            << "\n\n";

  Rng rng(seed);
  Table table({"t", "trials", "unique", "ambiguous", "verdict"});
  unsigned lower = 0;
  for (unsigned t = 1; t <= max_t; ++t) {
    unsigned unique = 0;
    unsigned ambiguous = 0;
    for (unsigned trial = 0; trial < trials && ambiguous == 0; ++trial) {
      // Random trials probe typical syndromes; the final trial plays the
      // §2 worst case — F = N(u) ∪ {u} with u mimicking a healthy node —
      // which is what actually defeats t > min-degree.
      std::vector<Node> fault_nodes;
      FaultyBehavior behavior =
          trial % 2 ? FaultyBehavior::kAllOne : FaultyBehavior::kRandom;
      if (trial + 1 == trials && t >= info.degree + 1) {
        const auto u = static_cast<Node>(rng.below(graph.num_nodes()));
        fault_nodes = inject_surround(graph, u);
        fault_nodes.push_back(u);
        fault_nodes.resize(std::min<std::size_t>(fault_nodes.size(), t));
        behavior = FaultyBehavior::kAllOne;  // the mimic
      } else {
        fault_nodes = inject_uniform(graph.num_nodes(), t, rng);
      }
      const FaultSet faults(graph.num_nodes(), fault_nodes);
      const LazyOracle oracle(graph, faults, behavior, seed + trial);
      ExactSolver solver(graph, oracle, t);
      const auto solutions = solver.solve(2);
      if (solutions.size() == 1) {
        ++unique;
      } else {
        ++ambiguous;
        std::cout << "ambiguity witness at t=" << t << ":";
        for (const auto& candidate : solutions) {
          std::cout << " {";
          for (std::size_t i = 0; i < candidate.size(); ++i) {
            std::cout << (i ? "," : "") << candidate[i];
          }
          std::cout << "}";
        }
        std::cout << "\n";
      }
    }
    table.add_row({Table::num(t), Table::num(trials), Table::num(unique),
                   Table::num(ambiguous),
                   ambiguous == 0 ? "t-diagnosable (empirically)"
                                  : "NOT t-diagnosable"});
    if (ambiguous == 0) {
      lower = t;
    } else {
      break;
    }
  }
  table.print(std::cout);
  std::cout << "\nempirical diagnosability estimate: >= " << lower;
  if (info.diagnosability) {
    std::cout << " (published: " << info.diagnosability << ")";
  }
  std::cout << "\n";
  return 0;
}
