// star_network_diagnosis — comparing three diagnosis strategies on a star
// graph cluster, the second family the paper (and Chiang-Tan) showcase.
//
// Scenario: a 7-star (5040 nodes, the permutation-network alternative to the
// hypercube) suffers a burst of up to 6 faults. We diagnose the same
// syndrome three ways and compare cost:
//   1. the paper's Set_Builder driver,
//   2. our reconstruction of Chiang-Tan's per-node extended-star rule,
//   3. exhaustive search (on a sub-star small enough to afford it).
//
// Usage: star_network_diagnosis [faults] [seed]
#include <iostream>
#include <string>

#include "baselines/brute_force.hpp"
#include "baselines/chiang_tan.hpp"
#include "core/diagnoser.hpp"
#include "mm/injector.hpp"
#include "topology/star_graph.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace mmdiag;

int main(int argc, char** argv) {
  const unsigned n = 7;
  const std::size_t fault_count =
      argc > 1 ? std::stoul(argv[1]) : (n - 1);  // delta = n-1
  const std::uint64_t seed = argc > 2 ? std::stoull(argv[2]) : 11;

  const StarGraph topo(n);
  const Graph graph = topo.build_graph();
  std::cout << "star graph " << topo.info().name << ": " << graph.num_nodes()
            << " nodes (permutations of 1.." << n << "), degree " << n - 1
            << ", diagnosability " << topo.info().diagnosability << "\n\n";

  Rng rng(seed);
  const FaultSet faults(graph.num_nodes(),
                        inject_uniform(graph.num_nodes(), fault_count, rng));
  std::cout << "injected " << faults.size() << " faults, e.g. ";
  for (std::size_t i = 0; i < std::min<std::size_t>(3, faults.size()); ++i) {
    std::cout << "[" << topo.node_label(faults.nodes()[i]) << "] ";
  }
  std::cout << "...\n\n";

  Table table({"algorithm", "time_ms", "syndrome look-ups", "exact"});

  {  // 1. Set_Builder driver.
    Diagnoser diagnoser(topo, graph);
    const LazyOracle oracle(graph, faults, FaultyBehavior::kRandom, seed);
    Timer timer;
    const auto result = diagnoser.diagnose(oracle);
    table.add_row({"set_builder (paper)", Table::num(timer.millis(), 3),
                   Table::num(result.lookups),
                   result.success && result.faults == faults.nodes() ? "yes"
                                                                     : "NO"});
  }
  {  // 2. Chiang-Tan per-node extended stars.
    const auto ct = ChiangTanDiagnoser::for_star_graph(topo, graph);
    const LazyOracle oracle(graph, faults, FaultyBehavior::kRandom, seed);
    Timer timer;
    const auto result = ct.diagnose(oracle);
    table.add_row({"chiang_tan (local)", Table::num(timer.millis(), 3),
                   Table::num(result.lookups),
                   result.success && result.faults == faults.nodes() ? "yes"
                                                                     : "NO"});
  }
  {  // 3. Brute force, on S_4 (24 nodes) where enumeration is feasible.
    const StarGraph small(4);
    const Graph small_graph = small.build_graph();
    Rng rng2(seed);
    const FaultSet small_faults(
        small_graph.num_nodes(),
        inject_uniform(small_graph.num_nodes(), 3, rng2));
    const LazyOracle oracle(small_graph, small_faults, FaultyBehavior::kRandom,
                            seed);
    Timer timer;
    const auto result = brute_force_diagnose(small_graph, oracle, 3);
    table.add_row({"brute_force (on S4)", Table::num(timer.millis(), 3),
                   Table::num(result.lookups),
                   result.success && result.faults == small_faults.nodes()
                       ? "yes"
                       : "NO"});
  }

  table.print(std::cout);
  std::cout << "\nNote the look-up column: the Set_Builder driver reads a "
               "small slice of the syndrome,\nthe per-node local rule reads "
               "the table wholesale (§6 of the paper).\n";
  return 0;
}
