// partition_explorer — inspect how the §5 driver would partition a topology.
//
// Usage: partition_explorer "<family> <n> [k]" [delta]
//
// Prints every partition plan of the topology, whether it certifies the
// requested fault bound (default: the family's paper-supported bound), the
// contributor count a fault-free component achieves under both parent rules,
// and the plan the certified search selects. Useful for understanding the
// calibration correction of DESIGN.md §4.1 on concrete instances.
#include <iostream>
#include <string>

#include "core/certified_partition.hpp"
#include "core/set_builder.hpp"
#include "mm/oracle.hpp"
#include "topology/registry.hpp"
#include "util/table.hpp"

using namespace mmdiag;

namespace {

SetBuilderResult probe(const Graph& graph, const PartitionPlan& plan,
                       ParentRule rule) {
  SetBuilder builder(graph, rule);
  const FaultFreeOracle oracle(graph);
  return builder.run_restricted(oracle, plan.seed_of(0), /*delta=*/~0u >> 1,
                                plan, 0);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " \"<family> <n> [k]\" [delta]\n"
              << "families:";
    for (const auto& f : topology_families()) std::cerr << " " << f;
    std::cerr << "\n";
    return 2;
  }
  try {
    const auto topo = make_topology_from_spec(argv[1]);
    const auto info = topo->info();
    const Graph graph = topo->build_graph();
    const unsigned delta =
        argc > 2 ? static_cast<unsigned>(std::stoul(argv[2]))
                 : topo->default_fault_bound();

    std::cout << info.name << ": N=" << info.num_nodes
              << " degree=" << info.degree << " kappa=" << info.connectivity
              << " diagnosability=" << info.diagnosability
              << " fault bound delta=" << delta << "\n\n";

    Table table({"plan", "components", "comp size", "contrib(least)",
                 "contrib(spread)", "covers", "certifies delta"});
    for (const auto& plan : topo->partition_plans()) {
      const auto least = probe(graph, *plan, ParentRule::kLeastFirst);
      const auto spread = probe(graph, *plan, ParentRule::kSpread);
      const bool covers = spread.members.size() == plan->component_size();
      const bool certifies = covers && spread.contributors > delta &&
                             plan->num_components() >= delta + 1;
      table.add_row({plan->description(), Table::num(plan->num_components()),
                     Table::num(plan->component_size()),
                     Table::num(least.contributors),
                     Table::num(spread.contributors),
                     covers ? "yes" : "NO",
                     certifies ? "yes" : "no"});
    }
    table.print(std::cout);

    std::cout << "\ncertified search (spread rule): ";
    try {
      const auto cp = find_certified_partition(*topo, graph, delta,
                                               ParentRule::kSpread, true);
      std::cout << "selected '" << cp.plan->description() << "' ("
                << cp.calibration_lookups << " calibration look-ups)\n";
    } catch (const DiagnosisUnsupportedError& e) {
      std::cout << "UNSUPPORTED\n" << e.what() << "\n";
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
