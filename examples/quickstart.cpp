// quickstart — the five-minute tour of the library.
//
// Build a 10-dimensional hypercube, inject 10 faults, generate an MM-model
// syndrome with adversarial faulty testers, and recover the fault set with
// the paper's O(Δ·N) algorithm. Run with no arguments.
#include <iostream>

#include "core/diagnoser.hpp"
#include "core/verifier.hpp"
#include "mm/injector.hpp"
#include "mm/syndrome.hpp"
#include "topology/hypercube.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

using namespace mmdiag;

int main() {
  // 1. Pick an interconnection network. Q_10: 1024 processors, degree 10,
  //    diagnosability 10 under the comparison (MM) model.
  const Hypercube topo(10);
  const Graph graph = topo.build_graph();
  const auto info = topo.info();
  std::cout << "topology " << info.name << ": " << info.num_nodes
            << " nodes, degree " << info.degree << ", diagnosability "
            << info.diagnosability << "\n";

  // 2. Something breaks: 10 processors fail (the worst case the model
  //    guarantees to diagnose). We simulate; you would observe.
  Rng rng(2026);
  const FaultSet faults(graph.num_nodes(),
                        inject_uniform(graph.num_nodes(), 10, rng));
  std::cout << "injected faults:";
  for (const Node v : faults.nodes()) std::cout << " " << topo.node_label(v);
  std::cout << "\n";

  // 3. Every processor compares the replies of each pair of neighbours.
  //    Faulty testers answer arbitrarily — here, adversarially (they invert
  //    every verdict a healthy tester would give).
  const Syndrome syndrome = generate_syndrome(
      graph, faults, FaultyBehavior::kAntiDiagnostic, /*seed=*/1);
  const TableOracle oracle(graph, syndrome);
  std::cout << "syndrome: " << syndrome.total_tests() << " test results ("
            << syndrome.memory_bytes() / 1024 << " KiB)\n";

  // 4. Diagnose. The Diagnoser calibrates a certified partition once, then
  //    each diagnosis costs O(Δ·N) time and touches a small slice of the
  //    syndrome.
  Diagnoser diagnoser(topo, graph);
  Timer timer;
  const DiagnosisResult result = diagnose_and_verify(diagnoser, oracle);
  std::cout << "diagnosis took " << timer.millis() << " ms, " << result.probes
            << " probe(s), " << result.lookups << " of "
            << syndrome.total_tests() << " syndrome look-ups\n";

  if (!result.success) {
    std::cerr << "diagnosis failed: " << result.failure_reason << "\n";
    return 1;
  }
  std::cout << "diagnosed faults:";
  for (const Node v : result.faults) std::cout << " " << topo.node_label(v);
  std::cout << "\n";
  std::cout << (result.faults == faults.nodes() ? "exact match ✓"
                                                : "MISMATCH ✗")
            << "\n";
  return result.faults == faults.nodes() ? 0 : 1;
}
