// extended_star_demo — reproduces Fig. 2 of the paper: the extended star
// rooted at a node, the local structure Chiang-Tan diagnose from.
//
// Prints the branch structure of ES(x) in a hypercube and a star graph and
// emits a Graphviz file (extended_star.dot) of the hypercube instance with
// the star's edges emphasised.
//
// Usage: extended_star_demo [n] [root]
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/extended_star.hpp"
#include "graph/dot.hpp"
#include "topology/hypercube.hpp"
#include "topology/star_graph.hpp"

using namespace mmdiag;

int main(int argc, char** argv) {
  const unsigned n = argc > 1 ? std::stoul(argv[1]) : 5;
  const Node root = argc > 2 ? static_cast<Node>(std::stoul(argv[2])) : 0;

  const Hypercube topo(n);
  const Graph graph = topo.build_graph();
  const auto es = extended_star_hypercube(topo, root);
  std::cout << "Fig. 2 — extended star rooted at " << topo.node_label(root)
            << " in " << topo.info().name << " (" << es.branches.size()
            << " branches, black nodes = the testers the rule reads):\n";
  for (std::size_t b = 0; b < es.branches.size(); ++b) {
    std::cout << "  branch " << b << ": " << topo.node_label(root);
    for (const Node v : es.branches[b]) {
      std::cout << " -- " << topo.node_label(v);
    }
    std::cout << "\n";
  }
  std::cout << "valid (disjoint, adjacent): "
            << (extended_star_valid(graph, es) ? "yes" : "NO") << "\n\n";

  // The same structure exists at every node of a star graph (the other
  // family Chiang-Tan illustrate).
  const StarGraph star(5);
  const Graph star_graph = star.build_graph();
  const auto star_es = extended_star_star_graph(star, 0);
  std::cout << "and in " << star.info().name << " at ["
            << star.node_label(0) << "]:\n";
  for (std::size_t b = 0; b < star_es.branches.size(); ++b) {
    std::cout << "  branch " << b << ": [" << star.node_label(0) << "]";
    for (const Node v : star_es.branches[b]) {
      std::cout << " -- [" << star.node_label(v) << "]";
    }
    std::cout << "\n";
  }
  std::cout << "valid: " << (extended_star_valid(star_graph, star_es) ? "yes" : "NO")
            << "\n";

  // Graphviz export with the extended star emphasised.
  DotStyle style;
  style.label = [&](Node v) { return topo.node_label(v); };
  style.highlighted = {root};
  for (const auto& branch : es.branches) {
    style.bold_edges.emplace_back(root, branch[0]);
    for (int i = 0; i + 1 < 4; ++i) {
      style.bold_edges.emplace_back(branch[i], branch[i + 1]);
    }
  }
  std::ofstream out("extended_star.dot");
  write_dot(out, graph, style);
  std::cout << "\nwrote extended_star.dot (render with: dot -Tsvg ...)\n";
  return 0;
}
