// Per-model differential fuzzing: >= 300 cases per diagnosis model raced
// against that model's exact solver with zero divergences, plus the
// rotation guarantee that a default fuzz run exercises every model and the
// directed sabotage modes that prove the directed voices can still lose.
#include <gtest/gtest.h>

#include <string>

#include "fuzz/fuzzer.hpp"

namespace mmdiag {
namespace {

FuzzSummary run_for_model(DiagnosisModel model, std::uint64_t cases,
                          std::uint64_t seed) {
  FuzzOptions options;
  options.cases = cases;
  options.seed = seed;
  options.models = {model};
  Fuzzer fuzzer(options);
  return fuzzer.run();
}

std::string first_bug(const FuzzSummary& summary) {
  if (summary.clean()) return "";
  return "[" + summary.bugs.front().config + "] " +
         summary.bugs.front().detail;
}

TEST(ModelFuzz, MmStarThreeHundredCasesClean) {
  const FuzzSummary s = run_for_model(DiagnosisModel::kMMStar, 300, 11);
  EXPECT_EQ(s.cases_run, 300u);
  EXPECT_TRUE(s.clean()) << first_bug(s);
  EXPECT_EQ(s.cases_per_model.at("mm-star"), 300u);
}

TEST(ModelFuzz, PmcThreeHundredCasesClean) {
  const FuzzSummary s = run_for_model(DiagnosisModel::kPMC, 300, 12);
  EXPECT_EQ(s.cases_run, 300u);
  EXPECT_TRUE(s.clean()) << first_bug(s);
  EXPECT_EQ(s.cases_per_model.at("pmc"), 300u);
  EXPECT_GT(s.beyond_delta_cases, 0u);  // both regimes raced
}

TEST(ModelFuzz, BgmThreeHundredCasesClean) {
  const FuzzSummary s = run_for_model(DiagnosisModel::kBGM, 300, 13);
  EXPECT_EQ(s.cases_run, 300u);
  EXPECT_TRUE(s.clean()) << first_bug(s);
  EXPECT_EQ(s.cases_per_model.at("bgm"), 300u);
  EXPECT_GT(s.beyond_delta_cases, 0u);
}

TEST(ModelFuzz, DefaultStreamRotatesOverEveryModel) {
  FuzzOptions options;
  options.cases = 120;
  options.seed = 14;
  Fuzzer fuzzer(options);
  const FuzzSummary s = fuzzer.run();
  EXPECT_TRUE(s.clean()) << first_bug(s);
  ASSERT_EQ(s.cases_per_model.size(), 3u);
  for (const auto& [model, count] : s.cases_per_model) {
    EXPECT_GT(count, 0u) << model;
  }
}

TEST(ModelFuzz, DirectedSabotageModesStillDiverge) {
  // The directed voices must be able to lose: both sabotage modes have
  // directed analogues, and a directed-only stream must catch them.
  for (const Sabotage sabotage :
       {Sabotage::kRuleMismatch, Sabotage::kDropFault}) {
    for (const DiagnosisModel model :
         {DiagnosisModel::kPMC, DiagnosisModel::kBGM}) {
      FuzzOptions options;
      options.cases = 60;
      options.seed = 15;
      options.models = {model};
      options.sabotage = sabotage;
      Fuzzer fuzzer(options);
      const FuzzSummary s = fuzzer.run();
      EXPECT_FALSE(s.clean())
          << diagnosis_model_to_string(model) << " sabotage mode "
          << static_cast<int>(sabotage) << " went undetected";
    }
  }
}

}  // namespace
}  // namespace mmdiag
