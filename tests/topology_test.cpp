// Structural invariants for every topology family, parameterized over
// representative instances. Graph construction itself validates symmetry,
// duplicate edges and self-loops (build_graph_from_generator), so a
// successful build is already a meaningful check.
#include <gtest/gtest.h>

#include <set>

#include "graph/traversal.hpp"
#include "test_util.hpp"

namespace mmdiag {
namespace {

struct Expected {
  std::string spec;
  std::uint64_t num_nodes;
  unsigned degree;
  unsigned diagnosability;  // published value (0 = not covered)
};

class TopologyInvariants : public ::testing::TestWithParam<Expected> {};

TEST_P(TopologyInvariants, MatchesPublishedConstantsAndIsSimpleRegular) {
  const auto& expected = GetParam();
  test::Instance inst(expected.spec);
  const auto info = inst.topo->info();

  EXPECT_EQ(info.num_nodes, expected.num_nodes) << info.name;
  EXPECT_EQ(info.degree, expected.degree) << info.name;
  EXPECT_EQ(info.diagnosability, expected.diagnosability) << info.name;
  EXPECT_EQ(inst.graph.num_nodes(), info.num_nodes);

  // Regularity.
  EXPECT_EQ(inst.graph.max_degree(), info.degree) << info.name;
  EXPECT_EQ(inst.graph.min_degree(), info.degree) << info.name;

  // Connected (all §5 families are).
  EXPECT_TRUE(is_connected(inst.graph)) << info.name;

  // Diagnosability never exceeds connectivity or degree, and the paper's
  // driver never supports more faults than the diagnosability.
  EXPECT_LE(info.diagnosability, info.degree);
  EXPECT_LE(info.diagnosability, info.connectivity);
  EXPECT_LE(inst.topo->default_fault_bound(), info.diagnosability);
}

TEST_P(TopologyInvariants, NodeLabelsAreUnique) {
  test::Instance inst(GetParam().spec);
  if (inst.graph.num_nodes() > 5000) GTEST_SKIP() << "label sweep too large";
  std::set<std::string> labels;
  for (Node v = 0; v < inst.graph.num_nodes(); ++v) {
    labels.insert(inst.topo->node_label(v));
  }
  EXPECT_EQ(labels.size(), inst.graph.num_nodes());
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, TopologyInvariants,
    ::testing::Values(
        // Hypercubes: N = 2^n, degree n, diag n for n >= 4.
        Expected{"hypercube 3", 8, 3, 0},
        Expected{"hypercube 4", 16, 4, 4},
        Expected{"hypercube 7", 128, 7, 7},
        Expected{"hypercube 10", 1024, 10, 10},
        // Crossed cubes.
        Expected{"crossed_cube 3", 8, 3, 0},
        Expected{"crossed_cube 4", 16, 4, 4},
        Expected{"crossed_cube 8", 256, 8, 8},
        // Twisted cubes (odd n).
        Expected{"twisted_cube 3", 8, 3, 0},
        Expected{"twisted_cube 5", 32, 5, 5},
        Expected{"twisted_cube 9", 512, 9, 9},
        // Folded hypercubes: degree n+1.
        Expected{"folded_hypercube 4", 16, 5, 5},
        Expected{"folded_hypercube 8", 256, 9, 9},
        // Enhanced hypercubes Q_{n,k}: degree n+1.
        Expected{"enhanced_hypercube 5 3", 32, 6, 6},
        Expected{"enhanced_hypercube 8 4", 256, 9, 9},
        // Augmented cubes: degree 2n-1; AQ_4 fails the 2t+3 size bound
        // (17 > 16) exactly as the paper's n >= 5 condition predicts;
        // AQ_3 additionally has the known connectivity anomaly κ = 4.
        Expected{"augmented_cube 3", 8, 5, 0},
        Expected{"augmented_cube 4", 16, 7, 0},
        Expected{"augmented_cube 5", 32, 9, 9},
        Expected{"augmented_cube 7", 128, 13, 13},
        // Shuffle cubes (n = 4k+2).
        Expected{"shuffle_cube 6", 64, 6, 6},
        Expected{"shuffle_cube 10", 1024, 10, 10},
        // Twisted N-cubes.
        Expected{"twisted_n_cube 4", 16, 4, 4},
        Expected{"twisted_n_cube 8", 256, 8, 8},
        // k-ary n-cubes: degree 2n; (3,3) is on the paper's exclusion list.
        Expected{"kary_ncube 3 3", 27, 6, 0},
        Expected{"kary_ncube 2 6", 36, 4, 4},
        Expected{"kary_ncube 3 5", 125, 6, 6},
        Expected{"kary_ncube 2 8", 64, 4, 4},
        // Augmented k-ary n-cubes: degree 4n-2; (n,k) = (2,3) excluded.
        Expected{"augmented_kary_ncube 2 3", 9, 6, 0},
        Expected{"augmented_kary_ncube 2 5", 25, 6, 6},
        Expected{"augmented_kary_ncube 3 4", 64, 10, 10},
        // Stars: N = n!, degree n-1.
        Expected{"star 4", 24, 3, 3},
        Expected{"star 5", 120, 4, 4},
        Expected{"star 7", 5040, 6, 6},
        // (n,k)-stars: N = n!/(n-k)!, degree n-1; (n,k) = (3,2) excluded.
        Expected{"nk_star 3 2", 6, 2, 0},
        Expected{"nk_star 5 2", 20, 4, 4},
        Expected{"nk_star 6 3", 120, 5, 5},
        Expected{"nk_star 7 4", 840, 6, 6},
        // Pancakes.
        Expected{"pancake 4", 24, 3, 3},
        Expected{"pancake 6", 720, 5, 5},
        // Arrangement graphs: degree k(n-k).
        Expected{"arrangement 5 2", 20, 6, 6},
        Expected{"arrangement 6 3", 120, 9, 9},
        Expected{"arrangement 7 2", 42, 10, 10}),
    [](const ::testing::TestParamInfo<Expected>& info) {
      std::string name = info.param.spec;
      for (auto& c : name) {
        if (c == ' ') c = '_';
      }
      return name;
    });

TEST(TopologyRegistry, ListsAllFamilies) {
  const auto families = topology_families();
  EXPECT_EQ(families.size(), 14u);
  for (const auto& f : families) {
    SCOPED_TRACE(f);
    // Every listed family constructs with reasonable small parameters.
    std::vector<unsigned> params;
    if (f == "enhanced_hypercube") {
      params = {5, 3};
    } else if (f == "kary_ncube" || f == "augmented_kary_ncube") {
      params = {2, 4};
    } else if (f == "nk_star" || f == "arrangement") {
      params = {5, 3};
    } else if (f == "twisted_cube") {
      params = {5};
    } else if (f == "shuffle_cube") {
      params = {6};
    } else {
      params = {5};
    }
    EXPECT_NO_THROW((void)make_topology(f, params));
  }
}

TEST(TopologyRegistry, RejectsUnknownAndBadArity) {
  EXPECT_THROW((void)make_topology("moebius", {4}), std::invalid_argument);
  EXPECT_THROW((void)make_topology("hypercube", {4, 4}), std::invalid_argument);
  EXPECT_THROW((void)make_topology_from_spec(""), std::invalid_argument);
  EXPECT_NO_THROW((void)make_topology_from_spec("hypercube 5"));
}

TEST(TopologyValidity, ConstructorsRejectBadParameters) {
  EXPECT_THROW((void)make_topology("twisted_cube", {4}), std::invalid_argument);  // even
  EXPECT_THROW((void)make_topology("shuffle_cube", {8}), std::invalid_argument);  // not 4k+2
  EXPECT_THROW((void)make_topology("kary_ncube", {3, 2}), std::invalid_argument);  // k < 3
  EXPECT_THROW((void)make_topology("enhanced_hypercube", {5, 1}),
               std::invalid_argument);  // k = 1 duplicates a cube edge
  EXPECT_THROW((void)make_topology("nk_star", {5, 5}), std::invalid_argument);  // k = n
  EXPECT_THROW((void)make_topology("arrangement", {5, 0}), std::invalid_argument);
  EXPECT_THROW((void)make_topology("hypercube", {0}), std::invalid_argument);
}

TEST(NodeLabels, FormatExamples) {
  EXPECT_EQ(make_topology_from_spec("hypercube 4")->node_label(0b1010), "1010");
  EXPECT_EQ(make_topology_from_spec("star 4")->node_label(0), "1 2 3 4");
  const auto kary = make_topology_from_spec("kary_ncube 2 5");
  EXPECT_EQ(kary->node_label(7), "(1,2)");  // 7 = 1*5 + 2
}

}  // namespace
}  // namespace mmdiag
