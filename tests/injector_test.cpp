#include <gtest/gtest.h>

#include <set>

#include "graph/builder.hpp"
#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(InjectUniform, DistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = inject_uniform(100, 10, rng);
    EXPECT_EQ(f.size(), 10u);
    std::set<Node> s(f.begin(), f.end());
    EXPECT_EQ(s.size(), 10u);
    for (const Node v : f) EXPECT_LT(v, 100u);
  }
}

TEST(InjectUniform, ApproximatelyUniformCoverage) {
  Rng rng(6);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (const Node v : inject_uniform(20, 2, rng)) ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 250);  // expected 400 each
    EXPECT_LT(h, 560);
  }
}

TEST(InjectUniform, EdgeCases) {
  Rng rng(1);
  EXPECT_TRUE(inject_uniform(5, 0, rng).empty());
  const auto all = inject_uniform(5, 5, rng);
  EXPECT_EQ(std::set<Node>(all.begin(), all.end()).size(), 5u);
  EXPECT_THROW((void)inject_uniform(3, 4, rng), std::invalid_argument);
}

TEST(InjectSurround, ExactNeighbourSet) {
  test::Instance inst("hypercube 4");
  const auto f = inject_surround(inst.graph, 0);
  EXPECT_EQ(test::sorted(f), (std::vector<Node>{1, 2, 4, 8}));
}

TEST(InjectClustered, BfsBall) {
  test::Instance inst("hypercube 4");
  const auto f = inject_clustered(inst.graph, 0, 5);
  // Centre plus its four neighbours.
  EXPECT_EQ(test::sorted(f), (std::vector<Node>{0, 1, 2, 4, 8}));
  EXPECT_THROW((void)inject_clustered(inst.graph, 0, 17), std::invalid_argument);
}

TEST(InjectUniform, WholeNodeSetAndNothing) {
  // The boundary counts the fuzzer draws: count == num_nodes must be a
  // permutation of V, count == 0 the empty set — for any seed.
  for (const std::uint64_t seed : {1ull, 7ull, 99ull}) {
    Rng rng(seed);
    const auto all = inject_uniform(64, 64, rng);
    EXPECT_EQ(all.size(), 64u);
    EXPECT_EQ(std::set<Node>(all.begin(), all.end()).size(), 64u);
    EXPECT_TRUE(inject_uniform(64, 0, rng).empty());
  }
}

TEST(InjectClustered, BallCoveringTheWholeGraph) {
  test::Instance inst("hypercube 4");
  const auto everything = inject_clustered(inst.graph, 3, 16);
  std::vector<Node> expected(16);
  for (Node v = 0; v < 16; ++v) expected[v] = v;
  EXPECT_EQ(test::sorted(everything), expected);
}

TEST(InjectClustered, ZeroCountExcludesEvenTheCentre) {
  test::Instance inst("hypercube 4");
  EXPECT_TRUE(inject_clustered(inst.graph, 0, 0).empty());
}

TEST(InjectClustered, BallStopsAtItsComponent) {
  // Two disjoint triangles: the ball around node 0 is its whole component
  // at count 3, and no count can cross into the other component.
  const Graph g = build_graph_from_edges(
      6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  EXPECT_EQ(test::sorted(inject_clustered(g, 0, 3)),
            (std::vector<Node>{0, 1, 2}));
  EXPECT_THROW((void)inject_clustered(g, 0, 4), std::invalid_argument);
}

TEST(InjectWhere, ExactPoolSizeBoundary) {
  // Predicate admits exactly `count` nodes: the sample must be the whole
  // pool (in some order); one more is a clean throw.
  Rng rng(11);
  const auto pool = inject_where(40, 4, [](Node v) { return v % 10 == 0; }, rng);
  EXPECT_EQ(test::sorted(pool), (std::vector<Node>{0, 10, 20, 30}));
  EXPECT_THROW(
      (void)inject_where(40, 5, [](Node v) { return v % 10 == 0; }, rng),
      std::invalid_argument);
}

TEST(InjectWhere, RespectsPredicate) {
  Rng rng(9);
  const auto f =
      inject_where(50, 5, [](Node v) { return v % 2 == 0; }, rng);
  EXPECT_EQ(f.size(), 5u);
  for (const Node v : f) EXPECT_EQ(v % 2, 0u);
  EXPECT_THROW((void)inject_where(10, 6, [](Node v) { return v < 3; }, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
