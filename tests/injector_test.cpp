#include <gtest/gtest.h>

#include <set>

#include "mm/injector.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

TEST(InjectUniform, DistinctAndInRange) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const auto f = inject_uniform(100, 10, rng);
    EXPECT_EQ(f.size(), 10u);
    std::set<Node> s(f.begin(), f.end());
    EXPECT_EQ(s.size(), 10u);
    for (const Node v : f) EXPECT_LT(v, 100u);
  }
}

TEST(InjectUniform, ApproximatelyUniformCoverage) {
  Rng rng(6);
  std::vector<int> hits(20, 0);
  for (int trial = 0; trial < 4000; ++trial) {
    for (const Node v : inject_uniform(20, 2, rng)) ++hits[v];
  }
  for (const int h : hits) {
    EXPECT_GT(h, 250);  // expected 400 each
    EXPECT_LT(h, 560);
  }
}

TEST(InjectUniform, EdgeCases) {
  Rng rng(1);
  EXPECT_TRUE(inject_uniform(5, 0, rng).empty());
  const auto all = inject_uniform(5, 5, rng);
  EXPECT_EQ(std::set<Node>(all.begin(), all.end()).size(), 5u);
  EXPECT_THROW((void)inject_uniform(3, 4, rng), std::invalid_argument);
}

TEST(InjectSurround, ExactNeighbourSet) {
  test::Instance inst("hypercube 4");
  const auto f = inject_surround(inst.graph, 0);
  EXPECT_EQ(test::sorted(f), (std::vector<Node>{1, 2, 4, 8}));
}

TEST(InjectClustered, BfsBall) {
  test::Instance inst("hypercube 4");
  const auto f = inject_clustered(inst.graph, 0, 5);
  // Centre plus its four neighbours.
  EXPECT_EQ(test::sorted(f), (std::vector<Node>{0, 1, 2, 4, 8}));
  EXPECT_THROW((void)inject_clustered(inst.graph, 0, 17), std::invalid_argument);
}

TEST(InjectWhere, RespectsPredicate) {
  Rng rng(9);
  const auto f =
      inject_where(50, 5, [](Node v) { return v % 2 == 0; }, rng);
  EXPECT_EQ(f.size(), 5u);
  for (const Node v : f) EXPECT_EQ(v % 2, 0u);
  EXPECT_THROW((void)inject_where(10, 6, [](Node v) { return v < 3; }, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
