// Dispatch-equivalence regression suite: the statically-dispatched hot
// path, the type-erased virtual entry, and the preserved baseline
// implementation must report bit-identical diagnoses — faults, rounds,
// contributors, probes AND look-up counts — for every registry family,
// all four parent rules, and all three shipped oracles. This is the
// contract that lets bench_hotpath call its speedup "the same algorithm,
// faster": any divergence here is a correctness bug in the hot path, not
// a measurement artefact.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/certified_partition.hpp"
#include "core/diagnoser.hpp"
#include "graph/implicit_graph.hpp"
#include "mm/behavior.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

/// One certifiable (spec, delta) pair per registry family — the explicit
/// deltas keep small instances inside their §5 validity window.
struct FamilyCase {
  const char* spec;
  unsigned delta;
};
constexpr FamilyCase kEveryFamily[] = {
    {"hypercube 5", 3},          {"crossed_cube 5", 3},
    {"twisted_cube 5", 3},       {"folded_hypercube 5", 3},
    {"enhanced_hypercube 5 2", 3}, {"augmented_cube 6", 3},
    {"shuffle_cube 6", 3},       {"twisted_n_cube 5", 3},
    {"kary_ncube 2 6", 3},       {"augmented_kary_ncube 3 4", 3},
    {"star 4", 3},               {"nk_star 5 3", 4},
    {"pancake 4", 3},            {"arrangement 5 3", 4},
};

void expect_bit_identical(const DiagnosisResult& expected,
                          const DiagnosisResult& actual,
                          const std::string& what) {
  ASSERT_EQ(expected.success, actual.success) << what;
  EXPECT_EQ(expected.faults, actual.faults) << what;
  EXPECT_EQ(expected.failure_reason, actual.failure_reason) << what;
  EXPECT_EQ(expected.lookups, actual.lookups) << what;
  EXPECT_EQ(expected.probes, actual.probes) << what;
  EXPECT_EQ(expected.certified_component, actual.certified_component) << what;
  EXPECT_EQ(expected.final_members, actual.final_members) << what;
  EXPECT_EQ(expected.final_rounds, actual.final_rounds) << what;
}

/// Runs one oracle through all three dispatch paths of one Diagnoser and
/// cross-checks them (baseline is the expected voice: it is the seed
/// implementation).
template <class O>
void check_all_paths(Diagnoser& diagnoser, const O& oracle,
                     const std::string& what) {
  const DiagnosisResult baseline = diagnoser.diagnose_baseline(oracle);
  const DiagnosisResult erased =
      diagnoser.diagnose(static_cast<const SyndromeOracle&>(oracle));
  const DiagnosisResult statically = diagnoser.diagnose(oracle);
  expect_bit_identical(baseline, erased, what + " [erased]");
  expect_bit_identical(baseline, statically, what + " [static]");
  const DiagnosisResult dispatched = diagnose_devirtualized(diagnoser, oracle);
  expect_bit_identical(baseline, dispatched, what + " [devirtualized]");
}

TEST(DispatchEquivalence, EveryFamilyEveryRuleEveryOracle) {
  for (const FamilyCase& family : kEveryFamily) {
    SCOPED_TRACE(family.spec);
    test::Instance inst(family.spec);
    const std::size_t n = inst.graph.num_nodes();
    for (const ParentRule rule : kAllParentRules) {
      CertifiedPartition partition;
      try {
        partition = find_certified_partition(*inst.topo, inst.graph,
                                             family.delta, rule);
      } catch (const DiagnosisUnsupportedError&) {
        continue;  // this rule cannot certify this instance — nothing to race
      }
      DiagnoserOptions options;
      options.rule = rule;
      Diagnoser diagnoser(inst.graph, partition, options);
      const std::string tag =
          std::string(family.spec) + "/" + to_string(rule);

      check_all_paths(diagnoser, FaultFreeOracle(inst.graph),
                      tag + "/fault-free");

      for (const std::size_t num_faults :
           {std::size_t{1}, std::size_t{family.delta}}) {
        for (const FaultyBehavior behavior :
             {FaultyBehavior::kRandom, FaultyBehavior::kAntiDiagnostic}) {
          Rng rng(0xD15BA7C4 ^ (num_faults * 977) ^
                  static_cast<unsigned>(rule));
          const FaultSet faults(n, inject_uniform(n, num_faults, rng));
          const std::string what = tag + "/faults=" +
                                   std::to_string(num_faults) + "/" +
                                   to_string(behavior);
          check_all_paths(
              diagnoser,
              LazyOracle(inst.graph, faults, behavior, /*seed=*/42),
              what + "/lazy");
          const Syndrome syndrome =
              generate_syndrome(inst.graph, faults, behavior, /*seed=*/42);
          check_all_paths(diagnoser, TableOracle(inst.graph, syndrome),
                          what + "/table");
        }
      }
    }
  }
}

// SetBuilder-level equivalence, including restricted runs (the probe shape)
// and the look-up counter after each run.
TEST(DispatchEquivalence, SetBuilderRunsMatchAcrossPaths) {
  for (const FamilyCase& family : {FamilyCase{"hypercube 6", 4},
                                   FamilyCase{"star 5", 4},
                                   FamilyCase{"kary_ncube 3 4", 4}}) {
    SCOPED_TRACE(family.spec);
    test::Instance inst(family.spec);
    const std::size_t n = inst.graph.num_nodes();
    Rng rng(99);
    const FaultSet faults(n, inject_uniform(n, family.delta, rng));
    const Syndrome syndrome =
        generate_syndrome(inst.graph, faults, FaultyBehavior::kRandom, 7);
    const TableOracle table(inst.graph, syndrome);
    Node seed = 0;
    while (faults.is_faulty(seed)) ++seed;

    for (const ParentRule rule : kAllParentRules) {
      SCOPED_TRACE(to_string(rule));
      SetBuilder builder(inst.graph, rule);

      table.reset_lookups();
      const auto baseline = builder.run_baseline(table, seed, family.delta);
      const std::uint64_t baseline_lookups = table.lookups();

      table.reset_lookups();
      const auto erased = builder.run(
          static_cast<const SyndromeOracle&>(table), seed, family.delta);
      const std::uint64_t erased_lookups = table.lookups();

      table.reset_lookups();
      const auto statically = builder.run(table, seed, family.delta);
      const std::uint64_t static_lookups = table.lookups();

      for (const auto* r : {&erased, &statically}) {
        EXPECT_EQ(baseline.all_healthy, r->all_healthy);
        EXPECT_EQ(baseline.rounds, r->rounds);
        EXPECT_EQ(baseline.contributors, r->contributors);
        EXPECT_EQ(baseline.members, r->members);
        EXPECT_EQ(baseline.parent, r->parent);
      }
      EXPECT_EQ(baseline_lookups, erased_lookups);
      EXPECT_EQ(baseline_lookups, static_lookups);
      for (Node v = 0; v < n; ++v) {
        EXPECT_EQ(builder.in_last_set(v), builder.in_last_baseline_set(v));
      }
    }

    // Restricted runs over every component of the finest certifiable plan.
    CertifiedPartition partition;
    try {
      partition = find_certified_partition(*inst.topo, inst.graph,
                                           family.delta, ParentRule::kSpread);
    } catch (const DiagnosisUnsupportedError&) {
      continue;  // no certifiable plan at this bound — unrestricted covered
    }
    const PartitionPlan& plan = *partition.plan;
    SetBuilder builder(inst.graph, ParentRule::kSpread);
    for (std::uint32_t c = 0;
         c < std::min<std::size_t>(plan.num_components(), 4); ++c) {
      table.reset_lookups();
      const auto baseline = builder.run_restricted_baseline(
          table, plan.seed_of(c), family.delta, plan, c);
      const std::uint64_t baseline_lookups = table.lookups();
      table.reset_lookups();
      const auto statically = builder.run_restricted(
          table, plan.seed_of(c), family.delta, plan, c);
      EXPECT_EQ(baseline.members, statically.members) << "component " << c;
      EXPECT_EQ(baseline.parent, statically.parent) << "component " << c;
      EXPECT_EQ(baseline.contributors, statically.contributors);
      EXPECT_EQ(baseline_lookups, table.lookups()) << "component " << c;
    }
  }
}

/// Deterministic per-lane workload for a cohort: fault counts cycle over
/// 0..delta, all four faulty behaviours, seeded per lane.
std::vector<Syndrome> make_cohort_syndromes(const Graph& graph, unsigned delta,
                                            std::size_t width) {
  constexpr FaultyBehavior kBehaviors[] = {
      FaultyBehavior::kRandom, FaultyBehavior::kAllZero,
      FaultyBehavior::kAllOne, FaultyBehavior::kAntiDiagnostic};
  std::vector<Syndrome> syndromes;
  syndromes.reserve(width);
  const std::size_t n = graph.num_nodes();
  for (std::size_t lane = 0; lane < width; ++lane) {
    Rng rng(0xC0407 + lane * 0x9E3779B97F4A7C15ULL);
    const FaultSet faults(
        n, inject_uniform(n, lane % (std::size_t{delta} + 1), rng));
    syndromes.push_back(
        generate_syndrome(graph, faults, kBehaviors[lane % 4], lane));
  }
  return syndromes;
}

/// Races diagnose_cohort against a scalar solve of each lane and demands
/// bit-identity on every reported field, look-up counts included.
void check_cohort_matches_scalar(Diagnoser& diagnoser, const Graph& graph,
                                 const std::vector<Syndrome>& syndromes,
                                 const std::string& tag) {
  std::vector<TableOracle> scalar_oracles, cohort_oracles;
  scalar_oracles.reserve(syndromes.size());
  cohort_oracles.reserve(syndromes.size());
  for (const Syndrome& s : syndromes) {
    scalar_oracles.emplace_back(graph, s);
    cohort_oracles.emplace_back(graph, s);
  }
  std::vector<DiagnosisResult> expected;
  for (const TableOracle& o : scalar_oracles) {
    expected.push_back(diagnoser.diagnose(o));
  }
  std::vector<const TableOracle*> lanes;
  for (const TableOracle& o : cohort_oracles) lanes.push_back(&o);
  const std::vector<DiagnosisResult> actual = diagnoser.diagnose_cohort(lanes);
  ASSERT_EQ(actual.size(), syndromes.size()) << tag;
  for (std::size_t lane = 0; lane < syndromes.size(); ++lane) {
    expect_bit_identical(expected[lane], actual[lane],
                         tag + "/lane=" + std::to_string(lane));
    // The cohort must also charge each lane's own oracle identically.
    EXPECT_EQ(scalar_oracles[lane].lookups(), cohort_oracles[lane].lookups())
        << tag << "/lane=" << lane;
  }
}

// The tentpole contract: a bitsliced lockstep cohort reports bit-identical
// diagnoses — faults, failure strings, probes AND per-syndrome look-up
// counts — for every registry family and all four parent rules, at widths
// on both sides of the 64-lane word (1, 2, 63, 64).
TEST(DispatchEquivalence, CohortMatchesScalarEveryFamilyEveryRule) {
  for (const FamilyCase& family : kEveryFamily) {
    SCOPED_TRACE(family.spec);
    test::Instance inst(family.spec);
    for (const ParentRule rule : kAllParentRules) {
      CertifiedPartition partition;
      try {
        partition = find_certified_partition(*inst.topo, inst.graph,
                                             family.delta, rule);
      } catch (const DiagnosisUnsupportedError&) {
        continue;
      }
      DiagnoserOptions options;
      options.rule = rule;
      Diagnoser diagnoser(inst.graph, partition, options);
      const std::string tag =
          std::string(family.spec) + "/" + to_string(rule);
      for (const std::size_t width :
           {std::size_t{1}, std::size_t{2}, std::size_t{63},
            std::size_t{64}}) {
        check_cohort_matches_scalar(
            diagnoser, inst.graph,
            make_cohort_syndromes(inst.graph, family.delta, width),
            tag + "/width=" + std::to_string(width));
      }
    }
  }
}

TEST(DispatchEquivalence, CohortMatchesScalarUnderStopOnCertify) {
  test::Instance inst("hypercube 6");
  const unsigned delta = 4;
  CertifiedPartition partition = find_certified_partition(
      *inst.topo, inst.graph, delta, ParentRule::kSpread);
  DiagnoserOptions options;
  options.stop_probe_on_certify = true;
  Diagnoser diagnoser(inst.graph, partition, options);
  check_cohort_matches_scalar(diagnoser, inst.graph,
                              make_cohort_syndromes(inst.graph, delta, 64),
                              "hypercube 6/stop-on-certify");
}

TEST(DispatchEquivalence, MixedCertifiableAndUncertifiableCohort) {
  // An all-one syndrome (every comparison reports a mismatch) can never
  // certify a component: its lane must carry the verbatim no-component
  // failure string without poisoning the healthy lanes around it.
  test::Instance inst("hypercube 6");
  const unsigned delta = 4;
  CertifiedPartition partition = find_certified_partition(
      *inst.topo, inst.graph, delta, ParentRule::kSpread);
  Diagnoser diagnoser(inst.graph, partition, DiagnoserOptions{});

  std::vector<Syndrome> syndromes =
      make_cohort_syndromes(inst.graph, delta, 64);
  Syndrome all_one(inst.graph);
  for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
    const auto deg = inst.graph.degree(u);
    for (unsigned i = 0; i + 1 < deg; ++i) {
      for (unsigned j = i + 1; j < deg; ++j) {
        all_one.set_test(u, i, j, true);
      }
    }
  }
  syndromes[5] = all_one;
  syndromes[62] = all_one;
  check_cohort_matches_scalar(diagnoser, inst.graph, syndromes,
                              "hypercube 6/mixed-uncertifiable");

  const TableOracle bad(inst.graph, all_one);
  const DiagnosisResult res = diagnoser.diagnose(bad);
  EXPECT_FALSE(res.success);
  EXPECT_NE(res.failure_reason.find("no component certified"),
            std::string::npos)
      << res.failure_reason;
}

TEST(DispatchEquivalence, CohortRejectsBadWidthsAndNullLanes) {
  test::Instance inst("hypercube 5");
  CertifiedPartition partition = find_certified_partition(
      *inst.topo, inst.graph, 3, ParentRule::kSpread);
  Diagnoser diagnoser(inst.graph, partition, DiagnoserOptions{});

  EXPECT_THROW((void)diagnoser.diagnose_cohort({}), std::invalid_argument);

  const std::vector<Syndrome> syndromes =
      make_cohort_syndromes(inst.graph, 3, 65);
  std::vector<TableOracle> oracles;
  for (const Syndrome& s : syndromes) oracles.emplace_back(inst.graph, s);
  std::vector<const TableOracle*> too_wide;
  for (const TableOracle& o : oracles) too_wide.push_back(&o);
  EXPECT_THROW((void)diagnoser.diagnose_cohort(too_wide),
               std::invalid_argument);

  std::vector<const TableOracle*> with_null = {&oracles[0], nullptr};
  EXPECT_THROW((void)diagnoser.diagnose_cohort(with_null),
               std::invalid_argument);
}

// The implicit-view contract: a Diagnoser driven through ImplicitGraph's
// closed-form adjacency must be bit-identical — faults, failure strings,
// probes AND look-up counts — to one driven through the materialised CSR,
// for every registry family, whether the oracle itself reads the implicit
// view (ImplicitLazyOracle) or a shared syndrome table (TableOracle).
TEST(DispatchEquivalence, ImplicitViewMatchesCsrEveryFamily) {
  for (const FamilyCase& family : kEveryFamily) {
    SCOPED_TRACE(family.spec);
    test::Instance inst(family.spec);
    const std::size_t n = inst.graph.num_nodes();
    const ImplicitGraph iview(*inst.topo);

    // Both certifications must settle on the same plan with the same
    // look-up budget: calibration never materialises edges on the implicit
    // side, yet walks the identical probe sequence.
    CertifiedPartition csr_partition = find_certified_partition(
        *inst.topo, inst.graph, family.delta, ParentRule::kSpread);
    CertifiedPartition imp_partition = find_certified_partition(
        *inst.topo, iview, family.delta, ParentRule::kSpread);
    EXPECT_EQ(csr_partition.plan->description(),
              imp_partition.plan->description());
    EXPECT_EQ(csr_partition.calibration_lookups,
              imp_partition.calibration_lookups);
    EXPECT_EQ(csr_partition.delta, imp_partition.delta);

    Diagnoser csr_diagnoser(inst.graph, csr_partition, DiagnoserOptions{});
    Diagnoser imp_diagnoser(iview, imp_partition, DiagnoserOptions{});

    for (const std::size_t num_faults :
         {std::size_t{0}, std::size_t{1}, std::size_t{family.delta}}) {
      for (const FaultyBehavior behavior :
           {FaultyBehavior::kRandom, FaultyBehavior::kAntiDiagnostic}) {
        Rng rng(0x1A9C0DE ^ (num_faults * 977));
        const FaultSet faults(n, inject_uniform(n, num_faults, rng));
        const std::string what = std::string(family.spec) + "/faults=" +
                                 std::to_string(num_faults) + "/" +
                                 to_string(behavior);

        // Lazy oracles: each side consults its own view's adjacency.
        const LazyOracle lazy(inst.graph, faults, behavior, /*seed=*/42);
        const ImplicitLazyOracle ilazy(iview, faults, behavior, /*seed=*/42);
        const DiagnosisResult expected = csr_diagnoser.diagnose(lazy);
        expect_bit_identical(expected, imp_diagnoser.diagnose(ilazy),
                             what + "/lazy");
        EXPECT_EQ(lazy.lookups(), ilazy.lookups()) << what;

        // Devirtualized entry must route the implicit oracle type too.
        expect_bit_identical(
            expected, diagnose_devirtualized(imp_diagnoser, ilazy),
            what + "/lazy-devirt");

        // Shared TableOracle: the very same oracle object through both
        // drivers — any positional drift between the views would misread
        // the table.
        const Syndrome syndrome =
            generate_syndrome(inst.graph, faults, behavior, /*seed=*/42);
        const TableOracle table(inst.graph, syndrome);
        const DiagnosisResult t_expected = csr_diagnoser.diagnose(table);
        expect_bit_identical(t_expected, imp_diagnoser.diagnose(table),
                             what + "/table");
      }
    }
  }
}

TEST(DispatchEquivalence, ImplicitDiagnoserRejectsCsrOnlyPaths) {
  test::Instance inst("hypercube 5");
  const ImplicitGraph iview(*inst.topo);
  CertifiedPartition partition =
      find_certified_partition(*inst.topo, iview, 3, ParentRule::kSpread);
  Diagnoser diagnoser(iview, partition, DiagnoserOptions{});
  const ImplicitLazyOracle oracle(iview, FaultSet(iview.num_nodes(), {}),
                                  FaultyBehavior::kRandom, 1);
  EXPECT_THROW((void)diagnoser.diagnose_baseline(oracle), std::logic_error);
  const Syndrome syndrome = generate_syndrome(
      inst.graph, FaultSet(inst.graph.num_nodes(), {}),
      FaultyBehavior::kRandom, 1);
  const TableOracle table(inst.graph, syndrome);
  std::vector<const TableOracle*> lanes = {&table};
  EXPECT_THROW((void)diagnoser.diagnose_cohort(lanes), std::logic_error);
}

// The persistent transposed-row cache: a repeated (u, pivot) transpose must
// serve the stored block (hits counted, contents bit-identical to a fresh
// gather+transpose), cached_row must answer only for current entries, the
// cache must survive reset_accounting (that is the probe→final reuse), and
// widening the cohort must invalidate it. Result/look-up identity with the
// cache active is asserted by every cohort test above — the cache changes
// which words are touched, never their content.
TEST(DispatchEquivalence, TransposedRowCacheServesIdenticalBlocks) {
  test::Instance inst("hypercube 6");
  const std::vector<Syndrome> syndromes =
      make_cohort_syndromes(inst.graph, 4, 9);
  std::vector<TableOracle> oracles;
  for (const Syndrome& s : syndromes) oracles.emplace_back(inst.graph, s);

  BitSlicedOracle sliced(inst.graph);
  for (std::size_t lane = 0; lane + 1 < oracles.size(); ++lane) {
    sliced.add_lane(oracles[lane]);
  }
  const unsigned width = sliced.width();
  const Node u = 3;
  const unsigned pivot = 1;

  EXPECT_EQ(sliced.cached_row(u, pivot), nullptr) << "cold cache";
  const std::uint64_t* first = sliced.transposed_row(u, pivot);
  EXPECT_EQ(sliced.row_cache_hits(), 0u) << "first transpose is a miss";
  std::vector<std::uint64_t> snapshot(first, first + BitSlicedOracle::kMaxLanes);
  for (unsigned p = 0; p < inst.graph.degree(u); ++p) {
    for (unsigned lane = 0; lane < width; ++lane) {
      EXPECT_EQ((snapshot[p] >> lane) & 1,
                (oracles[lane].row_bits(u, pivot) >> p) & 1)
          << "p=" << p << " lane=" << lane;
    }
  }

  const std::uint64_t* again = sliced.transposed_row(u, pivot);
  EXPECT_EQ(sliced.row_cache_hits(), 1u);
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), again));

  sliced.reset_accounting();  // probes reset charges; rows must survive
  const std::uint64_t* cached = sliced.cached_row(u, pivot);
  ASSERT_NE(cached, nullptr);
  EXPECT_EQ(sliced.row_cache_hits(), 2u);
  EXPECT_TRUE(std::equal(snapshot.begin(), snapshot.end(), cached));
  EXPECT_EQ(sliced.cached_row(u, pivot + 1), nullptr) << "different pivot";

  // Widening the cohort changes what a block means: everything invalidates.
  sliced.add_lane(oracles.back());
  EXPECT_EQ(sliced.cached_row(u, pivot), nullptr) << "stale after add_lane";
}

// The word-row view must agree with the per-pair view bit for bit, and the
// mirror table must agree with the binary search it replaces.
TEST(DispatchEquivalence, WordRowsAndMirrorPositionsMatchScalarQueries) {
  for (const char* spec : {"hypercube 5", "star 5", "pancake 4"}) {
    SCOPED_TRACE(spec);
    test::Instance inst(spec);
    const std::size_t n = inst.graph.num_nodes();
    Rng rng(3);
    const FaultSet faults(n, inject_uniform(n, 3, rng));
    const Syndrome syndrome =
        generate_syndrome(inst.graph, faults, FaultyBehavior::kAllOne, 5);
    for (Node u = 0; u < n; ++u) {
      const auto adj = inst.graph.neighbors(u);
      for (unsigned i = 0; i < adj.size(); ++i) {
        const std::uint64_t row = syndrome.row_bits(u, i);
        EXPECT_FALSE((row >> i) & 1) << "diagonal bit set at u=" << u;
        for (unsigned j = 0; j < adj.size(); ++j) {
          if (i == j) continue;
          EXPECT_EQ(bool((row >> j) & 1), syndrome.test(u, i, j))
              << "u=" << u << " i=" << i << " j=" << j;
        }
        EXPECT_EQ(static_cast<int>(inst.graph.mirror_position(u, i)),
                  inst.graph.neighbor_position(adj[i], u))
            << "u=" << u << " p=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace mmdiag
