// Churn suite: TopologyOverlay delta semantics and error contracts, the
// tentpole incremental-vs-cold equivalence (certification state and full
// diagnoses bit-identical — outcomes, faults, failure strings AND counted
// look-ups — across families, remove/repair sequences and both oracle
// kinds), syndrome-delta cache reuse, per-component degraded answers, the
// stream format round-trip, a 300-stream generated fuzz sweep through the
// differential harness, and churn racing in-flight batch solves.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "churn/churn_engine.hpp"
#include "churn/churn_stream.hpp"
#include "churn/harness.hpp"
#include "churn/topology_overlay.hpp"
#include "core/diagnoser.hpp"
#include "engine/engine.hpp"
#include "mm/fault_set.hpp"
#include "mm/injector.hpp"
#include "mm/oracle.hpp"
#include "mm/syndrome.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace mmdiag {
namespace {

/// Certifiable (spec, delta) pairs spanning three structurally different
/// families (binary cube, star/permutation, torus) — the floor the issue
/// sets for the equivalence sweeps.
struct FamilyCase {
  const char* spec;
  unsigned delta;
};
constexpr FamilyCase kChurnFamilies[] = {
    {"hypercube 5", 3},
    {"star 4", 3},
    {"kary_ncube 2 6", 3},
    {"pancake 4", 3},
};

ChurnEngineOptions options_for(const FamilyCase& family) {
  ChurnEngineOptions options;
  options.delta = family.delta;
  return options;
}

// ---- TopologyOverlay semantics --------------------------------------------

TEST(TopologyOverlay, RejectsInvalidDeltasWithStateUnchanged) {
  test::Instance inst("hypercube 4");
  TopologyOverlay overlay(inst.graph);
  const std::size_t n = inst.graph.num_nodes();

  overlay.remove_node(5);
  EXPECT_EQ(overlay.live_count(), n - 1);
  // Double-remove: rejected, not absorbed.
  EXPECT_THROW(overlay.remove_node(5), std::invalid_argument);
  EXPECT_EQ(overlay.live_count(), n - 1);
  // Repair of a live node.
  EXPECT_THROW(overlay.repair_node(7), std::invalid_argument);
  // Out-of-range ids on every operation.
  EXPECT_THROW(overlay.remove_node(static_cast<Node>(n)),
               std::invalid_argument);
  EXPECT_THROW(overlay.repair_node(static_cast<Node>(n)),
               std::invalid_argument);
  EXPECT_THROW(overlay.remove_edge(0, static_cast<Node>(n)),
               std::invalid_argument);
  // Non-adjacent pair (0 and 3 differ in two bits on a hypercube).
  EXPECT_THROW(overlay.remove_edge(0, 3), std::invalid_argument);
  // Double edge removal and repair of a never-removed edge.
  overlay.remove_edge(0, 1);
  EXPECT_THROW(overlay.remove_edge(1, 0), std::invalid_argument);
  EXPECT_THROW(overlay.repair_edge(0, 2), std::invalid_argument);
  EXPECT_EQ(overlay.removed_edge_count(), 1u);
  EXPECT_TRUE(overlay.ever_churned());
}

TEST(TopologyOverlay, ExplicitEdgeRemovalSurvivesNodeRepair) {
  test::Instance inst("hypercube 4");
  TopologyOverlay overlay(inst.graph);

  overlay.remove_edge(0, 1);
  overlay.remove_node(0);
  overlay.repair_node(0);
  // The node repair resurrects every incident edge except the explicitly
  // removed one.
  EXPECT_TRUE(overlay.edge_removed(0, 1));
  EXPECT_NE(overlay.dead_mask(0), 0u);
  EXPECT_NE(overlay.dead_mask(1), 0u);
  overlay.repair_edge(1, 0);
  EXPECT_EQ(overlay.dead_mask(0), 0u);
  EXPECT_EQ(overlay.dead_mask(1), 0u);
  EXPECT_EQ(overlay.removed_edge_count(), 0u);
}

TEST(TopologyOverlay, RemoveNodeKillsTheMirrorPositions) {
  test::Instance inst("hypercube 4");
  TopologyOverlay overlay(inst.graph);
  overlay.remove_node(6);
  for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
    if (u == 6) continue;
    const auto neighbors = inst.graph.neighbors(u);
    for (std::size_t p = 0; p < neighbors.size(); ++p) {
      const bool dead = (overlay.dead_mask(u) >> p) & 1;
      EXPECT_EQ(dead, neighbors[p] == 6) << "u=" << u << " p=" << p;
    }
  }
  overlay.repair_node(6);
  for (Node u = 0; u < inst.graph.num_nodes(); ++u) {
    EXPECT_EQ(overlay.dead_mask(u), 0u) << "u=" << u;
  }
}

// ---- Pristine equivalence with the base driver ----------------------------

TEST(ChurnEngine, PristineOverlayMatchesBaseDiagnoser) {
  for (const FamilyCase& family : kChurnFamilies) {
    SCOPED_TRACE(family.spec);
    DiagnosisEngine engine;
    ChurnEngine churn(engine, family.spec, options_for(family));
    for (const ComponentChurnState& state : churn.certification()) {
      EXPECT_EQ(state.status, ComponentCertStatus::kCertified);
    }

    test::Instance inst(family.spec);
    DiagnoserOptions direct_options;
    direct_options.delta = family.delta;
    Diagnoser direct(*inst.topo, inst.graph, direct_options);
    const std::size_t n = inst.graph.num_nodes();
    for (std::size_t i = 0; i <= family.delta; ++i) {
      Rng rng(911 + i);
      const FaultSet faults(n, inject_uniform(n, i, rng));
      const LazyOracle base_oracle(inst.graph, faults, FaultyBehavior::kRandom,
                                   i);
      const LazyOracle churn_oracle(churn.calibration().graph, faults,
                                    FaultyBehavior::kRandom, i);
      const DiagnosisResult expected = direct.diagnose(base_oracle);
      const ChurnDiagnosis got = churn.diagnose(churn_oracle);
      ASSERT_TRUE(expected.success);
      EXPECT_TRUE(got.success) << got.failure_reason;
      EXPECT_EQ(got.faults, test::sorted(expected.faults)) << "i=" << i;
      for (const ComponentDiagnosis& cd : got.components) {
        EXPECT_TRUE(cd.outcome == ComponentOutcome::kHealthy ||
                    cd.outcome == ComponentOutcome::kResolved);
      }
    }
  }
}

// ---- Incremental recertification vs cold ----------------------------------

/// Applies `steps` random legal deltas, checking after every one that the
/// incrementally maintained certification equals a cold recertification of
/// every component, element for element (look-up counts included).
void run_cert_equivalence(const FamilyCase& family, std::uint64_t seed,
                          std::size_t steps) {
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();
  Rng rng(seed);
  std::vector<Node> removed;
  std::vector<std::pair<Node, Node>> removed_edges;

  for (std::size_t step = 0; step < steps; ++step) {
    const std::uint64_t roll = rng.below(100);
    ChurnDelta delta;
    if (roll < 40 || (removed.empty() && removed_edges.empty())) {
      // Remove a random live node (keep at least a quarter alive).
      if (churn.overlay().live_count() * 4 < n) continue;
      Node u = static_cast<Node>(rng.below(n));
      while (churn.overlay().node_removed(u)) {
        u = static_cast<Node>(rng.below(n));
      }
      delta = {ChurnOp::kRemoveNode, u, 0};
      removed.push_back(u);
    } else if (roll < 60 && !removed.empty()) {
      const std::size_t i = rng.below(removed.size());
      delta = {ChurnOp::kRepairNode, removed[i], 0};
      removed.erase(removed.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (roll < 80 || removed_edges.empty()) {
      // Remove a random not-yet-removed edge.
      const Node u = static_cast<Node>(rng.below(n));
      const auto neighbors = graph.neighbors(u);
      const Node v = neighbors[rng.below(neighbors.size())];
      if (churn.overlay().edge_removed(u, v)) continue;
      delta = {ChurnOp::kRemoveEdge, u, v};
      removed_edges.emplace_back(u, v);
    } else {
      const std::size_t i = rng.below(removed_edges.size());
      delta = {ChurnOp::kRepairEdge, removed_edges[i].first,
               removed_edges[i].second};
      removed_edges.erase(removed_edges.begin() +
                          static_cast<std::ptrdiff_t>(i));
    }
    churn.apply(delta);
    const std::vector<ComponentChurnState> warm = churn.certification();
    const std::vector<ComponentChurnState> cold = churn.recertify_cold();
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t c = 0; c < warm.size(); ++c) {
      ASSERT_EQ(warm[c], cold[c])
          << "step " << step << " component " << c << " (warm "
          << to_string(warm[c].status) << " lookups " << warm[c].lookups
          << " vs cold " << to_string(cold[c].status) << " lookups "
          << cold[c].lookups << ")";
    }
  }
  // The incremental path must have done strictly less recertification work
  // than one cold pass per delta would have.
  EXPECT_LT(churn.components_recertified(),
            static_cast<std::uint64_t>(steps) * churn.num_components() + 1);
}

TEST(ChurnRecertifier, IncrementalMatchesColdAcrossFamilies) {
  for (const FamilyCase& family : kChurnFamilies) {
    SCOPED_TRACE(family.spec);
    run_cert_equivalence(family, 0xC0A7, 24);
  }
}

// ---- Warm vs cold diagnosis under churn (both oracle kinds) ---------------

/// Interleaves deltas with diagnoses and checks every warm answer against
/// diagnose_cold through identical() — the full bit-identity contract.
void run_diagnose_equivalence(const FamilyCase& family, bool use_table,
                              std::uint64_t seed) {
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();
  Rng rng(seed);
  const std::uint64_t behavior_seed = mix64(seed, 0xD1A6ull);

  for (std::size_t step = 0; step < 12; ++step) {
    if (churn.overlay().live_count() * 2 > n) {
      Node u = static_cast<Node>(rng.below(n));
      while (churn.overlay().node_removed(u)) {
        u = static_cast<Node>(rng.below(n));
      }
      churn.apply({ChurnOp::kRemoveNode, u, 0});
    }
    const std::size_t k = rng.below(family.delta + 1);
    const FaultSet faults(n, inject_uniform(n, k, rng));
    std::unique_ptr<Syndrome> table;
    std::unique_ptr<SyndromeOracle> oracle;
    if (use_table) {
      table = std::make_unique<Syndrome>(generate_syndrome(
          graph, faults, FaultyBehavior::kRandom, behavior_seed));
      oracle = std::make_unique<TableOracle>(graph, *table);
    } else {
      oracle = std::make_unique<LazyOracle>(
          graph, faults, FaultyBehavior::kRandom, behavior_seed);
    }
    const ChurnDiagnosis warm = churn.diagnose(*oracle);
    const ChurnDiagnosis cold = churn.diagnose_cold(*oracle);
    ASSERT_TRUE(identical(warm, cold))
        << family.spec << " step " << step << ": warm faults "
        << warm.faults.size() << " success " << warm.success
        << " vs cold faults " << cold.faults.size() << " success "
        << cold.success;
  }
}

TEST(ChurnEngine, WarmDiagnosisMatchesColdLazyOracle) {
  for (const FamilyCase& family : kChurnFamilies) {
    SCOPED_TRACE(family.spec);
    run_diagnose_equivalence(family, /*use_table=*/false, 0xBEE5);
  }
}

TEST(ChurnEngine, WarmDiagnosisMatchesColdTableOracle) {
  for (const FamilyCase& family : kChurnFamilies) {
    SCOPED_TRACE(family.spec);
    run_diagnose_equivalence(family, /*use_table=*/true, 0xFACE);
  }
}

// ---- Syndrome-delta cache reuse -------------------------------------------

TEST(ChurnEngine, DiagnoseDeltaServesUnchangedRowsFromCache) {
  const FamilyCase family = kChurnFamilies[0];
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();
  // Faults inside component 0 — the first probe target — so its probe runs
  // (and fails to certify), making the reprobe path below observable.
  const FaultSet faults(n, {1, 6});
  const LazyOracle oracle(graph, faults, FaultyBehavior::kRandom, 3);

  const ChurnDiagnosis first = churn.diagnose(oracle);
  ASSERT_TRUE(first.success);
  ASSERT_EQ(first.faults.size(), 2u);

  // No rows changed: pure cache hit, zero look-ups, identical answer.
  const ChurnDiagnosis unchanged = churn.diagnose_delta(oracle, {});
  EXPECT_TRUE(unchanged.reused_cache);
  EXPECT_EQ(unchanged.spent_lookups, 0u);
  EXPECT_EQ(unchanged.components_reprobed, 0u);
  EXPECT_TRUE(identical(unchanged, churn.diagnose_cold(oracle)));

  // A fault's own row "changed": faults are never run members, so the
  // owning component is re-probed, the probe replays, and the cached solve
  // is served.
  const ChurnDiagnosis fault_row = churn.diagnose_delta(oracle, {first.faults[0]});
  EXPECT_TRUE(fault_row.reused_cache);
  EXPECT_EQ(fault_row.components_reprobed, 1u);
  EXPECT_GT(fault_row.spent_lookups, 0u);
  EXPECT_TRUE(identical(fault_row, churn.diagnose_cold(oracle)));

  // A run member's row changed: the cached global phase is stale by
  // definition, so a full fresh solve runs.
  Node member = kNoNode;
  for (Node u = 0; u < n; ++u) {
    if (std::find(first.faults.begin(), first.faults.end(), u) ==
        first.faults.end()) {
      member = u;
      break;
    }
  }
  ASSERT_NE(member, kNoNode);
  const ChurnDiagnosis rerun = churn.diagnose_delta(oracle, {member});
  EXPECT_FALSE(rerun.reused_cache);
  EXPECT_TRUE(identical(rerun, churn.diagnose_cold(oracle)));

  // Out-of-range changed node: rejected before any state is touched.
  EXPECT_THROW((void)churn.diagnose_delta(oracle, {static_cast<Node>(n)}),
               std::invalid_argument);

  // Explicit invalidation and topology deltas both drop the cache.
  churn.invalidate_solve_cache();
  EXPECT_FALSE(churn.diagnose_delta(oracle, {}).reused_cache);
  churn.apply({ChurnOp::kRemoveNode, first.faults[0], 0});
  EXPECT_FALSE(churn.diagnose_delta(oracle, {}).reused_cache);
}

TEST(ChurnEngine, DiagnoseDeltaTracksAFaultFlipBitIdentically) {
  const FamilyCase family = kChurnFamilies[2];  // kary_ncube 2 6
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();
  const std::uint64_t behavior_seed = 5;

  const FaultSet before_faults(n, {3});
  const LazyOracle before(graph, before_faults, FaultyBehavior::kRandom,
                          behavior_seed);
  (void)churn.diagnose(before);

  // Flip node 9 faulty: its row and its neighbours' rows may change.
  const FaultSet after_faults(n, {3, 9});
  const LazyOracle after(graph, after_faults, FaultyBehavior::kRandom,
                         behavior_seed);
  std::vector<Node> changed = {9};
  for (const Node w : graph.neighbors(9)) changed.push_back(w);
  const ChurnDiagnosis warm = churn.diagnose_delta(after, changed);
  const ChurnDiagnosis cold = churn.diagnose_cold(after);
  EXPECT_TRUE(identical(warm, cold));
  EXPECT_EQ(warm.faults, (std::vector<Node>{3, 9}));
}

// ---- Degraded-mode answers ------------------------------------------------

std::vector<Node> members_of_component(const Calibration& cal,
                                       std::uint32_t comp) {
  std::vector<Node> members;
  for (Node u = 0; u < cal.graph.num_nodes(); ++u) {
    if (cal.partition.plan->component_of(u) == comp) members.push_back(u);
  }
  return members;
}

TEST(ChurnEngine, EmptyComponentAnswersQuiescentWhileOthersServe) {
  const FamilyCase family = kChurnFamilies[0];
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const std::size_t n = churn.calibration().graph.num_nodes();

  for (const Node u : members_of_component(churn.calibration(), 0)) {
    churn.apply({ChurnOp::kRemoveNode, u, 0});
  }
  EXPECT_EQ(churn.certification()[0].status, ComponentCertStatus::kEmpty);

  const FaultSet no_faults(n, {});
  const LazyOracle oracle(churn.calibration().graph, no_faults,
                          FaultyBehavior::kRandom, 1);
  const ChurnDiagnosis d = churn.diagnose(oracle);
  EXPECT_TRUE(d.success) << d.failure_reason;
  EXPECT_EQ(d.components[0].outcome, ComponentOutcome::kEmpty);
  for (std::size_t c = 1; c < d.components.size(); ++c) {
    EXPECT_EQ(d.components[c].outcome, ComponentOutcome::kHealthy);
  }
  EXPECT_TRUE(identical(d, churn.diagnose_cold(oracle)));
}

TEST(ChurnEngine, AllNodesRemovedIsTheQuiescentAnswer) {
  const FamilyCase family = kChurnFamilies[1];  // star 4: 24 nodes
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const std::size_t n = churn.calibration().graph.num_nodes();
  for (Node u = 0; u < n; ++u) churn.apply({ChurnOp::kRemoveNode, u, 0});
  EXPECT_EQ(churn.overlay().live_count(), 0u);

  const FaultSet no_faults(n, {});
  const LazyOracle oracle(churn.calibration().graph, no_faults,
                          FaultyBehavior::kRandom, 1);
  const ChurnDiagnosis d = churn.diagnose(oracle);
  EXPECT_TRUE(d.success);
  EXPECT_TRUE(d.runs.empty());
  EXPECT_TRUE(d.faults.empty());
  for (const ComponentDiagnosis& cd : d.components) {
    EXPECT_EQ(cd.outcome, ComponentOutcome::kEmpty);
  }
}

TEST(ChurnEngine, DegradedComponentReportedWithoutFailingHealthyOnes) {
  const FamilyCase family = kChurnFamilies[0];
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();

  // Strip component 0 down to one live node, then cut that node's surviving
  // edges: the component keeps a live member but loses its certificate, and
  // the member is unreachable by any run.
  const std::vector<Node> members = members_of_component(churn.calibration(), 0);
  for (std::size_t i = 0; i + 1 < members.size(); ++i) {
    churn.apply({ChurnOp::kRemoveNode, members[i], 0});
  }
  const Node survivor = members.back();
  for (const Node w : graph.neighbors(survivor)) {
    if (!churn.overlay().node_removed(w) &&
        !churn.overlay().edge_removed(survivor, w)) {
      churn.apply({ChurnOp::kRemoveEdge, survivor, w});
    }
  }
  const ComponentChurnState state0 = churn.certification()[0];
  EXPECT_EQ(state0.status, ComponentCertStatus::kDegraded);
  EXPECT_EQ(state0.live_nodes, 1u);

  const FaultSet no_faults(n, {});
  const LazyOracle oracle(graph, no_faults, FaultyBehavior::kRandom, 1);
  const ChurnDiagnosis d = churn.diagnose(oracle);
  EXPECT_FALSE(d.success);
  EXPECT_EQ(d.components[0].outcome, ComponentOutcome::kDegradedUncertified);
  EXPECT_NE(d.components[0].detail.find("certificate lost"), std::string::npos)
      << d.components[0].detail;
  for (std::size_t c = 1; c < d.components.size(); ++c) {
    EXPECT_EQ(d.components[c].outcome, ComponentOutcome::kHealthy)
        << "component " << c;
  }
  EXPECT_TRUE(identical(d, churn.diagnose_cold(oracle)));
}

// ---- Stream format --------------------------------------------------------

TEST(ChurnStream, FormatParseRoundTrips) {
  ChurnStream stream;
  stream.spec = "hypercube 5";
  stream.delta = 3;
  stream.seed = 42;
  stream.events.push_back(
      {ChurnEvent::Kind::kTopology, {ChurnOp::kRemoveNode, 12, 0}, false, {}});
  stream.events.push_back(
      {ChurnEvent::Kind::kTopology, {ChurnOp::kRemoveNode, 12, 0}, true, {}});
  stream.events.push_back(
      {ChurnEvent::Kind::kTopology, {ChurnOp::kRemoveEdge, 3, 7}, false, {}});
  stream.events.push_back(
      {ChurnEvent::Kind::kTopology, {ChurnOp::kRepairEdge, 3, 7}, false, {}});
  stream.events.push_back(
      {ChurnEvent::Kind::kDiagnose, {}, false, {3, 19}});
  stream.events.push_back(
      {ChurnEvent::Kind::kDiagnoseDelta, {}, false, {3, 19, 20}});

  const std::string text = format_churn_stream(stream);
  const ChurnStream parsed = parse_churn_stream(text);
  EXPECT_EQ(parsed.spec, stream.spec);
  EXPECT_EQ(parsed.delta, stream.delta);
  EXPECT_EQ(parsed.seed, stream.seed);
  ASSERT_EQ(parsed.events.size(), stream.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i].kind, stream.events[i].kind) << i;
    EXPECT_EQ(parsed.events[i].expect_error, stream.events[i].expect_error);
    EXPECT_EQ(parsed.events[i].delta.op, stream.events[i].delta.op) << i;
    EXPECT_EQ(parsed.events[i].delta.u, stream.events[i].delta.u) << i;
    EXPECT_EQ(parsed.events[i].delta.v, stream.events[i].delta.v) << i;
    EXPECT_EQ(parsed.events[i].faults, stream.events[i].faults) << i;
  }
  EXPECT_EQ(format_churn_stream(parsed), text);
}

TEST(ChurnStream, ParseRejectsMalformedInputWithLineNumbers) {
  const auto expect_parse_error = [](const std::string& text,
                                     const std::string& needle) {
    try {
      (void)parse_churn_stream(text);
      FAIL() << "accepted: " << text;
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  expect_parse_error("bogus v9\nend\n", "line 1");
  expect_parse_error("mmdiag-churn v1\nend\n", "spec");
  expect_parse_error(
      "mmdiag-churn v1\nspec hypercube 5\nremove-node\nend\n", "line 3");
  expect_parse_error(
      "mmdiag-churn v1\nspec hypercube 5\nteleport-node 3\nend\n", "line 3");
  expect_parse_error("mmdiag-churn v1\nspec hypercube 5\nremove-node 3\n",
                     "end");
}

// ---- Generated streams through the differential harness -------------------

TEST(ChurnHarness, GeneratedHostileStreamsRunCleanBothOracleKinds) {
  DiagnosisEngine engine;
  for (const FamilyCase& family : kChurnFamilies) {
    for (const bool table : {false, true}) {
      SCOPED_TRACE(std::string(family.spec) + (table ? "/table" : "/lazy"));
      ChurnStreamConfig config;
      config.spec = family.spec;
      config.delta = family.delta;
      config.seed = 7;
      config.events = 24;
      const ChurnStream stream = generate_churn_stream(engine, config);
      ChurnHarnessOptions options;
      options.use_table_oracle = table;
      const ChurnHarnessReport report =
          run_churn_stream(engine, stream, options);
      EXPECT_TRUE(report.ok()) << report.divergences.front();
      EXPECT_GT(report.topology_events, 0u);
      EXPECT_GT(report.diagnose_events + report.delta_events, 0u);
      EXPECT_GT(report.expected_errors, 0u);  // hostile ops were generated
      EXPECT_LT(report.warm_recert_components, report.cold_recert_components);
    }
  }
}

TEST(ChurnHarness, ThreeHundredGeneratedStreamsClean) {
  // The churn fuzz floor: 300 generated streams (hostile patterns included)
  // replayed differentially, every event checked warm-vs-cold.
  DiagnosisEngine engine;
  std::size_t expected_errors = 0;
  std::size_t degraded = 0;
  std::size_t reuses = 0;
  for (std::uint64_t seed = 0; seed < 300; ++seed) {
    const FamilyCase& family = kChurnFamilies[seed % std::size(kChurnFamilies)];
    ChurnStreamConfig config;
    config.spec = family.spec;
    config.delta = family.delta;
    config.seed = seed;
    config.events = 10;
    const ChurnStream stream = generate_churn_stream(engine, config);
    const ChurnHarnessReport report = run_churn_stream(engine, stream);
    ASSERT_TRUE(report.ok())
        << "seed " << seed << " (" << family.spec
        << "): " << report.divergences.front();
    expected_errors += report.expected_errors;
    degraded += report.degraded_components_seen;
    reuses += report.cache_reuses;
  }
  // The sweep must actually exercise the hostile and degraded paths.
  EXPECT_GT(expected_errors, 0u);
  EXPECT_GT(degraded, 0u);
  EXPECT_GT(reuses, 0u);
}

// ---- Churn racing in-flight solves ----------------------------------------

TEST(ChurnEngine, ChurnRacesInFlightBatchSolvesWithoutDisturbingThem) {
  const FamilyCase family = kChurnFamilies[0];
  EngineOptions engine_options;
  engine_options.diagnoser.delta = family.delta;
  DiagnosisEngine engine(engine_options);
  ChurnEngine churn(engine, family.spec, options_for(family));
  const Graph& graph = churn.calibration().graph;
  const std::size_t n = graph.num_nodes();

  Rng rng(0xACE);
  const FaultSet faults(n, inject_uniform(n, family.delta, rng));
  const auto make_oracle = [&] {
    return LazyOracle(graph, faults, FaultyBehavior::kRandom, 7);
  };
  const std::unique_ptr<BatchDiagnoser> batch =
      engine.make_batch_diagnoser(family.spec, 2);
  const LazyOracle baseline_oracle = make_oracle();
  const std::vector<const SyndromeOracle*> baseline_batch = {&baseline_oracle};
  const DiagnosisResult baseline = batch->diagnose_all(baseline_batch).results[0];

  // Thread A hammers the immutable base calibration through batch solves;
  // thread B churns the overlay and diagnoses through it. The base results
  // must stay bit-identical throughout — churn is an overlay, never a
  // mutation of shared state.
  std::vector<std::string> batch_errors;
  std::thread solver([&] {
    for (int i = 0; i < 16; ++i) {
      const LazyOracle o0 = make_oracle();
      const LazyOracle o1 = make_oracle();
      const std::vector<const SyndromeOracle*> lanes = {&o0, &o1};
      const BatchResult r = batch->diagnose_all(lanes);
      for (const DiagnosisResult& result : r.results) {
        if (result.success != baseline.success ||
            result.faults != baseline.faults ||
            result.lookups != baseline.lookups) {
          batch_errors.push_back("batch result diverged during churn");
        }
      }
    }
  });
  for (int i = 0; i < 16; ++i) {
    churn.apply({ChurnOp::kRemoveNode, static_cast<Node>(i), 0});
    const LazyOracle oracle = make_oracle();
    (void)churn.diagnose(oracle);
    churn.apply({ChurnOp::kRepairNode, static_cast<Node>(i), 0});
  }
  solver.join();
  EXPECT_TRUE(batch_errors.empty()) << batch_errors.front();
  // After the race the incremental state still equals cold.
  EXPECT_TRUE(churn.certification() == churn.recertify_cold());
}

TEST(ChurnEngine, RetireCalibrationEvictsExplicitlyAndKeepsServing) {
  const FamilyCase family = kChurnFamilies[0];
  DiagnosisEngine engine;
  ChurnEngine churn(engine, family.spec, options_for(family));
  const std::size_t dropped = churn.retire_calibration();
  EXPECT_GE(dropped, 1u);
  EXPECT_GE(engine.counters().evictions_explicit, dropped);
  // The ChurnEngine shares ownership: diagnosis keeps working.
  const std::size_t n = churn.calibration().graph.num_nodes();
  const FaultSet no_faults(n, {});
  const LazyOracle oracle(churn.calibration().graph, no_faults,
                          FaultyBehavior::kRandom, 2);
  EXPECT_TRUE(churn.diagnose(oracle).success);
}

}  // namespace
}  // namespace mmdiag
