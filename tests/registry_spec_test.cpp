// topology/registry spec parsing: every registered family constructs at a
// small size through the spec path, and malformed specs are rejected with
// messages that tell the user what went wrong.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <stdexcept>

#include "test_util.hpp"
#include "topology/registry.hpp"

namespace mmdiag {
namespace {

// A known-good small spec for every family the registry exports. The test
// below fails if a family is added to the registry without updating this
// table, which is exactly the reminder we want.
const std::map<std::string, std::string>& small_specs() {
  static const std::map<std::string, std::string> specs = {
      {"hypercube", "hypercube 3"},
      {"crossed_cube", "crossed_cube 3"},
      {"twisted_cube", "twisted_cube 3"},
      {"folded_hypercube", "folded_hypercube 3"},
      {"enhanced_hypercube", "enhanced_hypercube 3 2"},
      {"augmented_cube", "augmented_cube 3"},
      {"shuffle_cube", "shuffle_cube 6"},
      {"twisted_n_cube", "twisted_n_cube 3"},
      {"kary_ncube", "kary_ncube 2 3"},
      {"augmented_kary_ncube", "augmented_kary_ncube 2 3"},
      {"star", "star 4"},
      {"nk_star", "nk_star 4 2"},
      {"pancake", "pancake 4"},
      {"arrangement", "arrangement 4 2"},
  };
  return specs;
}

TEST(RegistrySpec, EveryFamilyConstructsAtASmallSize) {
  for (const std::string& family : topology_families()) {
    SCOPED_TRACE(family);
    const auto it = small_specs().find(family);
    ASSERT_NE(it, small_specs().end())
        << "family '" << family << "' has no small spec in this test";
    const auto topo = make_topology_from_spec(it->second);
    ASSERT_NE(topo, nullptr);
    const TopologyInfo info = topo->info();
    EXPECT_EQ(info.family, family);
    EXPECT_GT(info.num_nodes, 0u);
    // The instance must materialise: build_graph validates symmetry.
    const Graph g = topo->build_graph();
    EXPECT_EQ(g.num_nodes(), info.num_nodes);
  }
}

TEST(RegistrySpec, NoRegisteredFamilyIsMissingFromTheRegistryList) {
  const auto families = topology_families();
  for (const auto& [family, spec] : small_specs()) {
    EXPECT_NE(std::find(families.begin(), families.end(), family),
              families.end())
        << "spec table covers unregistered family '" << family << "'";
  }
}

void expect_invalid(const std::string& spec, const std::string& fragment) {
  SCOPED_TRACE(spec);
  try {
    (void)make_topology_from_spec(spec);
    FAIL() << "expected std::invalid_argument for spec '" << spec << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(fragment), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(RegistrySpec, UnknownFamilyThrowsNamingTheFamily) {
  expect_invalid("moebius 4", "moebius");
  expect_invalid("moebius 4", "unknown topology family");
}

TEST(RegistrySpec, EmptySpecThrows) {
  expect_invalid("", "empty topology spec");
  expect_invalid("   ", "empty topology spec");
}

TEST(RegistrySpec, WrongParameterCountThrowsWithCounts) {
  expect_invalid("hypercube", "expects 1 parameter(s), got 0");
  expect_invalid("hypercube 3 4", "expects 1 parameter(s), got 2");
  expect_invalid("kary_ncube 3", "expects 2 parameter(s), got 1");
  expect_invalid("arrangement 5", "expects 2 parameter(s), got 1");
}

TEST(RegistrySpec, NonNumericOrTrailingGarbageThrows) {
  expect_invalid("hypercube three", "hypercube");
  expect_invalid("hypercube 3 extra_stuff", "not a plain decimal");
  expect_invalid("kary_ncube 2 3 junk", "not a plain decimal");
  // Stream extraction into unsigned would silently wrap "-1"; the strict
  // parameter grammar rejects signs, hex, and exponents outright.
  expect_invalid("hypercube -1", "not a plain decimal");
  expect_invalid("hypercube 0x3", "not a plain decimal");
  expect_invalid("hypercube 1e1", "not a plain decimal");
}

TEST(RegistrySpec, CanonicalSpecRoundTripsForEveryFamily) {
  for (const auto& [family, spec] : small_specs()) {
    SCOPED_TRACE(spec);
    const auto topo = make_topology_from_spec(spec);
    // The small-spec table is written in canonical form already, so the
    // round trip must be exact ...
    EXPECT_EQ(topo->spec(), spec);
    // ... and re-parsing the canonical form reconstructs an equal instance.
    const auto again = make_topology_from_spec(topo->spec());
    EXPECT_EQ(again->info().family, topo->info().family);
    EXPECT_EQ(again->params(), topo->params());
    EXPECT_EQ(again->info().num_nodes, topo->info().num_nodes);
  }
}

TEST(RegistrySpec, CanonicalSpecNormalisesWhitespaceAndParamForms) {
  EXPECT_EQ(canonical_topology_spec("  hypercube    3 "), "hypercube 3");
  EXPECT_EQ(canonical_topology_spec("hypercube\t07"), "hypercube 7");
  EXPECT_EQ(canonical_topology_spec("kary_ncube  2\t 3"), "kary_ncube 2 3");
  EXPECT_EQ(canonical_topology_spec("star 04"), "star 4");
}

TEST(RegistrySpec, MakeTopologyMatchesSpecPath) {
  const auto direct = make_topology("kary_ncube", {2, 3});
  const auto via_spec = make_topology_from_spec("kary_ncube 2 3");
  EXPECT_EQ(direct->info().name, via_spec->info().name);
  EXPECT_EQ(direct->info().num_nodes, via_spec->info().num_nodes);
}

// Node ids are 32-bit throughout the stack. Families whose own parameter
// caps admit more than 2^32 - 1 nodes used to wrap silently at parse time;
// the registry now rejects them with a message naming the overflow.
TEST(RegistrySpec, SpecsOverflowingNodeIdSpaceAreRejected) {
  // arrangement 16 12: 16!/(16-12)! ~ 8.7e11 nodes.
  // nk_star 16 15: likewise factorial, far past 2^32.
  for (const char* spec : {"arrangement 16 12", "nk_star 16 15"}) {
    SCOPED_TRACE(spec);
    try {
      (void)make_topology_from_spec(spec);
      FAIL() << "expected std::invalid_argument for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("32-bit node id space"),
                std::string::npos)
          << e.what();
    }
  }
  // Families with their own tighter caps keep their original messages —
  // the guard only catches what used to slip through.
  EXPECT_THROW((void)make_topology_from_spec("hypercube 32"),
               std::invalid_argument);
}

}  // namespace
}  // namespace mmdiag
